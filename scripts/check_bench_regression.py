#!/usr/bin/env python3
"""Bench regression gate: compares a freshly produced BENCH_<name>.json
against the committed baseline in bench/baselines/ and fails when any of
the named metrics regressed (grew) by more than the threshold.

The simulation benches are deterministic, so genuine drift in a makespan
metric means the code got slower, not the machine. The default 25%
threshold leaves room for intentional scenario tweaks while still
catching order-of-magnitude mistakes; shrinkage (faster) never fails.

Usage:
  check_bench_regression.py --baseline bench/baselines/BENCH_workflow.json \
      --fresh BENCH_workflow.json --metric dag_makespan_s [--metric ...]
"""
import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline BENCH_*.json")
    parser.add_argument("--fresh", required=True,
                        help="freshly produced BENCH_*.json")
    parser.add_argument("--metric", action="append", required=True,
                        help="metric that must not grow past the threshold "
                             "(repeatable)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional growth (default 0.25)")
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)
    with open(args.fresh, encoding="utf-8") as f:
        fresh = json.load(f)

    failed = False
    for metric in args.metric:
        if metric not in baseline:
            print(f"FAIL {metric}: missing from baseline {args.baseline}")
            failed = True
            continue
        if metric not in fresh:
            print(f"FAIL {metric}: missing from fresh {args.fresh}")
            failed = True
            continue
        base, now = float(baseline[metric]), float(fresh[metric])
        if base <= 0:
            print(f"skip {metric}: non-positive baseline {base}")
            continue
        growth = (now - base) / base
        verdict = "FAIL" if growth > args.threshold else "ok"
        print(f"{verdict:4} {metric}: baseline={base:.6g} fresh={now:.6g} "
              f"growth={growth:+.1%} (threshold +{args.threshold:.0%})")
        if growth > args.threshold:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
