// Repair loop — the anti-entropy half of the replica plane. Each pass
// re-plans placement against the directory's observed state; any
// dataset below its target replication factor (a cluster died with its
// lake, a replica went stale) gets repair transfers enqueued on the
// destination clusters' schedulers — anycast retrieval pulls the bytes
// from whichever surviving lake still holds them. Repairs carry a
// per-pass tag, so a newer plan supersedes (cancels) an older one
// instead of racing it. FR events narrate each pass; the
// lidc_replica_under_replicated gauge (and repairValueSource) lets an
// AlertEngine rule fire on sustained under-replication and clear once
// repairs land.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "replica/policy.hpp"
#include "replica/scheduler.hpp"
#include "sim/simulator.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/flight_recorder.hpp"

namespace lidc::replica {

struct RepairOptions {
  /// Period of start()ed anti-entropy passes.
  sim::Duration interval = sim::Duration::seconds(2);
  /// Priority of repair transfers (above default-0 pre-stages).
  int priority = 10;
  /// Cancel the previous pass's still-queued repairs before enqueuing a
  /// new plan (the new plan reflects newer truth).
  bool supersedePreviousPass = true;
};

class RepairLoop {
 public:
  RepairLoop(sim::Simulator& sim, ReplicaDirectory& directory,
             PlacementPolicy& policy, RepairOptions options = {});

  /// Registers the scheduler that stages data onto `cluster`. Plans
  /// targeting clusters without a scheduler are logged and skipped.
  void addScheduler(const std::string& cluster, TransferScheduler* scheduler);

  /// Runs one anti-entropy pass; returns repairs enqueued.
  std::size_t tick();

  /// Periodic passes on the sim clock; stop() before draining the sim.
  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  [[nodiscard]] std::uint64_t passes() const noexcept { return passes_; }
  [[nodiscard]] std::uint64_t repairsEnqueued() const noexcept {
    return repairs_enqueued_;
  }
  [[nodiscard]] std::uint64_t repairsCompleted() const noexcept {
    return repairs_completed_;
  }
  [[nodiscard]] std::uint64_t repairsFailed() const noexcept {
    return repairs_failed_;
  }
  /// Datasets the latest pass found under-replicated.
  [[nodiscard]] std::size_t underReplicated() const noexcept {
    return under_replicated_;
  }

  /// Mirrors lidc_replica_repaired_total and the
  /// lidc_replica_under_replicated gauge into `registry`.
  void attachTelemetry(telemetry::MetricsRegistry& registry);
  void setFlightRecorder(telemetry::FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

 private:
  sim::Simulator& sim_;
  ReplicaDirectory& directory_;
  PlacementPolicy& policy_;
  RepairOptions options_;
  std::map<std::string, TransferScheduler*> schedulers_;
  telemetry::FlightRecorder* recorder_ = nullptr;
  bool running_ = false;
  sim::EventHandle tick_;
  std::uint64_t passes_ = 0;
  std::uint64_t repairs_enqueued_ = 0;
  std::uint64_t repairs_completed_ = 0;
  std::uint64_t repairs_failed_ = 0;
  std::size_t under_replicated_ = 0;
};

/// AlertEngine value source over a repair loop:
///   "replica/under_replicated" — datasets below target (latest pass)
///   "replica/repairs_failed"   — cumulative failed repairs
[[nodiscard]] telemetry::AlertEngine::ValueSource repairValueSource(
    const RepairLoop& loop);

}  // namespace lidc::replica
