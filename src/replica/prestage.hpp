// Prestage coordinator — glue between the WorkflowEngine's lookahead
// hooks and one compute cluster's TransferScheduler. Two entry points:
//
//   * prestage(): fired when a producer stage dispatches, with its
//     consumers' input names. Missing inputs are enqueued at low
//     priority, so they stream in while the producer runs — by the
//     time the consumer dispatches the bytes are already local.
//   * ensureLocal(): fired at a stage's own dispatch. Anything still
//     missing is enqueued at high priority; done() reports the bytes
//     those dispatch-time transfers actually moved. With lookahead on
//     this is 0 — the acceptance check for predictive pre-staging.
//
// Every input access feeds the placement policy's heat (weighted by
// the tenant's share), so repeatedly-read datasets graduate to a
// higher target replication factor.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "replica/policy.hpp"
#include "replica/scheduler.hpp"

namespace lidc::replica {

struct PrestageOptions {
  int prestagePriority = 0;
  int dispatchPriority = 5;
  /// Heat weight per recorded access (a tenant's fair-share weight).
  double accessWeight = 1.0;
};

class PrestageCoordinator {
 public:
  /// `policy` may be null (no heat accounting).
  PrestageCoordinator(TransferScheduler& scheduler, datalake::ObjectStore& store,
                      PlacementPolicy* policy = nullptr,
                      PrestageOptions options = {})
      : scheduler_(scheduler), store_(store), policy_(policy),
        options_(options) {}

  /// Lookahead: stage `inputs` of the named consumer toward this
  /// cluster while its producer is still running.
  void prestage(const std::string& consumerStage,
                const std::vector<std::string>& inputs);

  /// Dispatch-time: make `inputs` local, then done(bytesMovedNow).
  void ensureLocal(const std::string& stage,
                   const std::vector<std::string>& inputs,
                   std::function<void(std::uint64_t)> done);

  [[nodiscard]] std::uint64_t prestagesRequested() const noexcept {
    return prestages_requested_;
  }
  [[nodiscard]] std::uint64_t dispatchFetches() const noexcept {
    return dispatch_fetches_;
  }
  [[nodiscard]] std::uint64_t localHits() const noexcept { return local_hits_; }

  [[nodiscard]] TransferScheduler& scheduler() noexcept { return scheduler_; }

 private:
  TransferScheduler& scheduler_;
  datalake::ObjectStore& store_;
  PlacementPolicy* policy_;
  PrestageOptions options_;
  std::uint64_t prestages_requested_ = 0;
  std::uint64_t dispatch_fetches_ = 0;
  std::uint64_t local_hits_ = 0;
};

}  // namespace lidc::replica
