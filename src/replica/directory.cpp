#include "replica/directory.hpp"

#include <algorithm>
#include <set>

#include "common/strings.hpp"

namespace lidc::replica {

std::map<std::string, ReplicaEntry> parseReplicaMap(std::string_view text) {
  std::map<std::string, ReplicaEntry> entries;
  for (auto line : strings::splitSkipEmpty(text, '\n')) {
    std::string uri;
    ReplicaEntry entry;
    bool haveState = false;
    for (auto field : strings::splitSkipEmpty(line, ';')) {
      if (strings::startsWith(field, "dataset=")) {
        uri = std::string(field.substr(8));
      } else if (strings::startsWith(field, "bytes=")) {
        if (auto v = strings::parseUint(field.substr(6))) entry.bytes = *v;
      } else if (strings::startsWith(field, "version=")) {
        if (auto v = strings::parseUint(field.substr(8))) entry.version = *v;
      } else if (strings::startsWith(field, "state=")) {
        if (auto s = parseReplicaState(field.substr(6))) {
          entry.state = *s;
          haveState = true;
        }
      }
    }
    if (!uri.empty() && haveState) entries.emplace(std::move(uri), entry);
  }
  return entries;
}

ReplicaDirectory::ReplicaDirectory(ndn::Forwarder& forwarder,
                                   ReplicaDirectoryOptions options)
    : forwarder_(forwarder), sim_(forwarder.simulator()), options_(options) {
  face_ = std::make_shared<ndn::AppFace>("app://replica-directory", sim_,
                                         /*nonceSeed=*/0x4e5d);
  face_id_ = forwarder_.addFace(face_);
}

void ReplicaDirectory::watchCluster(const std::string& cluster) {
  if (std::find(watched_.begin(), watched_.end(), cluster) == watched_.end()) {
    watched_.push_back(cluster);
    views_[cluster];
  }
}

std::vector<std::string> ReplicaDirectory::watchedClusters() const {
  return watched_;
}

void ReplicaDirectory::scrapeOnce(std::function<void()> done) {
  if (watched_.empty()) {
    if (done) done();
    return;
  }
  auto remaining = std::make_shared<std::size_t>(watched_.size());
  auto onClusterDone = [remaining, done = std::move(done)]() {
    if (--*remaining == 0 && done) done();
  };
  for (const auto& cluster : watched_) {
    ++counters_.scrapesStarted;
    scrapeCluster(cluster, onClusterDone);
  }
}

void ReplicaDirectory::scrapeCluster(const std::string& cluster,
                                     std::function<void()> done) {
  ndn::Name manifest = kReplicaPrefix;
  manifest.append(cluster);
  manifest.append("_map");
  ndn::Interest interest(manifest);
  interest.setMustBeFresh(true).setLifetime(options_.interestLifetime);
  face_->expressInterest(
      std::move(interest),
      [this, cluster, done](const ndn::Interest&, const ndn::Data& data) {
        if (!data.verify()) {
          ++counters_.signatureFailures;
          ++counters_.scrapesFailed;
          if (done) done();
          return;
        }
        std::uint64_t seq = 0;
        const std::string content = data.contentAsString();
        for (auto field : strings::splitSkipEmpty(content, ';')) {
          if (strings::startsWith(field, "seq=")) {
            if (auto parsed = strings::parseUint(field.substr(4))) seq = *parsed;
          }
        }
        if (seq == 0) {
          ++counters_.scrapesFailed;
          if (done) done();
          return;
        }
        ClusterMap& view = views_[cluster];
        if (view.everScraped && view.seq == seq) {
          ++counters_.manifestReuses;
          ++counters_.scrapesSucceeded;
          view.lastUpdated = sim_.now();
          if (done) done();
          return;
        }
        fetchSnapshot(cluster, seq, std::move(done));
      },
      [this, done](const ndn::Interest&, const ndn::Nack&) {
        ++counters_.scrapesFailed;
        if (done) done();
      },
      [this, done](const ndn::Interest&) {
        ++counters_.scrapesFailed;
        if (done) done();
      });
}

void ReplicaDirectory::fetchSnapshot(const std::string& cluster,
                                     std::uint64_t seq,
                                     std::function<void()> done) {
  ndn::Name name = kReplicaPrefix;
  name.append(cluster);
  name.appendNumber(seq);
  // Immutable versioned Data: no MustBeFresh, any Content Store on the
  // path may answer.
  ndn::Interest interest(name);
  interest.setLifetime(options_.interestLifetime);
  face_->expressInterest(
      std::move(interest),
      [this, cluster, seq, done](const ndn::Interest&, const ndn::Data& data) {
        if (!data.verify()) {
          ++counters_.signatureFailures;
          ++counters_.scrapesFailed;
          if (done) done();
          return;
        }
        ClusterMap& view = views_[cluster];
        view.seq = seq;
        view.entries = parseReplicaMap(data.contentAsString());
        view.lastUpdated = sim_.now();
        view.everScraped = true;
        ++counters_.snapshotsFetched;
        ++counters_.scrapesSucceeded;
        if (done) done();
      },
      [this, done](const ndn::Interest&, const ndn::Nack&) {
        ++counters_.scrapesFailed;
        if (done) done();
      },
      [this, done](const ndn::Interest&) {
        ++counters_.scrapesFailed;
        if (done) done();
      });
}

void ReplicaDirectory::start() {
  if (running_) return;
  running_ = true;
  scrapeTick();
}

void ReplicaDirectory::stop() {
  running_ = false;
  tick_.cancel();
}

void ReplicaDirectory::scrapeTick() {
  if (!running_) return;
  scrapeOnce();
  tick_ = sim_.scheduleAfter(options_.scrapeInterval, [this] { scrapeTick(); });
}

const ReplicaDirectory::ClusterMap* ReplicaDirectory::view(
    const std::string& cluster) const {
  auto it = views_.find(cluster);
  return it == views_.end() ? nullptr : &it->second;
}

bool ReplicaDirectory::isStale(const std::string& cluster) const {
  const ClusterMap* v = view(cluster);
  if (!v || !v->everScraped) return true;
  return sim_.now() - v->lastUpdated > options_.freshnessWindow;
}

std::vector<std::string> ReplicaDirectory::holders(
    const ndn::Name& dataset) const {
  std::vector<std::string> out;
  const std::string uri = dataset.toUri();
  for (const auto& cluster : watched_) {
    if (isStale(cluster)) continue;
    const ClusterMap* v = view(cluster);
    auto it = v->entries.find(uri);
    if (it != v->entries.end() && it->second.state == ReplicaState::kReady) {
      out.push_back(cluster);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::uint64_t> ReplicaDirectory::bytesOf(
    const ndn::Name& dataset) const {
  const std::string uri = dataset.toUri();
  for (const auto& cluster : watched_) {
    if (isStale(cluster)) continue;
    const ClusterMap* v = view(cluster);
    auto it = v->entries.find(uri);
    if (it != v->entries.end() && it->second.state == ReplicaState::kReady) {
      return it->second.bytes;
    }
  }
  return std::nullopt;
}

std::vector<std::string> ReplicaDirectory::knownDatasets() const {
  std::set<std::string> uris;
  for (const auto& cluster : watched_) {
    if (isStale(cluster)) continue;
    for (const auto& [uri, entry] : view(cluster)->entries) uris.insert(uri);
  }
  return {uris.begin(), uris.end()};
}

void ReplicaDirectory::attachTelemetry(telemetry::MetricsRegistry& registry) {
  registry.registerCollector([this, &registry] {
    registry.counter("lidc_replica_directory_scrapes_total")
        .set(static_cast<double>(counters_.scrapesStarted));
    registry.counter("lidc_replica_directory_scrape_failures_total")
        .set(static_cast<double>(counters_.scrapesFailed));
    registry.counter("lidc_replica_directory_manifest_reuses_total")
        .set(static_cast<double>(counters_.manifestReuses));
    registry.counter("lidc_replica_directory_snapshots_fetched_total")
        .set(static_cast<double>(counters_.snapshotsFetched));
    double stale = 0.0;
    for (const auto& cluster : watched_) {
      if (isStale(cluster)) stale += 1.0;
    }
    registry.gauge("lidc_replica_directory_stale_clusters").set(stale);
  });
}

}  // namespace lidc::replica
