#include "replica/repair.hpp"

namespace lidc::replica {

RepairLoop::RepairLoop(sim::Simulator& sim, ReplicaDirectory& directory,
                       PlacementPolicy& policy, RepairOptions options)
    : sim_(sim), directory_(directory), policy_(policy), options_(options) {}

void RepairLoop::addScheduler(const std::string& cluster,
                              TransferScheduler* scheduler) {
  schedulers_[cluster] = scheduler;
}

std::size_t RepairLoop::tick() {
  ++passes_;
  const std::string tag = "repair#" + std::to_string(passes_);
  if (options_.supersedePreviousPass && passes_ > 1) {
    const std::string previous = "repair#" + std::to_string(passes_ - 1);
    for (auto& [cluster, scheduler] : schedulers_) {
      scheduler->cancelTag(previous);
    }
  }
  const std::vector<PlacementAction> actions = policy_.plan(directory_);
  under_replicated_ = policy_.lastUnderReplicated();
  if (under_replicated_ > 0) {
    LIDC_FR_EVENT(recorder_, kWarn, "replica",
                  "repair pass " + std::to_string(passes_) + ": " +
                      std::to_string(under_replicated_) +
                      " under-replicated dataset(s), " +
                      std::to_string(actions.size()) + " transfer(s)");
  }
  std::size_t enqueued = 0;
  for (const PlacementAction& action : actions) {
    auto it = schedulers_.find(action.destination);
    if (it == schedulers_.end()) continue;
    ++enqueued;
    ++repairs_enqueued_;
    TransferRequest request;
    request.priority = options_.priority + action.priority;
    request.tag = tag;
    it->second->enqueue(
        action.dataset, std::move(request),
        [this](Status status, std::uint64_t) {
          if (status.ok()) {
            ++repairs_completed_;
          } else if (status.code() != StatusCode::kAborted) {
            // Superseded repairs are not failures; the newer pass owns
            // the dataset now.
            ++repairs_failed_;
          }
        });
  }
  return enqueued;
}

void RepairLoop::start() {
  if (running_) return;
  running_ = true;
  tick_ = sim_.scheduleAfter(options_.interval, [this] {
    if (!running_) return;
    tick();
    running_ = false;
    start();
  });
}

void RepairLoop::stop() {
  running_ = false;
  tick_.cancel();
}

void RepairLoop::attachTelemetry(telemetry::MetricsRegistry& registry) {
  registry.registerCollector([this, &registry] {
    registry.counter("lidc_replica_repaired_total")
        .set(static_cast<double>(repairs_completed_));
    registry.counter("lidc_replica_repairs_enqueued_total")
        .set(static_cast<double>(repairs_enqueued_));
    registry.counter("lidc_replica_repair_failures_total")
        .set(static_cast<double>(repairs_failed_));
    registry.gauge("lidc_replica_under_replicated")
        .set(static_cast<double>(under_replicated_));
  });
}

telemetry::AlertEngine::ValueSource repairValueSource(const RepairLoop& loop) {
  return [&loop] {
    return std::map<std::string, double>{
        {"replica/under_replicated",
         static_cast<double>(loop.underReplicated())},
        {"replica/repairs_failed", static_cast<double>(loop.repairsFailed())},
    };
  };
}

}  // namespace lidc::replica
