// Replica catalog — the authoritative per-cluster map of which named
// datasets this cluster's lake holds, in which state, published on the
// named plane exactly like the telemetry monitoring plane:
//
//   /ndn/k8s/replica/<cluster>/_map    -> "seq=N;generated=<ns>"
//   /ndn/k8s/replica/<cluster>/<seq>   -> sorted "dataset=...;bytes=...;
//                                         version=...;state=..." lines
//
// The `_map` manifest is short-freshness Data (MustBeFresh Interests
// reach a live catalog once the cached copy ages out); the per-seq
// snapshot is immutable long-freshness Data served from Content Stores
// along the path, so any number of directories can resolve "who has
// /ndn/k8s/data/X" with one cached Interest. Snapshots are exported on
// demand when the map's revision moved — idle simulations still drain.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "datalake/object_store.hpp"
#include "ndn/app_face.hpp"
#include "ndn/forwarder.hpp"

namespace lidc::replica {

/// Root of the replica-management namespace.
inline const ndn::Name kReplicaPrefix{"/ndn/k8s/replica"};

/// Lifecycle of one (dataset, cluster) replica.
enum class ReplicaState {
  kStaging,  // transfer in flight; bytes not yet servable
  kReady,    // servable from this lake
  kStale,    // held bytes are suspect (e.g. gray cluster); don't count
  kLost,     // cluster/lake died with the bytes
};

[[nodiscard]] std::string_view replicaStateName(ReplicaState state) noexcept;
[[nodiscard]] std::optional<ReplicaState> parseReplicaState(
    std::string_view text) noexcept;

struct ReplicaEntry {
  std::uint64_t bytes = 0;
  std::uint64_t version = 0;  // bumped on every mutation of this entry
  ReplicaState state = ReplicaState::kStaging;
};

struct ReplicaCatalogOptions {
  /// Freshness on the `_map` manifest (directories send MustBeFresh).
  sim::Duration manifestFreshness = sim::Duration::millis(500);
  /// Freshness on immutable per-seq snapshots (CS-cacheable).
  sim::Duration snapshotFreshness = sim::Duration::hours(1);
  /// How many historical snapshots stay answerable.
  std::size_t retainedSnapshots = 8;
};

class ReplicaCatalog {
 public:
  /// Attaches to the cluster's gateway forwarder, registering
  /// /ndn/k8s/replica/<cluster> toward a new AppFace.
  ReplicaCatalog(ndn::Forwarder& forwarder, std::string clusterName,
                 ReplicaCatalogOptions options = {});

  /// Upserts a replica record (bumps the entry version on change).
  void record(const ndn::Name& dataset, std::uint64_t bytes, ReplicaState state);
  void markStaging(const ndn::Name& dataset, std::uint64_t expectedBytes = 0);
  void markReady(const ndn::Name& dataset, std::uint64_t bytes);
  void markLost(const ndn::Name& dataset);
  void erase(const ndn::Name& dataset);

  /// Records every object the store currently holds under `prefix` as a
  /// ready replica — how a seeded lake announces its initial contents.
  void syncFromStore(const datalake::ObjectStore& store, const ndn::Name& prefix);

  [[nodiscard]] const ReplicaEntry* entry(const ndn::Name& dataset) const;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  /// Deterministic snapshot text (sorted by dataset URI).
  [[nodiscard]] std::string exportMap() const;
  /// Bumped on every mutation; snapshot seq advances only when this moved.
  [[nodiscard]] std::uint64_t revision() const noexcept { return revision_; }

  [[nodiscard]] const std::string& clusterName() const noexcept {
    return cluster_name_;
  }
  [[nodiscard]] std::uint64_t interestsServed() const noexcept { return served_; }
  [[nodiscard]] std::uint64_t interestsRejected() const noexcept {
    return rejected_;
  }
  [[nodiscard]] std::uint64_t snapshotsGenerated() const noexcept {
    return snapshots_generated_;
  }

 private:
  void handleInterest(const ndn::Interest& interest);
  void replyManifest(const ndn::Interest& interest);
  void replySnapshot(const ndn::Interest& interest, std::uint64_t seq);
  /// Exports a new snapshot if the revision moved since the last one.
  void refresh();

  ndn::Forwarder& forwarder_;
  std::string cluster_name_;
  ReplicaCatalogOptions options_;
  std::shared_ptr<ndn::AppFace> face_;
  ndn::FaceId face_id_ = ndn::kInvalidFaceId;
  std::map<std::string, ReplicaEntry> entries_;  // dataset URI -> entry
  std::uint64_t revision_ = 0;
  std::uint64_t seq_ = 0;  // 0 = nothing exported yet
  std::uint64_t exported_revision_ = 0;
  sim::Time generated_at_;
  std::map<std::uint64_t, std::string> snapshots_;
  std::uint64_t snapshots_generated_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace lidc::replica
