#include "replica/catalog.hpp"

#include "common/strings.hpp"

namespace lidc::replica {

namespace {
constexpr const char* kMapComponent = "_map";
}

std::string_view replicaStateName(ReplicaState state) noexcept {
  switch (state) {
    case ReplicaState::kStaging: return "staging";
    case ReplicaState::kReady: return "ready";
    case ReplicaState::kStale: return "stale";
    case ReplicaState::kLost: return "lost";
  }
  return "unknown";
}

std::optional<ReplicaState> parseReplicaState(std::string_view text) noexcept {
  if (text == "staging") return ReplicaState::kStaging;
  if (text == "ready") return ReplicaState::kReady;
  if (text == "stale") return ReplicaState::kStale;
  if (text == "lost") return ReplicaState::kLost;
  return std::nullopt;
}

ReplicaCatalog::ReplicaCatalog(ndn::Forwarder& forwarder, std::string clusterName,
                               ReplicaCatalogOptions options)
    : forwarder_(forwarder),
      cluster_name_(std::move(clusterName)),
      options_(options) {
  ndn::Name prefix = kReplicaPrefix;
  prefix.append(cluster_name_);
  face_ = std::make_shared<ndn::AppFace>("app://replica-catalog/" + cluster_name_,
                                         forwarder_.simulator());
  face_->setInterestHandler([this](const ndn::Interest& i) { handleInterest(i); });
  face_id_ = forwarder_.addFace(face_);
  forwarder_.registerPrefix(prefix, face_id_, /*cost=*/0);
}

void ReplicaCatalog::record(const ndn::Name& dataset, std::uint64_t bytes,
                            ReplicaState state) {
  ReplicaEntry& entry = entries_[dataset.toUri()];
  if (entry.version != 0 && entry.bytes == bytes && entry.state == state) return;
  entry.bytes = bytes;
  entry.state = state;
  ++entry.version;
  ++revision_;
}

void ReplicaCatalog::markStaging(const ndn::Name& dataset,
                                 std::uint64_t expectedBytes) {
  record(dataset, expectedBytes, ReplicaState::kStaging);
}

void ReplicaCatalog::markReady(const ndn::Name& dataset, std::uint64_t bytes) {
  record(dataset, bytes, ReplicaState::kReady);
}

void ReplicaCatalog::markLost(const ndn::Name& dataset) {
  auto it = entries_.find(dataset.toUri());
  if (it == entries_.end()) return;
  record(dataset, it->second.bytes, ReplicaState::kLost);
}

void ReplicaCatalog::erase(const ndn::Name& dataset) {
  if (entries_.erase(dataset.toUri()) > 0) ++revision_;
}

void ReplicaCatalog::syncFromStore(const datalake::ObjectStore& store,
                                   const ndn::Name& prefix) {
  for (const ndn::Name& name : store.list(prefix)) {
    const auto size = store.sizeOf(name);
    if (size) markReady(name, *size);
  }
}

const ReplicaEntry* ReplicaCatalog::entry(const ndn::Name& dataset) const {
  auto it = entries_.find(dataset.toUri());
  return it == entries_.end() ? nullptr : &it->second;
}

std::string ReplicaCatalog::exportMap() const {
  // entries_ is keyed by dataset URI, so iteration is already sorted —
  // the snapshot text is deterministic for a given map state.
  std::string out;
  for (const auto& [uri, entry] : entries_) {
    out += "dataset=" + uri + ";bytes=" + std::to_string(entry.bytes) +
           ";version=" + std::to_string(entry.version) +
           ";state=" + std::string(replicaStateName(entry.state)) + "\n";
  }
  return out;
}

void ReplicaCatalog::handleInterest(const ndn::Interest& interest) {
  // /ndn/k8s/replica/<cluster>/<_map | seq>
  const ndn::Name& name = interest.name();
  if (name.size() != kReplicaPrefix.size() + 2) {
    ++rejected_;
    face_->putNack(interest, ndn::NackReason::kNoRoute);
    return;
  }
  const std::string selector = name[name.size() - 1].toString();
  if (selector == kMapComponent) {
    replyManifest(interest);
    return;
  }
  const auto seq = strings::parseUint(selector);
  if (!seq) {
    ++rejected_;
    face_->putNack(interest, ndn::NackReason::kNoRoute);
    return;
  }
  replySnapshot(interest, *seq);
}

void ReplicaCatalog::refresh() {
  // A new sequence only when the map actually changed, so directories
  // keep reusing the manifest while the lake is quiet.
  if (seq_ != 0 && revision_ == exported_revision_) return;
  exported_revision_ = revision_;
  ++seq_;
  generated_at_ = forwarder_.simulator().now();
  snapshots_[seq_] = exportMap();
  ++snapshots_generated_;
  while (snapshots_.size() > options_.retainedSnapshots) {
    snapshots_.erase(snapshots_.begin());
  }
}

void ReplicaCatalog::replyManifest(const ndn::Interest& interest) {
  refresh();
  ++served_;
  ndn::Data manifest(interest.name());
  manifest
      .setContent("seq=" + std::to_string(seq_) + ";generated=" +
                  std::to_string(generated_at_.toNanos()))
      .setFreshnessPeriod(options_.manifestFreshness)
      .sign();
  face_->putData(std::move(manifest));
}

void ReplicaCatalog::replySnapshot(const ndn::Interest& interest,
                                   std::uint64_t seq) {
  auto it = snapshots_.find(seq);
  if (it == snapshots_.end()) {
    ++rejected_;
    face_->putNack(interest, ndn::NackReason::kNoRoute);
    return;
  }
  ++served_;
  ndn::Data snapshot(interest.name());
  snapshot.setContent(it->second)
      .setFreshnessPeriod(options_.snapshotFreshness)
      .sign();
  face_->putData(std::move(snapshot));
}

}  // namespace lidc::replica
