#include "replica/prestage.hpp"

namespace lidc::replica {

void PrestageCoordinator::prestage(const std::string& consumerStage,
                                   const std::vector<std::string>& inputs) {
  for (const std::string& input : inputs) {
    const ndn::Name name(input);
    if (policy_) policy_->recordAccess(name, options_.accessWeight);
    if (store_.contains(name)) {
      ++local_hits_;
      continue;
    }
    ++prestages_requested_;
    TransferRequest request;
    request.priority = options_.prestagePriority;
    request.tag = "prestage:" + consumerStage;
    scheduler_.enqueue(name, std::move(request));
  }
}

void PrestageCoordinator::ensureLocal(const std::string& stage,
                                      const std::vector<std::string>& inputs,
                                      std::function<void(std::uint64_t)> done) {
  // Collect the misses first: the shared countdown must be fully sized
  // before any transfer can settle.
  std::vector<ndn::Name> missing;
  for (const std::string& input : inputs) {
    const ndn::Name name(input);
    if (policy_) policy_->recordAccess(name, options_.accessWeight);
    if (store_.contains(name)) {
      ++local_hits_;
    } else {
      missing.push_back(name);
    }
  }
  if (missing.empty()) {
    if (done) done(0);
    return;
  }
  struct Progress {
    std::size_t remaining;
    std::uint64_t bytesMoved = 0;
  };
  auto progress = std::make_shared<Progress>();
  progress->remaining = missing.size();
  for (const ndn::Name& name : missing) {
    ++dispatch_fetches_;
    TransferRequest request;
    request.priority = options_.dispatchPriority;
    request.tag = "dispatch:" + stage;
    scheduler_.enqueue(
        name, std::move(request),
        [progress, done](Status status, std::uint64_t bytes) {
          // A failed input fetch is not fatal here: the stage's own
          // gateway-side dataset validation reports it with the full
          // retry machinery behind it.
          if (status.ok()) progress->bytesMoved += bytes;
          if (--progress->remaining == 0 && done) done(progress->bytesMoved);
        });
  }
}

}  // namespace lidc::replica
