// Replica directory — the consumer side of the replica plane. An ops
// host (or gateway) scrapes every watched cluster's catalog through
// ordinary Interests (`_map` manifest, then the immutable per-seq
// snapshot, with manifest reuse when nothing changed) and answers
// "which clusters hold /ndn/k8s/data/X?" from the merged view. A
// blacked-out cluster ages into stale after its freshness window, so
// its replicas stop counting toward replication factors instead of
// wedging the directory.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ndn/app_face.hpp"
#include "ndn/forwarder.hpp"
#include "replica/catalog.hpp"
#include "telemetry/metrics.hpp"

namespace lidc::replica {

struct ReplicaDirectoryOptions {
  /// Lifetime of scrape Interests.
  sim::Duration interestLifetime = sim::Duration::millis(1000);
  /// A cluster whose last successful scrape is older than this is stale.
  sim::Duration freshnessWindow = sim::Duration::seconds(5);
  /// Period of start()ed background scraping.
  sim::Duration scrapeInterval = sim::Duration::seconds(2);
};

struct DirectoryCounters {
  std::uint64_t scrapesStarted = 0;
  std::uint64_t scrapesSucceeded = 0;
  std::uint64_t scrapesFailed = 0;
  std::uint64_t manifestReuses = 0;
  std::uint64_t snapshotsFetched = 0;
  std::uint64_t signatureFailures = 0;
};

class ReplicaDirectory {
 public:
  /// One cluster's latest scraped replica map.
  struct ClusterMap {
    std::uint64_t seq = 0;
    sim::Time lastUpdated;
    bool everScraped = false;
    std::map<std::string, ReplicaEntry> entries;  // dataset URI -> entry
  };

  explicit ReplicaDirectory(ndn::Forwarder& forwarder,
                            ReplicaDirectoryOptions options = {});

  void watchCluster(const std::string& cluster);
  [[nodiscard]] std::vector<std::string> watchedClusters() const;

  /// Scrapes every watched cluster once; `done` fires after each has
  /// succeeded or failed.
  void scrapeOnce(std::function<void()> done = nullptr);

  /// Periodic scraping on the sim clock; stop() is required before the
  /// sim can drain.
  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  [[nodiscard]] const ClusterMap* view(const std::string& cluster) const;
  [[nodiscard]] bool isStale(const std::string& cluster) const;

  /// Clusters currently holding a ready replica of the dataset, from
  /// non-stale views only, sorted by cluster name (deterministic).
  [[nodiscard]] std::vector<std::string> holders(const ndn::Name& dataset) const;
  [[nodiscard]] std::size_t replicationFactor(const ndn::Name& dataset) const {
    return holders(dataset).size();
  }
  /// Size of the dataset per any ready replica (nullopt when unknown).
  [[nodiscard]] std::optional<std::uint64_t> bytesOf(
      const ndn::Name& dataset) const;

  /// Union of all dataset URIs across non-stale views, sorted.
  [[nodiscard]] std::vector<std::string> knownDatasets() const;

  [[nodiscard]] const DirectoryCounters& counters() const noexcept {
    return counters_;
  }

  /// Mirrors lidc_replica_directory_* counters into `registry`.
  void attachTelemetry(telemetry::MetricsRegistry& registry);

 private:
  void scrapeCluster(const std::string& cluster, std::function<void()> done);
  void fetchSnapshot(const std::string& cluster, std::uint64_t seq,
                     std::function<void()> done);
  void scrapeTick();

  ndn::Forwarder& forwarder_;
  sim::Simulator& sim_;
  ReplicaDirectoryOptions options_;
  std::shared_ptr<ndn::AppFace> face_;
  ndn::FaceId face_id_ = ndn::kInvalidFaceId;
  std::vector<std::string> watched_;
  std::map<std::string, ClusterMap> views_;
  DirectoryCounters counters_;
  bool running_ = false;
  sim::EventHandle tick_;
};

/// Parses one catalog snapshot ("dataset=...;bytes=...;version=...;
/// state=..." lines) into a dataset-URI -> entry map. Malformed lines
/// are skipped.
[[nodiscard]] std::map<std::string, ReplicaEntry> parseReplicaMap(
    std::string_view text);

}  // namespace lidc::replica
