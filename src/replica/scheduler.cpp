#include "replica/scheduler.hpp"

#include <algorithm>
#include <cstdio>

#include "common/logging.hpp"

namespace lidc::replica {

TransferScheduler::TransferScheduler(ndn::Forwarder& forwarder,
                                     datalake::ObjectStore& store,
                                     std::string clusterName,
                                     TransferOptions options,
                                     ReplicaCatalog* catalog)
    : forwarder_(forwarder),
      store_(store),
      cluster_name_(std::move(clusterName)),
      options_(options),
      catalog_(catalog) {
  face_ = std::make_shared<ndn::AppFace>(
      "app://replica-stager/" + cluster_name_, forwarder_.simulator(),
      std::hash<std::string>{}(cluster_name_) | 1);
  forwarder_.addFace(face_);
  retriever_ = std::make_unique<datalake::Retriever>(*face_, options_.retrieve);
}

void TransferScheduler::trace(const std::string& line) {
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "t=%.6fs ",
                forwarder_.simulator().now().toSeconds());
  log_ += stamp;
  log_ += line;
  log_ += '\n';
}

void TransferScheduler::enqueue(const ndn::Name& dataset, Request request,
                                DoneCallback done) {
  if (store_.contains(dataset)) {
    ++local_hits_;
    trace("hit " + dataset.toUri());
    if (done) done(Status::Ok(), 0);
    return;
  }
  // Join a queued or in-flight transfer of the same dataset rather
  // than fetching twice; the join lends it the higher priority.
  for (auto& entry : queue_) {
    if (entry->dataset == dataset && !entry->cancelled) {
      ++joined_;
      entry->priority = std::max(entry->priority, request.priority);
      if (done) entry->callbacks.push_back(std::move(done));
      trace("join " + dataset.toUri() +
            " prio=" + std::to_string(entry->priority));
      return;
    }
  }
  for (auto& entry : inflight_) {
    if (entry->dataset == dataset && !entry->cancelled) {
      ++joined_;
      if (done) entry->callbacks.push_back(std::move(done));
      trace("join " + dataset.toUri() + " (in flight)");
      return;
    }
  }
  auto entry = std::make_shared<Entry>();
  entry->dataset = dataset;
  entry->priority = request.priority;
  entry->tag = std::move(request.tag);
  entry->tenant = request.tenant.empty() ? options_.tenant : request.tenant;
  entry->order = next_order_++;
  if (done) entry->callbacks.push_back(std::move(done));
  queue_.push_back(std::move(entry));
  trace("enqueue " + dataset.toUri() +
        " prio=" + std::to_string(request.priority) +
        (queue_.back()->tag.empty() ? "" : " tag=" + queue_.back()->tag));
  if (catalog_) catalog_->markStaging(dataset);
  pump();
}

bool TransferScheduler::cancel(const ndn::Name& dataset) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if ((*it)->dataset == dataset) {
      std::shared_ptr<Entry> entry = *it;
      queue_.erase(it);
      ++cancelled_;
      trace("cancel " + dataset.toUri());
      if (catalog_) catalog_->erase(dataset);
      for (auto& cb : entry->callbacks) {
        cb(Status::Aborted("transfer cancelled"), 0);
      }
      return true;
    }
  }
  return false;
}

std::size_t TransferScheduler::cancelTag(const std::string& tag) {
  std::size_t swept = 0;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if ((*it)->tag == tag) {
      std::shared_ptr<Entry> entry = *it;
      it = queue_.erase(it);
      ++cancelled_;
      ++swept;
      trace("cancel " + entry->dataset.toUri() + " tag=" + tag);
      if (catalog_) catalog_->erase(entry->dataset);
      for (auto& cb : entry->callbacks) {
        cb(Status::Aborted("plan superseded"), 0);
      }
    } else {
      ++it;
    }
  }
  for (auto& entry : inflight_) {
    if (entry->tag == tag && !entry->cancelled) {
      entry->cancelled = true;
      ++cancelled_;
      ++swept;
      trace("cancel " + entry->dataset.toUri() + " tag=" + tag + " (in flight)");
    }
  }
  return swept;
}

void TransferScheduler::pump() {
  while (active_ < options_.maxConcurrent && !queue_.empty()) {
    const sim::Time now = forwarder_.simulator().now();
    if (options_.bandwidthBytesPerSec > 0 && now < gate_) {
      // Budget exhausted: re-pump when the gate opens.
      if (!pump_armed_) {
        pump_armed_ = true;
        forwarder_.simulator().scheduleAfter(gate_ - now, [this] {
          pump_armed_ = false;
          pump();
        });
      }
      return;
    }
    // Highest priority first; FIFO (enqueue order) within a level.
    auto best = queue_.begin();
    for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
      if ((*it)->priority > (*best)->priority ||
          ((*it)->priority == (*best)->priority &&
           (*it)->order < (*best)->order)) {
        best = it;
      }
    }
    std::shared_ptr<Entry> entry = *best;
    queue_.erase(best);
    startTransfer(std::move(entry));
  }
}

void TransferScheduler::startTransfer(std::shared_ptr<Entry> entry) {
  ++active_;
  inflight_.push_back(entry);
  trace("start " + entry->dataset.toUri());
  telemetry::FlowLabel label;
  label.tenant = entry->tenant;
  label.tag = entry->tag;
  retriever_->fetch(
      entry->dataset,
      [this, entry](Result<std::vector<std::uint8_t>> bytes) {
        --active_;
        inflight_.erase(
            std::remove(inflight_.begin(), inflight_.end(), entry),
            inflight_.end());
        if (entry->cancelled) {
          // Superseded mid-flight: the bytes arrived but the plan no
          // longer wants them here.
          if (catalog_) catalog_->erase(entry->dataset);
          settle(entry, Status::Aborted("plan superseded"), 0);
          return;
        }
        if (!bytes.ok()) {
          ++failures_;
          trace("fail " + entry->dataset.toUri() + " (" +
                bytes.status().toString() + ")");
          LIDC_FR_EVENT(recorder_, kWarn, "replica",
                        "stage failed " + entry->dataset.toUri() + " -> " +
                            cluster_name_ + ": " + bytes.status().toString());
          if (catalog_) catalog_->erase(entry->dataset);
          settle(entry, bytes.status(), 0);
          return;
        }
        const std::uint64_t size = bytes->size();
        Status stored = entry->tenant.empty()
                            ? store_.put(entry->dataset, std::move(*bytes))
                            : store_.put(entry->dataset, std::move(*bytes),
                                         entry->tenant);
        if (!stored.ok()) {
          if (stored.code() == StatusCode::kResourceExhausted) {
            ++capacity_rejects_;
            trace("reject-capacity " + entry->dataset.toUri());
            LIDC_FR_EVENT(recorder_, kWarn, "replica",
                          "capacity reject " + entry->dataset.toUri() +
                              " -> " + cluster_name_);
          } else {
            ++failures_;
            trace("fail " + entry->dataset.toUri() + " (" + stored.toString() +
                  ")");
          }
          if (catalog_) catalog_->erase(entry->dataset);
          settle(entry, stored, 0);
          return;
        }
        ++staged_;
        bytes_moved_ += size;
        if (flow_ != nullptr && size > 0) {
          telemetry::FlowKey key;
          key.group = "staging";
          key.tenant = telemetry::sanitizeFlowComponent(entry->tenant);
          key.tag = telemetry::sanitizeFlowComponent(entry->tag);
          flow_->recordTransfer(key, size);
        }
        if (options_.bandwidthBytesPerSec > 0 && size > 0) {
          const sim::Time now = forwarder_.simulator().now();
          const auto holdNs = static_cast<std::uint64_t>(
              1e9 * static_cast<double>(size) /
              static_cast<double>(options_.bandwidthBytesPerSec));
          gate_ = std::max(gate_, now) + sim::Duration::nanos(holdNs);
        }
        trace("done " + entry->dataset.toUri() + " bytes=" +
              std::to_string(size));
        LIDC_LOG(kInfo, "replica")
            << entry->dataset.toUri() << " -> " << cluster_name_ << " ("
            << size << " bytes)";
        if (catalog_) catalog_->markReady(entry->dataset, size);
        settle(entry, Status::Ok(), size);
      },
      telemetry::TraceContext{}, std::move(label));
}

void TransferScheduler::settle(const std::shared_ptr<Entry>& entry,
                               Status status, std::uint64_t bytes) {
  for (auto& cb : entry->callbacks) cb(status, bytes);
  pump();
}

void TransferScheduler::attachTelemetry(telemetry::MetricsRegistry& registry) {
  const telemetry::Labels labels{{"cluster", cluster_name_}};
  registry.registerCollector([this, &registry, labels] {
    registry.counter("lidc_replica_staged_total", labels)
        .set(static_cast<double>(staged_));
    registry.counter("lidc_replica_bytes_moved_total", labels)
        .set(static_cast<double>(bytes_moved_));
    registry.counter("lidc_replica_capacity_rejected_total", labels)
        .set(static_cast<double>(capacity_rejects_));
    registry.counter("lidc_replica_stage_failures_total", labels)
        .set(static_cast<double>(failures_));
  });
}

}  // namespace lidc::replica
