#include "replica/policy.hpp"

#include <algorithm>

namespace lidc::replica {

void PlacementPolicy::recordAccess(const ndn::Name& dataset, double weight) {
  heat_[dataset.toUri()] += weight;
}

double PlacementPolicy::heat(const ndn::Name& dataset) const {
  auto it = heat_.find(dataset.toUri());
  return it == heat_.end() ? 0.0 : it->second;
}

void PlacementPolicy::observeHealth(const std::string& cluster, double score) {
  health_[cluster] = score;
}

void PlacementPolicy::observeFreeBytes(const std::string& cluster,
                                       std::uint64_t freeBytes) {
  free_bytes_[cluster] = freeBytes;
}

std::size_t PlacementPolicy::targetReplicas(const ndn::Name& dataset) const {
  return heat(dataset) >= options_.hotAccessThreshold ? options_.hotReplicas
                                                      : options_.baseReplicas;
}

std::vector<PlacementAction> PlacementPolicy::plan(
    const ReplicaDirectory& directory) {
  ++plans_;
  plan_log_ += "plan#" + std::to_string(plans_) + "\n";
  std::vector<PlacementAction> actions;
  last_under_replicated_ = 0;

  // Candidate clusters: watched, non-stale, above the health bar.
  // Sorted best-first by (health desc, free bytes desc, name asc) so
  // destination choice is deterministic.
  struct Candidate {
    std::string name;
    double health;
    std::uint64_t freeBytes;
  };
  std::vector<Candidate> candidates;
  std::vector<std::string> watched = directory.watchedClusters();
  std::sort(watched.begin(), watched.end());
  for (const auto& cluster : watched) {
    if (directory.isStale(cluster)) continue;
    auto healthIt = health_.find(cluster);
    const double health = healthIt == health_.end() ? 1.0 : healthIt->second;
    if (health < options_.minHealth) continue;
    auto freeIt = free_bytes_.find(cluster);
    const std::uint64_t freeBytes =
        freeIt == free_bytes_.end() ? UINT64_MAX : freeIt->second;
    candidates.push_back({cluster, health, freeBytes});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.health != b.health) return a.health > b.health;
              if (a.freeBytes != b.freeBytes) return a.freeBytes > b.freeBytes;
              return a.name < b.name;
            });

  for (const std::string& uri : directory.knownDatasets()) {
    const ndn::Name dataset(uri);
    const std::vector<std::string> have = directory.holders(dataset);
    const std::size_t want = targetReplicas(dataset);
    if (have.size() >= want) continue;
    ++last_under_replicated_;
    const auto size = directory.bytesOf(dataset);
    std::size_t missing = want - have.size();
    // Hot datasets repair first (higher priority in the transfer queue).
    const int priority = static_cast<int>(want);
    std::string chosen;
    for (const Candidate& candidate : candidates) {
      if (missing == 0) break;
      if (std::find(have.begin(), have.end(), candidate.name) != have.end()) {
        continue;
      }
      if (size && candidate.freeBytes != UINT64_MAX &&
          candidate.freeBytes < *size + options_.freeBytesHeadroom) {
        continue;
      }
      actions.push_back({dataset, candidate.name, priority});
      chosen += (chosen.empty() ? "" : ",") + candidate.name;
      --missing;
    }
    plan_log_ += "  " + uri + " have=" + std::to_string(have.size()) +
                 " want=" + std::to_string(want) + " dest=" +
                 (chosen.empty() ? "<none>" : chosen) + "\n";
  }
  return actions;
}

}  // namespace lidc::replica
