// Transfer scheduler — the staging engine of the replica plane. One
// instance per destination cluster pulls named objects over the
// overlay with the CS-friendly segment retriever and publishes them
// into the local lake:
//
//   * priority-ordered: repairs outrank pre-stages; FIFO within a
//     priority level (deterministic).
//   * deduplicating: a second enqueue of an in-flight or queued
//     dataset joins the existing transfer instead of fetching twice.
//   * bounded: at most maxConcurrent fetches in flight, and an
//     optional bandwidth budget serializes starts so staging cannot
//     starve the overlay (a transfer of B bytes holds the budget for
//     B / bandwidthBytesPerSec after it lands).
//   * cancellable: a superseded plan cancels its tag; queued entries
//     abort immediately, in-flight ones discard their bytes on
//     completion.
//   * space-aware: puts that the lake rejects for capacity (or quota)
//     surface ResourceExhausted to the requester and count as rejects
//     instead of silently growing the lake.
//
// Every transition appends a "t=..s <event>" line to eventLog(), which
// is byte-identical across same-seed runs (the determinism guard pins
// this).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "datalake/retriever.hpp"
#include "ndn/app_face.hpp"
#include "ndn/forwarder.hpp"
#include "replica/catalog.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/flow.hpp"
#include "telemetry/metrics.hpp"

namespace lidc::replica {

struct TransferOptions {
  /// Concurrent fetches in flight.
  std::size_t maxConcurrent = 2;
  /// Staging bandwidth budget in bytes/s; 0 = unlimited.
  std::uint64_t bandwidthBytesPerSec = 0;
  /// Tenant charged for staged bytes when a request names none.
  std::string tenant;
  datalake::RetrieveOptions retrieve;
};

/// Per-enqueue parameters.
struct TransferRequest {
  int priority = 0;    // higher dequeues first
  std::string tag;     // plan label; cancelTag() sweeps it
  std::string tenant;  // overrides TransferOptions::tenant when set
};

class TransferScheduler {
 public:
  /// Fires with the terminal status and the bytes this transfer moved
  /// over the overlay (0 for local hits and joins that rode an
  /// existing transfer... joins report the shared transfer's bytes).
  using DoneCallback = std::function<void(Status, std::uint64_t bytes)>;
  using Request = TransferRequest;

  /// Attaches to the destination cluster's forwarder; fetches travel
  /// through the overlay like any client retrieval. `catalog` (may be
  /// null) is kept in sync: staging on start, ready on landing.
  TransferScheduler(ndn::Forwarder& forwarder, datalake::ObjectStore& store,
                    std::string clusterName, TransferOptions options = {},
                    ReplicaCatalog* catalog = nullptr);

  void enqueue(const ndn::Name& dataset, Request request = {},
               DoneCallback done = nullptr);

  /// Cancels a queued transfer (false when the dataset is not queued —
  /// in-flight transfers finish but discard their bytes).
  bool cancel(const ndn::Name& dataset);
  /// Cancels every queued/in-flight transfer carrying `tag`; returns
  /// how many were swept.
  std::size_t cancelTag(const std::string& tag);

  [[nodiscard]] const std::string& clusterName() const noexcept {
    return cluster_name_;
  }
  [[nodiscard]] std::size_t queuedCount() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t activeCount() const noexcept { return active_; }
  [[nodiscard]] std::uint64_t staged() const noexcept { return staged_; }
  [[nodiscard]] std::uint64_t bytesMoved() const noexcept { return bytes_moved_; }
  [[nodiscard]] std::uint64_t localHits() const noexcept { return local_hits_; }
  [[nodiscard]] std::uint64_t joined() const noexcept { return joined_; }
  [[nodiscard]] std::uint64_t cancelled() const noexcept { return cancelled_; }
  [[nodiscard]] std::uint64_t capacityRejects() const noexcept {
    return capacity_rejects_;
  }
  [[nodiscard]] std::uint64_t failures() const noexcept { return failures_; }

  /// Deterministic event trace ("t=..s enqueue|join|hit|start|done|
  /// fail|cancel|reject-capacity ..." lines).
  [[nodiscard]] const std::string& eventLog() const noexcept { return log_; }

  /// Mirrors lidc_replica_staged_total / lidc_replica_bytes_moved_total
  /// / lidc_replica_capacity_rejected_total (labeled by cluster) into
  /// `registry`.
  void attachTelemetry(telemetry::MetricsRegistry& registry);
  void setFlightRecorder(telemetry::FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }
  /// Routes staged-byte accounting through the cluster's flow plane:
  /// every landed transfer is recorded once under (group="staging",
  /// tenant, tag), so bytesMoved() and the flow ledger agree by
  /// construction (the parity test pins this). Fetch Interests also
  /// carry the tenant/tag flow label for on-path link attribution.
  void setFlowAccountant(telemetry::FlowAccountant* flow) noexcept {
    flow_ = flow;
  }

 private:
  struct Entry {
    ndn::Name dataset;
    int priority = 0;
    std::string tag;
    std::string tenant;
    std::uint64_t order = 0;  // enqueue sequence; FIFO within priority
    bool cancelled = false;
    std::vector<DoneCallback> callbacks;
  };

  void pump();
  void startTransfer(std::shared_ptr<Entry> entry);
  void settle(const std::shared_ptr<Entry>& entry, Status status,
              std::uint64_t bytes);
  void trace(const std::string& line);

  ndn::Forwarder& forwarder_;
  datalake::ObjectStore& store_;
  std::string cluster_name_;
  TransferOptions options_;
  ReplicaCatalog* catalog_;
  std::shared_ptr<ndn::AppFace> face_;
  std::unique_ptr<datalake::Retriever> retriever_;
  telemetry::FlightRecorder* recorder_ = nullptr;
  telemetry::FlowAccountant* flow_ = nullptr;

  std::deque<std::shared_ptr<Entry>> queue_;
  std::vector<std::shared_ptr<Entry>> inflight_;
  std::size_t active_ = 0;
  std::uint64_t next_order_ = 0;
  /// Bandwidth gate: no new transfer starts before this instant.
  sim::Time gate_;
  bool pump_armed_ = false;

  std::uint64_t staged_ = 0;
  std::uint64_t bytes_moved_ = 0;
  std::uint64_t local_hits_ = 0;
  std::uint64_t joined_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t capacity_rejects_ = 0;
  std::uint64_t failures_ = 0;
  std::string log_;
};

}  // namespace lidc::replica
