// Placement policy — decides how many replicas each dataset should
// have and where the missing ones go. Inputs are the signals the paper
// names for control-plane intelligence: access heat (weighted by the
// accessing tenant's share), per-cluster health scores from the
// telemetry plane, and free lake capacity. plan() diffs the desired
// state against a ReplicaDirectory's observed state and emits
// deterministic actions; planLog() is the cumulative byte-identical
// record of every decision, so same-seed simulations replay exactly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ndn/name.hpp"
#include "replica/directory.hpp"

namespace lidc::replica {

struct PlacementPolicyOptions {
  /// Replicas every known dataset should have.
  std::size_t baseReplicas = 1;
  /// Replicas once a dataset's weighted access count crosses the
  /// threshold (hot data is worth the lake space).
  std::size_t hotReplicas = 2;
  double hotAccessThreshold = 3.0;
  /// Clusters below this health score are not placement candidates.
  double minHealth = 0.5;
  /// Candidates must advertise at least the dataset's size free (when
  /// the size is known) plus this headroom.
  std::uint64_t freeBytesHeadroom = 0;
};

/// One planned transfer: stage `dataset` onto `destination`.
struct PlacementAction {
  ndn::Name dataset;
  std::string destination;
  int priority = 0;
};

class PlacementPolicy {
 public:
  explicit PlacementPolicy(PlacementPolicyOptions options = {})
      : options_(options) {}

  /// Feeds one access to a dataset; `weight` carries the tenant's
  /// fair-share weight (1.0 for untenanted access).
  void recordAccess(const ndn::Name& dataset, double weight = 1.0);
  [[nodiscard]] double heat(const ndn::Name& dataset) const;

  /// Telemetry-plane health score in [0, 1] per candidate cluster.
  void observeHealth(const std::string& cluster, double score);
  /// Free lake capacity per candidate cluster.
  void observeFreeBytes(const std::string& cluster, std::uint64_t freeBytes);

  [[nodiscard]] std::size_t targetReplicas(const ndn::Name& dataset) const;

  /// Diffs desired replication against the directory's observed state.
  /// Under-replicated datasets get one action per missing replica,
  /// destinations chosen from non-stale watched clusters that pass the
  /// health bar, best-first by (health desc, free bytes desc, name
  /// asc). Deterministic for a given (policy, directory) state; every
  /// call appends to planLog().
  [[nodiscard]] std::vector<PlacementAction> plan(
      const ReplicaDirectory& directory);

  /// Datasets the last plan() found under-replicated (missing healthy
  /// destinations count too — they stay under-replicated).
  [[nodiscard]] std::size_t lastUnderReplicated() const noexcept {
    return last_under_replicated_;
  }

  /// Cumulative deterministic decision log.
  [[nodiscard]] const std::string& planLog() const noexcept { return plan_log_; }

 private:
  PlacementPolicyOptions options_;
  std::map<std::string, double> heat_;               // dataset URI -> weight sum
  std::map<std::string, double> health_;             // cluster -> score
  std::map<std::string, std::uint64_t> free_bytes_;  // cluster -> free lake bytes
  std::string plan_log_;
  std::uint64_t plans_ = 0;
  std::size_t last_under_replicated_ = 0;
};

}  // namespace lidc::replica
