// MigrationCoordinator — the ops-host half of the migration plane
// (DESIGN.md §14). It watches registered long-running jobs over the
// ordinary status namespace; when a trigger fires — status gone dark
// (cluster crash / blackout), the job terminally Failed, telemetry
// health under the floor, a circuit breaker opening, or an explicit
// operator drain — it:
//
//   1. resolves the latest surviving checkpoint epoch (ReplicaDirectory
//      view when wired, else the anycast-fetched _manifest),
//   2. fetches that epoch once to pin its content digest,
//   3. pre-stages it onto the chosen target through the target's
//      TransferScheduler at high priority,
//   4. re-submits the original request with ckpt=<job>/<epoch>,
//      ckpt_digest=<pin>, ckpt_from=<old cluster> so the target gateway
//      restores instead of restarting and aliases the old job id in the
//      status namespace — pollers follow the move seamlessly.
//
// Target choice leans on AdaptivePlacement state (skip breaker-open /
// unhealthy clusters, prefer the lowest extra route cost) with
// name-ordered determinism; the actual placement is still the network's
// (a gateway without the pre-staged bytes nacks kNoRoute and the
// strategy moves on). Every decision lands in a deterministic
// "t=..s ..." decision log, byte-identical across same-seed runs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/adaptive.hpp"
#include "core/checkpoint_format.hpp"
#include "core/client.hpp"
#include "replica/directory.hpp"
#include "replica/scheduler.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace lidc::migrate {

struct MigrationOptions {
  /// Cadence of status probes on tracked jobs (lazy timer: armed only
  /// while at least one job is active, so idle simulations drain).
  sim::Duration probeInterval = sim::Duration::seconds(1);
  /// Consecutive failed probes before a job counts as dark.
  int probeFailureThreshold = 2;
  /// observeHealth() below this triggers migration off the cluster.
  double healthFloor = 0.3;
  /// Per-job migration budget (flapping guard).
  int maxMigrationsPerJob = 2;
  /// Priority of checkpoint pre-stage transfers (repairs run at 10).
  int prestagePriority = 100;
};

struct MigrationCounters {
  std::uint64_t planned = 0;    // migrations triggered
  std::uint64_t completed = 0;  // resumed on a new cluster
  std::uint64_t failed = 0;     // no target / no checkpoint+resubmit failed
  std::uint64_t coldFallbacks = 0;  // resubmitted without a checkpoint
};

class MigrationCoordinator {
 public:
  /// `placement` (optional) contributes breaker/health/cost state to
  /// target choice; `directory` (optional) resolves the latest
  /// *surviving* checkpoint epoch after a crash.
  MigrationCoordinator(core::LidcClient& client,
                       core::AdaptivePlacement* placement = nullptr,
                       replica::ReplicaDirectory* directory = nullptr,
                       MigrationOptions options = {});
  MigrationCoordinator(const MigrationCoordinator&) = delete;
  MigrationCoordinator& operator=(const MigrationCoordinator&) = delete;

  /// Registers the scheduler staging data onto `cluster`; registered
  /// clusters are also the migration target candidates.
  void addScheduler(const std::string& cluster,
                    replica::TransferScheduler* scheduler);

  /// Starts monitoring a submitted job. `request` must be the original
  /// compute request (the coordinator re-submits it, augmented with the
  /// ckpt params, on migration).
  void track(const core::SubmitResult& ack, core::ComputeRequest request);

  // --- triggers ---------------------------------------------------------

  /// Operator drain: migrate every active job off `cluster` (chaos
  /// kDrain wires here). The cluster stays healthy; when a placement is
  /// attached its breaker cost is applied so new work also steers away.
  void drainCluster(const std::string& cluster);
  /// Telemetry health feed; below the floor, jobs migrate off.
  void observeHealth(const std::string& cluster, double score);
  /// Circuit-breaker feed; an opening breaker migrates jobs off.
  void observeBreaker(const std::string& cluster, bool open);

  [[nodiscard]] const MigrationCounters& counters() const noexcept {
    return counters_;
  }
  /// Jobs still being monitored (non-terminal).
  [[nodiscard]] std::size_t activeJobs() const;
  /// Deterministic decision log ("t=..s plan|migrate|cold|fail ..."),
  /// byte-identical across same-seed runs.
  [[nodiscard]] const std::string& decisionLog() const noexcept { return log_; }
  /// Current status name of a tracked job by its *original* job id
  /// (follows migrations); empty Name when unknown.
  [[nodiscard]] ndn::Name currentStatusName(const std::string& originalJobId) const;

  /// Installs the old-status-name route network-wide when a migration
  /// lands: (oldCluster, oldJobId, targetCluster). The target gateway
  /// registers the alias on its own forwarder; this hook propagates the
  /// exact 5-component route across the overlay so remote pollers reach
  /// it. Wire to Topology::installRoutesTo.
  std::function<void(const std::string& oldCluster, const std::string& oldJobId,
                     const std::string& targetCluster)>
      routeInstaller;

  /// Syncs lidc_migrations_{planned,completed,failed}_total and
  /// lidc_migrations_cold_fallbacks_total into `registry`; with a
  /// tracer, each completed migration records a "migration" span from
  /// plan to resumed ack.
  void attachTelemetry(telemetry::MetricsRegistry& registry,
                       telemetry::Tracer* tracer = nullptr);
  void setFlightRecorder(telemetry::FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

 private:
  struct TrackedJob {
    std::string originalJobId;
    std::string jobId;    // current id (changes on migration)
    std::string cluster;  // current cluster
    ndn::Name statusName;
    core::ComputeRequest request;  // original, ckpt-param-free
    int migrations = 0;
    int consecutiveFailures = 0;
    bool active = true;
    bool migrating = false;
    sim::Time planStart;
  };

  void armProbe();
  void probeAll();
  void migrate(const std::shared_ptr<TrackedJob>& job,
               const std::string& reason);
  /// Latest checkpoint epoch with a surviving ready replica (directory
  /// view), 0 when unknown.
  [[nodiscard]] std::uint64_t latestSurvivingEpoch(
      const std::string& jobId) const;
  void resolveEpoch(const std::shared_ptr<TrackedJob>& job,
                    const std::string& reason);
  void prestageAndResubmit(const std::shared_ptr<TrackedJob>& job,
                           const std::string& reason, std::uint64_t epoch,
                           std::uint64_t digest);
  void resubmit(const std::shared_ptr<TrackedJob>& job,
                const std::string& reason, std::uint64_t epoch,
                std::uint64_t digest, const std::string& target);
  /// Cold fallback: no usable checkpoint — resubmit from scratch.
  void resubmitCold(const std::shared_ptr<TrackedJob>& job,
                    const std::string& reason);
  void settleResubmit(const std::shared_ptr<TrackedJob>& job,
                      const std::string& reason, bool restored,
                      Result<core::SubmitResult> ack);
  /// Healthy, breaker-closed candidate with the lowest extra route
  /// cost, excluding `exclude`; ties break by name. Empty when none.
  [[nodiscard]] std::string pickTarget(const std::string& exclude) const;
  void trace(const std::string& line);

  core::LidcClient& client_;
  core::AdaptivePlacement* placement_;
  replica::ReplicaDirectory* directory_;
  MigrationOptions options_;
  std::map<std::string, replica::TransferScheduler*> schedulers_;
  /// original job id -> tracked state (deterministic iteration).
  std::map<std::string, std::shared_ptr<TrackedJob>> jobs_;
  std::map<std::string, double> observed_health_;
  std::map<std::string, bool> breaker_open_;
  telemetry::FlightRecorder* recorder_ = nullptr;
  telemetry::Tracer* tracer_ = nullptr;
  MigrationCounters counters_;
  bool probe_pending_ = false;
  std::string log_;
};

/// AlertEngine value source over a coordinator (pair with a rule like
/// "migrate/failed > 0 for 5s"):
///   "migrate/planned"         — cumulative migrations triggered
///   "migrate/failed"          — cumulative failed migrations
///   "migrate/cold_fallbacks"  — resubmits that lost their checkpoint
[[nodiscard]] telemetry::AlertEngine::ValueSource migrationValueSource(
    const MigrationCoordinator& coordinator);

}  // namespace lidc::migrate
