#include "migrate/coordinator.hpp"

#include <cstdio>
#include <limits>

#include "common/logging.hpp"
#include "k8s/job.hpp"

namespace lidc::migrate {

namespace {

std::string fmtTime(sim::Time t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "t=%.6fs", t.toSeconds());
  return buf;
}

}  // namespace

MigrationCoordinator::MigrationCoordinator(core::LidcClient& client,
                                           core::AdaptivePlacement* placement,
                                           replica::ReplicaDirectory* directory,
                                           MigrationOptions options)
    : client_(client),
      placement_(placement),
      directory_(directory),
      options_(options) {}

void MigrationCoordinator::addScheduler(const std::string& cluster,
                                        replica::TransferScheduler* scheduler) {
  schedulers_[cluster] = scheduler;
}

void MigrationCoordinator::track(const core::SubmitResult& ack,
                                 core::ComputeRequest request) {
  auto job = std::make_shared<TrackedJob>();
  job->originalJobId = ack.jobId;
  job->jobId = ack.jobId;
  job->cluster = ack.cluster;
  job->statusName = ndn::Name(ack.statusName);
  // The request is re-submitted verbatim on migration (plus the ckpt
  // params); strip any request id so the client mints a fresh one and
  // the forwarding strategy is free to steer.
  request.requestId.clear();
  job->request = std::move(request);
  jobs_[job->originalJobId] = job;
  trace(fmtTime(client_.simulator().now()) + " track job=" + job->jobId +
        " cluster=" + job->cluster);
  armProbe();
}

std::size_t MigrationCoordinator::activeJobs() const {
  std::size_t n = 0;
  for (const auto& [id, job] : jobs_) {
    if (job->active) ++n;
  }
  return n;
}

ndn::Name MigrationCoordinator::currentStatusName(
    const std::string& originalJobId) const {
  auto it = jobs_.find(originalJobId);
  return it == jobs_.end() ? ndn::Name{} : it->second->statusName;
}

void MigrationCoordinator::armProbe() {
  if (probe_pending_ || activeJobs() == 0) return;
  probe_pending_ = true;
  client_.simulator().scheduleAfter(options_.probeInterval, [this] {
    probe_pending_ = false;
    probeAll();
  });
}

void MigrationCoordinator::probeAll() {
  for (auto& [id, jobRef] : jobs_) {
    auto job = jobRef;
    if (!job->active || job->migrating) continue;
    client_.queryStatus(
        job->statusName, [this, job](Result<core::JobStatusSnapshot> status) {
          if (!job->active || job->migrating) return;
          if (!status) {
            trace(fmtTime(client_.simulator().now()) + " probe-fail job=" +
                  job->jobId + " err=" + status.status().toString());
            if (++job->consecutiveFailures >= options_.probeFailureThreshold) {
              migrate(job, "status-dark");
            }
            return;
          }
          job->consecutiveFailures = 0;
          if (status->state == k8s::JobState::kCompleted) {
            job->active = false;
            trace(fmtTime(client_.simulator().now()) +
                  " done job=" + job->jobId);
          } else if (status->state == k8s::JobState::kFailed) {
            migrate(job, "job-failed");
          }
        });
  }
  armProbe();
}

void MigrationCoordinator::drainCluster(const std::string& cluster) {
  trace(fmtTime(client_.simulator().now()) + " drain cluster=" + cluster);
  LIDC_FR_EVENT(recorder_, kInfo, "migrate", "drain " + cluster);
  breaker_open_[cluster] = true;
  if (placement_ != nullptr) {
    // Administrative breaker: new submits (including our own resubmits)
    // steer away from the draining cluster at the routing layer, even
    // though it is still healthy and holds the checkpoints locally.
    placement_->observeBreaker(cluster, true);
    placement_->tick();
  }
  for (auto& [id, job] : jobs_) {
    if (job->active && !job->migrating && job->cluster == cluster) {
      migrate(job, "drain");
    }
  }
}

void MigrationCoordinator::observeHealth(const std::string& cluster,
                                         double score) {
  observed_health_[cluster] = score;
  if (score >= options_.healthFloor) return;
  for (auto& [id, job] : jobs_) {
    if (job->active && !job->migrating && job->cluster == cluster) {
      migrate(job, "health-floor");
    }
  }
}

void MigrationCoordinator::observeBreaker(const std::string& cluster,
                                          bool open) {
  breaker_open_[cluster] = open;
  if (!open) return;
  for (auto& [id, job] : jobs_) {
    if (job->active && !job->migrating && job->cluster == cluster) {
      migrate(job, "breaker-open");
    }
  }
}

void MigrationCoordinator::migrate(const std::shared_ptr<TrackedJob>& job,
                                   const std::string& reason) {
  if (!job->active || job->migrating) return;
  if (job->migrations >= options_.maxMigrationsPerJob) {
    ++counters_.failed;
    job->active = false;
    trace(fmtTime(client_.simulator().now()) + " fail job=" + job->jobId +
          " reason=migration-budget");
    LIDC_FR_EVENT(recorder_, kWarn, "migrate",
                  "migration budget exhausted for " + job->jobId);
    return;
  }
  job->migrating = true;
  job->planStart = client_.simulator().now();
  ++counters_.planned;
  trace(fmtTime(job->planStart) + " plan job=" + job->jobId +
        " reason=" + reason + " from=" + job->cluster);
  LIDC_FR_EVENT(recorder_, kInfo, "migrate",
                "plan " + job->jobId + " reason=" + reason + " from=" +
                    job->cluster);
  resolveEpoch(job, reason);
}

std::uint64_t MigrationCoordinator::latestSurvivingEpoch(
    const std::string& jobId) const {
  if (directory_ == nullptr) return 0;
  std::uint64_t best = 0;
  for (const std::string& uri : directory_->knownDatasets()) {
    auto ref = core::parseCkptName(ndn::Name(uri));
    if (!ref || ref->jobId != jobId || ref->epoch <= best) continue;
    if (directory_->holders(ndn::Name(uri)).empty()) continue;
    best = ref->epoch;
  }
  return best;
}

void MigrationCoordinator::resolveEpoch(const std::shared_ptr<TrackedJob>& job,
                                        const std::string& reason) {
  // Preferred: the directory's view of what actually survived — the
  // manifest replica on a survivor may be stale (the repair loop copies
  // under-replicated objects once; it does not refresh mutations).
  if (const std::uint64_t epoch = latestSurvivingEpoch(job->jobId);
      epoch > 0) {
    client_.fetchData(core::makeCkptName(job->jobId, epoch),
                      [this, job, reason, epoch](
                          Result<std::vector<std::uint8_t>> payload) {
                        if (!payload) {
                          resubmitCold(job, reason + "/ckpt-fetch-failed");
                          return;
                        }
                        prestageAndResubmit(job, reason, epoch,
                                            core::ckptDigest(*payload));
                      });
    return;
  }
  // Fallback: anycast-fetch the _manifest (live source, or a replica
  // that happens to be current) and trust its epoch + digest — the
  // restoring gateway re-verifies the pin against the actual bytes.
  client_.fetchData(
      core::makeCkptManifestName(job->jobId),
      [this, job, reason](Result<std::vector<std::uint8_t>> bytes) {
        if (!bytes) {
          resubmitCold(job, reason + "/no-checkpoint");
          return;
        }
        const std::string text(bytes->begin(), bytes->end());
        auto manifest = core::decodeCkptManifest(text);
        if (!manifest || manifest->epoch == 0) {
          resubmitCold(job, reason + "/bad-manifest");
          return;
        }
        prestageAndResubmit(job, reason, manifest->epoch, manifest->digest);
      });
}

void MigrationCoordinator::prestageAndResubmit(
    const std::shared_ptr<TrackedJob>& job, const std::string& reason,
    std::uint64_t epoch, std::uint64_t digest) {
  const std::string target = pickTarget(job->cluster);
  if (target.empty()) {
    ++counters_.failed;
    job->migrating = false;
    job->active = false;
    trace(fmtTime(client_.simulator().now()) + " fail job=" + job->jobId +
          " reason=no-target");
    LIDC_FR_EVENT(recorder_, kWarn, "migrate",
                  "no migration target for " + job->jobId);
    return;
  }
  char line[192];
  std::snprintf(line, sizeof(line), "%s resume job=%s epoch=%llu target=%s",
                fmtTime(client_.simulator().now()).c_str(),
                job->jobId.c_str(), static_cast<unsigned long long>(epoch),
                target.c_str());
  trace(line);
  replica::TransferScheduler* scheduler = schedulers_[target];
  replica::TransferRequest staging;
  staging.priority = options_.prestagePriority;
  staging.tag = "migrate/" + job->originalJobId;
  scheduler->enqueue(
      core::makeCkptName(job->jobId, epoch), staging,
      [this, job, reason, epoch, digest, target](Status status,
                                                 std::uint64_t /*bytes*/) {
        if (!status.ok()) {
          resubmitCold(job, reason + "/prestage-failed");
          return;
        }
        resubmit(job, reason, epoch, digest, target);
      });
}

void MigrationCoordinator::resubmit(const std::shared_ptr<TrackedJob>& job,
                                    const std::string& reason,
                                    std::uint64_t epoch, std::uint64_t digest,
                                    const std::string& /*target*/) {
  core::ComputeRequest request = job->request;
  request.params["ckpt"] = job->jobId + "/" + std::to_string(epoch);
  request.params["ckpt_digest"] = std::to_string(digest);
  request.params["ckpt_from"] = job->cluster;
  client_.submit(request,
                 [this, job, reason](Result<core::SubmitResult> ack) {
                   settleResubmit(job, reason, /*restored=*/true,
                                  std::move(ack));
                 });
}

void MigrationCoordinator::resubmitCold(const std::shared_ptr<TrackedJob>& job,
                                        const std::string& reason) {
  ++counters_.coldFallbacks;
  trace(fmtTime(client_.simulator().now()) + " cold job=" + job->jobId +
        " reason=" + reason);
  LIDC_FR_EVENT(recorder_, kWarn, "migrate",
                "cold fallback for " + job->jobId + " (" + reason + ")");
  client_.submit(job->request,
                 [this, job, reason](Result<core::SubmitResult> ack) {
                   settleResubmit(job, reason, /*restored=*/false,
                                  std::move(ack));
                 });
}

void MigrationCoordinator::settleResubmit(
    const std::shared_ptr<TrackedJob>& job, const std::string& reason,
    bool restored, Result<core::SubmitResult> ack) {
  job->migrating = false;
  if (!ack) {
    ++counters_.failed;
    job->active = false;
    trace(fmtTime(client_.simulator().now()) + " fail job=" + job->jobId +
          " reason=resubmit: " + ack.status().toString());
    LIDC_FR_EVENT(recorder_, kWarn, "migrate",
                  "resubmit failed for " + job->jobId + ": " +
                      ack.status().toString());
    return;
  }
  const std::string oldCluster = job->cluster;
  const std::string oldJobId = job->jobId;
  job->jobId = ack->jobId;
  job->cluster = ack->cluster;
  job->statusName = ndn::Name(ack->statusName);
  job->consecutiveFailures = 0;
  ++job->migrations;
  ++counters_.completed;
  trace(fmtTime(client_.simulator().now()) + " migrate job=" + oldJobId +
        " from=" + oldCluster + " to=" + job->cluster +
        " newjob=" + job->jobId + (restored ? "" : " cold"));
  LIDC_FR_EVENT(recorder_, kInfo, "migrate",
                "migrated " + oldJobId + " " + oldCluster + " -> " +
                    job->cluster + " as " + job->jobId +
                    (restored ? "" : " (cold)"));
  if (restored && routeInstaller) {
    // The target gateway registered the 5-component status alias on its
    // own forwarder; propagate the route overlay-wide so remote pollers
    // reach it (exact match beats the dead cluster's 4-component route).
    routeInstaller(oldCluster, oldJobId, job->cluster);
  }
  if (tracer_ != nullptr) {
    tracer_->recordSpan("migration", "migrate", {}, job->planStart,
                        client_.simulator().now(),
                        {{"job", oldJobId},
                         {"from", oldCluster},
                         {"to", job->cluster},
                         {"reason", reason},
                         {"restored", restored ? "true" : "false"}});
  }
  armProbe();
}

std::string MigrationCoordinator::pickTarget(const std::string& exclude) const {
  std::string best;
  std::uint64_t bestCost = std::numeric_limits<std::uint64_t>::max();
  for (const auto& [cluster, scheduler] : schedulers_) {
    if (cluster == exclude || scheduler == nullptr) continue;
    if (auto it = breaker_open_.find(cluster);
        it != breaker_open_.end() && it->second) {
      continue;
    }
    if (auto it = observed_health_.find(cluster);
        it != observed_health_.end() && it->second < options_.healthFloor) {
      continue;
    }
    if (placement_ != nullptr) {
      if (placement_->breakerOpen(cluster)) continue;
      if (placement_->observedHealth(cluster) < options_.healthFloor) continue;
    }
    const std::uint64_t cost =
        placement_ == nullptr ? 0 : placement_->extraCostUs(cluster);
    // Strict < keeps the name-ordered first candidate on ties.
    if (cost < bestCost) {
      bestCost = cost;
      best = cluster;
    }
  }
  return best;
}

void MigrationCoordinator::trace(const std::string& line) {
  log_ += line;
  log_ += '\n';
  LIDC_LOG(kDebug, "migrate") << line;
}

void MigrationCoordinator::attachTelemetry(telemetry::MetricsRegistry& registry,
                                           telemetry::Tracer* tracer) {
  tracer_ = tracer;
  registry.registerCollector([this, &registry] {
    registry.counter("lidc_migrations_planned_total").set(counters_.planned);
    registry.counter("lidc_migrations_completed_total")
        .set(counters_.completed);
    registry.counter("lidc_migrations_failed_total").set(counters_.failed);
    registry.counter("lidc_migrations_cold_fallbacks_total")
        .set(counters_.coldFallbacks);
  });
}

telemetry::AlertEngine::ValueSource migrationValueSource(
    const MigrationCoordinator& coordinator) {
  return [&coordinator] {
    const MigrationCounters& c = coordinator.counters();
    return std::map<std::string, double>{
        {"migrate/planned", static_cast<double>(c.planned)},
        {"migrate/failed", static_cast<double>(c.failed)},
        {"migrate/cold_fallbacks", static_cast<double>(c.coldFallbacks)},
    };
  };
}

}  // namespace lidc::migrate
