// CheckpointManager — the cluster-side half of the migration plane
// (DESIGN.md §14). Long-running jobs whose app runner exposes an
// AppResult::checkpointPlan emit periodic checkpoints as segmented,
// named data-lake objects:
//
//   /ndn/k8s/ckpt/<job_id>/<epoch>     immutable epoch payload
//   /ndn/k8s/ckpt/<job_id>/_manifest   mutable latest-epoch pointer
//
// Because app runners execute eagerly and only the completion event is
// simulated, the manager samples the plan closure at simulated interval
// boundaries to materialize what the pod "would have" written by then.
// Each write is registered in the cluster's ReplicaCatalog and heats the
// PlacementPolicy past its hot threshold, so the ordinary RepairLoop
// replicates live checkpoints to a survivor with no migration-specific
// transfer machinery. Cost-aware cadence: when the job's predicted
// remaining runtime is smaller than the modeled checkpoint-write cost,
// the write (and all later ones) is skipped — the endgame recompute is
// cheaper than the I/O.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/checkpoint_format.hpp"
#include "datalake/object_store.hpp"
#include "k8s/cluster.hpp"
#include "replica/catalog.hpp"
#include "replica/policy.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"

namespace lidc::migrate {

struct CheckpointOptions {
  /// Simulated time between checkpoint writes of one job.
  sim::Duration interval = sim::Duration::minutes(10);
  /// Epochs kept in the lake per job; older ones are removed (and
  /// erased from the catalog) as new epochs land.
  std::size_t retainEpochs = 2;
  /// Modeled write cost: bytes / writeBandwidth + fixed. Drives both
  /// the cost-aware endgame skip and the overhead accounting benches
  /// report against the <5% budget.
  double writeBandwidthBytesPerSec = 50e6;
  sim::Duration writeFixedCost = sim::Duration::millis(50);
  /// Skip a write (and stop checkpointing the job) once the predicted
  /// remaining runtime is below the write cost.
  bool costAware = true;
  /// Access heat fed to the PlacementPolicy per write; the default
  /// crosses the policy's hotAccessThreshold (3.0) on the first write,
  /// so live checkpoints get hotReplicas copies.
  double heatWeight = 4.0;
};

struct CheckpointCounters {
  std::uint64_t written = 0;         // epoch objects written
  std::uint64_t bytes = 0;           // payload bytes across all epochs
  std::uint64_t skippedEndgame = 0;  // cost-aware skips
  std::uint64_t plansTracked = 0;    // checkpointable executions seen
};

class CheckpointManager {
 public:
  /// Hooks the cluster's job-execution watcher. `catalog`/`policy`
  /// (optional) wire checkpoint replication into the replica plane.
  CheckpointManager(k8s::Cluster& cluster, datalake::ObjectStore& store,
                    CheckpointOptions options = {},
                    replica::ReplicaCatalog* catalog = nullptr,
                    replica::PlacementPolicy* policy = nullptr);
  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  [[nodiscard]] const CheckpointCounters& counters() const noexcept {
    return counters_;
  }
  /// Total modeled write cost accrued — the no-failure-path overhead the
  /// bench holds under 5% of job runtime.
  [[nodiscard]] sim::Duration totalOverhead() const noexcept {
    return overhead_;
  }
  /// Deterministic "t=..s ckpt|skip-endgame ..." trace, byte-identical
  /// across same-seed runs.
  [[nodiscard]] const std::string& epochLog() const noexcept { return log_; }

  /// Syncs lidc_ckpt_written_total / lidc_ckpt_bytes_total /
  /// lidc_ckpt_skipped_endgame_total (labeled by cluster) into
  /// `registry` at snapshot time.
  void attachTelemetry(telemetry::MetricsRegistry& registry);
  void setFlightRecorder(telemetry::FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

 private:
  struct PlanState {
    std::string jobId;
    std::string ns;
    std::string app;
    sim::Time start;
    sim::Duration runtime;
    std::function<std::vector<std::uint8_t>(double)> plan;
    std::uint64_t epoch = 0;
    sim::Time nextAt;
    bool stopped = false;
  };

  void onExecuted(const k8s::Job& job, const k8s::AppResult& result);
  void scheduleNext(std::shared_ptr<PlanState> state);
  void writeEpoch(const std::shared_ptr<PlanState>& state);
  [[nodiscard]] sim::Duration writeCost(std::size_t bytes) const;
  void trace(const std::string& line);

  k8s::Cluster& cluster_;
  datalake::ObjectStore& store_;
  CheckpointOptions options_;
  replica::ReplicaCatalog* catalog_;
  replica::PlacementPolicy* policy_;
  telemetry::FlightRecorder* recorder_ = nullptr;
  CheckpointCounters counters_;
  sim::Duration overhead_;
  std::string log_;
};

}  // namespace lidc::migrate
