#include "migrate/checkpoint.hpp"

#include <algorithm>
#include <cstdio>

#include "common/logging.hpp"

namespace lidc::migrate {

CheckpointManager::CheckpointManager(k8s::Cluster& cluster,
                                     datalake::ObjectStore& store,
                                     CheckpointOptions options,
                                     replica::ReplicaCatalog* catalog,
                                     replica::PlacementPolicy* policy)
    : cluster_(cluster),
      store_(store),
      options_(options),
      catalog_(catalog),
      policy_(policy) {
  cluster_.onJobExecuted([this](const k8s::Job& job,
                                const k8s::AppResult& result) {
    onExecuted(job, result);
  });
}

void CheckpointManager::onExecuted(const k8s::Job& job,
                                   const k8s::AppResult& result) {
  if (!result.checkpointPlan || !result.status.ok()) return;
  ++counters_.plansTracked;
  auto state = std::make_shared<PlanState>();
  state->jobId = job.name();
  state->ns = job.namespaceName();
  state->app = job.spec().app;
  state->start = cluster_.simulator().now();
  state->runtime = result.runtime;
  state->plan = result.checkpointPlan;
  state->nextAt = state->start + options_.interval;
  scheduleNext(std::move(state));
}

void CheckpointManager::scheduleNext(std::shared_ptr<PlanState> state) {
  if (state->stopped) return;
  // No write at-or-after completion: the result itself supersedes it.
  if (state->nextAt - state->start >= state->runtime) return;
  const sim::Duration delay = state->nextAt - cluster_.simulator().now();
  cluster_.simulator().scheduleAfter(delay, [this, state] {
    writeEpoch(state);
    state->nextAt = state->nextAt + options_.interval;
    scheduleNext(state);
  });
}

sim::Duration CheckpointManager::writeCost(std::size_t bytes) const {
  return options_.writeFixedCost +
         sim::Duration::seconds(static_cast<double>(bytes) /
                                options_.writeBandwidthBytesPerSec);
}

void CheckpointManager::writeEpoch(const std::shared_ptr<PlanState>& state) {
  // Only a live run checkpoints: the job may have failed with its
  // cluster, been drained away, or completed off-schedule.
  const k8s::Job* job = cluster_.job(state->ns, state->jobId);
  if (job == nullptr || job->status().state != k8s::JobState::kRunning) {
    state->stopped = true;
    return;
  }
  const sim::Time now = cluster_.simulator().now();
  const double progress =
      state->runtime.toSeconds() <= 0.0
          ? 1.0
          : (now - state->start).toSeconds() / state->runtime.toSeconds();
  auto payload = state->plan(progress);
  const sim::Duration cost = writeCost(payload.size());
  const sim::Duration remaining = (state->start + state->runtime) - now;
  char line[160];
  if (options_.costAware && remaining < cost) {
    // Endgame: re-running the tail is cheaper than writing it out. All
    // later writes would be even deeper in the endgame — stop here.
    ++counters_.skippedEndgame;
    state->stopped = true;
    std::snprintf(line, sizeof(line), "t=%.6fs skip-endgame job=%s epoch=%llu",
                  now.toSeconds(), state->jobId.c_str(),
                  static_cast<unsigned long long>(state->epoch + 1));
    trace(line);
    return;
  }

  const std::uint64_t epoch = ++state->epoch;
  const std::uint64_t bytes = payload.size();
  const std::uint64_t digest = core::ckptDigest(payload);
  const ndn::Name name = core::makeCkptName(state->jobId, epoch);
  if (Status put = store_.put(name, std::move(payload)); !put.ok()) {
    LIDC_FR_EVENT(recorder_, kWarn, "ckpt",
                  cluster_.name() + " ckpt-write-failed " + state->jobId + "/" +
                      std::to_string(epoch) + ": " + put.toString());
    return;
  }
  core::CkptManifest manifest;
  manifest.jobId = state->jobId;
  manifest.app = state->app;
  manifest.epoch = epoch;
  manifest.bytes = bytes;
  manifest.digest = digest;
  manifest.progressPermille = static_cast<std::uint32_t>(
      std::min(1000.0, std::max(0.0, progress * 1000.0)));
  (void)store_.putText(core::makeCkptManifestName(state->jobId),
                       core::encodeCkptManifest(manifest));

  ++counters_.written;
  counters_.bytes += bytes;
  overhead_ += cost;
  if (catalog_ != nullptr) {
    catalog_->markReady(name, bytes);
    catalog_->markReady(core::makeCkptManifestName(state->jobId),
                        core::encodeCkptManifest(manifest).size());
  }
  // Heat past the policy's hot threshold, so the repair loop keeps a
  // survivor copy of the live checkpoint.
  if (policy_ != nullptr) policy_->recordAccess(name, options_.heatWeight);

  // Retention: drop epochs older than the window from lake + catalog.
  if (epoch > options_.retainEpochs) {
    const ndn::Name old =
        core::makeCkptName(state->jobId, epoch - options_.retainEpochs);
    (void)store_.remove(old);
    if (catalog_ != nullptr) catalog_->erase(old);
  }

  std::snprintf(line, sizeof(line), "t=%.6fs ckpt job=%s epoch=%llu bytes=%llu",
                now.toSeconds(), state->jobId.c_str(),
                static_cast<unsigned long long>(epoch),
                static_cast<unsigned long long>(bytes));
  trace(line);
  LIDC_FR_EVENT(recorder_, kInfo, "ckpt",
                cluster_.name() + " ckpt " + state->jobId + "/" +
                    std::to_string(epoch) + " bytes=" + std::to_string(bytes));
}

void CheckpointManager::trace(const std::string& line) {
  log_ += line;
  log_ += '\n';
  LIDC_LOG(kDebug, "ckpt") << line;
}

void CheckpointManager::attachTelemetry(telemetry::MetricsRegistry& registry) {
  const telemetry::Labels labels{{"cluster", cluster_.name()}};
  registry.registerCollector([this, &registry, labels] {
    registry.counter("lidc_ckpt_written_total", labels).set(counters_.written);
    registry.counter("lidc_ckpt_bytes_total", labels).set(counters_.bytes);
    registry.counter("lidc_ckpt_skipped_endgame_total", labels)
        .set(counters_.skippedEndgame);
  });
}

}  // namespace lidc::migrate
