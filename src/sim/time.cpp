#include "sim/time.hpp"

#include <cstdio>

namespace lidc::sim {

std::string Duration::toString() const {
  char buf[48];
  const double s = toSeconds();
  if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fus", s * 1e6);
  }
  return buf;
}

}  // namespace lidc::sim
