// Simulated time. All LIDC components run on virtual time so benches
// measure protocol behaviour (latency, failover time) deterministically
// and independently of host speed.
#pragma once

#include <cstdint>
#include <string>

namespace lidc::sim {

/// Nanosecond-resolution simulated duration.
class Duration {
 public:
  constexpr Duration() noexcept = default;
  static constexpr Duration nanos(std::int64_t v) noexcept { return Duration(v); }
  static constexpr Duration micros(std::int64_t v) noexcept { return Duration(v * 1000); }
  static constexpr Duration millis(std::int64_t v) noexcept {
    return Duration(v * 1'000'000);
  }
  static constexpr Duration seconds(double v) noexcept {
    return Duration(static_cast<std::int64_t>(v * 1e9));
  }
  static constexpr Duration minutes(double v) noexcept { return seconds(v * 60.0); }
  static constexpr Duration hours(double v) noexcept { return seconds(v * 3600.0); }

  [[nodiscard]] constexpr std::int64_t toNanos() const noexcept { return nanos_; }
  [[nodiscard]] constexpr double toSeconds() const noexcept {
    return static_cast<double>(nanos_) / 1e9;
  }
  [[nodiscard]] constexpr double toMillis() const noexcept {
    return static_cast<double>(nanos_) / 1e6;
  }

  [[nodiscard]] std::string toString() const;

  constexpr auto operator<=>(const Duration&) const noexcept = default;
  constexpr Duration operator+(Duration other) const noexcept {
    return Duration(nanos_ + other.nanos_);
  }
  constexpr Duration operator-(Duration other) const noexcept {
    return Duration(nanos_ - other.nanos_);
  }
  constexpr Duration operator*(double factor) const noexcept {
    return Duration(static_cast<std::int64_t>(static_cast<double>(nanos_) * factor));
  }
  Duration& operator+=(Duration other) noexcept {
    nanos_ += other.nanos_;
    return *this;
  }

 private:
  constexpr explicit Duration(std::int64_t nanos) noexcept : nanos_(nanos) {}
  std::int64_t nanos_ = 0;
};

/// Absolute simulated time since simulation start.
class Time {
 public:
  constexpr Time() noexcept = default;
  static constexpr Time fromNanos(std::int64_t v) noexcept { return Time(v); }

  [[nodiscard]] constexpr std::int64_t toNanos() const noexcept { return nanos_; }
  [[nodiscard]] constexpr double toSeconds() const noexcept {
    return static_cast<double>(nanos_) / 1e9;
  }

  constexpr auto operator<=>(const Time&) const noexcept = default;
  constexpr Time operator+(Duration d) const noexcept {
    return Time(nanos_ + d.toNanos());
  }
  constexpr Duration operator-(Time other) const noexcept {
    return Duration::nanos(nanos_ - other.nanos_);
  }

 private:
  constexpr explicit Time(std::int64_t nanos) noexcept : nanos_(nanos) {}
  std::int64_t nanos_ = 0;
};

}  // namespace lidc::sim
