// Deterministic discrete-event simulator. Events fire in (time, sequence)
// order; ties break by scheduling order so runs are bit-reproducible.
// Everything in LIDC — link delays, pod startup, job execution, Interest
// timeouts — is an event on one Simulator instance.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace lidc::sim {

/// Opaque handle used to cancel a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Safe to call repeatedly.
  void cancel() noexcept {
    if (auto alive = alive_.lock()) *alive = false;
  }

  [[nodiscard]] bool pending() const noexcept {
    auto alive = alive_.lock();
    return alive && *alive;
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::weak_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::weak_ptr<bool> alive_;
};

class Simulator {
 public:
  /// Installs this simulator's clock as the log timestamp source (the
  /// most recently constructed simulator wins; the destructor removes
  /// it again only if still the owner).
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules fn to run at absolute time `at` (clamped to now).
  EventHandle scheduleAt(Time at, std::function<void()> fn);

  /// Schedules fn to run after `delay`.
  EventHandle scheduleAfter(Duration delay, std::function<void()> fn) {
    return scheduleAt(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue drains. Returns number of events fired.
  std::size_t run();

  /// Runs events with firing time <= deadline; leaves later events queued.
  /// Advances now() to `deadline` even if the queue drains earlier.
  std::size_t runUntil(Time deadline);

  /// Runs at most `maxEvents` events.
  std::size_t runSteps(std::size_t maxEvents);

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pendingEvents() const noexcept { return queue_.size(); }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pops and fires one event; returns false if the queue was empty.
  bool step();

  Time now_;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace lidc::sim
