#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

#include "common/logging.hpp"

namespace lidc::sim {

namespace {
/// The simulator currently feeding log timestamps; guards against a
/// destroyed simulator leaving a dangling time source behind.
Simulator* g_log_clock_owner = nullptr;
}  // namespace

Simulator::Simulator() {
  g_log_clock_owner = this;
  log::setTimeSource([this] { return now().toSeconds(); });
}

Simulator::~Simulator() {
  if (g_log_clock_owner == this) {
    g_log_clock_owner = nullptr;
    log::setTimeSource(nullptr);
  }
}

EventHandle Simulator::scheduleAt(Time at, std::function<void()> fn) {
  assert(fn);
  if (at < now_) at = now_;
  auto alive = std::make_shared<bool>(true);
  EventHandle handle{std::weak_ptr<bool>(alive)};
  queue_.push(Event{at, next_seq_++, std::move(fn), std::move(alive)});
  return handle;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; move out via const_cast, standard idiom
    // safe because we immediately pop.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (!*event.alive) continue;  // cancelled
    now_ = event.at;
    event.fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t fired = 0;
  while (step()) ++fired;
  return fired;
}

std::size_t Simulator::runUntil(Time deadline) {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    // Purge cancelled events at the head so the deadline check below
    // sees the next *live* event (a cancelled head must not let step()
    // run a live event scheduled past the deadline).
    if (!*queue_.top().alive) {
      queue_.pop();
      continue;
    }
    if (queue_.top().at > deadline) break;
    if (step()) ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

std::size_t Simulator::runSteps(std::size_t maxEvents) {
  std::size_t fired = 0;
  while (fired < maxEvents && step()) ++fired;
  return fired;
}

}  // namespace lidc::sim
