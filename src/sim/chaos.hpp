// ChaosEngine: deterministic fault injection for LIDC simulations.
// A seeded engine schedules declarative fault plans on the shared
// Simulator — link flaps, loss/latency bursts, node crashes, gateway
// blackouts — and records a reproducible event trace so two runs with
// the same seed inject byte-identical fault schedules. This is the
// harness behind the end-to-end failure-recovery tests and the
// bench_chaos_recovery sweep.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "k8s/cluster.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"

namespace lidc::sim {

enum class FaultKind {
  kLinkDown,      // administrative link outage for a window
  kLinkFlaps,     // seeded random up/down schedule over a window
  kLossBurst,     // elevated packet loss for a window
  kLatencyBurst,  // added propagation latency for a window
  kNodeCrash,     // k8s node failure (pods evicted, jobs fail/retry)
  kClusterCrash,  // every node of a cluster fails
  kBlackout,      // a component silently drops all traffic for a window
  // Gray failures: the component keeps answering, but wrongly.
  kCorruption,    // seeded bit-flips in Data payloads crossing a link
  kSlowNode,      // node serves 10-50x slower while still Ready
  kGrayGateway,   // gateway admits jobs, returns Pending forever
  kStaleReplay,   // a cache re-serves old Data past its freshness
  kNoisyNeighbor,  // one tenant hammers submits far above its fair rate
  kDrain,         // planned cluster drain (live migration trigger)
  kCustom,        // caller-supplied action
};

std::string_view faultKindName(FaultKind kind) noexcept;

/// Aggregate counters for one declared fault.
struct FaultRecord {
  std::string label;
  FaultKind kind = FaultKind::kCustom;
  std::uint64_t injections = 0;
  std::uint64_t recoveries = 0;
};

/// One entry of the chaos event trace ("inject" or "recover").
struct ChaosEvent {
  Time at;
  std::string label;
  std::string phase;
};

class ChaosEngine {
 public:
  explicit ChaosEngine(Simulator& sim, std::uint64_t seed = 4242)
      : sim_(sim), rng_(seed) {}
  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  // --- declarative fault plan -------------------------------------------

  /// Takes the link down at `at` and back up after `outage`.
  void linkDown(std::string label, net::Link& link, Time at, Duration outage);

  /// Seeded random flap schedule: alternating up/down periods drawn from
  /// exponential distributions (meanUp / meanDown), between `from` and
  /// `until`. The whole schedule is derived from the engine seed at plan
  /// time, so identical seeds give identical flap timelines.
  void linkFlaps(std::string label, net::Link& link, Time from, Time until,
                 Duration meanUp, Duration meanDown);

  /// Raises the link's loss rate to `lossRate` during the burst window,
  /// restoring the previous rate afterwards.
  void lossBurst(std::string label, net::Link& link, Time at, Duration burst,
                 double lossRate);

  /// Adds `extraLatency` to the link during the burst window.
  void latencyBurst(std::string label, net::Link& link, Time at, Duration burst,
                    Duration extraLatency);

  /// Hard-fails one node (pods evicted; running job attempts fail).
  void nodeCrash(std::string label, k8s::Cluster& cluster, std::string node,
                 Time at);

  /// Hard-fails every node of the cluster at `at`.
  void clusterCrash(std::string label, k8s::Cluster& cluster, Time at);

  /// Generic blackout window: `toggle(true)` at `at`, `toggle(false)`
  /// after `window`. Used for gateway blackouts via Gateway::setBlackout.
  void blackout(std::string label, Time at, Duration window,
                std::function<void(bool)> toggle);

  // --- gray failures ----------------------------------------------------

  /// Raises the link's payload corruption rate to `corruptRate` during
  /// the window (seeded bit-flips; signatures go stale, so verifying
  /// forwarders drop the damage). Restores the previous rate afterwards.
  void corruption(std::string label, net::Link& link, Time at, Duration window,
                  double corruptRate);

  /// Degrades one node's service rate by `factor` (e.g. 20 = 20x slower)
  /// for the window while it keeps reporting Ready — the classic
  /// limping-but-alive node that passes every health probe.
  void slowNode(std::string label, k8s::Cluster& cluster, std::string node,
                Time at, Duration window, double factor);

  /// Gray gateway window: `toggle(true)` at `at`, `toggle(false)` after
  /// `window`. Wire to Gateway::setGrayFailure — the gateway admits jobs
  /// and answers polls, but nothing ever runs.
  void grayGateway(std::string label, Time at, Duration window,
                   std::function<void(bool)> toggle);

  /// Stale-replay window: `toggle(true)`/`toggle(false)` around a cache
  /// that starts ignoring freshness (ContentStore::setServeStale) and
  /// re-serves old versioned Data against MustBeFresh Interests.
  void staleReplay(std::string label, Time at, Duration window,
                   std::function<void(bool)> toggle);

  /// Noisy-neighbor window: a tenant hammers `submit` at a seeded
  /// Poisson rate (mean inter-submit gap `meanGap`) between `from` and
  /// `until` — typically 10x its fair share. Like linkFlaps, the whole
  /// submit timeline is drawn at plan time from the engine seed, so two
  /// runs with the same seed produce byte-identical aggressor load.
  /// Only the window edges enter the chaos trace (one inject at `from`,
  /// one recover at `until`); individual submits bump the fault's
  /// injection counter without flooding the trace.
  void noisyNeighbor(std::string label, Time from, Time until,
                     Duration meanGap, std::function<void()> submit);

  /// Planned drain: fires `drain` at `at` — wire to
  /// MigrationCoordinator::drainCluster so running jobs checkpoint-
  /// migrate off the cluster before an operator takes it down. Unlike
  /// the crash faults, a drain leaves the cluster healthy; it only
  /// triggers the migration plane.
  void drain(std::string label, Time at, std::function<void()> action);

  /// One-shot custom fault.
  void custom(std::string label, Time at, std::function<void()> apply);

  // --- observability ----------------------------------------------------

  [[nodiscard]] const std::vector<FaultRecord>& faults() const noexcept {
    return faults_;
  }
  [[nodiscard]] const std::vector<ChaosEvent>& trace() const noexcept {
    return trace_;
  }
  /// The full event trace as one string ("t=10.000000s inject east-crash\n"
  /// per line) — convenient for byte-identical determinism assertions.
  [[nodiscard]] std::string traceString() const;

  [[nodiscard]] std::uint64_t totalInjections() const noexcept;
  [[nodiscard]] std::uint64_t totalRecoveries() const noexcept;

  /// Syncs injection/recovery totals (and per-kind injection counters)
  /// into `registry` at snapshot time.
  void attachTelemetry(telemetry::MetricsRegistry& registry);

  /// Records every injection/recovery into `recorder`, so alert
  /// post-mortems show the fault that caused the symptom.
  void setFlightRecorder(telemetry::FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

 private:
  /// Registers a fault record; returns its index.
  std::size_t declare(std::string label, FaultKind kind);
  /// Schedules `action` at `at`, recording it in the trace and counters.
  void schedulePhase(std::size_t fault, Time at, bool inject,
                     std::function<void()> action);

  Simulator& sim_;
  Rng rng_;
  std::vector<FaultRecord> faults_;
  std::vector<ChaosEvent> trace_;
  telemetry::FlightRecorder* recorder_ = nullptr;
};

}  // namespace lidc::sim
