#include "sim/chaos.hpp"

#include <cstdio>
#include <memory>
#include <utility>

#include "common/logging.hpp"

namespace lidc::sim {

std::string_view faultKindName(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkFlaps: return "link-flaps";
    case FaultKind::kLossBurst: return "loss-burst";
    case FaultKind::kLatencyBurst: return "latency-burst";
    case FaultKind::kNodeCrash: return "node-crash";
    case FaultKind::kClusterCrash: return "cluster-crash";
    case FaultKind::kBlackout: return "blackout";
    case FaultKind::kCorruption: return "corruption";
    case FaultKind::kSlowNode: return "slow-node";
    case FaultKind::kGrayGateway: return "gray-gateway";
    case FaultKind::kStaleReplay: return "stale-replay";
    case FaultKind::kNoisyNeighbor: return "noisy-neighbor";
    case FaultKind::kDrain: return "drain";
    case FaultKind::kCustom: return "custom";
  }
  return "unknown";
}

std::size_t ChaosEngine::declare(std::string label, FaultKind kind) {
  FaultRecord record;
  record.label = std::move(label);
  record.kind = kind;
  faults_.push_back(std::move(record));
  return faults_.size() - 1;
}

void ChaosEngine::schedulePhase(std::size_t fault, Time at, bool inject,
                                std::function<void()> action) {
  sim_.scheduleAt(at, [this, fault, inject, action = std::move(action)] {
    FaultRecord& record = faults_[fault];
    if (inject) {
      ++record.injections;
    } else {
      ++record.recoveries;
    }
    trace_.push_back(
        ChaosEvent{sim_.now(), record.label, inject ? "inject" : "recover"});
    LIDC_FR_EVENT(recorder_, kWarn, "chaos",
                  std::string(inject ? "inject " : "recover ") + record.label +
                      " (" + std::string(faultKindName(record.kind)) + ")");
    LIDC_LOG(kInfo, "chaos") << (inject ? "inject " : "recover ") << record.label
                             << " (" << faultKindName(record.kind) << ")";
    action();
  });
}

void ChaosEngine::linkDown(std::string label, net::Link& link, Time at,
                           Duration outage) {
  const std::size_t fault = declare(std::move(label), FaultKind::kLinkDown);
  schedulePhase(fault, at, /*inject=*/true, [&link] { link.setUp(false); });
  schedulePhase(fault, at + outage, /*inject=*/false, [&link] { link.setUp(true); });
}

void ChaosEngine::linkFlaps(std::string label, net::Link& link, Time from,
                            Time until, Duration meanUp, Duration meanDown) {
  const std::size_t fault = declare(std::move(label), FaultKind::kLinkFlaps);
  // The entire flap timeline is drawn now, from the engine seed, so the
  // schedule does not depend on event interleaving at run time.
  Time cursor = from;
  bool up = true;
  while (cursor < until) {
    const double meanSeconds = (up ? meanUp : meanDown).toSeconds();
    cursor = cursor + Duration::seconds(rng_.exponential(meanSeconds));
    if (cursor >= until) break;
    up = !up;
    const bool nowUp = up;
    schedulePhase(fault, cursor, /*inject=*/!nowUp,
                  [&link, nowUp] { link.setUp(nowUp); });
  }
  if (!up) {
    // Never leave the link down after the flap window.
    schedulePhase(fault, until, /*inject=*/false, [&link] { link.setUp(true); });
  }
}

void ChaosEngine::lossBurst(std::string label, net::Link& link, Time at,
                            Duration burst, double lossRate) {
  const std::size_t fault = declare(std::move(label), FaultKind::kLossBurst);
  // The pre-burst rate is captured at inject time (not plan time): the
  // link's parameters may have been reconfigured in between.
  auto previous = std::make_shared<double>(0.0);
  schedulePhase(fault, at, /*inject=*/true, [&link, previous, lossRate] {
    net::LinkParams params = link.params();
    *previous = params.lossRate;
    params.lossRate = lossRate;
    link.setParams(params);
  });
  schedulePhase(fault, at + burst, /*inject=*/false, [&link, previous] {
    net::LinkParams params = link.params();
    params.lossRate = *previous;
    link.setParams(params);
  });
}

void ChaosEngine::latencyBurst(std::string label, net::Link& link, Time at,
                               Duration burst, Duration extraLatency) {
  const std::size_t fault = declare(std::move(label), FaultKind::kLatencyBurst);
  auto previous = std::make_shared<Duration>();
  schedulePhase(fault, at, /*inject=*/true, [&link, previous, extraLatency] {
    net::LinkParams params = link.params();
    *previous = params.latency;
    params.latency = params.latency + extraLatency;
    link.setParams(params);
  });
  schedulePhase(fault, at + burst, /*inject=*/false, [&link, previous] {
    net::LinkParams params = link.params();
    params.latency = *previous;
    link.setParams(params);
  });
}

void ChaosEngine::nodeCrash(std::string label, k8s::Cluster& cluster,
                            std::string node, Time at) {
  const std::size_t fault = declare(std::move(label), FaultKind::kNodeCrash);
  schedulePhase(fault, at, /*inject=*/true,
                [&cluster, node = std::move(node)] { cluster.failNode(node); });
}

void ChaosEngine::clusterCrash(std::string label, k8s::Cluster& cluster, Time at) {
  const std::size_t fault = declare(std::move(label), FaultKind::kClusterCrash);
  schedulePhase(fault, at, /*inject=*/true, [&cluster] {
    // Node names are collected at fire time so nodes added after the
    // plan was written still crash with the cluster.
    for (const auto& name : cluster.nodeNames()) cluster.failNode(name);
  });
}

void ChaosEngine::blackout(std::string label, Time at, Duration window,
                           std::function<void(bool)> toggle) {
  const std::size_t fault = declare(std::move(label), FaultKind::kBlackout);
  schedulePhase(fault, at, /*inject=*/true, [toggle] { toggle(true); });
  schedulePhase(fault, at + window, /*inject=*/false, [toggle] { toggle(false); });
}

void ChaosEngine::corruption(std::string label, net::Link& link, Time at,
                             Duration window, double corruptRate) {
  const std::size_t fault = declare(std::move(label), FaultKind::kCorruption);
  auto previous = std::make_shared<double>(0.0);
  // Drawn at declaration so the stream depends only on the chaos seed
  // and the declaration order, never on injection timing.
  const std::uint64_t corruptSeed = rng_();
  schedulePhase(fault, at, /*inject=*/true,
                [&link, previous, corruptRate, corruptSeed] {
    net::LinkParams params = link.params();
    *previous = params.corruptRate;
    params.corruptRate = corruptRate;
    link.setParams(params);
    link.reseedCorruption(corruptSeed);
  });
  schedulePhase(fault, at + window, /*inject=*/false, [&link, previous] {
    net::LinkParams params = link.params();
    params.corruptRate = *previous;
    link.setParams(params);
  });
}

void ChaosEngine::slowNode(std::string label, k8s::Cluster& cluster,
                           std::string node, Time at, Duration window,
                           double factor) {
  const std::size_t fault = declare(std::move(label), FaultKind::kSlowNode);
  schedulePhase(fault, at, /*inject=*/true, [&cluster, node, factor] {
    cluster.setNodeSlowdown(node, factor);
  });
  schedulePhase(fault, at + window, /*inject=*/false,
                [&cluster, node = std::move(node)] {
                  cluster.setNodeSlowdown(node, 1.0);
                });
}

void ChaosEngine::grayGateway(std::string label, Time at, Duration window,
                              std::function<void(bool)> toggle) {
  const std::size_t fault = declare(std::move(label), FaultKind::kGrayGateway);
  schedulePhase(fault, at, /*inject=*/true, [toggle] { toggle(true); });
  schedulePhase(fault, at + window, /*inject=*/false, [toggle] { toggle(false); });
}

void ChaosEngine::staleReplay(std::string label, Time at, Duration window,
                              std::function<void(bool)> toggle) {
  const std::size_t fault = declare(std::move(label), FaultKind::kStaleReplay);
  schedulePhase(fault, at, /*inject=*/true, [toggle] { toggle(true); });
  schedulePhase(fault, at + window, /*inject=*/false, [toggle] { toggle(false); });
}

void ChaosEngine::noisyNeighbor(std::string label, Time from, Time until,
                                Duration meanGap,
                                std::function<void()> submit) {
  const std::size_t fault = declare(std::move(label), FaultKind::kNoisyNeighbor);
  // Like linkFlaps: the whole submit timeline is drawn at plan time from
  // the engine seed, independent of run-time event interleaving. Window
  // edges go through schedulePhase (trace + flight recorder); the burst
  // of individual submits only bumps the injection counter.
  schedulePhase(fault, from, /*inject=*/true, [] {});
  Time cursor = from;
  while (true) {
    cursor = cursor + Duration::seconds(rng_.exponential(meanGap.toSeconds()));
    if (cursor >= until) break;
    sim_.scheduleAt(cursor, [this, fault, submit] {
      ++faults_[fault].injections;
      submit();
    });
  }
  schedulePhase(fault, until, /*inject=*/false, [] {});
}

void ChaosEngine::drain(std::string label, Time at,
                        std::function<void()> action) {
  const std::size_t fault = declare(std::move(label), FaultKind::kDrain);
  schedulePhase(fault, at, /*inject=*/true, std::move(action));
}

void ChaosEngine::custom(std::string label, Time at, std::function<void()> apply) {
  const std::size_t fault = declare(std::move(label), FaultKind::kCustom);
  schedulePhase(fault, at, /*inject=*/true, std::move(apply));
}

std::string ChaosEngine::traceString() const {
  std::string out;
  char buf[64];
  for (const auto& event : trace_) {
    std::snprintf(buf, sizeof(buf), "t=%.6fs ", event.at.toSeconds());
    out += buf;
    out += event.phase;
    out += ' ';
    out += event.label;
    out += '\n';
  }
  return out;
}

std::uint64_t ChaosEngine::totalInjections() const noexcept {
  std::uint64_t total = 0;
  for (const auto& fault : faults_) total += fault.injections;
  return total;
}

std::uint64_t ChaosEngine::totalRecoveries() const noexcept {
  std::uint64_t total = 0;
  for (const auto& fault : faults_) total += fault.recoveries;
  return total;
}

void ChaosEngine::attachTelemetry(telemetry::MetricsRegistry& registry) {
  registry.registerCollector([this, &registry] {
    registry.counter("lidc_chaos_injections").set(totalInjections());
    registry.counter("lidc_chaos_recoveries").set(totalRecoveries());
    registry.gauge("lidc_chaos_faults_declared")
        .set(static_cast<double>(faults_.size()));
    for (const auto& fault : faults_) {
      registry
          .counter("lidc_chaos_fault_injections",
                   {{"kind", std::string(faultKindName(fault.kind))},
                    {"fault", fault.label}})
          .set(fault.injections);
    }
  });
}

}  // namespace lidc::sim
