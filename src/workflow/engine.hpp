// WorkflowEngine: runs a WorkflowSpec on top of LidcClient. Every ready
// stage is dispatched concurrently through the client's retry/failover/
// deadline machinery; each stage's result is published to the data lake
// under the deterministic /ndn/k8s/data/wf/<wf_id>/<stage> name so
// downstream stages (possibly on different clusters) pull it by name.
//
// Locality-aware placement: when enabled, a stage's request carries
// out=wf/<id>/<stage>, so the producing job writes the intermediate
// straight into the lake of the cluster that ran it — zero bytes cross
// the overlay. Consumer stages declare intermediates as dataset=
// entries, so gateways whose lake lacks the object nack (NoRoute) and
// the named network itself biases the consumer toward the cluster
// already holding the producer's output. With locality off the engine
// does the naive thing instead — fetch the result to the client and
// republish it anycast — and counts every byte moved, making the bias
// measurable (bench_workflow).
//
// Failure handling reuses the client's failover loop per stage and adds
// lineage recovery on top: when a stage fails and one of its upstream
// intermediates turns out to be unreachable (its cluster died with its
// lake), the producer is reset and recomputed on a surviving cluster —
// so killing a cluster mid-workflow still completes every stage.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "core/predictor.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "workflow/spec.hpp"

namespace lidc::workflow {

enum class StageState {
  kPending,    // waiting on upstream outputs (or dispatch capacity)
  kRunning,    // submitted; the client is driving it to completion
  kStaging,    // job done; intermediate being fetched + republished
  kCompleted,  // output available under the wf intermediate name
  kFailed,     // terminal failure after all retries
  kSkipped,    // not run: an upstream failed, or fail-fast aborted
};

std::string_view stageStateName(StageState state) noexcept;

/// What happens to the rest of the DAG when a stage fails terminally.
enum class FailurePolicy {
  kFailFast,             // skip every stage not already running
  kContinueIndependent,  // skip only transitive dependents; independent
                         // branches run to completion
};

struct WorkflowOptions {
  FailurePolicy failurePolicy = FailurePolicy::kFailFast;
  /// Bias consumer stages toward the cluster holding their inputs (see
  /// file comment). Off = fetch + republish every intermediate anycast.
  bool localityAware = true;
  /// Concurrency cap on dispatched stages. 0 = unbounded (DAG order
  /// alone limits parallelism); 1 = strictly sequential in topo order.
  std::size_t maxConcurrentStages = 0;
  /// Engine-level re-runs per stage on top of the client's own submit
  /// retries and failovers (lineage recovery consumes this budget).
  int maxStageRetries = 2;
  /// Observer for the engine's event log ("t=..s dispatch <stage>"
  /// lines), invoked as events are appended. Narration hook.
  std::function<void(const std::string&)> observer;
  /// Fleet-health gate on dispatch: when fleetHealth() (caller-composed,
  /// e.g. max over TelemetryCollector::healthScore of the clusters that
  /// could run work) drops below minFleetHealth, ready stages are held
  /// back and re-checked every healthRecheckInterval instead of burning
  /// stage retries into a degraded fleet. Zero threshold = disabled.
  std::function<double()> fleetHealth;
  double minFleetHealth = 0.0;
  sim::Duration healthRecheckInterval = sim::Duration::millis(500);
  /// Straggler hedging: a Running stage that exceeds hedgeMultiplier x
  /// its predicted runtime (floored at hedgeFloor; the floor alone when
  /// the predictor has no estimate) gets a backup dispatch with a fresh
  /// request id. First terminal leg settles the stage; a slow-node
  /// straggler loses the race instead of stretching the makespan.
  bool enableHedging = false;
  double hedgeMultiplier = 3.0;
  sim::Duration hedgeFloor = sim::Duration::seconds(30);
  /// Tenant context carried by every stage request. When set, each
  /// submit is stamped with params["tenant"] so a tenant-aware client
  /// routes it under /ndn/k8s/submit/<tenant>/ and the gateway's
  /// admission controller charges this workflow's jobs against the
  /// tenant's quotas. Empty = untenanted (legacy compute path).
  std::string tenant;
  /// Lookahead pre-staging (replica plane): when a producer stage
  /// dispatches, this fires once per consumer with the inputs that
  /// consumer already has available (lake datasets + completed
  /// upstream intermediates), so a PrestageCoordinator can stream them
  /// toward compute while the producer is still running.
  std::function<void(const std::string& consumerStage,
                     const std::vector<std::string>& inputs)>
      prestageHook;
  /// Dispatch-time input staging: invoked with a stage's full dataset
  /// list before its submit; the continuation receives the bytes moved
  /// over the overlay *at dispatch* (0 when lookahead already staged
  /// everything — the measurable win of predictive pre-staging). The
  /// engine records the bytes per stage and in the outcome.
  std::function<void(const std::string& stage,
                     const std::vector<std::string>& inputs,
                     std::function<void(std::uint64_t)> done)>
      ensureInputsLocal;
  /// Checkpoint restore on retry (migration plane): invoked with the
  /// stage name and the job id of the failed attempt before a retry is
  /// dispatched. Returning extra request params (typically ckpt=<job>/
  /// <epoch> + ckpt_digest=<pin>) makes the retry *resume* the stage
  /// from its latest checkpoint instead of recomputing it; an empty map
  /// retries cold. Consulted before lineage recovery would recompute
  /// upstream producers, so saved work is preferred over recompute.
  std::function<std::map<std::string, std::string>(
      const std::string& stage, const std::string& jobId)>
      restoreParamsHook;
};

/// Terminal per-stage report.
struct StageStatus {
  StageState state = StageState::kPending;
  std::string cluster;      // where the (last) attempt ran
  std::string outputName;   // /ndn/k8s/data/wf/<id>/<stage> when completed
  std::uint64_t outputBytes = 0;
  sim::Duration runtime;    // job runtime reported by the cluster
  int failovers = 0;        // client-level failovers of the last attempt
  int retries = 0;          // engine-level re-runs (incl. lineage resets)
  std::string error;        // last failure, empty when completed
  sim::Time dispatchedAt;
  sim::Time finishedAt;
  /// Bytes moved at dispatch to make this stage's inputs local
  /// (ensureInputsLocal); 0 when pre-staging already delivered them.
  std::uint64_t dispatchStagingBytes = 0;
  /// Job id of the last attempt that acked (restoreParamsHook input).
  std::string lastJobId;
};

/// Aggregated outcome of one workflow run.
struct WorkflowOutcome {
  std::string id;
  bool succeeded = false;  // every stage completed
  std::map<std::string, StageStatus> stages;
  sim::Duration makespan;  // run() -> last stage terminal
  /// Intermediate bytes the engine moved over the overlay (fetches +
  /// republishes while staging). Zero under locality-aware placement.
  std::uint64_t intermediateBytesMoved = 0;
  /// Input bytes moved at stage dispatch time (ensureInputsLocal
  /// across all stages). Zero when lookahead pre-staging kept every
  /// dispatch local.
  std::uint64_t dispatchBytesMoved = 0;
  /// Producer stages recomputed because their output became unreachable.
  int lineageRecoveries = 0;
  /// Stage retries that resumed from a checkpoint (restoreParamsHook
  /// returned params) instead of recomputing from scratch.
  int checkpointRestores = 0;
  /// Deterministic event log; byte-identical across same-seed runs.
  std::string trace;
};

class WorkflowEngine {
 public:
  explicit WorkflowEngine(core::LidcClient& client, WorkflowOptions options = {});

  using DoneCallback = std::function<void(Result<WorkflowOutcome>)>;

  /// Validates the spec and drives it to a terminal outcome. The
  /// callback receives an error only for invalid specs; execution
  /// failures are reported per stage inside the outcome.
  void run(WorkflowSpec spec, DoneCallback done);

  /// Builds the compute request a stage would be dispatched with —
  /// exposed so tests can assert on the semantic names the engine emits.
  [[nodiscard]] core::ComputeRequest buildRequest(const WorkflowSpec& spec,
                                                  const StageSpec& stage) const;

  /// Online per-(app, input) runtime model fed by completed stages;
  /// ready stages are dispatched longest-predicted-first so the DAG's
  /// critical path starts as early as possible.
  [[nodiscard]] core::CompletionTimePredictor& predictor() noexcept {
    return predictor_;
  }

  /// Intermediate bytes moved across all runs of this engine.
  [[nodiscard]] std::uint64_t bytesMoved() const noexcept { return bytes_moved_; }
  [[nodiscard]] std::uint64_t stagesDispatched() const noexcept {
    return stages_dispatched_;
  }
  /// Straggler hedges launched / won by the backup leg.
  [[nodiscard]] std::uint64_t stageHedges() const noexcept { return stage_hedges_; }
  [[nodiscard]] std::uint64_t stageHedgesWon() const noexcept {
    return stage_hedges_won_;
  }

  /// Mirrors engine activity into `registry` (runs, stage dispatches/
  /// retries, lineage recoveries, bytes moved, makespan histogram). With
  /// a tracer every run() opens a root "workflow" span; stage spans and
  /// the client/forwarder/gateway/K8s spans beneath them all share it.
  void attachTelemetry(telemetry::MetricsRegistry& registry,
                       telemetry::Tracer* tracer = nullptr);

 private:
  struct Run;
  struct StageRace;

  void dispatchReady(const std::shared_ptr<Run>& run);
  void dispatchStage(const std::shared_ptr<Run>& run, std::size_t index);
  /// Fires the lookahead prestage hook (once per consumer per run)
  /// when the producer at `producerIndex` starts running.
  void firePrestage(const std::shared_ptr<Run>& run, std::size_t producerIndex);
  /// Launches the dispatch race (primary leg + hedge watchdog).
  void launchStage(const std::shared_ptr<Run>& run, std::size_t index,
                   std::shared_ptr<core::ComputeRequest> request);
  /// Runs one leg (primary or hedge) of a stage's dispatch race.
  void launchStageLeg(const std::shared_ptr<Run>& run, std::size_t index,
                      std::shared_ptr<core::ComputeRequest> request,
                      std::shared_ptr<StageRace> race, bool isHedge);
  /// Schedules the straggler-hedge timer for a just-dispatched stage
  /// (no-op unless enableHedging).
  void armStageHedge(const std::shared_ptr<Run>& run, std::size_t index,
                     std::shared_ptr<core::ComputeRequest> request,
                     std::shared_ptr<StageRace> race);
  void stageIntermediate(const std::shared_ptr<Run>& run, std::size_t index,
                         const std::string& resultPath);
  void completeStage(const std::shared_ptr<Run>& run, std::size_t index);
  void handleStageFailure(const std::shared_ptr<Run>& run, std::size_t index,
                          const Status& why);
  /// Probes the availability of a failed stage's upstream intermediates
  /// and resets unreachable producers (lineage recovery).
  void probeInputsAndRecover(const std::shared_ptr<Run>& run, std::size_t index);
  void failTerminally(const std::shared_ptr<Run>& run, std::size_t index);
  void skipDependents(const std::shared_ptr<Run>& run, std::size_t index);
  void maybeFinish(const std::shared_ptr<Run>& run);
  void trace(const std::shared_ptr<Run>& run, const std::string& line);

  /// Registry handles + tracer; null until attachTelemetry().
  struct Telemetry {
    telemetry::Counter* runs = nullptr;
    telemetry::Counter* runsSucceeded = nullptr;
    telemetry::Counter* runsFailed = nullptr;
    telemetry::Counter* stagesDispatched = nullptr;
    telemetry::Counter* stageRetries = nullptr;
    telemetry::Counter* stageHedges = nullptr;
    telemetry::Counter* stageHedgesWon = nullptr;
    telemetry::Counter* lineageRecoveries = nullptr;
    telemetry::Counter* bytesMoved = nullptr;
    telemetry::Histogram* makespanUs = nullptr;
    telemetry::Tracer* tracer = nullptr;
  };

  core::LidcClient& client_;
  WorkflowOptions options_;
  core::CompletionTimePredictor predictor_;
  std::uint64_t bytes_moved_ = 0;
  std::uint64_t stages_dispatched_ = 0;
  std::uint64_t stage_hedges_ = 0;
  std::uint64_t stage_hedges_won_ = 0;
  std::unique_ptr<Telemetry> telemetry_;
};

}  // namespace lidc::workflow
