#include "workflow/spec.hpp"

#include <algorithm>
#include <map>

#include "core/semantic_name.hpp"

namespace lidc::workflow {

namespace {

/// Identifiers become single name components and '/'-separated path
/// segments, so they must stay inside the URI-safe alphabet.
bool isNameSafe(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

const StageSpec* WorkflowSpec::stage(const std::string& name) const {
  for (const auto& s : stages) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string intermediatePath(const std::string& wfId, const std::string& stage) {
  return "wf/" + wfId + "/" + stage;
}

ndn::Name intermediateName(const std::string& wfId, const std::string& stage) {
  ndn::Name name = core::kDataPrefix;
  name.append("wf").append(wfId).append(stage);
  return name;
}

Result<std::vector<std::size_t>> validateAndOrder(const WorkflowSpec& spec) {
  if (!isNameSafe(spec.id)) {
    return Status::InvalidArgument("workflow id '" + spec.id +
                                   "' must be a non-empty name-safe token");
  }
  if (spec.stages.empty()) {
    return Status::InvalidArgument("workflow '" + spec.id + "' has no stages");
  }

  std::map<std::string, std::size_t> indexOf;
  for (std::size_t i = 0; i < spec.stages.size(); ++i) {
    const StageSpec& stage = spec.stages[i];
    if (!isNameSafe(stage.name)) {
      return Status::InvalidArgument("stage name '" + stage.name +
                                     "' must be a non-empty name-safe token");
    }
    if (stage.app.empty()) {
      return Status::InvalidArgument("stage '" + stage.name + "' names no app");
    }
    if (!indexOf.emplace(stage.name, i).second) {
      return Status::InvalidArgument("duplicate stage name '" + stage.name + "'");
    }
  }

  // Dangling-input and self-reference detection, then in-degrees.
  std::vector<std::size_t> indegree(spec.stages.size(), 0);
  std::vector<std::vector<std::size_t>> consumers(spec.stages.size());
  for (std::size_t i = 0; i < spec.stages.size(); ++i) {
    for (const StageInput& input : spec.stages[i].stageInputs) {
      auto it = indexOf.find(input.stage);
      if (it == indexOf.end()) {
        return Status::InvalidArgument("stage '" + spec.stages[i].name +
                                       "' consumes unknown stage '" +
                                       input.stage + "'");
      }
      if (it->second == i) {
        return Status::InvalidArgument("stage '" + spec.stages[i].name +
                                       "' consumes its own output");
      }
      ++indegree[i];
      consumers[it->second].push_back(i);
    }
  }

  // Kahn topological sort; the ready set is drained in declaration
  // order so the result is deterministic for a given spec.
  std::vector<std::size_t> order;
  order.reserve(spec.stages.size());
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < spec.stages.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    const std::size_t next = *std::min_element(ready.begin(), ready.end());
    std::erase(ready, next);
    order.push_back(next);
    for (std::size_t consumer : consumers[next]) {
      if (--indegree[consumer] == 0) ready.push_back(consumer);
    }
  }
  if (order.size() != spec.stages.size()) {
    std::string cyclic;
    for (std::size_t i = 0; i < spec.stages.size(); ++i) {
      if (indegree[i] > 0) {
        if (!cyclic.empty()) cyclic += ", ";
        cyclic += spec.stages[i].name;
      }
    }
    return Status::InvalidArgument("workflow '" + spec.id +
                                   "' has a dependency cycle through: " + cyclic);
  }
  return order;
}

}  // namespace lidc::workflow
