// WorkflowSpec: a declared DAG of named compute stages (the paper's
// unit of work — "user workflows express jobs as NDN Interests" and
// "publish intermediate datasets back to the data lake"). Each stage
// names an application plus resources; its data inputs are either
// objects already in a lake or the named outputs of upstream stages.
// Stage outputs live under the deterministic intermediate namespace
// /ndn/k8s/data/wf/<wf_id>/<stage>, so downstream stages — possibly on
// different clusters — pull them by name alone.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "ndn/name.hpp"

namespace lidc::workflow {

/// One upstream dependency: the named output of `stage`. When
/// `bindParam` is non-empty the resolved intermediate path is also
/// passed as that request parameter (e.g. "input" for the compression
/// app); either way it is declared as a dataset so gateways whose lake
/// lacks it nack and the network routes the stage elsewhere.
struct StageInput {
  std::string stage;
  std::string bindParam;
};

/// One named compute stage of a workflow.
struct StageSpec {
  std::string name;  // unique within the workflow, name-component safe
  std::string app;   // e.g. "BLAST", "compress", "transform"
  MilliCpu cpu;
  ByteSize memory;
  std::map<std::string, std::string> params;
  /// Objects that must already exist in a data lake ('/'-separated
  /// paths under /ndn/k8s/data); declared as dataset= in the name.
  std::vector<std::string> lakeInputs;
  /// Outputs of upstream stages (fan-in edges of the DAG).
  std::vector<StageInput> stageInputs;
};

struct WorkflowSpec {
  std::string id;  // unique workflow id, name-component safe
  std::vector<StageSpec> stages;

  /// Fluent helper for building specs in examples/tests.
  StageSpec& addStage(StageSpec stage) {
    stages.push_back(std::move(stage));
    return stages.back();
  }

  [[nodiscard]] const StageSpec* stage(const std::string& name) const;
};

/// '/'-separated lake path of a stage's intermediate ("wf/<id>/<stage>").
std::string intermediatePath(const std::string& wfId, const std::string& stage);

/// Full content name: /ndn/k8s/data/wf/<wf_id>/<stage>.
ndn::Name intermediateName(const std::string& wfId, const std::string& stage);

/// Validates the spec — non-empty id/stages, name-safe identifiers,
/// unique stage names, no dangling stage inputs, no self-references, no
/// cycles — and returns stage indices in a deterministic topological
/// order (Kahn's algorithm; ready stages in declaration order).
Result<std::vector<std::size_t>> validateAndOrder(const WorkflowSpec& spec);

}  // namespace lidc::workflow
