#include "workflow/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "k8s/job.hpp"

namespace lidc::workflow {

std::string_view stageStateName(StageState state) noexcept {
  switch (state) {
    case StageState::kPending: return "Pending";
    case StageState::kRunning: return "Running";
    case StageState::kStaging: return "Staging";
    case StageState::kCompleted: return "Completed";
    case StageState::kFailed: return "Failed";
    case StageState::kSkipped: return "Skipped";
  }
  return "Unknown";
}

/// Live state of one run(); kept on the heap because stage callbacks
/// outlive the run() call by many simulated minutes.
struct WorkflowEngine::Run {
  WorkflowSpec spec;
  std::vector<std::size_t> order;                 // deterministic topo order
  std::map<std::string, std::size_t> indexOf;     // stage name -> index
  std::vector<std::vector<std::size_t>> consumers;
  std::vector<StageStatus> statuses;
  /// Consumers whose prestage hook already fired (once per run).
  std::vector<bool> prestageFired;
  WorkflowOutcome outcome;
  sim::Time startedAt;
  /// Stages in flight (Running/Staging) plus outstanding lineage
  /// probes; the run is terminal only when this reaches zero.
  std::size_t running = 0;
  bool aborted = false;   // fail-fast tripped
  bool finished = false;
  /// Fleet-health gate state: a recheck timer is armed / the deferral
  /// has already been traced for this degraded period.
  bool deferPending = false;
  bool deferring = false;
  DoneCallback done;
  /// Root "workflow" span and the open span of each stage's current
  /// attempt (all invalid when no tracer is attached).
  telemetry::TraceContext rootCtx;
  std::vector<telemetry::TraceContext> stageCtx;
};

WorkflowEngine::WorkflowEngine(core::LidcClient& client, WorkflowOptions options)
    : client_(client), options_(std::move(options)) {}

void WorkflowEngine::run(WorkflowSpec spec, DoneCallback done) {
  Result<std::vector<std::size_t>> ordered = validateAndOrder(spec);
  if (!ordered.ok()) {
    done(ordered.status());
    return;
  }
  auto run = std::make_shared<Run>();
  run->spec = std::move(spec);
  run->order = std::move(ordered).value();
  run->statuses.resize(run->spec.stages.size());
  run->consumers.resize(run->spec.stages.size());
  run->prestageFired.resize(run->spec.stages.size());
  for (std::size_t i = 0; i < run->spec.stages.size(); ++i) {
    run->indexOf.emplace(run->spec.stages[i].name, i);
  }
  for (std::size_t i = 0; i < run->spec.stages.size(); ++i) {
    for (const StageInput& input : run->spec.stages[i].stageInputs) {
      run->consumers[run->indexOf.at(input.stage)].push_back(i);
    }
  }
  run->outcome.id = run->spec.id;
  run->startedAt = client_.simulator().now();
  run->done = std::move(done);
  run->stageCtx.resize(run->spec.stages.size());
  if (telemetry_) {
    telemetry_->runs->inc();
    if (telemetry_->tracer != nullptr) {
      run->rootCtx = telemetry_->tracer->startTrace(
          "workflow", "workflow:" + run->spec.id,
          {{"stages", std::to_string(run->spec.stages.size())}});
    }
  }
  trace(run, "start workflow " + run->spec.id + " stages=" +
                 std::to_string(run->spec.stages.size()));
  dispatchReady(run);
}

core::ComputeRequest WorkflowEngine::buildRequest(const WorkflowSpec& spec,
                                                  const StageSpec& stage) const {
  core::ComputeRequest request;
  request.app = stage.app;
  request.cpu = stage.cpu;
  request.memory = stage.memory;
  request.params = stage.params;
  if (!options_.tenant.empty()) request.params["tenant"] = options_.tenant;
  // Flow attribution: submit Interests (and intermediate staging below)
  // carry the workflow id, so the weathermap's top-talker lists name
  // the workflow that moved the bytes.
  request.flowTag = "wf/" + spec.id;
  request.datasets = stage.lakeInputs;
  for (const StageInput& input : stage.stageInputs) {
    const std::string path = intermediatePath(spec.id, input.stage);
    request.datasets.push_back(path);
    if (!input.bindParam.empty()) request.params[input.bindParam] = path;
  }
  if (options_.localityAware) {
    // The job writes its output straight into the lake of the cluster
    // that runs it, already under the workflow intermediate name — no
    // bytes cross the overlay, and downstream stages are pulled toward
    // this cluster because only its gateway can validate the dataset.
    request.params["out"] = intermediatePath(spec.id, stage.name);
  }
  return request;
}

void WorkflowEngine::dispatchReady(const std::shared_ptr<Run>& run) {
  if (run->finished) return;
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  if (options_.fleetHealth && options_.minFleetHealth > 0.0 && !run->aborted) {
    bool hasPending = false;
    for (const StageStatus& st : run->statuses) {
      if (st.state == StageState::kPending) {
        hasPending = true;
        break;
      }
    }
    if (hasPending) {
      if (run->deferPending) return;  // recheck timer already armed
      const double health = options_.fleetHealth();
      if (health < options_.minFleetHealth) {
        if (!run->deferring) {
          run->deferring = true;
          char line[64];
          std::snprintf(line, sizeof(line), "defer dispatch fleet-health=%.2f",
                        health);
          trace(run, line);
        }
        run->deferPending = true;
        client_.simulator().scheduleAfter(
            options_.healthRecheckInterval, [this, run] {
              run->deferPending = false;
              dispatchReady(run);
            });
        return;
      }
      if (run->deferring) {
        run->deferring = false;
        trace(run, "resume dispatch");
      }
    }
  }
  while (options_.maxConcurrentStages == 0 ||
         run->running < options_.maxConcurrentStages) {
    // Longest-predicted-first among ready stages, so the critical path
    // starts as early as possible; unpredicted stages sort first and
    // ties fall back to the deterministic topo order.
    std::size_t best = kNone;
    double bestPredicted = -1.0;
    for (std::size_t i : run->order) {
      if (run->statuses[i].state != StageState::kPending) continue;
      bool ready = true;
      for (const StageInput& input : run->spec.stages[i].stageInputs) {
        if (run->statuses[run->indexOf.at(input.stage)].state !=
            StageState::kCompleted) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      const auto predicted =
          predictor_.predict(buildRequest(run->spec, run->spec.stages[i]));
      const double seconds = predicted
                                 ? predicted->toSeconds()
                                 : std::numeric_limits<double>::infinity();
      if (best == kNone || seconds > bestPredicted) {
        best = i;
        bestPredicted = seconds;
      }
    }
    if (best == kNone) break;
    dispatchStage(run, best);
  }
  maybeFinish(run);
}

void WorkflowEngine::dispatchStage(const std::shared_ptr<Run>& run,
                                   std::size_t index) {
  StageStatus& st = run->statuses[index];
  st.state = StageState::kRunning;
  st.dispatchedAt = client_.simulator().now();
  st.error.clear();
  ++run->running;
  ++stages_dispatched_;
  const StageSpec& stage = run->spec.stages[index];
  trace(run, "dispatch " + stage.name + " app=" + stage.app);
  if (telemetry_) {
    telemetry_->stagesDispatched->inc();
    if (telemetry_->tracer != nullptr) {
      run->stageCtx[index] = telemetry_->tracer->startSpan(
          "stage", "workflow:" + run->spec.id, run->rootCtx,
          {{"stage", stage.name},
           {"app", stage.app},
           {"attempt", std::to_string(st.retries)}});
    }
  }

  auto request =
      std::make_shared<core::ComputeRequest>(buildRequest(run->spec, stage));
  // Retry of a checkpointed stage: resume from its latest checkpoint
  // instead of recomputing — the saved prefix beats lineage recompute.
  if (st.retries > 0 && options_.restoreParamsHook && !st.lastJobId.empty()) {
    auto extra = options_.restoreParamsHook(stage.name, st.lastJobId);
    if (!extra.empty()) {
      for (auto& [key, value] : extra) request->params[key] = value;
      ++run->outcome.checkpointRestores;
      trace(run, "ckpt-restore " + stage.name + " job=" + st.lastJobId);
    }
  }
  // Lookahead: while this stage runs, its consumers' already-available
  // inputs can stream toward compute.
  firePrestage(run, index);
  if (options_.ensureInputsLocal && !request->datasets.empty()) {
    options_.ensureInputsLocal(
        stage.name, request->datasets,
        [this, run, index, request](std::uint64_t bytes) {
          if (run->finished) return;
          StageStatus& status = run->statuses[index];
          if (status.state != StageState::kRunning) return;
          status.dispatchStagingBytes += bytes;
          run->outcome.dispatchBytesMoved += bytes;
          trace(run, "inputs-local " + run->spec.stages[index].name +
                         " bytes=" + std::to_string(bytes));
          launchStage(run, index, request);
        });
    return;
  }
  launchStage(run, index, request);
}

void WorkflowEngine::launchStage(const std::shared_ptr<Run>& run,
                                 std::size_t index,
                                 std::shared_ptr<core::ComputeRequest> request) {
  auto race = std::make_shared<StageRace>();
  launchStageLeg(run, index, request, race, /*isHedge=*/false);
  armStageHedge(run, index, request, race);
}

void WorkflowEngine::firePrestage(const std::shared_ptr<Run>& run,
                                  std::size_t producerIndex) {
  if (!options_.prestageHook) return;
  for (std::size_t consumer : run->consumers[producerIndex]) {
    if (run->prestageFired[consumer]) continue;
    run->prestageFired[consumer] = true;
    const StageSpec& spec = run->spec.stages[consumer];
    // Only inputs that exist somewhere already: lake datasets plus
    // intermediates of completed upstreams. The running producer's own
    // output is not fetchable yet (and with locality-aware placement it
    // will be born local anyway).
    std::vector<std::string> inputs = spec.lakeInputs;
    for (const StageInput& input : spec.stageInputs) {
      if (run->statuses[run->indexOf.at(input.stage)].state ==
          StageState::kCompleted) {
        inputs.push_back(intermediatePath(run->spec.id, input.stage));
      }
    }
    if (inputs.empty()) continue;
    trace(run, "prestage " + spec.name + " inputs=" +
                   std::to_string(inputs.size()));
    options_.prestageHook(spec.name, inputs);
  }
}

/// Shared state of one stage dispatch: the primary leg plus (possibly)
/// a straggler hedge racing it. First terminal leg settles the stage.
struct WorkflowEngine::StageRace {
  bool settled = false;
  int outstanding = 0;
};

void WorkflowEngine::armStageHedge(const std::shared_ptr<Run>& run,
                                   std::size_t index,
                                   std::shared_ptr<core::ComputeRequest> request,
                                   std::shared_ptr<StageRace> race) {
  if (!options_.enableHedging) return;
  // Arm the straggler watchdog: if the stage is still Running past
  // hedgeMultiplier x the predicted runtime (or the floor, whichever is
  // larger), race a backup dispatch against it. The backup's fresh
  // request id frees the forwarding strategy to place it on a
  // different — hopefully non-limping — cluster.
  const auto predicted = predictor_.predict(*request);
  sim::Duration delay = options_.hedgeFloor;
  if (predicted.has_value()) {
    delay = std::max(delay, *predicted * options_.hedgeMultiplier);
  }
  client_.simulator().scheduleAfter(delay, [this, run, index, request, race] {
    if (race->settled || run->finished) return;
    if (run->statuses[index].state != StageState::kRunning) return;
    ++stage_hedges_;
    if (telemetry_) telemetry_->stageHedges->inc();
    trace(run, "hedge " + run->spec.stages[index].name);
    launchStageLeg(run, index, request, race, /*isHedge=*/true);
  });
}

void WorkflowEngine::launchStageLeg(const std::shared_ptr<Run>& run,
                                    std::size_t index,
                                    std::shared_ptr<core::ComputeRequest> request,
                                    std::shared_ptr<StageRace> race,
                                    bool isHedge) {
  ++race->outstanding;
  client_.runToCompletion(
      *request,
      [this, run, index, request, race, isHedge](Result<core::JobOutcome> result) {
        --race->outstanding;
        if (race->settled) return;  // the other leg already settled the stage
        const bool completed =
            result.ok() && result->finalStatus.state == k8s::JobState::kCompleted;
        if (!completed && race->outstanding > 0) {
          // This leg lost, but its sibling is still racing: let the
          // stage ride on the survivor instead of burning a retry.
          trace(run, "leg-failed " + run->spec.stages[index].name +
                         " (sibling still racing)");
          return;
        }
        race->settled = true;
        StageStatus& status = run->statuses[index];
        if (result.ok()) {
          status.cluster = result->finalStatus.cluster;
          status.failovers = result->failovers;
          status.runtime = result->finalStatus.runtime;
          status.outputBytes = result->finalStatus.outputBytes;
          status.lastJobId = result->submit.jobId;
        }
        if (completed) {
          if (isHedge) {
            ++stage_hedges_won_;
            if (telemetry_) telemetry_->stageHedgesWon->inc();
            trace(run, "hedge-won " + run->spec.stages[index].name);
          }
          predictor_.record(*request, result->finalStatus.runtime);
          if (options_.localityAware) {
            completeStage(run, index);
          } else {
            stageIntermediate(run, index, result->finalStatus.resultPath);
          }
          return;
        }
        Status why = result.ok()
                         ? Status::Internal("job failed on cluster '" +
                                            result->finalStatus.cluster +
                                            "': " + result->finalStatus.error)
                         : result.status();
        handleStageFailure(run, index, why);
      },
      run->stageCtx[index]);
}

void WorkflowEngine::stageIntermediate(const std::shared_ptr<Run>& run,
                                       std::size_t index,
                                       const std::string& resultPath) {
  StageStatus& st = run->statuses[index];
  st.state = StageState::kStaging;
  const std::string name = run->spec.stages[index].name;
  trace(run, "staging " + name + " from " + resultPath);
  // Locality off: pull the raw result to the client, then republish it
  // anycast under the workflow intermediate name. Every byte crosses
  // the overlay twice — that is exactly the cost locality-aware
  // placement avoids, so count it.
  client_.fetchData(
      ndn::Name(resultPath),  // resultPath is a full /ndn/k8s/data/... URI
      [this, run, index, name](Result<std::vector<std::uint8_t>> fetched) {
        if (!fetched.ok()) {
          handleStageFailure(run, index,
                             Status::Internal("intermediate fetch failed: " +
                                              fetched.status().toString()));
          return;
        }
        const std::uint64_t size = fetched->size();
        bytes_moved_ += size;
        run->outcome.intermediateBytesMoved += size;
        if (telemetry_) telemetry_->bytesMoved->inc(size);
        client_.publishData(
            intermediatePath(run->spec.id, name), std::move(fetched).value(),
            [this, run, index, size](Result<ndn::Name> published) {
              if (!published.ok()) {
                handleStageFailure(
                    run, index,
                    Status::Internal("intermediate publish failed: " +
                                     published.status().toString()));
                return;
              }
              bytes_moved_ += size;
              run->outcome.intermediateBytesMoved += size;
              if (telemetry_) telemetry_->bytesMoved->inc(size);
              completeStage(run, index);
            },
            run->stageCtx[index], "wf/" + run->spec.id);
      },
      run->stageCtx[index], "wf/" + run->spec.id);
}

void WorkflowEngine::completeStage(const std::shared_ptr<Run>& run,
                                   std::size_t index) {
  StageStatus& st = run->statuses[index];
  st.state = StageState::kCompleted;
  st.finishedAt = client_.simulator().now();
  const std::string& name = run->spec.stages[index].name;
  st.outputName = intermediateName(run->spec.id, name).toUri();
  --run->running;
  if (telemetry_ && telemetry_->tracer != nullptr) {
    telemetry_->tracer->setAttr(run->stageCtx[index], "outcome", "completed");
    telemetry_->tracer->setAttr(run->stageCtx[index], "cluster", st.cluster);
    telemetry_->tracer->endSpan(run->stageCtx[index]);
  }
  trace(run, "complete " + name + " cluster=" + st.cluster +
                 " bytes=" + std::to_string(st.outputBytes));
  dispatchReady(run);
}

void WorkflowEngine::handleStageFailure(const std::shared_ptr<Run>& run,
                                        std::size_t index, const Status& why) {
  StageStatus& st = run->statuses[index];
  st.error = why.toString();
  const std::string& name = run->spec.stages[index].name;
  trace(run, "fail " + name + " (" + st.error + ")");
  if (!run->aborted && st.retries < options_.maxStageRetries) {
    ++st.retries;
    st.state = StageState::kPending;
    --run->running;
    if (telemetry_) {
      telemetry_->stageRetries->inc();
      if (telemetry_->tracer != nullptr) {
        telemetry_->tracer->setAttr(run->stageCtx[index], "outcome", "retry");
        telemetry_->tracer->endSpan(run->stageCtx[index]);
      }
    }
    trace(run, "retry " + name + " (" + std::to_string(st.retries) + "/" +
                   std::to_string(options_.maxStageRetries) + ")");
    probeInputsAndRecover(run, index);
    return;
  }
  failTerminally(run, index);
}

void WorkflowEngine::probeInputsAndRecover(const std::shared_ptr<Run>& run,
                                           std::size_t index) {
  const StageSpec& stage = run->spec.stages[index];
  if (stage.stageInputs.empty()) {
    dispatchReady(run);
    return;
  }
  // A consumer stage often fails because an upstream intermediate died
  // with its cluster (every surviving gateway nacks the dataset). Probe
  // each input by name; any that is unreachable gets its producer reset
  // and recomputed on a surviving cluster — Spark-lineage style.
  ++run->running;  // the probe batch holds the run open
  auto remaining = std::make_shared<std::size_t>(stage.stageInputs.size());
  for (const StageInput& input : stage.stageInputs) {
    const std::string producer = input.stage;
    client_.fetchData(
        intermediateName(run->spec.id, producer),
        [this, run, remaining, producer](Result<std::vector<std::uint8_t>> r) {
          if (!r.ok()) {
            const std::size_t pi = run->indexOf.at(producer);
            StageStatus& pst = run->statuses[pi];
            if (pst.state == StageState::kCompleted ||
                pst.state == StageState::kFailed) {
              if (pst.retries < options_.maxStageRetries) {
                ++pst.retries;
                pst.state = StageState::kPending;
                pst.error.clear();
                ++run->outcome.lineageRecoveries;
                if (telemetry_) telemetry_->lineageRecoveries->inc();
                trace(run, "reset " + producer +
                               " (lineage: intermediate unreachable)");
              }
            }
          }
          if (--*remaining == 0) {
            --run->running;
            dispatchReady(run);
          }
        },
        {}, "wf/" + run->spec.id);
  }
}

void WorkflowEngine::failTerminally(const std::shared_ptr<Run>& run,
                                    std::size_t index) {
  StageStatus& st = run->statuses[index];
  st.state = StageState::kFailed;
  st.finishedAt = client_.simulator().now();
  --run->running;
  const std::string& name = run->spec.stages[index].name;
  if (telemetry_ && telemetry_->tracer != nullptr) {
    telemetry_->tracer->setAttr(run->stageCtx[index], "outcome", "failed");
    telemetry_->tracer->setAttr(run->stageCtx[index], "error", st.error);
    telemetry_->tracer->endSpan(run->stageCtx[index]);
  }
  trace(run, "failed " + name + " (" + st.error + ")");
  if (options_.failurePolicy == FailurePolicy::kFailFast) {
    if (!run->aborted) {
      run->aborted = true;
      trace(run, "abort workflow (fail-fast)");
      for (std::size_t i = 0; i < run->statuses.size(); ++i) {
        StageStatus& other = run->statuses[i];
        if (other.state != StageState::kPending) continue;
        other.state = StageState::kSkipped;
        other.finishedAt = client_.simulator().now();
        other.error = "skipped: fail-fast after '" + name + "' failed";
        trace(run, "skip " + run->spec.stages[i].name + " (fail-fast)");
      }
    }
  } else {
    skipDependents(run, index);
  }
  dispatchReady(run);  // independent branches may still have ready stages
}

void WorkflowEngine::skipDependents(const std::shared_ptr<Run>& run,
                                    std::size_t index) {
  std::vector<std::size_t> frontier{index};
  while (!frontier.empty()) {
    const std::size_t at = frontier.back();
    frontier.pop_back();
    for (std::size_t consumer : run->consumers[at]) {
      StageStatus& st = run->statuses[consumer];
      if (st.state != StageState::kPending) continue;
      st.state = StageState::kSkipped;
      st.finishedAt = client_.simulator().now();
      st.error =
          "skipped: upstream '" + run->spec.stages[index].name + "' failed";
      trace(run, "skip " + run->spec.stages[consumer].name + " (upstream " +
                     run->spec.stages[index].name + " failed)");
      frontier.push_back(consumer);
    }
  }
}

void WorkflowEngine::maybeFinish(const std::shared_ptr<Run>& run) {
  if (run->finished || run->running > 0) return;
  bool allTerminal = true;
  for (const StageStatus& st : run->statuses) {
    if (st.state == StageState::kPending || st.state == StageState::kRunning ||
        st.state == StageState::kStaging) {
      allTerminal = false;
      break;
    }
  }
  if (!allTerminal) return;  // ready stages exist; dispatchReady owns them
  run->finished = true;
  bool succeeded = true;
  for (const StageStatus& st : run->statuses) {
    if (st.state != StageState::kCompleted) succeeded = false;
  }
  run->outcome.succeeded = succeeded;
  run->outcome.makespan = client_.simulator().now() - run->startedAt;
  if (telemetry_) {
    (succeeded ? telemetry_->runsSucceeded : telemetry_->runsFailed)->inc();
    telemetry_->makespanUs->observe(
        static_cast<double>(run->outcome.makespan.toNanos()) / 1e3);
    if (telemetry_->tracer != nullptr) {
      telemetry_->tracer->setAttr(run->rootCtx, "succeeded",
                                  succeeded ? "true" : "false");
      telemetry_->tracer->endSpan(run->rootCtx);
    }
  }
  trace(run, std::string("finish workflow ") + run->spec.id +
                 (succeeded ? " succeeded" : " failed"));
  for (std::size_t i = 0; i < run->statuses.size(); ++i) {
    run->outcome.stages.emplace(run->spec.stages[i].name, run->statuses[i]);
  }
  DoneCallback done = std::move(run->done);
  done(std::move(run->outcome));
}

void WorkflowEngine::attachTelemetry(telemetry::MetricsRegistry& registry,
                                     telemetry::Tracer* tracer) {
  telemetry_ = std::make_unique<Telemetry>();
  telemetry_->runs = &registry.counter("lidc_workflow_runs");
  telemetry_->runsSucceeded = &registry.counter("lidc_workflow_runs_succeeded");
  telemetry_->runsFailed = &registry.counter("lidc_workflow_runs_failed");
  telemetry_->stagesDispatched =
      &registry.counter("lidc_workflow_stages_dispatched");
  telemetry_->stagesDispatched->set(stages_dispatched_);
  telemetry_->stageRetries = &registry.counter("lidc_workflow_stage_retries");
  telemetry_->stageHedges = &registry.counter("lidc_workflow_stage_hedges");
  telemetry_->stageHedges->set(stage_hedges_);
  telemetry_->stageHedgesWon =
      &registry.counter("lidc_workflow_stage_hedges_won");
  telemetry_->stageHedgesWon->set(stage_hedges_won_);
  telemetry_->lineageRecoveries =
      &registry.counter("lidc_workflow_lineage_recoveries");
  telemetry_->bytesMoved = &registry.counter("lidc_workflow_bytes_moved");
  telemetry_->bytesMoved->set(bytes_moved_);
  telemetry_->makespanUs = &registry.histogram("lidc_workflow_makespan_us");
  telemetry_->tracer = tracer;
}

void WorkflowEngine::trace(const std::shared_ptr<Run>& run,
                           const std::string& line) {
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "t=%.6fs ",
                client_.simulator().now().toSeconds());
  const std::string full = std::string(stamp) + line;
  run->outcome.trace += full;
  run->outcome.trace += '\n';
  if (options_.observer) options_.observer(full);
}

}  // namespace lidc::workflow
