#include "datalake/object_store.hpp"

#include "common/strings.hpp"

namespace lidc::datalake {

Status ObjectStore::put(const ndn::Name& name, std::vector<std::uint8_t> bytes) {
  if (name.empty()) return Status::InvalidArgument("object name must not be empty");
  return pvc_.write(pathFor(name), std::move(bytes));
}

Status ObjectStore::put(const ndn::Name& name, std::vector<std::uint8_t> bytes,
                        const std::string& tenant) {
  if (name.empty()) return Status::InvalidArgument("object name must not be empty");
  if (quota_charger_ && !tenant.empty()) {
    // Charge before writing so an over-quota publish leaves no object
    // behind. Existing-object replacement still charges the full size:
    // the budget is a cumulative publish allowance, not a usage meter.
    if (Status charged = quota_charger_(tenant, bytes.size()); !charged.ok()) {
      return charged;
    }
  }
  return pvc_.write(pathFor(name), std::move(bytes));
}

Status ObjectStore::putText(const ndn::Name& name, std::string_view text) {
  return put(name, std::vector<std::uint8_t>(text.begin(), text.end()));
}

std::optional<std::vector<std::uint8_t>> ObjectStore::get(const ndn::Name& name) const {
  return pvc_.read(pathFor(name));
}

bool ObjectStore::contains(const ndn::Name& name) const {
  return pvc_.exists(pathFor(name));
}

std::optional<std::uint64_t> ObjectStore::sizeOf(const ndn::Name& name) const {
  return pvc_.sizeOf(pathFor(name));
}

Status ObjectStore::remove(const ndn::Name& name) { return pvc_.remove(pathFor(name)); }

std::vector<ndn::Name> ObjectStore::list(const ndn::Name& prefix) const {
  std::vector<ndn::Name> names;
  const std::string pathPrefix = root_ + (prefix.empty() ? "" : prefix.toUri());
  for (const auto& path : pvc_.list(pathPrefix)) {
    // Strip the storage root back off to recover the content name.
    if (path.size() <= root_.size()) continue;
    names.emplace_back(std::string_view(path).substr(root_.size()));
  }
  return names;
}

}  // namespace lidc::datalake
