#include "datalake/object_store.hpp"

#include "common/strings.hpp"

namespace lidc::datalake {

Status ObjectStore::put(const ndn::Name& name, std::vector<std::uint8_t> bytes) {
  if (name.empty()) return Status::InvalidArgument("object name must not be empty");
  if (Status fits = ensureCapacityFor(name, bytes.size()); !fits.ok()) {
    return fits;
  }
  return pvc_.write(pathFor(name), std::move(bytes));
}

Status ObjectStore::put(const ndn::Name& name, std::vector<std::uint8_t> bytes,
                        const std::string& tenant) {
  if (name.empty()) return Status::InvalidArgument("object name must not be empty");
  // Capacity before quota: an over-capacity staging attempt must not
  // burn the tenant's publish budget.
  if (Status fits = ensureCapacityFor(name, bytes.size()); !fits.ok()) {
    return fits;
  }
  if (quota_charger_ && !tenant.empty()) {
    // Charge before writing so an over-quota publish leaves no object
    // behind. Existing-object replacement still charges the full size:
    // the budget is a cumulative publish allowance, not a usage meter.
    if (Status charged = quota_charger_(tenant, bytes.size()); !charged.ok()) {
      return charged;
    }
  }
  return pvc_.write(pathFor(name), std::move(bytes));
}

Status ObjectStore::putText(const ndn::Name& name, std::string_view text) {
  return put(name, std::vector<std::uint8_t>(text.begin(), text.end()));
}

std::optional<std::vector<std::uint8_t>> ObjectStore::get(const ndn::Name& name) const {
  return pvc_.read(pathFor(name));
}

bool ObjectStore::contains(const ndn::Name& name) const {
  return pvc_.exists(pathFor(name));
}

std::optional<std::uint64_t> ObjectStore::sizeOf(const ndn::Name& name) const {
  return pvc_.sizeOf(pathFor(name));
}

Status ObjectStore::remove(const ndn::Name& name) { return pvc_.remove(pathFor(name)); }

Status ObjectStore::erase(const ndn::Name& name) {
  if (!contains(name)) return Status::Ok();
  return pvc_.remove(pathFor(name));
}

std::uint64_t ObjectStore::bytesStored() const {
  std::uint64_t total = 0;
  for (const auto& path : pvc_.list(root_)) {
    if (const auto size = pvc_.sizeOf(path)) total += *size;
  }
  return total;
}

std::uint64_t ObjectStore::capacityBytes() const {
  return pvc_.capacity().bytes();
}

Status ObjectStore::ensureCapacityFor(const ndn::Name& name,
                                      std::uint64_t incoming) const {
  const std::uint64_t existing = sizeOf(name).value_or(0);
  const std::uint64_t projected = pvc_.used().bytes() - existing + incoming;
  if (projected > pvc_.capacity().bytes()) {
    return Status::ResourceExhausted(
        "object store over capacity: " + std::to_string(incoming) +
        " bytes will not fit (" + std::to_string(pvc_.used().bytes()) + "/" +
        std::to_string(pvc_.capacity().bytes()) + " used)");
  }
  return Status::Ok();
}

std::vector<ndn::Name> ObjectStore::list(const ndn::Name& prefix) const {
  std::vector<ndn::Name> names;
  const std::string pathPrefix = root_ + (prefix.empty() ? "" : prefix.toUri());
  for (const auto& path : pvc_.list(pathPrefix)) {
    // Strip the storage root back off to recover the content name.
    if (path.size() <= root_.size()) continue;
    names.emplace_back(std::string_view(path).substr(root_.size()));
  }
  return names;
}

}  // namespace lidc::datalake
