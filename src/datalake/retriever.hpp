// Consumer-side object retrieval: fetches <object>/meta, then pipelines
// segment Interests with a configurable window, reassembles, and invokes
// the completion callback. Retries each segment a bounded number of
// times on timeout. This is the client half of the paper's
// "/ndn/k8s/data/<data-identifier>" retrieval path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "common/status.hpp"
#include "datalake/object_store.hpp"
#include "ndn/app_face.hpp"
#include "telemetry/flow_label.hpp"
#include "telemetry/trace_context.hpp"

namespace lidc::datalake {

struct RetrieveOptions {
  std::size_t window = 8;        // concurrent segment Interests
  int maxRetriesPerSegment = 3;  // timeout retries before giving up
  sim::Duration interestLifetime = sim::Duration::millis(4000);
  /// Enforce NDN data authentication (paper SVII: "NDN inherently
  /// secures data and provides built-in data authentication and
  /// integrity"): Data packets failing signature verification are
  /// rejected — on by default, and the regression tests pin it that
  /// way. Failed packets are re-fetched (below) before the transfer
  /// aborts with PERMISSION_DENIED.
  bool verifySignatures = true;
  /// Extra attempts for a meta/segment whose Data failed verification.
  /// The retry carries the poisoned packet's digest as an exclusion
  /// hint (and MustBeFresh), so content stores skip the bad entry
  /// instead of re-serving it forever.
  int maxIntegrityRetries = 2;
};

class Retriever {
 public:
  using CompletionCallback = std::function<void(Result<std::vector<std::uint8_t>>)>;

  explicit Retriever(ndn::AppFace& face, RetrieveOptions options = {})
      : face_(face), options_(options) {}

  /// Starts an asynchronous fetch of the full object. A valid `trace`
  /// is stamped on the meta and every segment Interest, so forwarders
  /// along the path attach their per-hop spans to the caller's trace;
  /// `label` rides the same Interests for flow attribution (which
  /// tenant/workflow the transferred bytes belong to).
  void fetch(const ndn::Name& objectName, CompletionCallback done,
             telemetry::TraceContext trace = {},
             telemetry::FlowLabel label = {});

  /// Packets that failed verification and were re-fetched with an
  /// exclusion hint (across all transfers of this retriever).
  [[nodiscard]] std::uint64_t integrityRetries() const noexcept {
    return integrity_retries_;
  }

 private:
  struct Transfer;

  void fetchMeta(std::shared_ptr<Transfer> transfer, int attempt,
                 std::optional<std::uint64_t> excludeDigest = std::nullopt);
  void pumpWindow(const std::shared_ptr<Transfer>& transfer);
  void fetchSegment(std::shared_ptr<Transfer> transfer, std::uint64_t index,
                    int attempt,
                    std::optional<std::uint64_t> excludeDigest = std::nullopt);
  void finish(const std::shared_ptr<Transfer>& transfer,
              Result<std::vector<std::uint8_t>> result);

  ndn::AppFace& face_;
  RetrieveOptions options_;
  std::uint64_t integrity_retries_ = 0;
};

}  // namespace lidc::datalake
