#include "datalake/file_server.hpp"

#include "common/logging.hpp"
#include "common/strings.hpp"

namespace lidc::datalake {

FileServer::FileServer(ndn::Forwarder& forwarder, ObjectStore& store, ndn::Name prefix,
                       std::size_t segmentSize)
    : forwarder_(forwarder),
      store_(store),
      prefix_(std::move(prefix)),
      segment_size_(segmentSize == 0 ? 1 : segmentSize) {
  face_ = std::make_shared<ndn::AppFace>("app://fileserver" + prefix_.toUri(),
                                         forwarder_.simulator());
  face_->setInterestHandler([this](const ndn::Interest& i) { handleInterest(i); });
  face_id_ = forwarder_.addFace(face_);
  forwarder_.registerPrefix(prefix_, face_id_, /*cost=*/0);
}

void FileServer::handleInterest(const ndn::Interest& interest) {
  const ndn::Name& name = interest.name();
  if (!prefix_.isPrefixOf(name) || name.size() <= prefix_.size()) {
    ++rejected_;
    face_->putNack(interest, ndn::NackReason::kNoRoute);
    return;
  }

  const std::string last = name[name.size() - 1].toString();

  if (strings::startsWith(last, "seg=")) {
    const auto index = strings::parseUint(std::string_view(last).substr(4));
    if (!index) {
      ++rejected_;
      face_->putNack(interest, ndn::NackReason::kNoRoute);
      return;
    }
    replySegment(interest, name.prefix(name.size() - 1), *index);
    return;
  }

  if (last == "meta") {
    replyMeta(interest, name.prefix(name.size() - 1), name);
    return;
  }

  // Bare object name: serve meta under the requested name so prefix
  // Interests discover the object.
  replyMeta(interest, name, name);
}

void FileServer::replyMeta(const ndn::Interest& interest, const ndn::Name& objectName,
                           const ndn::Name& dataName) {
  const auto size = store_.sizeOf(objectName);
  if (!size) {
    ++rejected_;
    face_->putNack(interest, ndn::NackReason::kNoRoute);
    return;
  }
  const std::uint64_t segments = (*size + segment_size_ - 1) / segment_size_;
  ndn::Data data(dataName);
  data.setContent("segments=" + std::to_string(segments) + ";size=" +
                  std::to_string(*size) +
                  ";segment_size=" + std::to_string(segment_size_));
  data.setFreshnessPeriod(freshness_);
  data.sign();
  ++served_;
  face_->putData(std::move(data));
}

void FileServer::replySegment(const ndn::Interest& interest,
                              const ndn::Name& objectName,
                              std::uint64_t segmentIndex) {
  const auto bytes = store_.get(objectName);
  if (!bytes) {
    ++rejected_;
    face_->putNack(interest, ndn::NackReason::kNoRoute);
    return;
  }
  const std::uint64_t begin = segmentIndex * segment_size_;
  if (begin >= bytes->size() && !(bytes->empty() && segmentIndex == 0)) {
    ++rejected_;
    face_->putNack(interest, ndn::NackReason::kNoRoute);
    return;
  }
  const std::uint64_t end =
      std::min<std::uint64_t>(begin + segment_size_, bytes->size());
  ndn::Data data(interest.name());
  data.setContent(std::vector<std::uint8_t>(bytes->begin() + static_cast<long>(begin),
                                            bytes->begin() + static_cast<long>(end)));
  data.setFreshnessPeriod(freshness_);
  data.sign();
  ++served_;
  face_->putData(std::move(data));
}

}  // namespace lidc::datalake
