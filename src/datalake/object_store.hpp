// Named object storage over a K8s PVC: maps NDN content names to files
// on the claim, exactly as the paper's data lake serves "/ndn/k8s/data"
// out of an NFS-backed PVC (SIV, SV-B).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "k8s/pvc.hpp"
#include "ndn/name.hpp"

namespace lidc::datalake {

class ObjectStore {
 public:
  explicit ObjectStore(k8s::PersistentVolumeClaim& pvc,
                       std::string rootPrefix = "objects")
      : pvc_(pvc), root_(std::move(rootPrefix)) {}

  /// Charges a tenant-attributed put against a quota before storing;
  /// a non-Ok return aborts the put (QoS wires this to
  /// TenantRegistry::chargePublish).
  using QuotaCharger =
      std::function<Status(const std::string& tenant, std::uint64_t bytes)>;
  void setQuotaCharger(QuotaCharger charger) {
    quota_charger_ = std::move(charger);
  }

  /// Stores bytes under a content name (replaces any existing object).
  Status put(const ndn::Name& name, std::vector<std::uint8_t> bytes);
  /// Tenant-attributed put: the bytes are charged against the tenant's
  /// publish quota first (no-op without a charger).
  Status put(const ndn::Name& name, std::vector<std::uint8_t> bytes,
             const std::string& tenant);
  Status putText(const ndn::Name& name, std::string_view text);

  [[nodiscard]] std::optional<std::vector<std::uint8_t>> get(
      const ndn::Name& name) const;
  [[nodiscard]] bool contains(const ndn::Name& name) const;
  [[nodiscard]] std::optional<std::uint64_t> sizeOf(const ndn::Name& name) const;
  Status remove(const ndn::Name& name);
  /// Idempotent remove: absent objects are OK, not NotFound — the
  /// eviction/repair planes erase without checking first.
  Status erase(const ndn::Name& name);

  /// Bytes held by objects under this store's root prefix.
  [[nodiscard]] std::uint64_t bytesStored() const;
  /// Capacity of the backing claim (shared with non-object files).
  [[nodiscard]] std::uint64_t capacityBytes() const;

  /// All object names under a name prefix.
  [[nodiscard]] std::vector<ndn::Name> list(const ndn::Name& prefix) const;

  [[nodiscard]] k8s::PersistentVolumeClaim& volume() noexcept { return pvc_; }

 private:
  [[nodiscard]] std::string pathFor(const ndn::Name& name) const {
    return root_ + name.toUri();
  }
  /// Distinct over-capacity rejection (before any quota charge), so
  /// staging planes can tell "lake full" from other put failures.
  [[nodiscard]] Status ensureCapacityFor(const ndn::Name& name,
                                         std::uint64_t incoming) const;

  k8s::PersistentVolumeClaim& pvc_;
  std::string root_;
  QuotaCharger quota_charger_;
};

}  // namespace lidc::datalake
