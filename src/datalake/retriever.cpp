#include "datalake/retriever.hpp"

#include <map>

#include "common/strings.hpp"

namespace lidc::datalake {

struct Retriever::Transfer {
  ndn::Name objectName;
  CompletionCallback done;
  std::uint64_t totalSegments = 0;
  std::uint64_t totalSize = 0;
  std::uint64_t segmentSize = 0;  // 0 = meta did not advertise one
  std::uint64_t nextToRequest = 0;
  std::size_t inFlight = 0;
  std::map<std::uint64_t, std::vector<std::uint8_t>> segments;
  /// Per-segment verification-failure re-fetches already spent.
  std::map<std::uint64_t, int> integrityAttempts;
  int metaIntegrityAttempts = 0;
  bool finished = false;
  telemetry::TraceContext trace;
  telemetry::FlowLabel label;
};

void Retriever::fetch(const ndn::Name& objectName, CompletionCallback done,
                      telemetry::TraceContext trace,
                      telemetry::FlowLabel label) {
  auto transfer = std::make_shared<Transfer>();
  transfer->objectName = objectName;
  transfer->done = std::move(done);
  transfer->trace = trace;
  transfer->label = std::move(label);
  fetchMeta(std::move(transfer), 0);
}

void Retriever::fetchMeta(std::shared_ptr<Transfer> transfer, int attempt,
                          std::optional<std::uint64_t> excludeDigest) {
  ndn::Name metaName = transfer->objectName;
  metaName.append("meta");
  ndn::Interest interest(metaName);
  interest.setMustBeFresh(excludeDigest.has_value());
  interest.setLifetime(options_.interestLifetime);
  interest.setTraceContext(transfer->trace);
  interest.setFlowLabel(transfer->label);
  if (excludeDigest.has_value()) interest.setExcludeDigest(*excludeDigest);

  face_.expressInterest(
      interest,
      [this, transfer, attempt](const ndn::Interest&, const ndn::Data& data) {
        if (transfer->finished) return;
        if (options_.verifySignatures && !data.verify()) {
          // Poisoned meta (bit-flipped in flight or served from a bad
          // cache entry): re-fetch, telling caches to skip this digest.
          if (transfer->metaIntegrityAttempts < options_.maxIntegrityRetries) {
            ++transfer->metaIntegrityAttempts;
            ++integrity_retries_;
            fetchMeta(transfer, attempt, data.contentDigest());
            return;
          }
          finish(transfer, Status::PermissionDenied(
                               "meta failed signature verification: " +
                               data.name().toUri()));
          return;
        }
        // Parse "segments=N;size=M;segment_size=S".
        std::uint64_t segments = 0;
        std::uint64_t size = 0;
        std::uint64_t segmentSize = 0;
        const std::string meta = data.contentAsString();
        for (auto field : strings::split(meta, ';')) {
          const auto kv = strings::split(field, '=');
          if (kv.size() != 2) continue;
          if (kv[0] == "segments") {
            segments = strings::parseUint(kv[1]).value_or(0);
          } else if (kv[0] == "size") {
            size = strings::parseUint(kv[1]).value_or(0);
          } else if (kv[0] == "segment_size") {
            segmentSize = strings::parseUint(kv[1]).value_or(0);
          }
        }
        if ((segments == 0) != (size == 0)) {
          finish(transfer,
                 Status::Internal("malformed meta for " +
                                  transfer->objectName.toUri() + ": segments=" +
                                  std::to_string(segments) + " but size=" +
                                  std::to_string(size)));
          return;
        }
        if (segmentSize > 0 && size > 0) {
          const std::uint64_t implied = (size + segmentSize - 1) / segmentSize;
          if (implied != segments) {
            finish(transfer,
                   Status::Internal(
                       "inconsistent meta for " + transfer->objectName.toUri() +
                       ": segments=" + std::to_string(segments) + " but size=" +
                       std::to_string(size) + " with segment_size=" +
                       std::to_string(segmentSize) + " implies " +
                       std::to_string(implied)));
            return;
          }
        }
        transfer->totalSegments = segments;
        transfer->totalSize = size;
        transfer->segmentSize = segmentSize;
        if (segments == 0) {
          finish(transfer, std::vector<std::uint8_t>{});
          return;
        }
        pumpWindow(transfer);
      },
      [this, transfer](const ndn::Interest&, const ndn::Nack& nack) {
        finish(transfer,
               Status::NotFound("object " + transfer->objectName.toUri() +
                                " nacked: " +
                                std::string(ndn::nackReasonName(nack.reason()))));
      },
      [this, transfer, attempt](const ndn::Interest&) {
        if (attempt + 1 < options_.maxRetriesPerSegment) {
          fetchMeta(transfer, attempt + 1);
        } else {
          finish(transfer, Status::Timeout("meta fetch timed out for " +
                                           transfer->objectName.toUri()));
        }
      });
}

void Retriever::pumpWindow(const std::shared_ptr<Transfer>& transfer) {
  while (transfer->inFlight < options_.window &&
         transfer->nextToRequest < transfer->totalSegments) {
    const std::uint64_t index = transfer->nextToRequest++;
    ++transfer->inFlight;
    fetchSegment(transfer, index, 0);
  }
}

void Retriever::fetchSegment(std::shared_ptr<Transfer> transfer, std::uint64_t index,
                             int attempt,
                             std::optional<std::uint64_t> excludeDigest) {
  ndn::Name segName = transfer->objectName;
  segName.append("seg=" + std::to_string(index));
  ndn::Interest interest(segName);
  interest.setLifetime(options_.interestLifetime);
  interest.setTraceContext(transfer->trace);
  interest.setFlowLabel(transfer->label);
  if (excludeDigest.has_value()) {
    interest.setExcludeDigest(*excludeDigest);
    interest.setMustBeFresh(true);
  }

  face_.expressInterest(
      interest,
      [this, transfer, index, attempt](const ndn::Interest&,
                                       const ndn::Data& data) {
        if (transfer->finished) return;
        if (options_.verifySignatures && !data.verify()) {
          // The in-flight slot stays held: the re-fetch replaces this
          // delivery rather than opening the window.
          int& tries = transfer->integrityAttempts[index];
          if (tries < options_.maxIntegrityRetries) {
            ++tries;
            ++integrity_retries_;
            fetchSegment(transfer, index, attempt, data.contentDigest());
            return;
          }
          finish(transfer, Status::PermissionDenied(
                               "segment failed signature verification: " +
                               data.name().toUri()));
          return;
        }
        --transfer->inFlight;
        // Honor the advertised segment size: every segment but the last
        // must be exactly segment_size bytes, the last exactly the
        // remainder — catching compensating per-segment errors that a
        // total-size check alone would accept.
        if (transfer->segmentSize > 0 && transfer->totalSize > 0) {
          const bool isLast = index + 1 == transfer->totalSegments;
          const std::uint64_t expected =
              isLast ? transfer->totalSize - (transfer->totalSegments - 1) *
                                                 transfer->segmentSize
                     : transfer->segmentSize;
          if (data.content().size() != expected) {
            finish(transfer,
                   Status::Internal(
                       "segment " + data.name().toUri() + " carries " +
                       std::to_string(data.content().size()) +
                       " bytes, meta advertised " + std::to_string(expected)));
            return;
          }
        }
        transfer->segments[index] = data.content();
        if (transfer->segments.size() == transfer->totalSegments) {
          std::vector<std::uint8_t> assembled;
          assembled.reserve(transfer->totalSize);
          for (auto& [i, segment] : transfer->segments) {
            assembled.insert(assembled.end(), segment.begin(), segment.end());
          }
          if (assembled.size() != transfer->totalSize) {
            finish(transfer,
                   Status::Internal(
                       "reassembled " + std::to_string(assembled.size()) +
                       " bytes for " + transfer->objectName.toUri() +
                       " but meta advertised " +
                       std::to_string(transfer->totalSize)));
            return;
          }
          finish(transfer, std::move(assembled));
          return;
        }
        pumpWindow(transfer);
      },
      [this, transfer](const ndn::Interest& i, const ndn::Nack&) {
        --transfer->inFlight;
        finish(transfer, Status::NotFound("segment nacked: " + i.name().toUri()));
      },
      [this, transfer, index, attempt](const ndn::Interest& i) {
        if (transfer->finished) return;
        if (attempt + 1 < options_.maxRetriesPerSegment) {
          fetchSegment(transfer, index, attempt + 1);
        } else {
          --transfer->inFlight;
          finish(transfer,
                 Status::Timeout("segment timed out: " + i.name().toUri()));
        }
      });
}

void Retriever::finish(const std::shared_ptr<Transfer>& transfer,
                       Result<std::vector<std::uint8_t>> result) {
  if (transfer->finished) return;
  transfer->finished = true;
  if (transfer->done) transfer->done(std::move(result));
}

}  // namespace lidc::datalake
