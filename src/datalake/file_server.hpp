// The data lake's producer application: an NDN file server on an
// AppFace that serves named objects from an ObjectStore, segmenting
// large objects into Data packets. This is the paper's "file server
// application [that] serves the data from the PVC" behind the data
// lake's NFD (SIV).
//
// Protocol (names relative to the served prefix):
//   <object>/meta      -> "segments=<n>;size=<bytes>;segment_size=<s>"
//   <object>/seg=<i>   -> i-th segment payload
//   <object>           -> alias for <object>/meta when the object exists
#pragma once

#include <cstdint>
#include <memory>

#include "datalake/object_store.hpp"
#include "ndn/app_face.hpp"
#include "ndn/forwarder.hpp"

namespace lidc::datalake {

class FileServer {
 public:
  /// Attaches to a forwarder, registering `prefix` toward a new AppFace.
  FileServer(ndn::Forwarder& forwarder, ObjectStore& store, ndn::Name prefix,
             std::size_t segmentSize = 8 * 1024);

  [[nodiscard]] ndn::FaceId faceId() const noexcept { return face_id_; }
  [[nodiscard]] const ndn::Name& prefix() const noexcept { return prefix_; }
  [[nodiscard]] std::size_t segmentSize() const noexcept { return segment_size_; }

  [[nodiscard]] std::uint64_t interestsServed() const noexcept { return served_; }
  [[nodiscard]] std::uint64_t interestsRejected() const noexcept { return rejected_; }

  /// Freshness stamped on served Data (default 10 s, so caches work).
  void setFreshness(sim::Duration freshness) noexcept { freshness_ = freshness; }

 private:
  void handleInterest(const ndn::Interest& interest);
  void replyMeta(const ndn::Interest& interest, const ndn::Name& objectName,
                 const ndn::Name& dataName);
  void replySegment(const ndn::Interest& interest, const ndn::Name& objectName,
                    std::uint64_t segmentIndex);

  ndn::Forwarder& forwarder_;
  ObjectStore& store_;
  ndn::Name prefix_;
  std::size_t segment_size_;
  std::shared_ptr<ndn::AppFace> face_;
  ndn::FaceId face_id_ = ndn::kInvalidFaceId;
  sim::Duration freshness_ = sim::Duration::seconds(10);
  std::uint64_t served_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace lidc::datalake
