// Point-to-point simulated links. Each link is a pair of LinkFaces (one
// per endpoint forwarder); sending schedules delivery at the peer after
// propagation latency + serialization time, with optional random loss.
// Geo-distribution in LIDC benches is expressed purely through these
// link parameters (e.g. 5 ms campus hop vs 70 ms transcontinental hop).
#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "ndn/face.hpp"
#include "ndn/forwarder.hpp"
#include "sim/simulator.hpp"

namespace lidc::net {

struct LinkParams {
  sim::Duration latency = sim::Duration::millis(1);
  double bandwidthBitsPerSec = 0.0;  // 0 = infinite (no serialization delay)
  double lossRate = 0.0;             // probability a packet is dropped
  /// Probability a Data packet's payload is delivered with a seeded
  /// bit-flip (gray failure: the packet arrives, but is wrong). The
  /// stale pre-corruption signature travels with it, so verifying
  /// forwarders catch the damage. Driven by ChaosEngine::corruption().
  double corruptRate = 0.0;
};

class LinkFace;

/// Shared state of one bidirectional link.
class Link {
 public:
  Link(sim::Simulator& sim, LinkParams params, std::uint64_t lossSeed = 42)
      : sim_(sim),
        params_(params),
        loss_rng_(lossSeed),
        // Dedicated stream so enabling corruption never perturbs the
        // loss schedule of an otherwise-identical seeded run.
        corrupt_rng_(lossSeed ^ 0x9e3779b97f4a7c15ULL) {}

  /// Creates both faces and registers them with the two forwarders.
  /// Returns {faceId at a (towards b), faceId at b (towards a)}.
  static std::pair<ndn::FaceId, ndn::FaceId> connect(
      sim::Simulator& sim, ndn::Forwarder& a, ndn::Forwarder& b, LinkParams params,
      std::shared_ptr<Link>* out = nullptr, std::uint64_t lossSeed = 42);

  [[nodiscard]] const LinkParams& params() const noexcept { return params_; }
  void setParams(LinkParams params) noexcept { params_ = params; }

  /// Administratively takes the link up/down (both directions).
  void setUp(bool up);
  [[nodiscard]] bool isUp() const noexcept { return up_; }

  [[nodiscard]] std::uint64_t packetsDropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t packetsDelivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t packetsCorrupted() const noexcept { return corrupted_; }

  /// Replace the corruption stream. ChaosEngine::corruption() calls
  /// this with a draw from its own seeded RNG so different chaos seeds
  /// corrupt different packets on the same topology.
  void reseedCorruption(std::uint64_t seed) noexcept { corrupt_rng_ = Rng(seed); }

 private:
  friend class LinkFace;

  /// Computes the delivery delay for `bytes` in the given direction
  /// (serialization is FIFO per direction).
  sim::Duration transitDelay(std::size_t bytes, int direction);
  bool shouldDrop() { return params_.lossRate > 0 && loss_rng_.bernoulli(params_.lossRate); }
  /// Returns `data` as the wire delivers it: usually verbatim, with one
  /// seeded bit flipped in the payload when the corruption draw fires.
  ndn::Data maybeCorrupt(const ndn::Data& data);

  sim::Simulator& sim_;
  LinkParams params_;
  Rng loss_rng_;
  Rng corrupt_rng_;
  bool up_ = true;
  sim::Time next_free_[2];
  std::uint64_t dropped_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t corrupted_ = 0;
  LinkFace* ends_[2] = {nullptr, nullptr};
};

/// One endpoint of a Link.
class LinkFace : public ndn::Face {
 public:
  LinkFace(std::string uri, std::shared_ptr<Link> link, int direction)
      : Face(std::move(uri)), link_(std::move(link)), direction_(direction) {}

  void sendInterest(const ndn::Interest& interest) override;
  void sendData(const ndn::Data& data) override;
  void sendNack(const ndn::Nack& nack) override;

  [[nodiscard]] Link& link() noexcept { return *link_; }

 private:
  [[nodiscard]] LinkFace* peer() const noexcept {
    return link_->ends_[1 - direction_];
  }
  /// Returns false (drop) or schedules `deliver` after the transit delay.
  bool scheduleDelivery(std::size_t bytes, std::function<void()> deliver);

  std::shared_ptr<Link> link_;
  int direction_;  // 0 or 1; index into Link::ends_
};

}  // namespace lidc::net
