#include "net/topology.hpp"

#include <cassert>
#include <limits>
#include <queue>

namespace lidc::net {

ndn::Forwarder& Topology::addNode(const std::string& name) {
  auto [it, inserted] =
      nodes_.emplace(name, std::make_unique<ndn::Forwarder>(name, sim_));
  assert(inserted && "duplicate node name");
  return *it->second;
}

ndn::Forwarder* Topology::node(const std::string& name) {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Topology::nodeNames() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& [name, fw] : nodes_) names.push_back(name);
  return names;
}

const Topology::Edge& Topology::connect(const std::string& a, const std::string& b,
                                        LinkParams params) {
  auto* nodeA = node(a);
  auto* nodeB = node(b);
  assert(nodeA != nullptr && nodeB != nullptr && "connect() on unknown node");
  std::shared_ptr<Link> link;
  // Derive a per-edge loss seed so loss patterns are reproducible.
  const std::uint64_t lossSeed =
      std::hash<std::string>{}(a) * 31 + std::hash<std::string>{}(b);
  auto [faceAtA, faceAtB] = Link::connect(sim_, *nodeA, *nodeB, params, &link, lossSeed);
  edges_.push_back(Edge{a, b, faceAtA, faceAtB, std::move(link)});
  return edges_.back();
}

Link* Topology::linkBetween(const std::string& a, const std::string& b) {
  for (auto& edge : edges_) {
    if ((edge.a == a && edge.b == b) || (edge.a == b && edge.b == a)) {
      return edge.link.get();
    }
  }
  return nullptr;
}

std::map<std::string, std::pair<std::uint64_t, ndn::FaceId>>
Topology::shortestPathsTo(const std::string& source) const {
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

  // Adjacency: node -> [(neighbor, latency_us, face at node toward neighbor)]
  std::map<std::string, std::vector<std::tuple<std::string, std::uint64_t, ndn::FaceId>>>
      adjacency;
  for (const auto& edge : edges_) {
    if (!edge.link->isUp()) continue;
    const auto latencyUs =
        static_cast<std::uint64_t>(edge.link->params().latency.toNanos() / 1000);
    adjacency[edge.a].emplace_back(edge.b, latencyUs, edge.faceAtA);
    adjacency[edge.b].emplace_back(edge.a, latencyUs, edge.faceAtB);
  }

  std::map<std::string, std::pair<std::uint64_t, ndn::FaceId>> result;
  for (const auto& [name, fw] : nodes_) {
    result[name] = {kInf, ndn::kInvalidFaceId};
  }
  result[source] = {0, ndn::kInvalidFaceId};

  using QueueItem = std::pair<std::uint64_t, std::string>;  // (distance, node)
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> queue;
  queue.emplace(0, source);

  while (!queue.empty()) {
    auto [dist, current] = queue.top();
    queue.pop();
    if (dist > result[current].first) continue;
    for (const auto& [neighbor, weight, faceAtNeighborSide] : adjacency[current]) {
      // faceAtNeighborSide is the face at `current` toward `neighbor`; for
      // routing toward the source, the neighbor needs its face toward
      // `current`. Look it up from the neighbor's adjacency list below.
      const std::uint64_t candidate = dist + weight;
      if (candidate < result[neighbor].first) {
        // Find the neighbor's face toward `current`.
        ndn::FaceId toward = ndn::kInvalidFaceId;
        for (const auto& [n2, w2, f2] : adjacency[neighbor]) {
          if (n2 == current) {
            toward = f2;
            break;
          }
        }
        result[neighbor] = {candidate, toward};
        queue.emplace(candidate, neighbor);
      }
    }
  }
  return result;
}

void Topology::installRoutesTo(const ndn::Name& prefix,
                               const std::string& producerNode,
                               std::uint64_t extraCostUs) {
  auto paths = shortestPathsTo(producerNode);
  RouteInstallation installation{prefix, producerNode, {}};
  for (auto& [name, info] : paths) {
    auto [distanceUs, face] = info;
    if (name == producerNode || face == ndn::kInvalidFaceId) continue;
    if (distanceUs == std::numeric_limits<std::uint64_t>::max()) continue;
    nodes_.at(name)->registerPrefix(prefix, face, distanceUs + extraCostUs);
    installation.entries.emplace_back(name, face);
  }
  installations_.push_back(std::move(installation));
}

void Topology::uninstallRoutesTo(const ndn::Name& prefix,
                                 const std::string& producerNode) {
  // A (node, face) next hop may be shared by several producers of the
  // same prefix (e.g. two far-away clusters reached via one uplink);
  // only remove it from the FIB when no *other* installation still
  // needs it.
  auto stillNeeded = [&](const std::string& nodeName, ndn::FaceId face) {
    for (const auto& installation : installations_) {
      if (installation.prefix != prefix || installation.producer == producerNode) {
        continue;
      }
      for (const auto& [otherNode, otherFace] : installation.entries) {
        if (otherNode == nodeName && otherFace == face) return true;
      }
    }
    return false;
  };

  for (auto it = installations_.begin(); it != installations_.end();) {
    if (it->prefix == prefix && it->producer == producerNode) {
      for (const auto& [nodeName, face] : it->entries) {
        if (stillNeeded(nodeName, face)) continue;
        if (auto* fw = node(nodeName)) fw->unregisterPrefix(prefix, face);
      }
      it = installations_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace lidc::net
