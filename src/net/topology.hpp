// Topology builder: named forwarder nodes joined by simulated links,
// with Dijkstra-based route installation (an NLSR-like stand-in). LIDC's
// compute overlay is a Topology whose edge clusters advertise the
// /ndn/k8s/compute prefix.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "ndn/forwarder.hpp"
#include "sim/simulator.hpp"

namespace lidc::net {

class Topology {
 public:
  explicit Topology(sim::Simulator& sim) : sim_(sim) {}
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// Creates a node hosting one Forwarder. Names must be unique.
  ndn::Forwarder& addNode(const std::string& name);

  [[nodiscard]] ndn::Forwarder* node(const std::string& name);
  [[nodiscard]] std::vector<std::string> nodeNames() const;
  [[nodiscard]] std::size_t nodeCount() const noexcept { return nodes_.size(); }

  struct Edge {
    std::string a;
    std::string b;
    ndn::FaceId faceAtA;  // face at `a` towards `b`
    ndn::FaceId faceAtB;  // face at `b` towards `a`
    std::shared_ptr<Link> link;
  };

  /// Connects two existing nodes; returns the edge record.
  const Edge& connect(const std::string& a, const std::string& b, LinkParams params);

  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }
  /// The link between a and b (nullptr if not adjacent).
  [[nodiscard]] Link* linkBetween(const std::string& a, const std::string& b);

  /// Installs FIB routes for `prefix` at every node, pointing along the
  /// latency-shortest path toward `producerNode`, with cost equal to the
  /// path latency in microseconds plus `extraCostUs` (used by adaptive
  /// placement to bias routes away from loaded/slow producers).
  /// Multiple producers of one prefix are supported by calling this once
  /// per producer: each node keeps next hops for all producers,
  /// naturally enabling anycast to the nearest.
  void installRoutesTo(const ndn::Name& prefix, const std::string& producerNode,
                       std::uint64_t extraCostUs = 0);

  /// Removes routes for `prefix` that were installed toward this producer.
  /// (Used when a cluster leaves the overlay.)
  void uninstallRoutesTo(const ndn::Name& prefix, const std::string& producerNode);

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

 private:
  struct RouteInstallation {
    ndn::Name prefix;
    std::string producer;
    // (node, face) pairs added, so they can be removed later.
    std::vector<std::pair<std::string, ndn::FaceId>> entries;
  };

  /// Dijkstra from `source`; returns per-node (distance in us, face at
  /// that node pointing toward source along the shortest path).
  std::map<std::string, std::pair<std::uint64_t, ndn::FaceId>> shortestPathsTo(
      const std::string& source) const;

  sim::Simulator& sim_;
  std::map<std::string, std::unique_ptr<ndn::Forwarder>> nodes_;
  std::vector<Edge> edges_;
  std::vector<RouteInstallation> installations_;
};

}  // namespace lidc::net
