#include "net/link.hpp"

#include <algorithm>

namespace lidc::net {

std::pair<ndn::FaceId, ndn::FaceId> Link::connect(sim::Simulator& sim,
                                                  ndn::Forwarder& a,
                                                  ndn::Forwarder& b, LinkParams params,
                                                  std::shared_ptr<Link>* out,
                                                  std::uint64_t lossSeed) {
  auto link = std::make_shared<Link>(sim, params, lossSeed);
  auto faceA =
      std::make_shared<LinkFace>("link://" + a.name() + "->" + b.name(), link, 0);
  auto faceB =
      std::make_shared<LinkFace>("link://" + b.name() + "->" + a.name(), link, 1);
  link->ends_[0] = faceA.get();
  link->ends_[1] = faceB.get();
  const ndn::FaceId idA = a.addFace(faceA);
  const ndn::FaceId idB = b.addFace(faceB);
  if (out != nullptr) *out = link;
  return {idA, idB};
}

void Link::setUp(bool up) {
  up_ = up;
  for (auto* end : ends_) {
    if (end != nullptr) end->setUp(up);
  }
}

sim::Duration Link::transitDelay(std::size_t bytes, int direction) {
  sim::Duration serialization;
  if (params_.bandwidthBitsPerSec > 0) {
    serialization =
        sim::Duration::seconds(static_cast<double>(bytes) * 8.0 /
                               params_.bandwidthBitsPerSec);
  }
  // FIFO serialization per direction: packets queue behind earlier ones.
  const sim::Time depart = std::max(sim_.now(), next_free_[direction]);
  next_free_[direction] = depart + serialization;
  return (depart - sim_.now()) + serialization + params_.latency;
}

bool LinkFace::scheduleDelivery(std::size_t bytes, std::function<void()> deliver) {
  if (!link_->up_ || !isUp()) return false;
  if (link_->shouldDrop()) {
    ++link_->dropped_;
    return false;
  }
  const sim::Duration delay = link_->transitDelay(bytes, direction_);
  ++link_->delivered_;
  link_->sim_.scheduleAfter(delay, std::move(deliver));
  return true;
}

void LinkFace::sendInterest(const ndn::Interest& interest) {
  countOutInterest(interest);
  LinkFace* remote = peer();
  if (remote == nullptr) return;
  scheduleDelivery(interest.wireSize(), [remote, interest] {
    remote->receiveInterest(interest);
  });
}

ndn::Data Link::maybeCorrupt(const ndn::Data& data) {
  if (params_.corruptRate <= 0 || data.content().empty() ||
      !corrupt_rng_.bernoulli(params_.corruptRate)) {
    return data;
  }
  ndn::Data damaged = data;
  std::vector<std::uint8_t> content = damaged.content();
  const std::size_t byte = corrupt_rng_.uniform(content.size());
  content[byte] ^= static_cast<std::uint8_t>(1u << corrupt_rng_.uniform(8));
  // setContent leaves any existing signature untouched, so the stale
  // digest travels with the damaged payload — exactly what a bit-flip
  // below the signature does on a real wire.
  damaged.setContent(std::move(content));
  ++corrupted_;
  return damaged;
}

void LinkFace::sendData(const ndn::Data& data) {
  countOutData(data);
  LinkFace* remote = peer();
  if (remote == nullptr) return;
  const ndn::Data delivered = link_->maybeCorrupt(data);
  scheduleDelivery(delivered.wireSize(),
                   [remote, delivered] { remote->receiveData(delivered); });
}

void LinkFace::sendNack(const ndn::Nack& nack) {
  countOutNack();
  LinkFace* remote = peer();
  if (remote == nullptr) return;
  // Nacks are small control packets; use the Interest's wire size.
  scheduleDelivery(nack.interest().wireSize(),
                   [remote, nack] { remote->receiveNack(nack); });
}

}  // namespace lidc::net
