#include "common/thread_pool.hpp"

#include <atomic>
#include <cassert>

namespace lidc {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  assert(task);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::waitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunk work so tiny iterations don't drown in queue overhead.
  const std::size_t chunks = std::min(n, threadCount() * 4);
  const std::size_t per = (n + chunks - 1) / chunks;
  std::atomic<std::size_t> next{0};
  for (std::size_t c = 0; c < chunks; ++c) {
    submit([&next, per, n, &fn] {
      while (true) {
        const std::size_t begin = next.fetch_add(per, std::memory_order_relaxed);
        if (begin >= n) return;
        const std::size_t end = std::min(begin + per, n);
        for (std::size_t i = begin; i < end; ++i) fn(i);
      }
    });
  }
  waitIdle();
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace lidc
