#include "common/logging.hpp"

#include <atomic>
#include <cstdio>

namespace lidc::log {

namespace {
std::atomic<Level> g_level{Level::kWarn};
std::mutex g_write_mutex;
std::function<double()> g_time_source;  // guarded by g_write_mutex
Sink g_sink;                            // guarded by g_write_mutex
thread_local std::uint64_t t_active_trace = 0;

constexpr std::string_view levelName(Level level) noexcept {
  switch (level) {
    case Level::kTrace:
      return "TRACE";
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void setLevel(Level level) noexcept { g_level.store(level, std::memory_order_relaxed); }

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

void setTimeSource(std::function<double()> secondsNow) {
  std::lock_guard<std::mutex> lock(g_write_mutex);
  g_time_source = std::move(secondsNow);
}

void setSink(Sink sink) {
  std::lock_guard<std::mutex> lock(g_write_mutex);
  g_sink = std::move(sink);
}

void setActiveTrace(std::uint64_t traceId) noexcept { t_active_trace = traceId; }

std::uint64_t activeTrace() noexcept { return t_active_trace; }

namespace detail {
bool enabled(Level lvl) noexcept { return lvl >= level() && level() != Level::kOff; }
}  // namespace detail

void write(Level lvl, std::string_view component, std::string_view message) {
  std::lock_guard<std::mutex> lock(g_write_mutex);
  char stamp[32] = "";
  if (g_time_source) {
    std::snprintf(stamp, sizeof(stamp), "[t=%.6fs] ", g_time_source());
  }
  char trace[32] = "";
  if (t_active_trace != 0) {
    std::snprintf(trace, sizeof(trace), "[trace=%016llx] ",
                  static_cast<unsigned long long>(t_active_trace));
  }
  std::fprintf(stderr, "[%.*s] %s%s%.*s: %.*s\n",
               static_cast<int>(levelName(lvl).size()), levelName(lvl).data(),
               stamp, trace, static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()), message.data());
  if (g_sink) g_sink(lvl, component, message);
}

}  // namespace lidc::log
