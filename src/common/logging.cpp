#include "common/logging.hpp"

#include <atomic>
#include <cstdio>

namespace lidc::log {

namespace {
std::atomic<Level> g_level{Level::kWarn};
std::mutex g_write_mutex;

constexpr std::string_view levelName(Level level) noexcept {
  switch (level) {
    case Level::kTrace:
      return "TRACE";
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void setLevel(Level level) noexcept { g_level.store(level, std::memory_order_relaxed); }

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

namespace detail {
bool enabled(Level lvl) noexcept { return lvl >= level() && level() != Level::kOff; }
}  // namespace detail

void write(Level lvl, std::string_view component, std::string_view message) {
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n", static_cast<int>(levelName(lvl).size()),
               levelName(lvl).data(), static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()), message.data());
}

}  // namespace lidc::log
