#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace lidc::strings {

std::vector<std::string_view> split(std::string_view input, char delimiter) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.push_back(input.substr(start));
      return out;
    }
    out.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> splitSkipEmpty(std::string_view input, char delimiter) {
  std::vector<std::string_view> out;
  for (auto token : split(input, delimiter)) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

std::string join(const std::vector<std::string>& tokens, std::string_view delimiter) {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i != 0) out += delimiter;
    out += tokens[i];
  }
  return out;
}

std::string_view trim(std::string_view input) {
  std::size_t begin = 0;
  std::size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) --end;
  return input.substr(begin, end - begin);
}

bool startsWith(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string toLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<std::int64_t> parseInt(std::string_view text) {
  std::int64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || text.empty()) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parseUint(std::string_view text) {
  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || text.empty()) return std::nullopt;
  return value;
}

std::optional<double> parseDouble(std::string_view text) {
  double value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || text.empty()) return std::nullopt;
  return value;
}

std::string formatBytes(std::uint64_t bytes) {
  char buf[32];
  constexpr std::uint64_t kKB = 1000;
  constexpr std::uint64_t kMB = kKB * 1000;
  constexpr std::uint64_t kGB = kMB * 1000;
  if (bytes >= kGB) {
    std::snprintf(buf, sizeof(buf), "%.2fGB", static_cast<double>(bytes) / kGB);
  } else if (bytes >= kMB) {
    std::snprintf(buf, sizeof(buf), "%.0fMB", static_cast<double>(bytes) / kMB);
  } else if (bytes >= kKB) {
    std::snprintf(buf, sizeof(buf), "%.0fKB", static_cast<double>(bytes) / kKB);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string formatDurationHms(double seconds) {
  if (seconds < 0) seconds = 0;
  const auto total = static_cast<std::uint64_t>(std::llround(seconds));
  const std::uint64_t h = total / 3600;
  const std::uint64_t m = (total % 3600) / 60;
  const std::uint64_t s = total % 60;
  char buf[48];
  if (h > 0) {
    std::snprintf(buf, sizeof(buf), "%lluh%llum%llus", static_cast<unsigned long long>(h),
                  static_cast<unsigned long long>(m), static_cast<unsigned long long>(s));
  } else if (m > 0) {
    std::snprintf(buf, sizeof(buf), "%llum%llus", static_cast<unsigned long long>(m),
                  static_cast<unsigned long long>(s));
  } else {
    std::snprintf(buf, sizeof(buf), "%llus", static_cast<unsigned long long>(s));
  }
  return buf;
}

}  // namespace lidc::strings
