// Fixed-size thread pool used by the genomics aligner to scale with a
// job's CPU allocation. Tasks are plain std::function<void()>; waitIdle()
// blocks until everything submitted so far has drained.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lidc {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns immediately.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void waitIdle();

  [[nodiscard]] std::size_t threadCount() const noexcept { return workers_.size(); }

  /// Convenience: runs fn(i) for i in [0, n) across the pool and waits.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace lidc
