// Deterministic, seedable random number generation (SplitMix64 seeded
// xoshiro256**). Every stochastic component in the simulation takes an
// explicit Rng so runs are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>

namespace lidc {

/// xoshiro256** with SplitMix64 seeding. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // SplitMix64 expands the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInRange(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniformDouble() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) noexcept { return uniformDouble() < p; }

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Standard normal via Box-Muller (no state caching; two draws per call).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace lidc
