// Minimal leveled logger. Thread-safe, globally configurable level,
// optionally silenced entirely (benches and tests set kWarn or kOff).
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace lidc::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global minimum level; messages below it are dropped.
void setLevel(Level level) noexcept;
Level level() noexcept;

/// Emits one formatted line to stderr. Prefer the LIDC_LOG macro.
void write(Level level, std::string_view component, std::string_view message);

namespace detail {
bool enabled(Level level) noexcept;
}  // namespace detail

/// Streaming log statement:
///   LIDC_LOG(kInfo, "gateway") << "job " << id << " started";
#define LIDC_LOG(lvl, component)                                      \
  if (!::lidc::log::detail::enabled(::lidc::log::Level::lvl)) {      \
  } else                                                              \
    ::lidc::log::detail::LineEmitter(::lidc::log::Level::lvl, (component)).stream()

namespace detail {
class LineEmitter {
 public:
  LineEmitter(Level level, std::string_view component)
      : level_(level), component_(component) {}
  ~LineEmitter() { write(level_, component_, stream_.str()); }
  LineEmitter(const LineEmitter&) = delete;
  LineEmitter& operator=(const LineEmitter&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  Level level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace lidc::log
