// Minimal leveled logger. Thread-safe, globally configurable level,
// optionally silenced entirely (benches and tests set kWarn or kOff).
// With a time source installed (the Simulator does this on
// construction), every line is stamped with the sim clock; while a
// ScopedTrace is active on the emitting thread, the line also carries
// the trace id, so log output can be cross-referenced with explain().
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace lidc::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global minimum level; messages below it are dropped.
void setLevel(Level level) noexcept;
Level level() noexcept;

/// Installs a clock for log timestamps (seconds since sim start).
/// Pass nullptr to remove; lines then carry no timestamp.
void setTimeSource(std::function<double()> secondsNow);

/// Sets this thread's active trace id (0 = none); log lines carry it as
/// "trace=<16-hex>". Prefer ScopedTrace over calling this directly.
void setActiveTrace(std::uint64_t traceId) noexcept;
[[nodiscard]] std::uint64_t activeTrace() noexcept;

/// RAII: stamps log lines in scope with `traceId`, restoring the
/// previous active trace on destruction.
class ScopedTrace {
 public:
  explicit ScopedTrace(std::uint64_t traceId) noexcept : previous_(activeTrace()) {
    setActiveTrace(traceId);
  }
  ~ScopedTrace() { setActiveTrace(previous_); }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  std::uint64_t previous_;
};

/// Emits one formatted line to stderr. Prefer the LIDC_LOG macro.
void write(Level level, std::string_view component, std::string_view message);

/// Mirrors every emitted line (already formatted by the LIDC_LOG call
/// site — the sink adds no second formatting pass) to `sink` in
/// addition to stderr. One sink at a time; pass nullptr to remove.
/// The FlightRecorder uses this to capture warn/error context.
using Sink =
    std::function<void(Level, std::string_view component, std::string_view message)>;
void setSink(Sink sink);

namespace detail {
bool enabled(Level level) noexcept;
}  // namespace detail

/// Streaming log statement:
///   LIDC_LOG(kInfo, "gateway") << "job " << id << " started";
#define LIDC_LOG(lvl, component)                                      \
  if (!::lidc::log::detail::enabled(::lidc::log::Level::lvl)) {      \
  } else                                                              \
    ::lidc::log::detail::LineEmitter(::lidc::log::Level::lvl, (component)).stream()

namespace detail {
class LineEmitter {
 public:
  LineEmitter(Level level, std::string_view component)
      : level_(level), component_(component) {}
  ~LineEmitter() { write(level_, component_, stream_.str()); }
  LineEmitter(const LineEmitter&) = delete;
  LineEmitter& operator=(const LineEmitter&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  Level level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace lidc::log
