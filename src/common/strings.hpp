// Small string utilities used by the semantic-name grammar, config
// parsing, and K8s object naming.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lidc::strings {

/// Splits on a single-character delimiter. Empty tokens are preserved.
std::vector<std::string_view> split(std::string_view input, char delimiter);

/// Splits, dropping empty tokens.
std::vector<std::string_view> splitSkipEmpty(std::string_view input, char delimiter);

/// Joins tokens with the delimiter string.
std::string join(const std::vector<std::string>& tokens, std::string_view delimiter);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view input);

bool startsWith(std::string_view text, std::string_view prefix) noexcept;
bool endsWith(std::string_view text, std::string_view suffix) noexcept;

/// Lower-cases ASCII letters only.
std::string toLower(std::string_view input);

/// Parses a base-10 signed integer; rejects trailing garbage.
std::optional<std::int64_t> parseInt(std::string_view text);

/// Parses a non-negative base-10 integer.
std::optional<std::uint64_t> parseUint(std::string_view text);

/// Parses a double; rejects trailing garbage.
std::optional<double> parseDouble(std::string_view text);

/// Formats a byte count with binary-prefix units ("941MB", "2.71GB").
std::string formatBytes(std::uint64_t bytes);

/// Formats a duration given in seconds like the paper's Table I ("8h9m50s").
std::string formatDurationHms(double seconds);

}  // namespace lidc::strings
