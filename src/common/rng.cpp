#include "common/rng.hpp"

#include <cmath>

namespace lidc {

double Rng::exponential(double mean) noexcept {
  // Inverse-CDF sampling; guard the log against u == 0.
  double u = uniformDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) noexcept {
  double u1 = uniformDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniformDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

}  // namespace lidc
