#include "common/units.hpp"

#include <cmath>
#include <cstdio>

#include "common/strings.hpp"

namespace lidc {

std::optional<ByteSize> ByteSize::parse(std::string_view text) {
  text = strings::trim(text);
  if (text.empty()) return std::nullopt;

  // Find the boundary between the numeric part and the suffix.
  std::size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.')) {
    ++i;
  }
  const std::string_view number = text.substr(0, i);
  const std::string_view suffix = text.substr(i);

  const auto value = strings::parseDouble(number);
  if (!value || *value < 0) return std::nullopt;

  double multiplier = 1.0;
  if (suffix.empty() || suffix == "B") {
    multiplier = 1.0;
  } else if (suffix == "K") {
    multiplier = 1e3;
  } else if (suffix == "M") {
    multiplier = 1e6;
  } else if (suffix == "G") {
    multiplier = 1e9;
  } else if (suffix == "T") {
    multiplier = 1e12;
  } else if (suffix == "Ki") {
    multiplier = 1024.0;
  } else if (suffix == "Mi") {
    multiplier = 1024.0 * 1024.0;
  } else if (suffix == "Gi") {
    multiplier = 1024.0 * 1024.0 * 1024.0;
  } else if (suffix == "Ti") {
    multiplier = 1024.0 * 1024.0 * 1024.0 * 1024.0;
  } else {
    return std::nullopt;
  }
  return ByteSize(static_cast<std::uint64_t>(std::llround(*value * multiplier)));
}

std::string ByteSize::toString() const {
  // Prefer exact binary suffixes when the value divides evenly.
  char buf[32];
  if (bytes_ != 0 && bytes_ % (1ULL << 30) == 0) {
    std::snprintf(buf, sizeof(buf), "%lluGi",
                  static_cast<unsigned long long>(bytes_ >> 30));
  } else if (bytes_ != 0 && bytes_ % (1ULL << 20) == 0) {
    std::snprintf(buf, sizeof(buf), "%lluMi",
                  static_cast<unsigned long long>(bytes_ >> 20));
  } else if (bytes_ != 0 && bytes_ % (1ULL << 10) == 0) {
    std::snprintf(buf, sizeof(buf), "%lluKi",
                  static_cast<unsigned long long>(bytes_ >> 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(bytes_));
  }
  return buf;
}

std::optional<MilliCpu> MilliCpu::parse(std::string_view text) {
  text = strings::trim(text);
  if (text.empty()) return std::nullopt;
  if (text.back() == 'm') {
    const auto milli = strings::parseUint(text.substr(0, text.size() - 1));
    if (!milli) return std::nullopt;
    return MilliCpu(*milli);
  }
  const auto cores = strings::parseDouble(text);
  if (!cores || *cores < 0) return std::nullopt;
  return MilliCpu(static_cast<std::uint64_t>(std::llround(*cores * 1000.0)));
}

std::string MilliCpu::toString() const {
  char buf[32];
  if (millicores_ % 1000 == 0) {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(millicores_ / 1000));
  } else {
    std::snprintf(buf, sizeof(buf), "%llum",
                  static_cast<unsigned long long>(millicores_));
  }
  return buf;
}

}  // namespace lidc
