// Typed byte and time quantities shared by the K8s resource model and
// the network simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace lidc {

/// Byte counts with K8s-style suffix parsing ("4Gi", "512Mi", "100M").
class ByteSize {
 public:
  constexpr ByteSize() noexcept = default;
  constexpr explicit ByteSize(std::uint64_t bytes) noexcept : bytes_(bytes) {}

  static constexpr ByteSize fromKiB(std::uint64_t v) noexcept { return ByteSize(v << 10); }
  static constexpr ByteSize fromMiB(std::uint64_t v) noexcept { return ByteSize(v << 20); }
  static constexpr ByteSize fromGiB(std::uint64_t v) noexcept { return ByteSize(v << 30); }

  /// Parses "4Gi" / "512Mi" / "100K" / "1024" (bytes). Decimal (K/M/G) and
  /// binary (Ki/Mi/Gi) suffixes are both accepted, as in Kubernetes.
  static std::optional<ByteSize> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] constexpr double gib() const noexcept {
    return static_cast<double>(bytes_) / (1ULL << 30);
  }

  [[nodiscard]] std::string toString() const;

  constexpr auto operator<=>(const ByteSize&) const noexcept = default;

  constexpr ByteSize operator+(ByteSize other) const noexcept {
    return ByteSize(bytes_ + other.bytes_);
  }
  constexpr ByteSize operator-(ByteSize other) const noexcept {
    return ByteSize(bytes_ >= other.bytes_ ? bytes_ - other.bytes_ : 0);
  }
  ByteSize& operator+=(ByteSize other) noexcept {
    bytes_ += other.bytes_;
    return *this;
  }
  ByteSize& operator-=(ByteSize other) noexcept {
    bytes_ = bytes_ >= other.bytes_ ? bytes_ - other.bytes_ : 0;
    return *this;
  }

 private:
  std::uint64_t bytes_ = 0;
};

/// Milli-CPU resource quantity, as in K8s ("500m" = half a core, "2" = 2 cores).
class MilliCpu {
 public:
  constexpr MilliCpu() noexcept = default;
  constexpr explicit MilliCpu(std::uint64_t millicores) noexcept
      : millicores_(millicores) {}

  static constexpr MilliCpu fromCores(std::uint64_t cores) noexcept {
    return MilliCpu(cores * 1000);
  }

  /// Parses "500m", "2", "2.5".
  static std::optional<MilliCpu> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint64_t millicores() const noexcept { return millicores_; }
  [[nodiscard]] constexpr double cores() const noexcept {
    return static_cast<double>(millicores_) / 1000.0;
  }

  [[nodiscard]] std::string toString() const;

  constexpr auto operator<=>(const MilliCpu&) const noexcept = default;

  constexpr MilliCpu operator+(MilliCpu other) const noexcept {
    return MilliCpu(millicores_ + other.millicores_);
  }
  constexpr MilliCpu operator-(MilliCpu other) const noexcept {
    return MilliCpu(millicores_ >= other.millicores_ ? millicores_ - other.millicores_
                                                     : 0);
  }
  MilliCpu& operator+=(MilliCpu other) noexcept {
    millicores_ += other.millicores_;
    return *this;
  }
  MilliCpu& operator-=(MilliCpu other) noexcept {
    millicores_ = millicores_ >= other.millicores_ ? millicores_ - other.millicores_ : 0;
    return *this;
  }

 private:
  std::uint64_t millicores_ = 0;
};

}  // namespace lidc
