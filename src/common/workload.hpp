// Workload arrival processes for benches: Poisson (exponential
// inter-arrival) and fixed-rate generators over simulated time.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "sim/time.hpp"

namespace lidc {

/// Poisson arrival process: next() yields successive inter-arrival gaps
/// with the configured mean rate (events per simulated second).
class PoissonArrivals {
 public:
  PoissonArrivals(double eventsPerSecond, std::uint64_t seed)
      : mean_gap_s_(1.0 / eventsPerSecond), rng_(seed) {}

  [[nodiscard]] sim::Duration next() {
    return sim::Duration::seconds(rng_.exponential(mean_gap_s_));
  }

 private:
  double mean_gap_s_;
  Rng rng_;
};

/// Deterministic fixed-rate arrivals.
class FixedArrivals {
 public:
  explicit FixedArrivals(double eventsPerSecond)
      : gap_(sim::Duration::seconds(1.0 / eventsPerSecond)) {}

  [[nodiscard]] sim::Duration next() const { return gap_; }

 private:
  sim::Duration gap_;
};

}  // namespace lidc
