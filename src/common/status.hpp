// Lightweight Status / Result<T> error handling, in the style of
// absl::Status / std::expected. Used across all LIDC modules so that
// fallible operations never throw across module boundaries.
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace lidc {

/// Canonical error space shared by every subsystem.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kTimeout,
  kInternal,
  kUnimplemented,
  kPermissionDenied,
  kAborted,
};

/// Human-readable name of a StatusCode ("OK", "NOT_FOUND", ...).
std::string_view statusCodeName(StatusCode code) noexcept;

/// A success-or-error value: a code plus an optional diagnostic message.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  [[nodiscard]] std::string toString() const {
    if (ok()) return "OK";
    std::string out(statusCodeName(code_));
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  static Status Ok() { return {}; }
  static Status InvalidArgument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status NotFound(std::string msg) {
    return {StatusCode::kNotFound, std::move(msg)};
  }
  static Status AlreadyExists(std::string msg) {
    return {StatusCode::kAlreadyExists, std::move(msg)};
  }
  static Status ResourceExhausted(std::string msg) {
    return {StatusCode::kResourceExhausted, std::move(msg)};
  }
  static Status FailedPrecondition(std::string msg) {
    return {StatusCode::kFailedPrecondition, std::move(msg)};
  }
  static Status Unavailable(std::string msg) {
    return {StatusCode::kUnavailable, std::move(msg)};
  }
  static Status Timeout(std::string msg) {
    return {StatusCode::kTimeout, std::move(msg)};
  }
  static Status Internal(std::string msg) {
    return {StatusCode::kInternal, std::move(msg)};
  }
  static Status Unimplemented(std::string msg) {
    return {StatusCode::kUnimplemented, std::move(msg)};
  }
  static Status PermissionDenied(std::string msg) {
    return {StatusCode::kPermissionDenied, std::move(msg)};
  }
  static Status Aborted(std::string msg) {
    return {StatusCode::kAborted, std::move(msg)};
  }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.toString();
}

/// Result<T>: either a value of T or a non-OK Status.
/// Accessing value() on an error result asserts in debug builds.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit wrap.
  Result(T value) : payload_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : payload_(std::move(status)) {
    assert(!std::get<Status>(payload_).ok() &&
           "Result<T> must not hold an OK status without a value");
  }

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(payload_);
  }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(payload_);
  }

  /// Value if OK, otherwise the provided fallback.
  [[nodiscard]] T valueOr(T fallback) const& {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagate-on-error helper: RETURN_IF_ERROR(expr) where expr yields Status.
#define LIDC_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::lidc::Status lidc_status_ = (expr);     \
    if (!lidc_status_.ok()) return lidc_status_; \
  } while (0)

}  // namespace lidc
