#include "common/status.hpp"

namespace lidc {

std::string_view statusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kAborted:
      return "ABORTED";
  }
  return "UNKNOWN";
}

}  // namespace lidc
