// A generic data-flow stage application: reads one or more named
// objects from the data lake, concatenates them (optionally prefixed by
// a "tag" marker), and writes the combined object back. It is the
// all-purpose map/reduce vertex the workflow benches and chaos tests
// build DAGs out of — fan-in is just multiple dataset= inputs, fan-out
// is multiple consumers of one output.
#pragma once

#include <cstdint>
#include <vector>

#include "datalake/object_store.hpp"
#include "k8s/job.hpp"
#include "ndn/name.hpp"

namespace lidc::k8s {
class Cluster;
}  // namespace lidc::k8s

namespace lidc::apps {

struct TransformConfig {
  ndn::Name dataPrefix{"/ndn/k8s/data"};
  /// Single-core streaming throughput at testbed scale.
  double bytesPerSecondPerCore = 120e6;
  /// Parallel efficiency per additional core.
  double scalingEfficiency = 0.9;
  std::size_t maxCores = 16;
};

/// Arguments understood by the runner (JobSpec::args):
///   "input"            - primary object name (optional if datasets given)
///   "dataset0..N"      - further inputs, concatenated in index order
///   "tag"              - marker bytes prepended to the output (optional)
///   "out"              - output object name (default results/<job>, set
///                        by the job manager)
k8s::AppRunner makeTransformRunner(datalake::ObjectStore& store,
                                   TransformConfig config = {});

/// Registers the "transform" image on a cluster.
void installTransformApp(k8s::Cluster& cluster, datalake::ObjectStore& store,
                         TransformConfig config = {});

}  // namespace lidc::apps
