#include "apps/transform_app.hpp"

#include <algorithm>
#include <string>

#include "common/strings.hpp"
#include "k8s/cluster.hpp"

namespace lidc::apps {

namespace {

ndn::Name objectName(const ndn::Name& dataPrefix, const std::string& path) {
  ndn::Name name = dataPrefix;
  for (auto part : strings::splitSkipEmpty(path, '/')) name.append(part);
  return name;
}

}  // namespace

k8s::AppRunner makeTransformRunner(datalake::ObjectStore& store,
                                   TransformConfig config) {
  return [&store, config](k8s::AppContext& context) -> k8s::AppResult {
    k8s::AppResult result;

    // Inputs: the "input" arg first, then dataset0..N in index order,
    // skipping duplicates so a bound dataset is not read twice.
    std::vector<std::string> inputs;
    if (auto it = context.spec.args.find("input");
        it != context.spec.args.end()) {
      inputs.push_back(it->second);
    }
    for (std::size_t i = 0;; ++i) {
      auto it = context.spec.args.find("dataset" + std::to_string(i));
      if (it == context.spec.args.end()) break;
      if (std::find(inputs.begin(), inputs.end(), it->second) == inputs.end()) {
        inputs.push_back(it->second);
      }
    }
    if (inputs.empty()) {
      result.status =
          Status::InvalidArgument("transform requires input= or a dataset");
      return result;
    }

    std::vector<std::uint8_t> combined;
    if (auto it = context.spec.args.find("tag"); it != context.spec.args.end()) {
      combined.insert(combined.end(), it->second.begin(), it->second.end());
      combined.push_back('\n');
    }
    std::size_t inputBytes = 0;
    for (const std::string& input : inputs) {
      const ndn::Name name = objectName(config.dataPrefix, input);
      const auto bytes = store.get(name);
      if (!bytes) {
        result.status =
            Status::NotFound("input not in data lake: " + name.toUri());
        return result;
      }
      inputBytes += bytes->size();
      combined.insert(combined.end(), bytes->begin(), bytes->end());
    }

    std::string outObject = "results/transform";
    if (auto it = context.spec.args.find("out"); it != context.spec.args.end()) {
      outObject = it->second;
    }
    const ndn::Name outName = objectName(config.dataPrefix, outObject);
    const std::size_t outputSize = combined.size();
    if (auto st = store.put(outName, std::move(combined)); !st.ok()) {
      result.status = st;
      return result;
    }

    const std::size_t cores = std::min<std::size_t>(
        config.maxCores,
        std::max<std::size_t>(1, static_cast<std::size_t>(
                                     context.spec.requests.cpu.cores())));
    const double effectiveCores =
        1.0 + config.scalingEfficiency * static_cast<double>(cores - 1);
    result.runtime = sim::Duration::seconds(
        static_cast<double>(inputBytes) /
        (config.bytesPerSecondPerCore * effectiveCores));
    result.resultPath = outName.toUri();
    result.outputBytes = outputSize;
    result.message = "transformed " + std::to_string(inputs.size()) +
                     " inputs, " + std::to_string(inputBytes) + " -> " +
                     std::to_string(outputSize) + " bytes";
    return result;
  };
}

void installTransformApp(k8s::Cluster& cluster, datalake::ObjectStore& store,
                         TransformConfig config) {
  cluster.registerApp("transform", makeTransformRunner(store, std::move(config)));
}

}  // namespace lidc::apps
