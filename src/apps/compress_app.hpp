// The "file compression tool" of paper SIV-B — the second application
// LIDC serves, with its own validator (no SRR ids). It reads a named
// object from the data lake, performs real run-length compression, and
// writes the compressed object back.
//
// Unlike Magic-BLAST, compression is streaming and embarrassingly
// parallel, so its runtime model *does* scale with allocated CPUs —
// the per-application contrast the ablation benches exercise.
#pragma once

#include <cstdint>
#include <vector>

#include "datalake/object_store.hpp"
#include "k8s/job.hpp"
#include "ndn/name.hpp"

namespace lidc::k8s {
class Cluster;
}  // namespace lidc::k8s

namespace lidc::apps {

struct CompressConfig {
  ndn::Name dataPrefix{"/ndn/k8s/data"};
  /// Single-core compression throughput at testbed scale.
  double bytesPerSecondPerCore = 80e6;
  /// Parallel efficiency per additional core (near-linear).
  double scalingEfficiency = 0.9;
  std::size_t maxCores = 16;
};

/// Byte-level RLE compression/decompression (real work, lossless).
std::vector<std::uint8_t> rleCompress(const std::vector<std::uint8_t>& input);
Result<std::vector<std::uint8_t>> rleDecompress(
    const std::vector<std::uint8_t>& compressed);

/// Arguments understood by the runner (JobSpec::args):
///   "input" (or "dataset0") - object name under the data prefix (required)
///   "out"                   - output object name (default results/<input>.rle)
k8s::AppRunner makeCompressRunner(datalake::ObjectStore& store,
                                  CompressConfig config = {});

/// Registers the "compress" image on a cluster.
void installCompressApp(k8s::Cluster& cluster, datalake::ObjectStore& store,
                        CompressConfig config = {});

}  // namespace lidc::apps
