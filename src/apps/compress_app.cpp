#include "apps/compress_app.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "k8s/cluster.hpp"

namespace lidc::apps {

std::vector<std::uint8_t> rleCompress(const std::vector<std::uint8_t>& input) {
  std::vector<std::uint8_t> out;
  out.reserve(input.size() / 2 + 16);
  std::size_t i = 0;
  while (i < input.size()) {
    const std::uint8_t byte = input[i];
    std::size_t run = 1;
    while (i + run < input.size() && input[i + run] == byte && run < 255) ++run;
    out.push_back(static_cast<std::uint8_t>(run));
    out.push_back(byte);
    i += run;
  }
  return out;
}

Result<std::vector<std::uint8_t>> rleDecompress(
    const std::vector<std::uint8_t>& compressed) {
  if (compressed.size() % 2 != 0) {
    return Status::InvalidArgument("RLE stream has odd length");
  }
  std::vector<std::uint8_t> out;
  out.reserve(compressed.size());
  for (std::size_t i = 0; i < compressed.size(); i += 2) {
    const std::uint8_t run = compressed[i];
    if (run == 0) return Status::InvalidArgument("RLE run of zero");
    out.insert(out.end(), run, compressed[i + 1]);
  }
  return out;
}

k8s::AppRunner makeCompressRunner(datalake::ObjectStore& store,
                                  CompressConfig config) {
  return [&store, config](k8s::AppContext& context) -> k8s::AppResult {
    k8s::AppResult result;

    std::string input;
    if (auto it = context.spec.args.find("input"); it != context.spec.args.end()) {
      input = it->second;
    } else if (auto it2 = context.spec.args.find("dataset0");
               it2 != context.spec.args.end()) {
      input = it2->second;
    }
    if (input.empty()) {
      result.status = Status::InvalidArgument("compress requires input=");
      return result;
    }

    ndn::Name inputName = config.dataPrefix;
    for (auto part : strings::splitSkipEmpty(input, '/')) inputName.append(part);
    const auto bytes = store.get(inputName);
    if (!bytes) {
      result.status = Status::NotFound("input not in data lake: " +
                                       inputName.toUri());
      return result;
    }

    // Real compression work.
    auto compressed = rleCompress(*bytes);
    const std::size_t inputSize = bytes->size();
    const std::size_t outputSize = compressed.size();

    std::string outObject = "results/" + input + ".rle";
    if (auto it = context.spec.args.find("out"); it != context.spec.args.end()) {
      outObject = it->second;
    }
    ndn::Name outName = config.dataPrefix;
    for (auto part : strings::splitSkipEmpty(outObject, '/')) outName.append(part);
    if (auto st = store.put(outName, std::move(compressed)); !st.ok()) {
      result.status = st;
      return result;
    }

    // Runtime model: streaming compression parallelises nearly linearly
    // (contrast with Magic-BLAST's flat profile in Table I).
    const std::size_t cores = std::min<std::size_t>(
        config.maxCores,
        std::max<std::size_t>(1, static_cast<std::size_t>(
                                     context.spec.requests.cpu.cores())));
    const double effectiveCores =
        1.0 + config.scalingEfficiency * static_cast<double>(cores - 1);
    result.runtime = sim::Duration::seconds(
        static_cast<double>(inputSize) /
        (config.bytesPerSecondPerCore * effectiveCores));
    result.resultPath = outName.toUri();
    result.outputBytes = outputSize;
    result.message = "compressed " + std::to_string(inputSize) + " -> " +
                     std::to_string(outputSize) + " bytes";
    return result;
  };
}

void installCompressApp(k8s::Cluster& cluster, datalake::ObjectStore& store,
                        CompressConfig config) {
  cluster.registerApp("compress", makeCompressRunner(store, std::move(config)));
}

}  // namespace lidc::apps
