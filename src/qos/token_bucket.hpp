// Token bucket on simulated time with lazy refill: no timers, no
// background events — tokens accrue arithmetically when the bucket is
// next consulted, so an idle bucket costs nothing and the simulator can
// drain. Used by the AdmissionController for per-tenant submit-rate
// limits.
#pragma once

#include <algorithm>

#include "sim/time.hpp"

namespace lidc::qos {

class TokenBucket {
 public:
  TokenBucket() = default;
  /// ratePerSec <= 0 means unlimited: tryTake always succeeds.
  TokenBucket(double ratePerSec, double burst)
      : rate_(ratePerSec), burst_(burst), tokens_(burst) {}

  bool tryTake(sim::Time now, double cost = 1.0) noexcept {
    if (rate_ <= 0.0) return true;
    refill(now);
    // Epsilon absorbs float drift so exact-rate submitters are admitted.
    if (tokens_ + 1e-9 < cost) return false;
    tokens_ -= cost;
    return true;
  }

  [[nodiscard]] double tokens(sim::Time now) noexcept {
    refill(now);
    return tokens_;
  }

 private:
  void refill(sim::Time now) noexcept {
    if (now.toNanos() <= last_.toNanos()) return;
    const double elapsed =
        static_cast<double>(now.toNanos() - last_.toNanos()) / 1e9;
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
    last_ = now;
  }

  double rate_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  sim::Time last_;
};

}  // namespace lidc::qos
