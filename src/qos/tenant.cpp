#include "qos/tenant.hpp"

namespace lidc::qos {

bool isValidTenantId(const std::string& id) noexcept {
  if (id.empty() || id.size() > 48) return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-';
    if (!ok) return false;
  }
  return true;
}

Status TenantRegistry::registerTenant(TenantSpec spec) {
  if (!isValidTenantId(spec.id)) {
    return Status::InvalidArgument("invalid tenant id '" + spec.id + "'");
  }
  if (spec.weight <= 0.0) {
    return Status::InvalidArgument("tenant '" + spec.id +
                                   "' weight must be > 0");
  }
  auto [it, inserted] = tenants_.try_emplace(spec.id);
  if (!inserted) {
    return Status::AlreadyExists("tenant '" + spec.id + "' already registered");
  }
  it->second.spec = std::move(spec);
  return Status::Ok();
}

const TenantSpec* TenantRegistry::find(const std::string& id) const noexcept {
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : &it->second.spec;
}

std::vector<std::string> TenantRegistry::ids() const {
  std::vector<std::string> out;
  out.reserve(tenants_.size());
  for (const auto& [id, entry] : tenants_) out.push_back(id);
  return out;
}

Status TenantRegistry::chargePublish(const std::string& id, std::uint64_t bytes) {
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    return Status::NotFound("unknown tenant '" + id + "'");
  }
  Entry& entry = it->second;
  const std::uint64_t budget = entry.spec.quota.maxPublishBytes;
  if (budget != 0 && entry.publishedBytes + bytes > budget) {
    ++entry.publishRejects;
    return Status::ResourceExhausted(
        "tenant '" + id + "' publish quota exhausted (" +
        std::to_string(entry.publishedBytes + bytes) + " > " +
        std::to_string(budget) + " bytes)");
  }
  entry.publishedBytes += bytes;
  return Status::Ok();
}

std::uint64_t TenantRegistry::publishedBytes(const std::string& id) const noexcept {
  auto it = tenants_.find(id);
  return it == tenants_.end() ? 0 : it->second.publishedBytes;
}

std::uint64_t TenantRegistry::publishRejects(const std::string& id) const noexcept {
  auto it = tenants_.find(id);
  return it == tenants_.end() ? 0 : it->second.publishRejects;
}

void TenantRegistry::attachTelemetry(telemetry::MetricsRegistry& registry) {
  registry.registerCollector([this, &registry] {
    for (const auto& [id, entry] : tenants_) {
      registry.counter("lidc_qos_publish_bytes", {{"tenant", id}})
          .set(entry.publishedBytes);
      registry.counter("lidc_qos_publish_rejected_total", {{"tenant", id}})
          .set(entry.publishRejects);
    }
  });
}

}  // namespace lidc::qos
