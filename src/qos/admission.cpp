#include "qos/admission.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace lidc::qos {

std::string_view admitDecisionName(AdmitDecision decision) noexcept {
  switch (decision) {
    case AdmitDecision::kQueued:
      return "queued";
    case AdmitDecision::kRejectedUnknownTenant:
      return "unknown-tenant";
    case AdmitDecision::kRejectedRate:
      return "rate";
    case AdmitDecision::kRejectedQuota:
      return "quota";
    case AdmitDecision::kRejectedQueueFull:
      return "queue-full";
  }
  return "?";
}

AdmissionController::AdmissionController(sim::Simulator& sim,
                                         const TenantRegistry& tenants,
                                         std::string cluster,
                                         AdmissionOptions options)
    : sim_(sim),
      tenants_(tenants),
      cluster_(std::move(cluster)),
      options_(options) {}

AdmissionController::TenantState& AdmissionController::stateFor(
    const TenantSpec& spec) {
  auto [it, inserted] = states_.try_emplace(spec.id);
  TenantState& st = it->second;
  if (inserted) {
    st.spec = &spec;
    st.bucket = TokenBucket(spec.quota.submitRatePerSec, spec.quota.submitBurst);
  }
  return st;
}

const AdmissionController::TenantState* AdmissionController::stateOf(
    const std::string& tenant) const noexcept {
  auto it = states_.find(tenant);
  return it == states_.end() ? nullptr : &it->second;
}

void AdmissionController::appendLog(std::string_view verb,
                                    const std::string& tenant,
                                    const std::string& detail) {
  char stamp[40];
  std::snprintf(stamp, sizeof(stamp), "t=%.6fs ", sim_.now().toSeconds());
  log_ += stamp;
  log_ += verb;
  log_ += " tenant=";
  log_ += tenant;
  if (!detail.empty()) {
    log_ += ' ';
    log_ += detail;
  }
  log_ += '\n';
}

void AdmissionController::reject(TenantState& st, const std::string& id,
                                 const std::string& reason,
                                 const std::string& tag) {
  ++st.rejects[reason];
  appendLog("reject", id, "reason=" + reason + " tag=" + tag);
  LIDC_FR_EVENT(recorder_, kWarn, "qos",
                "reject tenant=" + id + " reason=" + reason + " tag=" + tag);
}

AdmitDecision AdmissionController::offer(AdmissionJob job) {
  const sim::Time now = sim_.now();
  const TenantSpec* spec = tenants_.find(job.tenant);
  if (spec == nullptr) {
    ++rejected_unknown_;
    // Attacker-controlled ids get no per-tenant state and a bounded log
    // line: an unknown-tenant flood must not grow memory per name.
    std::string shown = job.tenant.substr(0, 48);
    appendLog("reject", shown, "reason=unknown-tenant");
    LIDC_FR_EVENT(recorder_, kWarn, "qos",
                  "reject tenant=" + shown + " reason=unknown-tenant");
    return AdmitDecision::kRejectedUnknownTenant;
  }

  TenantState& st = stateFor(*spec);
  if (!st.bucket.tryTake(now)) {
    reject(st, spec->id, "rate", job.tag);
    return AdmitDecision::kRejectedRate;
  }

  const TenantQuota& quota = spec->quota;
  const std::uint64_t projectedJobs = st.inFlightJobs + st.queue.size() + 1;
  const std::uint64_t projectedCpu =
      st.inFlightCpu + st.queuedCpu + job.cpuMillicores;
  const std::uint64_t projectedMem =
      st.inFlightMem + st.queuedMem + job.memoryBytes;
  if ((quota.maxJobsInFlight != 0 && projectedJobs > quota.maxJobsInFlight) ||
      (quota.maxCpuMillicores != 0 && projectedCpu > quota.maxCpuMillicores) ||
      (quota.maxMemoryBytes != 0 && projectedMem > quota.maxMemoryBytes)) {
    reject(st, spec->id, "quota", job.tag);
    return AdmitDecision::kRejectedQuota;
  }

  if (st.queue.size() >= options_.maxQueuePerTenant) {
    reject(st, spec->id, "queue-full", job.tag);
    return AdmitDecision::kRejectedQueueFull;
  }
  if (queued_total_ >= options_.maxQueueTotal && !tryPreemptFor(*spec)) {
    reject(st, spec->id, "queue-full", job.tag);
    return AdmitDecision::kRejectedQueueFull;
  }

  st.queuedCpu += job.cpuMillicores;
  st.queuedMem += job.memoryBytes;
  appendLog("enqueue", spec->id, "tag=" + job.tag);
  st.queue.push_back(Pending{std::move(job), now});
  ++queued_total_;
  if (!st.inRing) {
    st.inRing = true;
    ring_.push_back(spec->id);
  }
  drain();
  return AdmitDecision::kQueued;
}

void AdmissionController::releaseJob(const std::string& tenant,
                                     std::uint64_t cpuMillicores,
                                     std::uint64_t memoryBytes) {
  auto it = states_.find(tenant);
  if (it == states_.end()) return;
  TenantState& st = it->second;
  if (st.inFlightJobs > 0) --st.inFlightJobs;
  st.inFlightCpu -= std::min(st.inFlightCpu, cpuMillicores);
  st.inFlightMem -= std::min(st.inFlightMem, memoryBytes);
  drain();
}

void AdmissionController::dropExpired(const std::string& id, TenantState& st) {
  const sim::Time now = sim_.now();
  while (!st.queue.empty()) {
    const Pending& front = st.queue.front();
    const sim::Time expiresAt = front.job.expiresAt;
    if (expiresAt.toNanos() == 0 || now.toNanos() <= expiresAt.toNanos()) break;
    Pending entry = std::move(st.queue.front());
    st.queue.pop_front();
    --queued_total_;
    st.queuedCpu -= std::min(st.queuedCpu, entry.job.cpuMillicores);
    st.queuedMem -= std::min(st.queuedMem, entry.job.memoryBytes);
    ++st.expired;
    appendLog("expire", id, "tag=" + entry.job.tag);
    LIDC_FR_EVENT(recorder_, kWarn, "qos",
                  "expire tenant=" + id + " tag=" + entry.job.tag);
    if (entry.job.evict) entry.job.evict("expired");
  }
}

void AdmissionController::launchFront(const std::string& id, TenantState& st) {
  Pending entry = std::move(st.queue.front());
  st.queue.pop_front();
  --queued_total_;
  st.queuedCpu -= std::min(st.queuedCpu, entry.job.cpuMillicores);
  st.queuedMem -= std::min(st.queuedMem, entry.job.memoryBytes);
  ++st.inFlightJobs;
  st.inFlightCpu += entry.job.cpuMillicores;
  st.inFlightMem += entry.job.memoryBytes;
  ++st.admitted;
  const std::int64_t waitUs =
      (sim_.now() - entry.enqueuedAt).toNanos() / 1000;
  if (registry_ != nullptr) {
    registry_
        ->histogram("lidc_qos_queue_wait_us",
                    {{"cluster", cluster_}, {"tenant", id}})
        .observe(static_cast<double>(waitUs));
  }
  appendLog("admit", id,
            "tag=" + entry.job.tag + " wait_us=" + std::to_string(waitUs));
  if (flow_ != nullptr && entry.job.wireBytes > 0) {
    telemetry::FlowKey key;
    key.group = "submit";
    key.tenant = telemetry::sanitizeFlowComponent(id);
    key.tag = telemetry::sanitizeFlowComponent(entry.job.tag);
    flow_->recordTransfer(key, entry.job.wireBytes);
  }
  if (entry.job.launch) entry.job.launch();
}

void AdmissionController::rotateHead(TenantState& st) {
  const std::string id = std::move(ring_.front());
  ring_.pop_front();
  st.headAccrued = false;
  if (st.queue.empty()) {
    st.inRing = false;
    st.deficit = 0.0;  // idle tenants do not bank deficit
  } else {
    ring_.push_back(id);
  }
}

void AdmissionController::drain() {
  if (draining_) return;
  draining_ = true;
  // Persistent-head DRR: the tenant at the ring front keeps first claim
  // on freed capacity until its deficit round is spent, THEN rotates to
  // the back. A capacity block holds the head in place, so rotation —
  // and therefore fairness — survives across drain calls; without this,
  // every drain would restart from the same front and a flooding tenant
  // that happened to enter the ring first would win every freed core.
  while (!ring_.empty()) {
    TenantState& st = states_.at(ring_.front());
    dropExpired(ring_.front(), st);
    if (st.queue.empty()) {
      rotateHead(st);
      continue;
    }
    if (!st.headAccrued) {
      // Clamp: a zero accrual would keep the head rotating forever
      // without ever reaching launch cost.
      const double quantum =
          std::max(1e-6, st.spec->weight * options_.quantum);
      // The cap never drops below one job, or low-weight tenants could
      // never bank enough to reach launch cost.
      const double cap = std::max(1.0, quantum * options_.deficitCap);
      st.deficit = std::min(cap, st.deficit + quantum);
      st.headAccrued = true;
    }
    bool blocked = false;
    while (st.deficit >= 1.0 && !st.queue.empty()) {
      dropExpired(ring_.front(), st);
      if (st.queue.empty()) break;
      if (capacity_probe_ && !capacity_probe_(st.queue.front().job)) {
        blocked = true;
        break;
      }
      st.deficit -= 1.0;
      launchFront(ring_.front(), st);
    }
    if (blocked) break;  // hold the head; the next drain resumes here
    rotateHead(st);
  }
  draining_ = false;
  if (queued_total_ > 0) armTimer();
}

bool AdmissionController::tryPreemptFor(const TenantSpec& incoming) {
  TenantState* victim = nullptr;
  std::string victimId;
  for (auto& [id, st] : states_) {
    if (st.queue.empty()) continue;
    if (st.spec->priorityClass >= incoming.priorityClass) continue;
    if (victim == nullptr ||
        st.spec->priorityClass < victim->spec->priorityClass) {
      victim = &st;
      victimId = id;
    }
  }
  if (victim == nullptr) return false;

  Pending entry = std::move(victim->queue.back());
  victim->queue.pop_back();
  --queued_total_;
  victim->queuedCpu -= std::min(victim->queuedCpu, entry.job.cpuMillicores);
  victim->queuedMem -= std::min(victim->queuedMem, entry.job.memoryBytes);
  ++victim->preempted;
  appendLog("preempt", victimId, "by=" + incoming.id + " tag=" + entry.job.tag);
  LIDC_FR_EVENT(recorder_, kWarn, "qos",
                "preempt tenant=" + victimId + " by=" + incoming.id + " tag=" +
                    entry.job.tag);
  if (entry.job.evict) entry.job.evict("preempted");
  return true;
}

void AdmissionController::armTimer() {
  if (timer_armed_) return;
  timer_armed_ = true;
  sim_.scheduleAfter(options_.drainInterval, [this] {
    timer_armed_ = false;
    drain();
  });
}

std::size_t AdmissionController::queueDepth(
    const std::string& tenant) const noexcept {
  const TenantState* st = stateOf(tenant);
  return st == nullptr ? 0 : st->queue.size();
}

std::uint64_t AdmissionController::jobsInFlight(
    const std::string& tenant) const noexcept {
  const TenantState* st = stateOf(tenant);
  return st == nullptr ? 0 : st->inFlightJobs;
}

std::uint64_t AdmissionController::admitted(
    const std::string& tenant) const noexcept {
  const TenantState* st = stateOf(tenant);
  return st == nullptr ? 0 : st->admitted;
}

std::uint64_t AdmissionController::rejected(
    const std::string& tenant) const noexcept {
  const TenantState* st = stateOf(tenant);
  if (st == nullptr) return 0;
  std::uint64_t total = 0;
  for (const auto& [reason, count] : st->rejects) total += count;
  return total;
}

std::uint64_t AdmissionController::rejected(
    const std::string& tenant, const std::string& reason) const noexcept {
  const TenantState* st = stateOf(tenant);
  if (st == nullptr) return 0;
  auto it = st->rejects.find(reason);
  return it == st->rejects.end() ? 0 : it->second;
}

std::uint64_t AdmissionController::preempted(
    const std::string& tenant) const noexcept {
  const TenantState* st = stateOf(tenant);
  return st == nullptr ? 0 : st->preempted;
}

std::uint64_t AdmissionController::expired(
    const std::string& tenant) const noexcept {
  const TenantState* st = stateOf(tenant);
  return st == nullptr ? 0 : st->expired;
}

void AdmissionController::attachTelemetry(telemetry::MetricsRegistry& registry) {
  registry_ = &registry;
  registry.registerCollector([this, &registry] {
    double totalDepth = 0.0;
    for (const auto& [id, st] : states_) {
      const telemetry::Labels labels{{"cluster", cluster_}, {"tenant", id}};
      registry.counter("lidc_qos_admitted_total", labels).set(st.admitted);
      registry.counter("lidc_qos_preempted_total", labels).set(st.preempted);
      registry.counter("lidc_qos_expired_total", labels).set(st.expired);
      registry.gauge("lidc_qos_queue_depth", labels)
          .set(static_cast<double>(st.queue.size()));
      registry.gauge("lidc_qos_jobs_in_flight", labels)
          .set(static_cast<double>(st.inFlightJobs));
      for (const auto& [reason, count] : st.rejects) {
        registry
            .counter("lidc_qos_rejected_total",
                     {{"cluster", cluster_}, {"reason", reason}, {"tenant", id}})
            .set(count);
      }
      totalDepth += static_cast<double>(st.queue.size());
    }
    registry
        .counter("lidc_qos_rejected_total", {{"cluster", cluster_},
                                             {"reason", "unknown-tenant"},
                                             {"tenant", "unknown"}})
        .set(rejected_unknown_);
    registry.gauge("lidc_qos_queue_depth", {{"cluster", cluster_}})
        .set(totalDepth);
  });
}

}  // namespace lidc::qos
