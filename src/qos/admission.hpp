// AdmissionController: the gateway-side fair-share front door. Submit
// Interests are classified by tenant, gated by token-bucket rate limits
// and quota caps, then queued into a weighted fair queue — deficit
// round robin across tenants, strict FIFO within a tenant — that drains
// into the JobManager as downstream capacity allows.
//
// Rejections are explicit and cheap: over-quota work gets a distinct
// nack reason (kQuotaExceeded) the client maps to RESOURCE_EXHAUSTED
// with backoff, never a retry storm. When the shared queue saturates, a
// higher-priority tenant may preempt the newest *queued* entry of the
// lowest-priority tenant; running work is never preempted.
//
// Determinism: tenant state lives in an ordered map, the DRR ring is a
// deque mutated only by deterministic events, and every decision is
// appended to a decision log that is byte-identical across same-seed
// runs (the property the determinism tests pin).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "qos/tenant.hpp"
#include "qos/token_bucket.hpp"
#include "sim/simulator.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/flow.hpp"
#include "telemetry/metrics.hpp"

namespace lidc::qos {

struct AdmissionOptions {
  /// Deficit gained per DRR head visit is weight * quantum (jobs).
  /// Must be > 0; non-positive values are clamped at drain time.
  double quantum = 1.0;
  /// Deficit ceiling in quanta; bounds how large a burst an idle tenant
  /// can bank. The effective cap never drops below one job.
  double deficitCap = 4.0;
  std::size_t maxQueuePerTenant = 64;
  std::size_t maxQueueTotal = 256;
  /// Backstop re-drain period while work is queued (releases and new
  /// offers drain eagerly; the timer catches external capacity changes
  /// such as health recovery). Lazy-armed so an empty queue costs no
  /// simulator events.
  sim::Duration drainInterval = sim::Duration::millis(100);
};

enum class AdmitDecision {
  kQueued,
  kRejectedUnknownTenant,
  kRejectedRate,
  kRejectedQuota,
  kRejectedQueueFull,
};

std::string_view admitDecisionName(AdmitDecision decision) noexcept;

/// One unit of work offered to the controller. launch() fires when the
/// DRR drain picks the entry; evict(reason) fires when a queued entry
/// is dropped instead ("preempted" or "expired").
struct AdmissionJob {
  std::string tenant;
  std::uint64_t cpuMillicores = 0;
  std::uint64_t memoryBytes = 0;
  /// Entries past this instant are dropped at drain time (zero = never).
  sim::Time expiresAt;
  /// Log/trace label, e.g. the request id.
  std::string tag;
  /// Wire size of the submit Interest, attributed to the tenant's
  /// "submit" flow when the job launches (flow accounting).
  std::uint64_t wireBytes = 0;
  std::function<void()> launch;
  std::function<void(const std::string& reason)> evict;
};

class AdmissionController {
 public:
  AdmissionController(sim::Simulator& sim, const TenantRegistry& tenants,
                      std::string cluster, AdmissionOptions options = {});

  /// Downstream capacity gate: drain launches only while probe(job)
  /// returns true (null probe = always launch).
  void setCapacityProbe(std::function<bool(const AdmissionJob&)> probe) {
    capacity_probe_ = std::move(probe);
  }
  void setFlightRecorder(telemetry::FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }
  /// Flow attribution: launched jobs report their submit Interest's
  /// wire bytes per tenant into the accountant's transfer ledger
  /// (group "submit"). Null detaches.
  void setFlowAccountant(telemetry::FlowAccountant* accountant) noexcept {
    flow_ = accountant;
  }

  /// Classifies + gates the job. kQueued means the controller now owns
  /// it (launch or evict will fire exactly once, possibly synchronously
  /// from inside this call); any rejection means the caller keeps
  /// ownership and should nack.
  AdmitDecision offer(AdmissionJob job);

  /// Releases the in-flight charge of a previously launched job (call
  /// once it reaches a terminal state) and re-drains the queue.
  void releaseJob(const std::string& tenant, std::uint64_t cpuMillicores,
                  std::uint64_t memoryBytes);

  /// Runs DRR rounds until nothing more can launch.
  void drain();

  [[nodiscard]] std::size_t queueDepth() const noexcept { return queued_total_; }
  [[nodiscard]] std::size_t queueDepth(const std::string& tenant) const noexcept;
  [[nodiscard]] std::uint64_t jobsInFlight(const std::string& tenant) const noexcept;
  [[nodiscard]] std::uint64_t admitted(const std::string& tenant) const noexcept;
  /// All rejections for the tenant, or only those with `reason`
  /// ("rate", "quota", "queue-full").
  [[nodiscard]] std::uint64_t rejected(const std::string& tenant) const noexcept;
  [[nodiscard]] std::uint64_t rejected(const std::string& tenant,
                                       const std::string& reason) const noexcept;
  [[nodiscard]] std::uint64_t preempted(const std::string& tenant) const noexcept;
  [[nodiscard]] std::uint64_t expired(const std::string& tenant) const noexcept;
  [[nodiscard]] std::uint64_t rejectedUnknownTenant() const noexcept {
    return rejected_unknown_;
  }

  /// Deterministic decision log ("t=..s enqueue tenant=... tag=..."
  /// lines); byte-identical across same-seed runs.
  [[nodiscard]] const std::string& decisionLog() const noexcept { return log_; }

  /// Mirrors admission state into `registry` as per-tenant labeled
  /// families (lidc_qos_admitted_total, lidc_qos_rejected_total{reason},
  /// lidc_qos_queue_depth, lidc_qos_jobs_in_flight, ...) and starts
  /// feeding the per-tenant lidc_qos_queue_wait_us histogram.
  void attachTelemetry(telemetry::MetricsRegistry& registry);

 private:
  struct Pending {
    AdmissionJob job;
    sim::Time enqueuedAt;
  };

  struct TenantState {
    const TenantSpec* spec = nullptr;
    TokenBucket bucket;
    std::deque<Pending> queue;
    double deficit = 0.0;
    bool inRing = false;
    /// Quantum already granted for the current stay at the ring head.
    /// Accrual is per head *visit*, not per drain call: a tenant parked
    /// at the head by a capacity block must not keep banking deficit
    /// across the many drains its own flood triggers.
    bool headAccrued = false;
    std::uint64_t queuedCpu = 0;
    std::uint64_t queuedMem = 0;
    std::uint64_t inFlightJobs = 0;
    std::uint64_t inFlightCpu = 0;
    std::uint64_t inFlightMem = 0;
    std::uint64_t admitted = 0;
    std::uint64_t preempted = 0;
    std::uint64_t expired = 0;
    std::map<std::string, std::uint64_t> rejects;  // reason -> count
  };

  TenantState& stateFor(const TenantSpec& spec);
  [[nodiscard]] const TenantState* stateOf(const std::string& tenant) const noexcept;
  /// Rotates the ring head to the back (or out of the ring when its
  /// queue is empty) and resets its per-visit accrual state.
  void rotateHead(TenantState& st);
  void launchFront(const std::string& id, TenantState& st);
  void dropExpired(const std::string& id, TenantState& st);
  /// On a saturated shared queue: evicts the newest queued entry of the
  /// lowest-priority tenant strictly below `incoming`. Returns true if
  /// a slot was freed.
  bool tryPreemptFor(const TenantSpec& incoming);
  void reject(TenantState& st, const std::string& id, const std::string& reason,
              const std::string& tag);
  void armTimer();
  void appendLog(std::string_view verb, const std::string& tenant,
                 const std::string& detail);

  sim::Simulator& sim_;
  const TenantRegistry& tenants_;
  std::string cluster_;
  AdmissionOptions options_;
  std::function<bool(const AdmissionJob&)> capacity_probe_;
  telemetry::FlightRecorder* recorder_ = nullptr;
  telemetry::MetricsRegistry* registry_ = nullptr;
  telemetry::FlowAccountant* flow_ = nullptr;

  std::map<std::string, TenantState> states_;  // ordered: deterministic
  std::deque<std::string> ring_;               // active tenants, DRR order
  std::size_t queued_total_ = 0;
  std::uint64_t rejected_unknown_ = 0;
  bool draining_ = false;
  bool timer_armed_ = false;
  std::string log_;
};

}  // namespace lidc::qos
