// TenantRegistry: who is allowed to submit, how much they are entitled
// to, and how they rank under contention. Every science collaboration
// (VO) sharing the federation registers once; gateways consult the
// registry on each tenant-scoped submit Interest and the ObjectStore
// charges data-lake publishes against the tenant's byte budget.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "telemetry/metrics.hpp"

namespace lidc::qos {

/// Per-tenant entitlements. Zero means unlimited for that resource.
struct TenantQuota {
  /// CPU across queued + in-flight jobs, in millicores.
  std::uint64_t maxCpuMillicores = 0;
  /// Memory across queued + in-flight jobs, in bytes.
  std::uint64_t maxMemoryBytes = 0;
  /// Jobs queued + launched but not yet terminal.
  std::uint64_t maxJobsInFlight = 0;
  /// Cumulative data-lake publish budget, in bytes.
  std::uint64_t maxPublishBytes = 0;
  /// Submit-rate token bucket: refill per second (0 = unlimited) and
  /// burst capacity.
  double submitRatePerSec = 0.0;
  double submitBurst = 8.0;
};

struct TenantSpec {
  std::string id;
  /// Relative fair share under contention (DRR weight). Must be > 0.
  double weight = 1.0;
  /// Higher classes may preempt lower-priority *queued* work when the
  /// admission queue saturates; running work is never preempted.
  int priorityClass = 0;
  TenantQuota quota;
};

/// True for ids usable both as NDN name components and as k8s namespace
/// suffixes: lowercase alphanumerics and '-', 1..48 chars.
bool isValidTenantId(const std::string& id) noexcept;

class TenantRegistry {
 public:
  /// Rejects invalid ids, non-positive weights, and duplicates.
  Status registerTenant(TenantSpec spec);

  [[nodiscard]] const TenantSpec* find(const std::string& id) const noexcept;
  [[nodiscard]] std::vector<std::string> ids() const;
  [[nodiscard]] std::size_t size() const noexcept { return tenants_.size(); }

  /// Charges `bytes` against the tenant's cumulative publish budget.
  /// NotFound for unknown tenants; ResourceExhausted once the budget
  /// would be exceeded (the publish is not applied).
  Status chargePublish(const std::string& id, std::uint64_t bytes);

  [[nodiscard]] std::uint64_t publishedBytes(const std::string& id) const noexcept;
  [[nodiscard]] std::uint64_t publishRejects(const std::string& id) const noexcept;

  /// Mirrors per-tenant publish accounting into `registry` as
  /// lidc_qos_publish_bytes / lidc_qos_publish_rejected_total.
  void attachTelemetry(telemetry::MetricsRegistry& registry);

 private:
  struct Entry {
    TenantSpec spec;
    std::uint64_t publishedBytes = 0;
    std::uint64_t publishRejects = 0;
  };

  // Ordered so iteration (telemetry mirrors, preemption scans) is
  // deterministic across runs.
  std::map<std::string, Entry> tenants_;
};

}  // namespace lidc::qos
