#include "genomics/sequence.hpp"

#include <algorithm>
#include <cassert>

namespace lidc::genomics {

std::string reverseComplement(std::string_view bases) {
  std::string out;
  out.reserve(bases.size());
  for (auto it = bases.rbegin(); it != bases.rend(); ++it) {
    switch (*it) {
      case 'A':
        out.push_back('T');
        break;
      case 'C':
        out.push_back('G');
        break;
      case 'G':
        out.push_back('C');
        break;
      case 'T':
        out.push_back('A');
        break;
      default:
        out.push_back('N');
        break;
    }
  }
  return out;
}

std::string randomBases(Rng& rng, std::size_t length) {
  std::string out;
  out.resize(length);
  for (auto& base : out) base = codeBase(static_cast<std::uint8_t>(rng.uniform(4)));
  return out;
}

std::string mutatedFragment(Rng& rng, std::string_view reference,
                            std::size_t fragmentLength, double mutationRate) {
  assert(!reference.empty());
  fragmentLength = std::min(fragmentLength, reference.size());
  const std::size_t maxStart = reference.size() - fragmentLength;
  const std::size_t start = maxStart == 0 ? 0 : rng.uniform(maxStart + 1);
  std::string fragment(reference.substr(start, fragmentLength));
  for (auto& base : fragment) {
    if (rng.bernoulli(mutationRate)) {
      // Substitute with one of the three other bases.
      const std::uint8_t original = baseCode(base);
      const std::uint8_t replacement =
          static_cast<std::uint8_t>((original + 1 + rng.uniform(3)) % 4);
      base = codeBase(replacement);
    }
  }
  return fragment;
}

std::vector<Sequence> generateReads(Rng& rng, std::string_view reference,
                                    std::size_t readCount, std::size_t readLength,
                                    double derivedFraction, double mutationRate,
                                    const std::string& idPrefix) {
  std::vector<Sequence> reads;
  reads.reserve(readCount);
  for (std::size_t i = 0; i < readCount; ++i) {
    Sequence read;
    read.id = idPrefix + "." + std::to_string(i + 1);
    if (rng.bernoulli(derivedFraction)) {
      read.bases = mutatedFragment(rng, reference, readLength, mutationRate);
      // Half the derived reads come from the opposite strand.
      if (rng.bernoulli(0.5)) read.bases = reverseComplement(read.bases);
    } else {
      read.bases = randomBases(rng, readLength);
    }
    reads.push_back(std::move(read));
  }
  return reads;
}

}  // namespace lidc::genomics
