// FASTA serialization, the interchange format between the dataset
// loader, the data lake, and the aligner (the paper's PVCs hold FASTA /
// SRA files downloaded from NCBI).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "genomics/sequence.hpp"

namespace lidc::genomics {

/// Serializes sequences as FASTA (">id\n<bases, 70 cols>\n...").
std::vector<std::uint8_t> toFasta(const std::vector<Sequence>& sequences);

/// Parses FASTA bytes; tolerates arbitrary line widths and blank lines.
Result<std::vector<Sequence>> fromFasta(const std::vector<std::uint8_t>& bytes);

}  // namespace lidc::genomics
