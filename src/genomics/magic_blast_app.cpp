#include "genomics/magic_blast_app.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>

#include "common/logging.hpp"
#include "common/strings.hpp"
#include "genomics/aligner.hpp"
#include "genomics/fasta.hpp"
#include "k8s/cluster.hpp"

namespace lidc::genomics {

namespace {

/// Looks up an arg with a default.
std::string argOr(const std::map<std::string, std::string>& args,
                  const std::string& key, std::string fallback) {
  auto it = args.find(key);
  return it == args.end() ? std::move(fallback) : it->second;
}

/// A decoded magic-blast checkpoint: how many leading reads the partial
/// report already covers, out of how many, plus the report bytes.
struct BlastCheckpoint {
  std::size_t offset = 0;
  std::size_t total = 0;
  std::vector<std::uint8_t> partialReport;
};

constexpr std::string_view kCkptApp = "magic-blast";

std::vector<std::uint8_t> encodeBlastCheckpoint(std::size_t offset,
                                                std::size_t total,
                                                std::vector<std::uint8_t> report) {
  std::string header = "app=";
  header += kCkptApp;
  header += ";offset=" + std::to_string(offset) +
            ";total=" + std::to_string(total) + "\n";
  std::vector<std::uint8_t> payload(header.begin(), header.end());
  payload.insert(payload.end(), report.begin(), report.end());
  return payload;
}

std::optional<BlastCheckpoint> decodeBlastCheckpoint(
    const std::vector<std::uint8_t>& payload) {
  const auto newline = std::find(payload.begin(), payload.end(),
                                 static_cast<std::uint8_t>('\n'));
  if (newline == payload.end()) return std::nullopt;
  const std::string header(payload.begin(), newline);
  std::size_t offset = 0;
  std::size_t total = 0;
  bool sawApp = false, sawOffset = false, sawTotal = false;
  for (auto field : strings::splitSkipEmpty(header, ';')) {
    const auto eq = field.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const auto key = field.substr(0, eq);
    const auto value = field.substr(eq + 1);
    if (key == "app") {
      if (value != kCkptApp) return std::nullopt;
      sawApp = true;
    } else if (key == "offset" || key == "total") {
      auto parsed = strings::parseUint(value);
      if (!parsed) return std::nullopt;
      (key == "offset" ? offset : total) = static_cast<std::size_t>(*parsed);
      (key == "offset" ? sawOffset : sawTotal) = true;
    }
  }
  if (!sawApp || !sawOffset || !sawTotal || offset > total) return std::nullopt;
  BlastCheckpoint ckpt;
  ckpt.offset = offset;
  ckpt.total = total;
  ckpt.partialReport.assign(newline + 1, payload.end());
  return ckpt;
}

}  // namespace

k8s::AppRunner makeMagicBlastRunner(datalake::ObjectStore& store,
                                    const DatasetCatalog& catalog,
                                    MagicBlastConfig config) {
  return [&store, catalog, config](k8s::AppContext& context) -> k8s::AppResult {
    k8s::AppResult result;

    const std::string srrId = argOr(context.spec.args, "srr_id", "");
    if (srrId.empty()) {
      result.status = Status::InvalidArgument("magic-blast requires srr_id");
      return result;
    }
    const std::string refObject =
        argOr(context.spec.args, "ref", config.referenceObject);
    const std::string outObject =
        argOr(context.spec.args, "out", "results/" + srrId + "-vs-" + refObject);

    // --- load inputs from the data lake ---
    ndn::Name sampleName = config.dataPrefix;
    sampleName.append(srrId);
    ndn::Name refName = config.dataPrefix;
    refName.append(refObject);

    const auto sampleBytes = store.get(sampleName);
    if (!sampleBytes) {
      result.status = Status::NotFound("sample not in data lake: " +
                                       sampleName.toUri());
      return result;
    }
    const auto refBytes = store.get(refName);
    if (!refBytes) {
      result.status =
          Status::NotFound("reference not in data lake: " + refName.toUri());
      return result;
    }

    auto reads = fromFasta(*sampleBytes);
    if (!reads) {
      result.status = reads.status();
      return result;
    }
    auto refSequences = fromFasta(*refBytes);
    if (!refSequences || refSequences->empty()) {
      result.status = Status::InvalidArgument("reference FASTA is empty");
      return result;
    }

    // --- resume point (migration plane) ---
    const std::size_t totalReads = reads->size();
    std::size_t resumeOffset = 0;
    std::vector<std::uint8_t> priorReport;
    bool resumed = false;
    if (const std::string ckptRef = argOr(context.spec.args, "ckpt", "");
        !ckptRef.empty()) {
      ndn::Name ckptName = config.ckptPrefix;
      for (auto part : strings::splitSkipEmpty(ckptRef, '/')) {
        ckptName.append(part);
      }
      if (auto payload = store.get(ckptName)) {
        if (auto ckpt = decodeBlastCheckpoint(*payload);
            ckpt && ckpt->total == totalReads) {
          resumeOffset = ckpt->offset;
          priorReport = std::move(ckpt->partialReport);
          resumed = true;
        }
      }
      // A missing or inconsistent checkpoint silently cold-starts: the
      // gateway's resume-point validation already rejected (and counted)
      // integrity failures; this guard only covers app-level drift.
    }

    // --- real alignment work (only the reads past the resume point) ---
    AlignerOptions options;
    const std::size_t cores =
        std::max<std::size_t>(1, static_cast<std::size_t>(
                                     context.spec.requests.cpu.cores()));
    options.threads = std::min(cores, config.maxAlignerThreads);
    MiniBlastAligner aligner(refSequences->front().bases, options);
    auto pending = std::make_shared<std::vector<Sequence>>(
        reads->begin() + static_cast<std::ptrdiff_t>(
                             std::min(resumeOffset, totalReads)),
        reads->end());
    auto alignments = std::make_shared<std::vector<Alignment>>();
    const AlignerStats stats = aligner.alignAll(*pending, *alignments);

    auto newReport = encodeCompressedReport(*alignments);
    std::vector<std::uint8_t> compressed = priorReport;
    compressed.insert(compressed.end(), newReport.begin(), newReport.end());
    const std::size_t simInputBytes = sampleBytes->size();
    const std::size_t simOutputBytes = compressed.size();

    ndn::Name outName = config.dataPrefix;
    for (auto part : strings::splitSkipEmpty(outObject, '/')) outName.append(part);
    if (auto st = store.put(outName, std::move(compressed)); !st.ok()) {
      result.status = st;
      return result;
    }

    // --- testbed-scale runtime model ---
    const DatasetSpec spec = catalog.bySrrId(srrId);
    const std::uint64_t testbedBytes =
        spec.srrId.empty()
            ? simInputBytes  // unknown sample: treat sim scale as real scale
            : spec.testbedBytes;

    const double basesPerRead =
        stats.readsProcessed == 0
            ? config.baselineBasesPerRead
            : static_cast<double>(stats.basesExamined) /
                  static_cast<double>(stats.readsProcessed);
    const double workRatio =
        std::clamp(basesPerRead / config.baselineBasesPerRead, 0.25, 4.0);

    const double threadBenefit =
        1.0 + config.threadBenefitPerExtraCpu * static_cast<double>(cores - 1);
    double seconds = static_cast<double>(testbedBytes) /
                     (config.throughputBytesPerSec * threadBenefit) * workRatio;
    if (context.spec.requests.memory < config.workingSet) {
      seconds *= config.thrashPenalty;
    }
    // A resumed run only re-does the reads past the checkpoint.
    const double remainingFraction =
        totalReads == 0 ? 1.0
                        : static_cast<double>(pending->size()) /
                              static_cast<double>(totalReads);
    seconds *= remainingFraction;
    result.runtime = sim::Duration::seconds(seconds);

    // Output size, scaled from simulation to testbed input volume.
    const double scaleUp = simInputBytes == 0
                               ? 1.0
                               : static_cast<double>(testbedBytes) /
                                     static_cast<double>(simInputBytes);
    result.outputBytes =
        static_cast<std::uint64_t>(static_cast<double>(simOutputBytes) * scaleUp);
    result.resultPath = outName.toUri();
    result.message = "aligned " + std::to_string(stats.readsAligned) + "/" +
                     std::to_string(stats.readsProcessed) + " reads, " +
                     std::to_string(stats.alignmentsReported) + " alignments";
    if (resumed) {
      result.message += ", resumed at " + std::to_string(resumeOffset) + "/" +
                        std::to_string(totalReads);
    }

    // --- incremental-progress hook (migration plane) ---
    // Maps a progress fraction of THIS execution to the checkpoint the
    // pod would have written by then: the prior partial report plus the
    // alignments of the first k freshly processed reads.
    auto priorShared =
        std::make_shared<std::vector<std::uint8_t>>(std::move(priorReport));
    auto processedIds = std::make_shared<std::vector<std::string>>();
    processedIds->reserve(pending->size());
    for (const auto& read : *pending) processedIds->push_back(read.id);
    const std::size_t processedCount = pending->size();
    result.checkpointPlan = [resumeOffset, totalReads, processedCount,
                             priorShared, alignments,
                             processedIds](double progress) {
      progress = std::clamp(progress, 0.0, 1.0);
      const std::size_t k = static_cast<std::size_t>(
          progress * static_cast<double>(processedCount));
      std::map<std::string, std::size_t> order;
      for (std::size_t i = 0; i < processedIds->size(); ++i) {
        order.emplace((*processedIds)[i], i);
      }
      std::vector<Alignment> covered;
      for (const auto& alignment : *alignments) {
        auto it = order.find(alignment.readId);
        if (it != order.end() && it->second < k) covered.push_back(alignment);
      }
      auto report = encodeCompressedReport(covered);
      std::vector<std::uint8_t> merged = *priorShared;
      merged.insert(merged.end(), report.begin(), report.end());
      return encodeBlastCheckpoint(resumeOffset + k, totalReads,
                                   std::move(merged));
    };

    LIDC_LOG(kDebug, "magic-blast")
        << srrId << ": " << result.message << ", runtime "
        << result.runtime.toString();
    return result;
  };
}

void installMagicBlast(k8s::Cluster& cluster, datalake::ObjectStore& store,
                       const DatasetCatalog& catalog, MagicBlastConfig config) {
  cluster.registerApp("magic-blast",
                      makeMagicBlastRunner(store, catalog, std::move(config)));
}

}  // namespace lidc::genomics
