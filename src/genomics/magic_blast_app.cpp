#include "genomics/magic_blast_app.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/strings.hpp"
#include "genomics/aligner.hpp"
#include "genomics/fasta.hpp"
#include "k8s/cluster.hpp"

namespace lidc::genomics {

namespace {

/// Looks up an arg with a default.
std::string argOr(const std::map<std::string, std::string>& args,
                  const std::string& key, std::string fallback) {
  auto it = args.find(key);
  return it == args.end() ? std::move(fallback) : it->second;
}

}  // namespace

k8s::AppRunner makeMagicBlastRunner(datalake::ObjectStore& store,
                                    const DatasetCatalog& catalog,
                                    MagicBlastConfig config) {
  return [&store, catalog, config](k8s::AppContext& context) -> k8s::AppResult {
    k8s::AppResult result;

    const std::string srrId = argOr(context.spec.args, "srr_id", "");
    if (srrId.empty()) {
      result.status = Status::InvalidArgument("magic-blast requires srr_id");
      return result;
    }
    const std::string refObject =
        argOr(context.spec.args, "ref", config.referenceObject);
    const std::string outObject =
        argOr(context.spec.args, "out", "results/" + srrId + "-vs-" + refObject);

    // --- load inputs from the data lake ---
    ndn::Name sampleName = config.dataPrefix;
    sampleName.append(srrId);
    ndn::Name refName = config.dataPrefix;
    refName.append(refObject);

    const auto sampleBytes = store.get(sampleName);
    if (!sampleBytes) {
      result.status = Status::NotFound("sample not in data lake: " +
                                       sampleName.toUri());
      return result;
    }
    const auto refBytes = store.get(refName);
    if (!refBytes) {
      result.status =
          Status::NotFound("reference not in data lake: " + refName.toUri());
      return result;
    }

    auto reads = fromFasta(*sampleBytes);
    if (!reads) {
      result.status = reads.status();
      return result;
    }
    auto refSequences = fromFasta(*refBytes);
    if (!refSequences || refSequences->empty()) {
      result.status = Status::InvalidArgument("reference FASTA is empty");
      return result;
    }

    // --- real alignment work ---
    AlignerOptions options;
    const std::size_t cores =
        std::max<std::size_t>(1, static_cast<std::size_t>(
                                     context.spec.requests.cpu.cores()));
    options.threads = std::min(cores, config.maxAlignerThreads);
    MiniBlastAligner aligner(refSequences->front().bases, options);
    std::vector<Alignment> alignments;
    const AlignerStats stats = aligner.alignAll(*reads, alignments);

    auto compressed = encodeCompressedReport(alignments);
    const std::size_t simInputBytes = sampleBytes->size();
    const std::size_t simOutputBytes = compressed.size();

    ndn::Name outName = config.dataPrefix;
    for (auto part : strings::splitSkipEmpty(outObject, '/')) outName.append(part);
    if (auto st = store.put(outName, std::move(compressed)); !st.ok()) {
      result.status = st;
      return result;
    }

    // --- testbed-scale runtime model ---
    const DatasetSpec spec = catalog.bySrrId(srrId);
    const std::uint64_t testbedBytes =
        spec.srrId.empty()
            ? simInputBytes  // unknown sample: treat sim scale as real scale
            : spec.testbedBytes;

    const double basesPerRead =
        stats.readsProcessed == 0
            ? config.baselineBasesPerRead
            : static_cast<double>(stats.basesExamined) /
                  static_cast<double>(stats.readsProcessed);
    const double workRatio =
        std::clamp(basesPerRead / config.baselineBasesPerRead, 0.25, 4.0);

    const double threadBenefit =
        1.0 + config.threadBenefitPerExtraCpu * static_cast<double>(cores - 1);
    double seconds = static_cast<double>(testbedBytes) /
                     (config.throughputBytesPerSec * threadBenefit) * workRatio;
    if (context.spec.requests.memory < config.workingSet) {
      seconds *= config.thrashPenalty;
    }
    result.runtime = sim::Duration::seconds(seconds);

    // Output size, scaled from simulation to testbed input volume.
    const double scaleUp = simInputBytes == 0
                               ? 1.0
                               : static_cast<double>(testbedBytes) /
                                     static_cast<double>(simInputBytes);
    result.outputBytes =
        static_cast<std::uint64_t>(static_cast<double>(simOutputBytes) * scaleUp);
    result.resultPath = outName.toUri();
    result.message = "aligned " + std::to_string(stats.readsAligned) + "/" +
                     std::to_string(stats.readsProcessed) + " reads, " +
                     std::to_string(stats.alignmentsReported) + " alignments";
    LIDC_LOG(kDebug, "magic-blast")
        << srrId << ": " << result.message << ", runtime "
        << result.runtime.toString();
    return result;
  };
}

void installMagicBlast(k8s::Cluster& cluster, datalake::ObjectStore& store,
                       const DatasetCatalog& catalog, MagicBlastConfig config) {
  cluster.registerApp("magic-blast",
                      makeMagicBlastRunner(store, catalog, std::move(config)));
}

}  // namespace lidc::genomics
