#include "genomics/datasets.hpp"

#include <algorithm>
#include <cmath>

namespace lidc::genomics {

namespace {
// Laptop-scale baselines (multiplied by the catalog scale factor).
constexpr std::size_t kReferenceLength = 120'000;
constexpr std::size_t kRiceReads = 1'500;
constexpr std::size_t kKidneyReads = 4'500;  // ~3x rice, matching Table I runtimes
constexpr std::size_t kReadLength = 100;

// Testbed-scale SRA input sizes. Derived from Table I: at the measured
// ~120 KB/s single-thread Magic-BLAST throughput, 8h09m of rice work
// corresponds to ~3.5 GB of input and 24h16m of kidney work to ~10.5 GB.
constexpr std::uint64_t kRiceTestbedBytes = 3'500'000'000ULL;
constexpr std::uint64_t kKidneyTestbedBytes = 10'500'000'000ULL;
}  // namespace

DatasetSpec DatasetCatalog::riceSample() const {
  return DatasetSpec{
      "SRR2931415",
      "RICE",
      static_cast<std::size_t>(std::max(1.0, kRiceReads * scale_)),
      kReadLength,
      // Rice RNA vs human reference: conserved genes align, most reads
      // do not.
      0.42,
      0.04,
      kRiceTestbedBytes,
  };
}

DatasetSpec DatasetCatalog::kidneySample() const {
  return DatasetSpec{
      "SRR5139395",
      "KIDNEY",
      static_cast<std::size_t>(std::max(1.0, kKidneyReads * scale_)),
      kReadLength,
      // Human kidney tissue vs human reference: slightly lower *fraction*
      // than rice here keeps output/read ratios matching Table I
      // (2.71GB/10.5GB vs 941MB/3.5GB).
      0.40,
      0.02,
      kKidneyTestbedBytes,
  };
}

DatasetSpec DatasetCatalog::bySrrId(const std::string& srrId) const {
  if (srrId == "SRR2931415") return riceSample();
  if (srrId == "SRR5139395") return kidneySample();
  return DatasetSpec{};
}

std::vector<DatasetSpec> DatasetCatalog::allSamples() const {
  return {riceSample(), kidneySample()};
}

std::size_t DatasetCatalog::referenceLength() const {
  return static_cast<std::size_t>(std::max(1000.0, kReferenceLength * scale_));
}

Sequence DatasetCatalog::generateReference() const {
  Rng rng(seed_);
  Sequence reference;
  reference.id = "GRCh38.mini";
  reference.bases = randomBases(rng, referenceLength());
  return reference;
}

std::vector<Sequence> DatasetCatalog::generateSample(
    const DatasetSpec& spec, std::string_view reference) const {
  // Per-sample deterministic stream, independent of call order.
  Rng rng(seed_ ^ std::hash<std::string>{}(spec.srrId));
  return generateReads(rng, reference, spec.readCount, spec.readLength,
                       spec.derivedFraction, spec.mutationRate, spec.srrId);
}

}  // namespace lidc::genomics
