// MiniBlast: a seed-and-extend nucleotide aligner standing in for NCBI
// Magic-BLAST. It does genuine alignment work — k-mer seeding, diagonal
// binning, ungapped x-drop extension, identity filtering — so job
// runtimes and output sizes in the Table I bench emerge from the data
// rather than being scripted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "genomics/kmer_index.hpp"
#include "genomics/sequence.hpp"

namespace lidc::genomics {

/// One reported alignment (SAM-flavoured subset).
struct Alignment {
  std::string readId;
  std::uint32_t refStart = 0;
  std::uint32_t readStart = 0;
  std::uint32_t length = 0;
  std::uint32_t matches = 0;
  std::uint32_t mismatches = 0;
  bool reverseStrand = false;
  int score = 0;

  [[nodiscard]] double identity() const noexcept {
    return length == 0 ? 0.0 : static_cast<double>(matches) / length;
  }
  /// Tab-separated record line (BLAST outfmt-6 flavoured).
  [[nodiscard]] std::string toRecord() const;
};

struct AlignerOptions {
  unsigned k = 11;                  // seed length
  std::size_t maxSeedOccurrences = 64;
  int matchScore = 1;
  int mismatchPenalty = 3;
  int xDrop = 12;                   // stop extension after score drops this much
  int minScore = 20;                // report threshold
  double minIdentity = 0.80;
  std::size_t maxDiagonalsPerRead = 8;  // best diagonals tried per strand
  std::size_t threads = 1;          // parallelism across reads
};

/// Work counters: the basis of the simulated-runtime model.
struct AlignerStats {
  std::uint64_t readsProcessed = 0;
  std::uint64_t readsAligned = 0;
  std::uint64_t seedHits = 0;
  std::uint64_t extensions = 0;
  std::uint64_t basesExamined = 0;  // extension work in base comparisons
  std::uint64_t alignmentsReported = 0;
};

class MiniBlastAligner {
 public:
  MiniBlastAligner(std::string reference, AlignerOptions options = {});

  /// Aligns every read (both strands); thread-parallel when
  /// options.threads > 1. Appends to `out` and accumulates stats.
  AlignerStats alignAll(const std::vector<Sequence>& reads,
                        std::vector<Alignment>& out) const;

  /// Aligns one read; returns reported alignments.
  std::vector<Alignment> alignRead(const Sequence& read, AlignerStats& stats) const;

  [[nodiscard]] const KmerIndex& index() const noexcept { return index_; }
  [[nodiscard]] const AlignerOptions& options() const noexcept { return options_; }

 private:
  /// Seed, bin by diagonal, extend on the given strand.
  void alignStrand(const std::string& readId, std::string_view bases,
                   bool reverseStrand, std::vector<Alignment>& out,
                   AlignerStats& stats) const;

  /// Ungapped x-drop extension around a seed; returns the alignment.
  Alignment extend(std::string_view read, std::uint32_t readPos,
                   std::uint32_t refPos, AlignerStats& stats) const;

  std::string reference_;
  AlignerOptions options_;
  KmerIndex index_;
};

/// Serializes alignments to a report and "compresses" it (simple LZ-style
/// run coding) — models Magic-BLAST's compressed output files whose sizes
/// Table I reports.
std::vector<std::uint8_t> encodeCompressedReport(const std::vector<Alignment>& alignments);

}  // namespace lidc::genomics
