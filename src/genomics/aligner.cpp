#include "genomics/aligner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>

#include "common/thread_pool.hpp"

namespace lidc::genomics {

std::string Alignment::toRecord() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s\t%u\t%u\t%u\t%u\t%u\t%c\t%d\t%.4f", readId.c_str(),
                refStart, readStart, length, matches, mismatches,
                reverseStrand ? '-' : '+', score, identity());
  return buf;
}

MiniBlastAligner::MiniBlastAligner(std::string reference, AlignerOptions options)
    : reference_(std::move(reference)),
      options_(options),
      index_(reference_, options.k, options.maxSeedOccurrences) {}

Alignment MiniBlastAligner::extend(std::string_view read, std::uint32_t readPos,
                                   std::uint32_t refPos, AlignerStats& stats) const {
  const int match = options_.matchScore;
  const int mismatch = -options_.mismatchPenalty;

  // Seed region scores as all-match (the seed is exact by construction).
  std::uint32_t left = 0;   // bases extended to the left of the seed start
  std::uint32_t right = 0;  // bases extended past the seed end
  const unsigned k = options_.k;

  int score = static_cast<int>(k) * match;
  std::uint32_t matches = k;
  std::uint32_t mismatches = 0;

  // Right extension with x-drop.
  {
    int best = score;
    int current = score;
    std::uint32_t bestRight = 0;
    std::uint32_t bestMatches = matches;
    std::uint32_t bestMismatches = mismatches;
    std::uint32_t m = matches;
    std::uint32_t mm = mismatches;
    std::uint32_t i = 0;
    while (readPos + k + i < read.size() &&
           refPos + k + i < reference_.size()) {
      ++stats.basesExamined;
      if (read[readPos + k + i] == reference_[refPos + k + i]) {
        current += match;
        ++m;
      } else {
        current += mismatch;
        ++mm;
      }
      ++i;
      if (current > best) {
        best = current;
        bestRight = i;
        bestMatches = m;
        bestMismatches = mm;
      }
      if (best - current > options_.xDrop) break;
    }
    score = best;
    right = bestRight;
    matches = bestMatches;
    mismatches = bestMismatches;
  }

  // Left extension with x-drop.
  {
    int best = score;
    int current = score;
    std::uint32_t bestLeft = 0;
    std::uint32_t bestMatches = matches;
    std::uint32_t bestMismatches = mismatches;
    std::uint32_t m = matches;
    std::uint32_t mm = mismatches;
    std::uint32_t i = 0;
    while (i < readPos && i < refPos) {
      ++stats.basesExamined;
      if (read[readPos - 1 - i] == reference_[refPos - 1 - i]) {
        current += match;
        ++m;
      } else {
        current += mismatch;
        ++mm;
      }
      ++i;
      if (current > best) {
        best = current;
        bestLeft = i;
        bestMatches = m;
        bestMismatches = mm;
      }
      if (best - current > options_.xDrop) break;
    }
    score = best;
    left = bestLeft;
    matches = bestMatches;
    mismatches = bestMismatches;
  }

  Alignment alignment;
  alignment.refStart = refPos - left;
  alignment.readStart = readPos - left;
  alignment.length = left + k + right;
  alignment.matches = matches;
  alignment.mismatches = mismatches;
  alignment.score = score;
  return alignment;
}

void MiniBlastAligner::alignStrand(const std::string& readId, std::string_view bases,
                                   bool reverseStrand, std::vector<Alignment>& out,
                                   AlignerStats& stats) const {
  const unsigned k = options_.k;
  if (bases.size() < k) return;

  // Seed: collect hits binned by diagonal (refPos - readPos).
  std::map<std::int64_t, std::vector<std::pair<std::uint32_t, std::uint32_t>>> diagonals;
  // Stride seeds by k/2 for speed, as real seeders do.
  const std::size_t stride = std::max<std::size_t>(1, k / 2);
  for (std::size_t pos = 0; pos + k <= bases.size(); pos += stride) {
    std::uint64_t packed = 0;
    if (!KmerIndex::pack(bases, pos, k, packed)) continue;
    const auto* hits = index_.find(packed);
    if (hits == nullptr) continue;
    for (const std::uint32_t refPos : *hits) {
      ++stats.seedHits;
      const std::int64_t diagonal =
          static_cast<std::int64_t>(refPos) - static_cast<std::int64_t>(pos);
      diagonals[diagonal].emplace_back(static_cast<std::uint32_t>(pos), refPos);
    }
  }
  if (diagonals.empty()) return;

  // Rank diagonals by hit count; extend the strongest few.
  std::vector<std::pair<std::size_t, std::int64_t>> ranked;
  ranked.reserve(diagonals.size());
  for (const auto& [diagonal, hits] : diagonals) {
    ranked.emplace_back(hits.size(), diagonal);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  Alignment best;
  bool haveBest = false;
  const std::size_t tryCount = std::min(ranked.size(), options_.maxDiagonalsPerRead);
  for (std::size_t r = 0; r < tryCount; ++r) {
    const auto& hits = diagonals[ranked[r].second];
    // Extend from the first seed on the diagonal.
    const auto [readPos, refPos] = hits.front();
    ++stats.extensions;
    Alignment candidate = extend(bases, readPos, refPos, stats);
    if (!haveBest || candidate.score > best.score) {
      best = candidate;
      haveBest = true;
    }
  }

  if (haveBest && best.score >= options_.minScore &&
      best.identity() >= options_.minIdentity) {
    best.readId = readId;
    best.reverseStrand = reverseStrand;
    out.push_back(std::move(best));
  }
}

std::vector<Alignment> MiniBlastAligner::alignRead(const Sequence& read,
                                                   AlignerStats& stats) const {
  std::vector<Alignment> out;
  ++stats.readsProcessed;
  alignStrand(read.id, read.bases, false, out, stats);
  const std::string rc = reverseComplement(read.bases);
  alignStrand(read.id, rc, true, out, stats);
  if (!out.empty()) {
    ++stats.readsAligned;
    stats.alignmentsReported += out.size();
  }
  return out;
}

AlignerStats MiniBlastAligner::alignAll(const std::vector<Sequence>& reads,
                                        std::vector<Alignment>& out) const {
  AlignerStats total;
  // Deterministic output order in both serial and parallel modes.
  auto sortOutput = [&out] {
    std::sort(out.begin(), out.end(), [](const Alignment& a, const Alignment& b) {
      if (a.readId != b.readId) return a.readId < b.readId;
      return a.refStart < b.refStart;
    });
  };

  if (options_.threads <= 1) {
    for (const auto& read : reads) {
      auto alignments = alignRead(read, total);
      out.insert(out.end(), std::make_move_iterator(alignments.begin()),
                 std::make_move_iterator(alignments.end()));
    }
    sortOutput();
    return total;
  }

  // Thread-parallel across reads; per-thread stats merged at the end.
  ThreadPool pool(options_.threads);
  std::mutex mergeMutex;
  pool.parallelFor(reads.size(), [&, this](std::size_t i) {
    AlignerStats local;
    auto alignments = alignRead(reads[i], local);
    std::lock_guard<std::mutex> lock(mergeMutex);
    total.readsProcessed += local.readsProcessed;
    total.readsAligned += local.readsAligned;
    total.seedHits += local.seedHits;
    total.extensions += local.extensions;
    total.basesExamined += local.basesExamined;
    total.alignmentsReported += local.alignmentsReported;
    out.insert(out.end(), std::make_move_iterator(alignments.begin()),
               std::make_move_iterator(alignments.end()));
  });
  sortOutput();
  return total;
}

std::vector<std::uint8_t> encodeCompressedReport(
    const std::vector<Alignment>& alignments) {
  // Build the plain-text report, then apply byte-level RLE — a stand-in
  // for the gzip compression of Magic-BLAST output. RLE on tab-separated
  // numeric text achieves a modest real reduction; what matters for the
  // Table I shape is that size scales with alignment count.
  std::string report;
  report.reserve(alignments.size() * 48);
  for (const auto& alignment : alignments) {
    report += alignment.toRecord();
    report += '\n';
  }

  std::vector<std::uint8_t> compressed;
  compressed.reserve(report.size() / 2 + 16);
  std::size_t i = 0;
  while (i < report.size()) {
    const char byte = report[i];
    std::size_t run = 1;
    while (i + run < report.size() && report[i + run] == byte && run < 255) ++run;
    compressed.push_back(static_cast<std::uint8_t>(run));
    compressed.push_back(static_cast<std::uint8_t>(byte));
    i += run;
  }
  return compressed;
}

}  // namespace lidc::genomics
