// The "magic-blast" application image deployed on LIDC clusters
// (paper SIV): reads a sample and a reference from the data lake PVC,
// runs real MiniBlast alignment, writes the compressed report back to
// the data lake, and reports a *testbed-scale* runtime derived from the
// measured alignment work.
//
// Runtime model (documented in DESIGN.md / EXPERIMENTS.md):
//   runtime = input_bytes / (throughput * threadBenefit(cpu)) * workRatio
//             [* thrashPenalty if memory < workingSet]
// where throughput ~ 120 KB/s is the single-thread Magic-BLAST rate
// implied by Table I, threadBenefit grows only marginally with CPUs
// (Magic-BLAST's pipeline is dominated by a serial stage on this
// workload, which is exactly why Table I shows flat runtimes), and
// workRatio modulates by the measured per-read alignment effort so the
// runtime honestly reflects the data.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "datalake/object_store.hpp"
#include "genomics/datasets.hpp"
#include "k8s/job.hpp"
#include "ndn/name.hpp"

namespace lidc::k8s {
class Cluster;
}  // namespace lidc::k8s

namespace lidc::genomics {

struct MagicBlastConfig {
  ndn::Name dataPrefix{"/ndn/k8s/data"};
  std::string referenceObject = "human-ref";  // under dataPrefix
  double throughputBytesPerSec = 120e3;       // single-thread testbed rate
  double threadBenefitPerExtraCpu = 0.015;    // +1.5% per extra core (nearly flat)
  ByteSize workingSet = ByteSize::fromGiB(3); // human-ref DB working set
  double thrashPenalty = 2.4;                 // mem below working set
  /// Baseline extension work per read used to normalise workRatio;
  /// calibrated so the catalog's default datasets land on Table I's
  /// absolute runtimes (rice ~8h at 4GB/2cpu).
  double baselineBasesPerRead = 41.0;
  /// Aligner threads are capped at this (real threads used for real work).
  std::size_t maxAlignerThreads = 4;
  /// Checkpoint namespace the runner resolves ckpt= args against (the
  /// migration plane's /ndn/k8s/ckpt; payloads live in the same lake).
  ndn::Name ckptPrefix{"/ndn/k8s/ckpt"};
};

/// Arguments understood by the runner (JobSpec::args):
///   "srr_id"  - sample object name under the data prefix (required)
///   "ref"     - reference object name (default: config.referenceObject)
///   "out"     - result object name (default: results/<srr_id>-vs-<ref>)
///   "ckpt"    - resume point "<job_id>/<epoch>": the runner loads
///               <ckptPrefix>/<job_id>/<epoch> from the lake, skips the
///               reads it already covers, merges its partial report into
///               the output, and scales the reported runtime by the
///               remaining fraction. A missing or inconsistent
///               checkpoint falls back to a cold start.
/// The result is written to <dataPrefix>/<out>; AppResult::resultPath
/// carries that name and outputBytes the testbed-scale size. Every run
/// also sets AppResult::checkpointPlan, the incremental-progress hook
/// the CheckpointManager samples: progress p maps to a payload of
/// "app=magic-blast;offset=<reads done>;total=<reads>\n" followed by the
/// compressed partial report of the covered reads.
k8s::AppRunner makeMagicBlastRunner(datalake::ObjectStore& store,
                                    const DatasetCatalog& catalog,
                                    MagicBlastConfig config = {});

/// Registers "magic-blast" on the cluster (convenience).
void installMagicBlast(k8s::Cluster& cluster, datalake::ObjectStore& store,
                       const DatasetCatalog& catalog, MagicBlastConfig config = {});

}  // namespace lidc::genomics
