#include "genomics/fasta.hpp"

#include "common/strings.hpp"

namespace lidc::genomics {

std::vector<std::uint8_t> toFasta(const std::vector<Sequence>& sequences) {
  constexpr std::size_t kLineWidth = 70;
  std::string out;
  for (const auto& sequence : sequences) {
    out += '>';
    out += sequence.id;
    out += '\n';
    for (std::size_t pos = 0; pos < sequence.bases.size(); pos += kLineWidth) {
      out += sequence.bases.substr(pos, kLineWidth);
      out += '\n';
    }
  }
  return {out.begin(), out.end()};
}

Result<std::vector<Sequence>> fromFasta(const std::vector<std::uint8_t>& bytes) {
  std::vector<Sequence> sequences;
  const std::string_view text(reinterpret_cast<const char*>(bytes.data()),
                              bytes.size());
  Sequence current;
  bool inSequence = false;
  for (auto line : strings::split(text, '\n')) {
    line = strings::trim(line);
    if (line.empty()) continue;
    if (line[0] == '>') {
      if (inSequence) sequences.push_back(std::move(current));
      current = Sequence{std::string(line.substr(1)), ""};
      inSequence = true;
    } else {
      if (!inSequence) {
        return Status::InvalidArgument("FASTA: sequence data before first header");
      }
      current.bases += line;
    }
  }
  if (inSequence) sequences.push_back(std::move(current));
  return sequences;
}

}  // namespace lidc::genomics
