// Nucleotide sequences and synthetic-data generation. Stands in for the
// NCBI reference databases and SRA sample files the paper downloads;
// generation is seeded so every bench sees identical data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace lidc::genomics {

/// A named nucleotide sequence (A/C/G/T only).
struct Sequence {
  std::string id;
  std::string bases;

  [[nodiscard]] std::size_t length() const noexcept { return bases.size(); }
};

/// Maps A/C/G/T to 0..3; returns 4 for anything else.
constexpr std::uint8_t baseCode(char base) noexcept {
  switch (base) {
    case 'A':
      return 0;
    case 'C':
      return 1;
    case 'G':
      return 2;
    case 'T':
      return 3;
    default:
      return 4;
  }
}

constexpr char codeBase(std::uint8_t code) noexcept {
  constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  return code < 4 ? kBases[code] : 'N';
}

/// Watson-Crick reverse complement.
std::string reverseComplement(std::string_view bases);

/// Uniform random sequence of the given length.
std::string randomBases(Rng& rng, std::size_t length);

/// Copies a random substring of `reference` and applies point mutations
/// at the given rate — models reads sequenced from a related genome.
std::string mutatedFragment(Rng& rng, std::string_view reference,
                            std::size_t fragmentLength, double mutationRate);

/// Generates a read set: `derivedFraction` of reads are mutated fragments
/// of the reference (these will align), the rest are random (they won't).
std::vector<Sequence> generateReads(Rng& rng, std::string_view reference,
                                    std::size_t readCount, std::size_t readLength,
                                    double derivedFraction, double mutationRate,
                                    const std::string& idPrefix);

}  // namespace lidc::genomics
