// K-mer hash index over a reference sequence: the seeding stage of the
// MiniBlast aligner. K-mers are 2-bit packed into 64-bit words; k <= 31.
// High-frequency k-mers (repeats) are masked out, as real aligners do.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lidc::genomics {

class KmerIndex {
 public:
  /// Builds an index of all k-mers of `reference`. K-mers occurring more
  /// than `maxOccurrences` times are dropped (repeat masking).
  KmerIndex(std::string_view reference, unsigned k, std::size_t maxOccurrences = 64);

  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] std::size_t distinctKmers() const noexcept { return index_.size(); }
  [[nodiscard]] std::size_t maskedKmers() const noexcept { return masked_; }

  /// Reference positions at which this packed k-mer occurs.
  [[nodiscard]] const std::vector<std::uint32_t>* find(std::uint64_t packed) const;

  /// Packs bases[pos .. pos+k) into a 2-bit word; returns false when the
  /// window contains a non-ACGT base.
  static bool pack(std::string_view bases, std::size_t pos, unsigned k,
                   std::uint64_t& out) noexcept;

 private:
  unsigned k_;
  std::size_t masked_ = 0;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index_;
};

}  // namespace lidc::genomics
