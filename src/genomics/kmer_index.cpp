#include "genomics/kmer_index.hpp"

#include <cassert>

#include "genomics/sequence.hpp"

namespace lidc::genomics {

bool KmerIndex::pack(std::string_view bases, std::size_t pos, unsigned k,
                     std::uint64_t& out) noexcept {
  if (pos + k > bases.size()) return false;
  std::uint64_t packed = 0;
  for (unsigned i = 0; i < k; ++i) {
    const std::uint8_t code = baseCode(bases[pos + i]);
    if (code > 3) return false;
    packed = (packed << 2) | code;
  }
  out = packed;
  return true;
}

KmerIndex::KmerIndex(std::string_view reference, unsigned k,
                     std::size_t maxOccurrences)
    : k_(k) {
  assert(k >= 4 && k <= 31);
  if (reference.size() < k) return;
  index_.reserve(reference.size());
  for (std::size_t pos = 0; pos + k <= reference.size(); ++pos) {
    std::uint64_t packed = 0;
    if (!pack(reference, pos, k, packed)) continue;
    index_[packed].push_back(static_cast<std::uint32_t>(pos));
  }
  // Repeat masking: drop k-mers that occur too often.
  for (auto it = index_.begin(); it != index_.end();) {
    if (it->second.size() > maxOccurrences) {
      ++masked_;
      it = index_.erase(it);
    } else {
      ++it;
    }
  }
}

const std::vector<std::uint32_t>* KmerIndex::find(std::uint64_t packed) const {
  auto it = index_.find(packed);
  return it == index_.end() ? nullptr : &it->second;
}

}  // namespace lidc::genomics
