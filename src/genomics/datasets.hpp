// Synthetic stand-ins for the paper's datasets: the NCBI human
// reference database and the two SRA samples of Table I —
// SRR2931415 (rice RNA, 99-sample study) and SRR5139395 (kidney tumour
// RNA, 36-sample study). Generation is seeded and scaled down to
// laptop size; each spec also records the *testbed-scale* input size
// used by the Magic-BLAST runtime model so Table I's shape reproduces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "genomics/sequence.hpp"

namespace lidc::genomics {

struct DatasetSpec {
  std::string srrId;       // e.g. "SRR2931415"
  std::string genomeType;  // "RICE" / "KIDNEY"
  std::size_t readCount;   // reads at simulation scale
  std::size_t readLength;
  double derivedFraction;  // fraction of reads that align to the reference
  double mutationRate;
  std::uint64_t testbedBytes;  // real SRA input size the runtime model scales to
};

class DatasetCatalog {
 public:
  /// scale multiplies read counts / reference length (1.0 = defaults).
  explicit DatasetCatalog(double scale = 1.0, std::uint64_t seed = 2024)
      : scale_(scale), seed_(seed) {}

  /// Table I sample: rice RNA reads vs the human reference.
  [[nodiscard]] DatasetSpec riceSample() const;
  /// Table I sample: human kidney tumour RNA reads (aligns far more).
  [[nodiscard]] DatasetSpec kidneySample() const;
  /// Looks a spec up by SRR id; empty srrId when unknown.
  [[nodiscard]] DatasetSpec bySrrId(const std::string& srrId) const;
  [[nodiscard]] std::vector<DatasetSpec> allSamples() const;

  /// The "HUMAN reference database" at simulation scale.
  [[nodiscard]] Sequence generateReference() const;
  [[nodiscard]] std::size_t referenceLength() const;

  /// Reads for a sample, derived from the given reference.
  [[nodiscard]] std::vector<Sequence> generateSample(const DatasetSpec& spec,
                                                     std::string_view reference) const;

  [[nodiscard]] double scale() const noexcept { return scale_; }

 private:
  double scale_;
  std::uint64_t seed_;
};

}  // namespace lidc::genomics
