#include "ndn/app_face.hpp"

#include <algorithm>

namespace lidc::ndn {

void AppFace::expressInterest(Interest interest, DataCallback onData,
                              NackCallback onNack, TimeoutCallback onTimeout) {
  if (interest.nonce() == 0) {
    interest.setNonce(static_cast<std::uint32_t>(nonce_rng_() & 0xFFFFFFFFu) | 1u);
  }

  pending_.push_back(Pending{interest, std::move(onData), std::move(onNack),
                             std::move(onTimeout), sim::EventHandle{}});
  auto it = std::prev(pending_.end());

  // App-level timeout mirrors the Interest lifetime.
  it->timeoutEvent = sim_.scheduleAfter(interest.lifetime(), [this, it] {
    Pending pending = std::move(*it);
    pending_.erase(it);
    if (pending.onTimeout) pending.onTimeout(pending.interest);
  });

  // Into the forwarder.
  receiveInterest(it->interest);
}

void AppFace::putData(Data data) {
  if (!data.verify()) data.sign();
  receiveData(data);
}

void AppFace::putNack(const Interest& interest, NackReason reason) {
  receiveNack(Nack(interest, reason));
}

void AppFace::sendInterest(const Interest& interest) {
  countOutInterest(interest);
  if (interest_handler_) interest_handler_(interest);
}

AppFace::PendingList::iterator AppFace::findPendingForData(const Data& data) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    const bool match = it->interest.canBePrefix()
                           ? it->interest.name().isPrefixOf(data.name())
                           : it->interest.name() == data.name();
    if (!match) continue;
    // An Interest excluding this payload's digest is not satisfied by
    // it — otherwise an integrity re-fetch issued from inside a Data
    // callback would be consumed by the very poison it is escaping.
    if (it->interest.excludeDigest().has_value() &&
        *it->interest.excludeDigest() == data.contentDigest()) {
      continue;
    }
    return it;
  }
  return pending_.end();
}

AppFace::PendingList::iterator AppFace::findPendingForInterest(const Name& name) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->interest.name() == name) return it;
  }
  return pending_.end();
}

void AppFace::sendData(const Data& data) {
  countOutData(data);
  // All pending Interests this Data satisfies fire (typically one).
  while (true) {
    auto it = findPendingForData(data);
    if (it == pending_.end()) return;
    Pending pending = std::move(*it);
    pending_.erase(it);
    pending.timeoutEvent.cancel();
    if (pending.onData) pending.onData(pending.interest, data);
  }
}

void AppFace::sendNack(const Nack& nack) {
  countOutNack();
  auto it = findPendingForInterest(nack.interest().name());
  if (it == pending_.end()) return;
  Pending pending = std::move(*it);
  pending_.erase(it);
  pending.timeoutEvent.cancel();
  if (pending.onNack) pending.onNack(pending.interest, nack);
}

}  // namespace lidc::ndn
