#include "ndn/cs.hpp"

namespace lidc::ndn {

namespace {
/// Signed-but-invalid is the poisoned state; unsigned Data carries no
/// integrity information and passes (see file comment).
bool isPoisoned(const Data& data) { return data.hasSignature() && !data.verify(); }
}  // namespace

void ContentStore::insert(const Data& data, sim::Time now) {
  if (capacity_ == 0) return;
  if (verify_inserts_ && isPoisoned(data)) {
    ++poisoned_rejects_;
    return;
  }
  auto it = index_.find(data.name());
  if (it != index_.end()) {
    it->second.first = Entry{data, now};
    touch(it->second.second);
    return;
  }
  lru_.push_front(data.name());
  index_.emplace(data.name(), std::make_pair(Entry{data, now}, lru_.begin()));
  evictIfNeeded();
}

std::optional<Data> ContentStore::find(const Interest& interest, sim::Time now) {
  const Name& name = interest.name();
  const std::optional<std::uint64_t> exclude = interest.excludeDigest();

  // Serve-or-evict decision for one candidate entry. Poisoned entries
  // (cached while verification was off, or corrupted post-admission) are
  // removed instead of served, so a cache never re-serves bad content.
  auto usable = [&](const Entry& entry) {
    if (!isFreshEnough(entry, interest, now)) return false;
    if (exclude && entry.data.contentDigest() == *exclude) return false;
    return true;
  };

  if (!interest.canBePrefix()) {
    auto it = index_.find(name);
    if (it != index_.end() && isPoisoned(it->second.first.data)) {
      ++poisoned_evictions_;
      erase(it->first);
    } else if (it != index_.end() && usable(it->second.first)) {
      touch(it->second.second);
      ++hits_;
      return it->second.first.data;
    }
    ++misses_;
    return std::nullopt;
  }

  // CanBePrefix: scan names >= prefix until we leave the subtree.
  for (auto it = index_.lower_bound(name); it != index_.end();) {
    if (!name.isPrefixOf(it->first)) break;
    if (isPoisoned(it->second.first.data)) {
      ++poisoned_evictions_;
      auto victim = it++;
      erase(victim->first);
      continue;
    }
    if (usable(it->second.first)) {
      touch(it->second.second);
      ++hits_;
      return it->second.first.data;
    }
    ++it;
  }
  ++misses_;
  return std::nullopt;
}

void ContentStore::erase(const Name& name) {
  auto it = index_.find(name);
  if (it == index_.end()) return;
  lru_.erase(it->second.second);
  index_.erase(it);
}

void ContentStore::clear() {
  index_.clear();
  lru_.clear();
}

void ContentStore::setCapacity(std::size_t capacity) {
  capacity_ = capacity;
  evictIfNeeded();
}

void ContentStore::touch(LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void ContentStore::evictIfNeeded() {
  while (index_.size() > capacity_ && !lru_.empty()) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
}

bool ContentStore::isFreshEnough(const Entry& entry, const Interest& interest,
                                 sim::Time now) const noexcept {
  if (!interest.mustBeFresh()) return true;
  if (serve_stale_) return true;  // chaos: buggy cache replays stale Data
  if (entry.data.freshnessPeriod() == sim::Duration()) return false;
  return now < entry.arrival + entry.data.freshnessPeriod();
}

}  // namespace lidc::ndn
