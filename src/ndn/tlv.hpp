// NDN TLV (Type-Length-Value) wire format, per the NDN packet format
// specification v0.3. Types and lengths are variable-size numbers
// (1 / 3 / 5 / 9 bytes). Interests and Data are encoded to real wire
// bytes so the network substrate carries honest packet sizes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace lidc::ndn::tlv {

/// TLV type numbers used by this implementation (subset of the NDN spec).
enum Type : std::uint32_t {
  kInterest = 0x05,
  kData = 0x06,
  kName = 0x07,
  kGenericNameComponent = 0x08,
  kCanBePrefix = 0x21,
  kMustBeFresh = 0x12,
  kNonce = 0x0A,
  kInterestLifetime = 0x0C,
  kHopLimit = 0x22,
  kApplicationParameters = 0x24,
  kMetaInfo = 0x14,
  kContentType = 0x18,
  kFreshnessPeriod = 0x19,
  kContent = 0x15,
  kSignatureInfo = 0x16,
  kSignatureValue = 0x17,
  kSignatureType = 0x1B,
  // Network NACK (from NDNLPv2, simplified to a top-level TLV here).
  kNack = 0x0320,
  kNackReason = 0x0321,
  // LIDC extension: digest exclusion hint on retransmitted Interests,
  // so caches skip an entry known to be poisoned (cf. the Exclude
  // selector of classic NDN).
  kExcludeDigest = 0x0330,
};

using Buffer = std::vector<std::uint8_t>;

/// Appends TLV blocks to a growing buffer.
class Encoder {
 public:
  /// Encodes a TLV var-number (type or length).
  void writeVarNumber(std::uint64_t value);

  /// Writes a full TLV block with raw payload bytes.
  void writeBlock(std::uint32_t type, std::span<const std::uint8_t> payload);
  void writeBlock(std::uint32_t type, const Buffer& payload) {
    writeBlock(type, std::span<const std::uint8_t>(payload.data(), payload.size()));
  }

  /// Writes a TLV block whose value is a big-endian non-negative integer
  /// in minimal width (1/2/4/8 bytes), per NDN NonNegativeInteger rules.
  void writeNonNegativeInteger(std::uint32_t type, std::uint64_t value);

  /// Writes a zero-length TLV (boolean flag element).
  void writeFlag(std::uint32_t type) { writeBlock(type, std::span<const std::uint8_t>{}); }

  /// Writes pre-encoded child bytes wrapped in a parent TLV.
  void writeNested(std::uint32_t type, const Encoder& child);

  [[nodiscard]] const Buffer& buffer() const noexcept { return buffer_; }
  [[nodiscard]] Buffer takeBuffer() noexcept { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  Buffer buffer_;
};

/// One decoded TLV element.
struct Element {
  std::uint32_t type = 0;
  std::span<const std::uint8_t> value;
};

/// Sequentially decodes TLV elements from a byte span.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> input) : input_(input) {}

  [[nodiscard]] bool atEnd() const noexcept { return offset_ >= input_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return input_.size() - offset_;
  }

  /// Reads the next element. Returns error on truncation/overflow.
  Result<Element> readElement();

  /// Reads the next element and checks its type.
  Result<Element> readElement(std::uint32_t expectedType);

  /// Decodes an NDN NonNegativeInteger from an element value.
  static Result<std::uint64_t> readNonNegativeInteger(std::span<const std::uint8_t> v);

 private:
  Result<std::uint64_t> readVarNumber();

  std::span<const std::uint8_t> input_;
  std::size_t offset_ = 0;
};

}  // namespace lidc::ndn::tlv
