#include "ndn/forwarder.hpp"

#include <cassert>

#include "common/logging.hpp"

namespace lidc::ndn {

Forwarder::Forwarder(std::string name, sim::Simulator& sim)
    : name_(std::move(name)), sim_(sim) {
  // Default strategy for the whole namespace, as in NFD.
  strategies_.emplace(Name("/"), std::make_unique<BestRouteStrategy>(*this));
}

Forwarder::~Forwarder() = default;

FaceId Forwarder::addFace(std::shared_ptr<Face> face) {
  assert(face);
  const FaceId id = next_face_id_++;
  face->setId(id);
  installHandlers(*face);
  faces_.emplace(id, std::move(face));
  return id;
}

void Forwarder::removeFace(FaceId id) {
  fib_.removeFaceFromAll(id);
  measurements_.forget(id);
  faces_.erase(id);
}

Face* Forwarder::face(FaceId id) noexcept {
  auto it = faces_.find(id);
  return it == faces_.end() ? nullptr : it->second.get();
}

void Forwarder::registerPrefix(const Name& prefix, FaceId face, std::uint64_t cost) {
  fib_.insert(prefix, face, cost);
}

void Forwarder::unregisterPrefix(const Name& prefix, FaceId face) {
  fib_.removeNextHop(prefix, face);
}

void Forwarder::setStrategy(const Name& prefix, std::unique_ptr<Strategy> strategy) {
  assert(strategy);
  strategies_[prefix] = std::move(strategy);
}

Strategy& Forwarder::findStrategy(const Name& name) {
  // Longest-prefix match over the strategy-choice table.
  for (std::size_t len = name.size() + 1; len-- > 0;) {
    auto it = strategies_.find(name.prefix(len));
    if (it != strategies_.end()) return *it->second;
  }
  // The root entry always exists.
  return *strategies_.at(Name("/"));
}

void Forwarder::installHandlers(Face& face) {
  face.onReceiveInterest = [this](Face& inFace, const Interest& interest) {
    onIncomingInterest(inFace, interest);
  };
  face.onReceiveData = [this](Face& inFace, const Data& data) {
    onIncomingData(inFace, data);
  };
  face.onReceiveNack = [this](Face& inFace, const Nack& nack) {
    onIncomingNack(inFace, nack);
  };
}

void Forwarder::onIncomingInterest(Face& inFace, const Interest& interest) {
  ++counters_.nInInterests;
  LIDC_LOG(kTrace, "forwarder") << name_ << " <- Interest " << interest.name().toUri()
                                << " via face " << inFace.id();

  // Hop limit.
  if (interest.hopLimit() == 0) return;

  // Dead Nonce List: a nonce that looped back after its PIT entry was
  // consumed is still a duplicate.
  if (dnl_.has(interest.name(), interest.nonce())) {
    ++counters_.nDuplicateNonce;
    inFace.sendNack(Nack(interest, NackReason::kDuplicate));
    return;
  }

  auto [entry, isNew] = pit_.insert(interest);

  // Loop detection by nonce.
  if (!isNew && entry->isDuplicateNonce(interest.nonce(), inFace.id())) {
    ++counters_.nDuplicateNonce;
    inFace.sendNack(Nack(interest, NackReason::kDuplicate));
    return;
  }

  // Content Store lookup.
  if (auto cached = cs_.find(interest, sim_.now())) {
    ++counters_.nCsHits;
    if (isNew) pit_.erase(entry);
    ++counters_.nOutData;
    inFace.sendData(*cached);
    return;
  }
  ++counters_.nCsMisses;

  const sim::Time expiry = sim_.now() + interest.lifetime();
  entry->insertInRecord(inFace.id(), interest.nonce(), expiry);

  if (isNew) {
    // Unsatisfy timer.
    std::weak_ptr<PitEntry> weak = entry;
    entry->expiryTimer =
        sim_.scheduleAfter(interest.lifetime(), [this, weak] { onInterestExpiry(weak); });
    findStrategy(interest.name()).afterReceiveInterest(interest, inFace, entry);
  } else if (!entry->hasOutRecords()) {
    // Entry exists but was never forwarded (e.g. all upstreams were down);
    // give the strategy another chance.
    findStrategy(interest.name()).afterReceiveInterest(interest, inFace, entry);
  }
  // Otherwise: aggregated onto the in-flight Interest (no re-forwarding).
}

void Forwarder::onIncomingData(Face& inFace, const Data& data) {
  ++counters_.nInData;
  LIDC_LOG(kTrace, "forwarder") << name_ << " <- Data " << data.name().toUri()
                                << " via face " << inFace.id();

  auto matches = pit_.findMatches(data);
  if (matches.empty()) {
    ++counters_.nUnsolicitedData;
    return;  // unsolicited Data is dropped, as in NFD's default policy
  }

  cs_.insert(data, sim_.now());

  for (const auto& entry : matches) {
    entry->expiryTimer.cancel();
    findStrategy(entry->name()).beforeSatisfyInterest(entry, inFace, data);
    for (const auto& in : entry->inRecords()) {
      if (in.face == inFace.id()) continue;
      if (auto* downstream = face(in.face); downstream != nullptr) {
        ++counters_.nOutData;
        downstream->sendData(data);
      }
    }
    ++counters_.nSatisfied;
    recordDeadNonces(*entry);
    pit_.erase(entry);
  }
}

void Forwarder::recordDeadNonces(const PitEntry& entry) {
  for (const auto& in : entry.inRecords()) {
    dnl_.add(entry.name(), in.nonce);
  }
  for (const auto& out : entry.outRecords()) {
    dnl_.add(entry.name(), out.nonce);
  }
}

void Forwarder::onIncomingNack(Face& inFace, const Nack& nack) {
  auto entry = pit_.find(nack.interest());
  if (!entry) return;
  // Only meaningful if we actually sent on that face.
  if (entry->findOutRecord(inFace.id()) == nullptr) return;
  findStrategy(entry->name()).afterReceiveNack(nack, inFace, entry);
}

void Forwarder::onInterestExpiry(std::weak_ptr<PitEntry> weakEntry) {
  auto entry = weakEntry.lock();
  if (!entry) return;
  ++counters_.nUnsatisfied;
  findStrategy(entry->name()).onInterestTimeout(entry);
  recordDeadNonces(*entry);
  pit_.erase(entry);
}

void Forwarder::sendInterest(const std::shared_ptr<PitEntry>& entry, FaceId upstream) {
  auto* outFace = face(upstream);
  if (outFace == nullptr || !outFace->isUp()) return;

  Interest interest = entry->interest();
  // Decrement hop limit on the wire.
  if (interest.hopLimit() > 0) interest.setHopLimit(interest.hopLimit() - 1);

  entry->insertOutRecord(upstream, interest.nonce(), sim_.now());
  ++counters_.nOutInterests;
  LIDC_LOG(kTrace, "forwarder") << name_ << " -> Interest " << interest.name().toUri()
                                << " via face " << upstream;
  outFace->sendInterest(interest);
}

void Forwarder::sendNackDownstream(const std::shared_ptr<PitEntry>& entry,
                                   NackReason reason) {
  ++counters_.nNoRoute;
  for (const auto& in : entry->inRecords()) {
    if (auto* downstream = face(in.face); downstream != nullptr) {
      downstream->sendNack(Nack(entry->interest(), reason));
    }
  }
  entry->expiryTimer.cancel();
  pit_.erase(entry);
}

}  // namespace lidc::ndn
