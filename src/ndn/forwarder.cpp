#include "ndn/forwarder.hpp"

#include <array>
#include <cassert>

#include "common/logging.hpp"

namespace lidc::ndn {

Forwarder::Forwarder(std::string name, sim::Simulator& sim)
    : name_(std::move(name)), sim_(sim) {
  // Default strategy for the whole namespace, as in NFD.
  strategies_.emplace(Name("/"), std::make_unique<BestRouteStrategy>(*this));
}

Forwarder::~Forwarder() = default;

FaceId Forwarder::addFace(std::shared_ptr<Face> face) {
  assert(face);
  const FaceId id = next_face_id_++;
  face->setId(id);
  installHandlers(*face);
  tapFace(*face);
  faces_.emplace(id, std::move(face));
  return id;
}

void Forwarder::removeFace(FaceId id) {
  fib_.removeFaceFromAll(id);
  measurements_.forget(id);
  faces_.erase(id);
}

Face* Forwarder::face(FaceId id) noexcept {
  auto it = faces_.find(id);
  return it == faces_.end() ? nullptr : it->second.get();
}

void Forwarder::registerPrefix(const Name& prefix, FaceId face, std::uint64_t cost) {
  fib_.insert(prefix, face, cost);
}

void Forwarder::unregisterPrefix(const Name& prefix, FaceId face) {
  fib_.removeNextHop(prefix, face);
}

void Forwarder::setStrategy(const Name& prefix, std::unique_ptr<Strategy> strategy) {
  assert(strategy);
  strategies_[prefix] = std::move(strategy);
}

Strategy& Forwarder::findStrategy(const Name& name) {
  // Longest-prefix match over the strategy-choice table.
  for (std::size_t len = name.size() + 1; len-- > 0;) {
    auto it = strategies_.find(name.prefix(len));
    if (it != strategies_.end()) return *it->second;
  }
  // The root entry always exists.
  return *strategies_.at(Name("/"));
}

void Forwarder::attachTelemetry(telemetry::MetricsRegistry& registry,
                                telemetry::Tracer* tracer) {
  telemetry_ = std::make_unique<TelemetryHooks>();
  const telemetry::Labels labels{{"node", name_}};
  auto mirror = [&](const char* metric, std::uint64_t seed) {
    telemetry::Counter& c = registry.counter(metric, labels);
    c.set(seed);  // carry over increments from before the attach
    return &c;
  };
  telemetry_->inInterests = mirror("lidc_forwarder_in_interests", counters_.nInInterests);
  telemetry_->outInterests = mirror("lidc_forwarder_out_interests", counters_.nOutInterests);
  telemetry_->inData = mirror("lidc_forwarder_in_data", counters_.nInData);
  telemetry_->outData = mirror("lidc_forwarder_out_data", counters_.nOutData);
  telemetry_->csHits = mirror("lidc_forwarder_cs_hits", counters_.nCsHits);
  telemetry_->csMisses = mirror("lidc_forwarder_cs_misses", counters_.nCsMisses);
  telemetry_->satisfied = mirror("lidc_forwarder_satisfied", counters_.nSatisfied);
  telemetry_->unsatisfied = mirror("lidc_forwarder_unsatisfied", counters_.nUnsatisfied);
  telemetry_->duplicateNonce =
      mirror("lidc_forwarder_duplicate_nonce", counters_.nDuplicateNonce);
  telemetry_->noRoute = mirror("lidc_forwarder_no_route", counters_.nNoRoute);
  telemetry_->unsolicitedData =
      mirror("lidc_forwarder_unsolicited_data", counters_.nUnsolicitedData);
  telemetry_->integrityDrops =
      mirror("lidc_integrity_drops_total", counters_.nIntegrityDrops);
  telemetry_->tracer = tracer;

  // Per-face counters and table occupancy change too often to mirror
  // live; a collector syncs the aggregates at snapshot time.
  registry.registerCollector([this, &registry, labels] {
    FaceCounters total;
    for (const auto& [id, face] : faces_) {
      const FaceCounters& c = face->counters();
      total.nInInterests += c.nInInterests;
      total.nOutInterests += c.nOutInterests;
      total.nInData += c.nInData;
      total.nOutData += c.nOutData;
      total.nInNacks += c.nInNacks;
      total.nOutNacks += c.nOutNacks;
      total.nInBytes += c.nInBytes;
      total.nOutBytes += c.nOutBytes;
    }
    registry.counter("lidc_face_in_interests", labels).set(total.nInInterests);
    registry.counter("lidc_face_out_interests", labels).set(total.nOutInterests);
    registry.counter("lidc_face_in_data", labels).set(total.nInData);
    registry.counter("lidc_face_out_data", labels).set(total.nOutData);
    registry.counter("lidc_face_in_nacks", labels).set(total.nInNacks);
    registry.counter("lidc_face_out_nacks", labels).set(total.nOutNacks);
    registry.counter("lidc_face_in_bytes", labels).set(total.nInBytes);
    registry.counter("lidc_face_out_bytes", labels).set(total.nOutBytes);
    registry.gauge("lidc_cs_size", labels).set(static_cast<double>(cs_.size()));
    registry.gauge("lidc_pit_size", labels).set(static_cast<double>(pit_.size()));
    registry.counter("lidc_cs_hits", labels).set(cs_.hits());
    registry.counter("lidc_cs_misses", labels).set(cs_.misses());
    registry.counter("lidc_cs_poisoned_rejects_total", labels)
        .set(cs_.poisonedRejects());
    registry.counter("lidc_cs_poisoned_evictions_total", labels)
        .set(cs_.poisonedEvictions());
  });
}

void Forwarder::attachFlowAccounting(telemetry::FlowAccountant& accountant) {
  flow_ = &accountant;
  for (auto& [id, face] : faces_) tapFace(*face);
}

void Forwarder::tapFace(Face& face) {
  // Only point-to-point link faces carry a tap: app faces sit on the
  // node itself, so their traffic never crosses a physical link.
  if (flow_ == nullptr || face.uri().rfind("link://", 0) != 0) return;
  face.setFlowStats(flow_->registerLink(face.uri()));
}

void Forwarder::attributeData(Face& outFace, const Interest& interest,
                              const Data& data, bool fromCache) {
  if (flow_ == nullptr || outFace.flowStats() == nullptr) return;
  // extractFlowKey only ever reads a handful of leading components, so
  // a fixed stack buffer keeps this off the allocator.
  std::array<std::string_view, 16> comps;
  std::size_t count = 0;
  for (const auto& c : data.name()) {
    if (count == comps.size()) break;
    comps[count++] = std::string_view(
        reinterpret_cast<const char*>(c.value().data()), c.value().size());
  }
  flow_->attribute(
      outFace.uri(),
      telemetry::extractFlowKey(comps.data(), count, interest.flowLabel()),
      data.wireSize(), fromCache);
}

void Forwarder::hopInstant(const Interest& interest, const char* decision,
                           telemetry::SpanAttrs extra) {
  if (!telemetry_ || telemetry_->tracer == nullptr) return;
  const telemetry::TraceContext ctx = interest.traceContext();
  if (!ctx) return;
  telemetry::SpanAttrs attrs{{"decision", decision}};
  attrs.insert(attrs.end(), extra.begin(), extra.end());
  telemetry_->tracer->instant("forwarder-hop", "forwarder:" + name_, ctx,
                              std::move(attrs));
}

void Forwarder::installHandlers(Face& face) {
  face.onReceiveInterest = [this](Face& inFace, const Interest& interest) {
    onIncomingInterest(inFace, interest);
  };
  face.onReceiveData = [this](Face& inFace, const Data& data) {
    onIncomingData(inFace, data);
  };
  face.onReceiveNack = [this](Face& inFace, const Nack& nack) {
    onIncomingNack(inFace, nack);
  };
}

void Forwarder::onIncomingInterest(Face& inFace, const Interest& interest) {
  ++counters_.nInInterests;
  if (telemetry_) telemetry_->inInterests->inc();
  LIDC_LOG(kTrace, "forwarder") << name_ << " <- Interest " << interest.name().toUri()
                                << " via face " << inFace.id();

  // Hop limit.
  if (interest.hopLimit() == 0) return;

  // Dead Nonce List: a nonce that looped back after its PIT entry was
  // consumed is still a duplicate.
  if (dnl_.has(interest.name(), interest.nonce())) {
    ++counters_.nDuplicateNonce;
    if (telemetry_) telemetry_->duplicateNonce->inc();
    hopInstant(interest, "nack-duplicate");
    inFace.sendNack(Nack(interest, NackReason::kDuplicate));
    return;
  }

  auto [entry, isNew] = pit_.insert(interest);

  // Loop detection by nonce.
  if (!isNew && entry->isDuplicateNonce(interest.nonce(), inFace.id())) {
    ++counters_.nDuplicateNonce;
    if (telemetry_) telemetry_->duplicateNonce->inc();
    hopInstant(interest, "nack-duplicate");
    inFace.sendNack(Nack(interest, NackReason::kDuplicate));
    return;
  }

  // Content Store lookup.
  if (auto cached = cs_.find(interest, sim_.now())) {
    ++counters_.nCsHits;
    if (telemetry_) telemetry_->csHits->inc();
    hopInstant(interest, "cs-hit");
    if (isNew) pit_.erase(entry);
    ++counters_.nOutData;
    if (telemetry_) telemetry_->outData->inc();
    attributeData(inFace, interest, *cached, /*fromCache=*/true);
    inFace.sendData(*cached);
    return;
  }
  ++counters_.nCsMisses;
  if (telemetry_) telemetry_->csMisses->inc();

  const sim::Time expiry = sim_.now() + interest.lifetime();
  entry->insertInRecord(inFace.id(), interest.nonce(), expiry);

  if (isNew) {
    // Unsatisfy timer.
    std::weak_ptr<PitEntry> weak = entry;
    entry->expiryTimer =
        sim_.scheduleAfter(interest.lifetime(), [this, weak] { onInterestExpiry(weak); });
    findStrategy(interest.name()).afterReceiveInterest(interest, inFace, entry);
  } else if (!entry->hasOutRecords()) {
    // Entry exists but was never forwarded (e.g. all upstreams were down);
    // give the strategy another chance.
    findStrategy(interest.name()).afterReceiveInterest(interest, inFace, entry);
  } else {
    // Aggregated onto the in-flight Interest (no re-forwarding).
    hopInstant(interest, "pit-aggregate");
  }
}

void Forwarder::onIncomingData(Face& inFace, const Data& data) {
  ++counters_.nInData;
  if (telemetry_) telemetry_->inData->inc();
  LIDC_LOG(kTrace, "forwarder") << name_ << " <- Data " << data.name().toUri()
                                << " via face " << inFace.id();

  // Integrity gate: a signed packet whose digest no longer matches was
  // corrupted in flight (or poisoned at a cache). Dropping it here —
  // before the CS and before PIT satisfaction — means the downstream
  // consumer sees a plain timeout and retries, and no cache along the
  // path ever stores the bad copy.
  if (verify_data_ && data.hasSignature() && !data.verify()) {
    ++counters_.nIntegrityDrops;
    if (telemetry_) telemetry_->integrityDrops->inc();
    LIDC_FR_EVENT(recorder_, kWarn, "forwarder",
                  name_ + " integrity-drop " + data.name().toUri());
    return;
  }

  auto matches = pit_.findMatches(data);
  if (matches.empty()) {
    ++counters_.nUnsolicitedData;
    if (telemetry_) telemetry_->unsolicitedData->inc();
    return;  // unsolicited Data is dropped, as in NFD's default policy
  }

  cs_.insert(data, sim_.now());

  for (const auto& entry : matches) {
    entry->expiryTimer.cancel();
    findStrategy(entry->name()).beforeSatisfyInterest(entry, inFace, data);
    for (const auto& in : entry->inRecords()) {
      if (in.face == inFace.id()) continue;
      if (auto* downstream = face(in.face); downstream != nullptr) {
        ++counters_.nOutData;
        if (telemetry_) telemetry_->outData->inc();
        attributeData(*downstream, entry->interest(), data,
                      /*fromCache=*/false);
        downstream->sendData(data);
      }
    }
    ++counters_.nSatisfied;
    if (telemetry_) telemetry_->satisfied->inc();
    recordDeadNonces(*entry);
    pit_.erase(entry);
  }
}

void Forwarder::recordDeadNonces(const PitEntry& entry) {
  for (const auto& in : entry.inRecords()) {
    dnl_.add(entry.name(), in.nonce);
  }
  for (const auto& out : entry.outRecords()) {
    dnl_.add(entry.name(), out.nonce);
  }
}

void Forwarder::onIncomingNack(Face& inFace, const Nack& nack) {
  auto entry = pit_.find(nack.interest());
  if (!entry) return;
  // Only meaningful if we actually sent on that face.
  if (entry->findOutRecord(inFace.id()) == nullptr) return;
  findStrategy(entry->name()).afterReceiveNack(nack, inFace, entry);
}

void Forwarder::onInterestExpiry(std::weak_ptr<PitEntry> weakEntry) {
  auto entry = weakEntry.lock();
  if (!entry) return;
  ++counters_.nUnsatisfied;
  if (telemetry_) telemetry_->unsatisfied->inc();
  LIDC_FR_EVENT(recorder_, kWarn, "forwarder",
                name_ + " unsatisfied " + entry->interest().name().toUri());
  hopInstant(entry->interest(), "expire");
  findStrategy(entry->name()).onInterestTimeout(entry);
  recordDeadNonces(*entry);
  pit_.erase(entry);
}

void Forwarder::sendInterest(const std::shared_ptr<PitEntry>& entry, FaceId upstream) {
  auto* outFace = face(upstream);
  if (outFace == nullptr || !outFace->isUp()) return;

  Interest interest = entry->interest();
  // Decrement hop limit on the wire.
  if (interest.hopLimit() > 0) interest.setHopLimit(interest.hopLimit() - 1);

  entry->insertOutRecord(upstream, interest.nonce(), sim_.now());
  ++counters_.nOutInterests;
  if (telemetry_) telemetry_->outInterests->inc();
  hopInstant(interest, "forward", {{"face", std::to_string(upstream)}});
  LIDC_LOG(kTrace, "forwarder") << name_ << " -> Interest " << interest.name().toUri()
                                << " via face " << upstream;
  outFace->sendInterest(interest);
}

void Forwarder::sendNackDownstream(const std::shared_ptr<PitEntry>& entry,
                                   NackReason reason) {
  ++counters_.nNoRoute;
  if (telemetry_) telemetry_->noRoute->inc();
  LIDC_FR_EVENT(recorder_, kWarn, "forwarder",
                name_ + " nack " + std::string(nackReasonName(reason)) + " " +
                    entry->interest().name().toUri());
  hopInstant(entry->interest(), "nack",
             {{"reason", std::string(nackReasonName(reason))}});
  for (const auto& in : entry->inRecords()) {
    if (auto* downstream = face(in.face); downstream != nullptr) {
      downstream->sendNack(Nack(entry->interest(), reason));
    }
  }
  entry->expiryTimer.cancel();
  pit_.erase(entry);
}

}  // namespace lidc::ndn
