// Pending Interest Table. Records which faces asked for which names so
// returning Data retraces the Interest path, and aggregates duplicate
// Interests (the mechanism behind NDN's built-in request collapsing,
// which LIDC's result caching leans on).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ndn/face.hpp"
#include "ndn/packet.hpp"
#include "sim/simulator.hpp"

namespace lidc::ndn {

struct InRecord {
  FaceId face = kInvalidFaceId;
  std::uint32_t nonce = 0;
  sim::Time expiry;
};

struct OutRecord {
  FaceId face = kInvalidFaceId;
  std::uint32_t nonce = 0;
  sim::Time lastSent;
  bool nacked = false;
  NackReason nackReason = NackReason::kNone;
};

class PitEntry {
 public:
  explicit PitEntry(Interest interest) : interest_(std::move(interest)) {}

  [[nodiscard]] const Interest& interest() const noexcept { return interest_; }
  [[nodiscard]] const Name& name() const noexcept { return interest_.name(); }

  [[nodiscard]] std::vector<InRecord>& inRecords() noexcept { return in_records_; }
  [[nodiscard]] const std::vector<InRecord>& inRecords() const noexcept {
    return in_records_;
  }
  [[nodiscard]] std::vector<OutRecord>& outRecords() noexcept { return out_records_; }
  [[nodiscard]] const std::vector<OutRecord>& outRecords() const noexcept {
    return out_records_;
  }

  /// Adds or refreshes the in-record for a downstream face.
  void insertInRecord(FaceId face, std::uint32_t nonce, sim::Time expiry);
  /// Adds or refreshes the out-record for an upstream face.
  void insertOutRecord(FaceId face, std::uint32_t nonce, sim::Time sentAt);
  [[nodiscard]] OutRecord* findOutRecord(FaceId face) noexcept;
  void deleteInRecord(FaceId face);

  /// Loop detection: has this nonce been seen on a *different* face?
  [[nodiscard]] bool isDuplicateNonce(std::uint32_t nonce, FaceId face) const noexcept;

  /// True once the Interest has been forwarded upstream at least once.
  [[nodiscard]] bool hasOutRecords() const noexcept { return !out_records_.empty(); }

  /// True when every out-record has been nacked (no viable upstream left).
  [[nodiscard]] bool allUpstreamsNacked() const noexcept;

  sim::EventHandle expiryTimer;
  /// Retransmission attempts made by the strategy for this entry.
  int retxCount = 0;

 private:
  Interest interest_;
  std::vector<InRecord> in_records_;
  std::vector<OutRecord> out_records_;
};

/// The table itself, keyed by (name, canBePrefix, mustBeFresh).
class Pit {
 public:
  struct InsertResult {
    std::shared_ptr<PitEntry> entry;
    bool isNew = false;
  };

  /// Finds or creates the entry for this Interest.
  InsertResult insert(const Interest& interest);

  /// Finds the entry for this exact Interest (nullptr if absent).
  [[nodiscard]] std::shared_ptr<PitEntry> find(const Interest& interest) const;

  /// All entries that `data` satisfies (exact name, or prefix when the
  /// Interest allows it).
  [[nodiscard]] std::vector<std::shared_ptr<PitEntry>> findMatches(
      const Data& data) const;

  void erase(const std::shared_ptr<PitEntry>& entry);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Key {
    Name name;
    bool canBePrefix;
    bool mustBeFresh;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return k.name.hash() ^ (k.canBePrefix ? 0x9e3779b9U : 0U) ^
             (k.mustBeFresh ? 0x85ebca6bU : 0U);
    }
  };
  static Key makeKey(const Interest& interest) {
    return Key{interest.name(), interest.canBePrefix(), interest.mustBeFresh()};
  }

  std::unordered_map<Key, std::shared_ptr<PitEntry>, KeyHash> entries_;
};

}  // namespace lidc::ndn
