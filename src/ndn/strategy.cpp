#include "ndn/strategy.hpp"

#include <algorithm>
#include <vector>

#include "ndn/forwarder.hpp"

namespace lidc::ndn {

void RttMeasurements::addSample(FaceId face, sim::Duration rtt) {
  constexpr double kAlpha = 0.125;
  const double sample = rtt.toSeconds();
  auto [it, inserted] = srtt_.try_emplace(face, sample);
  if (!inserted) it->second = (1.0 - kAlpha) * it->second + kAlpha * sample;
}

std::optional<sim::Duration> RttMeasurements::srtt(FaceId face) const {
  auto it = srtt_.find(face);
  if (it == srtt_.end()) return std::nullopt;
  return sim::Duration::seconds(it->second);
}

void Strategy::beforeSatisfyInterest(const std::shared_ptr<PitEntry>& entry,
                                     Face& inFace, const Data& /*data*/) {
  if (auto* out = entry->findOutRecord(inFace.id())) {
    measurements().addSample(inFace.id(),
                             forwarder_.simulator().now() - out->lastSent);
  }
}

void Strategy::afterReceiveNack(const Nack& nack, Face& inFace,
                                const std::shared_ptr<PitEntry>& entry) {
  if (auto* out = entry->findOutRecord(inFace.id())) {
    out->nacked = true;
    out->nackReason = nack.reason();
  }
  if (entry->allUpstreamsNacked()) {
    sendNackDownstream(entry, leastSevereNackReason(entry, NackReason::kNoRoute));
  }
}

void Strategy::onInterestTimeout(const std::shared_ptr<PitEntry>& /*entry*/) {}

void Strategy::sendInterestTo(const std::shared_ptr<PitEntry>& entry,
                              FaceId upstream) {
  forwarder_.sendInterest(entry, upstream);
}

void Strategy::sendNackDownstream(const std::shared_ptr<PitEntry>& entry,
                                  NackReason reason) {
  forwarder_.sendNackDownstream(entry, reason);
}

NackReason Strategy::leastSevereNackReason(const std::shared_ptr<PitEntry>& entry,
                                           NackReason fallback) {
  NackReason least = NackReason::kNone;
  for (const auto& out : entry->outRecords()) {
    if (!out.nacked || out.nackReason == NackReason::kNone) continue;
    if (least == NackReason::kNone ||
        static_cast<std::uint32_t>(out.nackReason) < static_cast<std::uint32_t>(least)) {
      least = out.nackReason;
    }
  }
  return least == NackReason::kNone ? fallback : least;
}

const FibEntry* Strategy::lookupFib(const Interest& interest) const {
  return forwarder_.fib().longestPrefixMatch(interest.name());
}

RttMeasurements& Strategy::measurements() { return forwarder_.measurements(); }

bool Strategy::faceIsUp(FaceId face) const {
  const auto* f = const_cast<Forwarder&>(forwarder_).face(face);
  return f != nullptr && f->isUp();
}

namespace {

/// Next hops that are up and not the ingress face, cheapest first.
std::vector<NextHop> viableNextHops(const FibEntry* fibEntry, FaceId ingress,
                                    const Strategy& /*strategy*/,
                                    const std::function<bool(FaceId)>& isUp) {
  std::vector<NextHop> hops;
  if (fibEntry == nullptr) return hops;
  for (const auto& hop : fibEntry->nextHops()) {
    if (hop.face != ingress && isUp(hop.face)) hops.push_back(hop);
  }
  return hops;
}

}  // namespace

void BestRouteStrategy::afterReceiveInterest(const Interest& interest, Face& inFace,
                                             const std::shared_ptr<PitEntry>& entry) {
  const auto* fibEntry = lookupFib(interest);
  auto hops = viableNextHops(fibEntry, inFace.id(), *this,
                             [this](FaceId f) { return faceIsUp(f); });
  if (hops.empty()) {
    sendNackDownstream(entry, NackReason::kNoRoute);
    return;
  }
  // Prefer the cheapest upstream not already tried (no out-record yet).
  for (const auto& hop : hops) {
    if (entry->findOutRecord(hop.face) == nullptr) {
      sendInterestTo(entry, hop.face);
      return;
    }
  }
  // Retransmission: resend on the cheapest upstream.
  sendInterestTo(entry, hops.front().face);
}

void BestRouteStrategy::afterReceiveNack(const Nack& nack, Face& inFace,
                                         const std::shared_ptr<PitEntry>& entry) {
  if (auto* out = entry->findOutRecord(inFace.id())) {
    out->nacked = true;
    out->nackReason = nack.reason();
  }

  // Failover: try the cheapest upstream that has not been tried or nacked.
  const auto* fibEntry = lookupFib(entry->interest());
  auto hops = viableNextHops(fibEntry, kInvalidFaceId, *this,
                             [this](FaceId f) { return faceIsUp(f); });
  for (const auto& hop : hops) {
    const auto* out = entry->findOutRecord(hop.face);
    if (out == nullptr || !out->nacked) {
      if (out == nullptr) {
        sendInterestTo(entry, hop.face);
        return;
      }
      continue;  // already in flight on this face
    }
  }
  if (entry->allUpstreamsNacked()) {
    sendNackDownstream(entry, leastSevereNackReason(entry, nack.reason()));
  }
}

void MulticastStrategy::afterReceiveInterest(const Interest& interest, Face& inFace,
                                             const std::shared_ptr<PitEntry>& entry) {
  const auto* fibEntry = lookupFib(interest);
  auto hops = viableNextHops(fibEntry, inFace.id(), *this,
                             [this](FaceId f) { return faceIsUp(f); });
  if (hops.empty()) {
    sendNackDownstream(entry, NackReason::kNoRoute);
    return;
  }
  for (const auto& hop : hops) {
    if (entry->findOutRecord(hop.face) == nullptr) sendInterestTo(entry, hop.face);
  }
}

void LoadBalanceStrategy::afterReceiveInterest(const Interest& interest, Face& inFace,
                                               const std::shared_ptr<PitEntry>& entry) {
  const auto* fibEntry = lookupFib(interest);
  auto hops = viableNextHops(fibEntry, inFace.id(), *this,
                             [this](FaceId f) { return faceIsUp(f); });
  if (hops.empty()) {
    sendNackDownstream(entry, NackReason::kNoRoute);
    return;
  }
  if (hops.size() == 1) {
    sendInterestTo(entry, hops.front().face);
    return;
  }

  // Weight each hop by 1/SRTT; faces without samples get the average
  // measured weight so fresh clusters still attract probe traffic.
  std::vector<double> weights(hops.size(), 0.0);
  double measured_sum = 0.0;
  std::size_t measured_count = 0;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (auto srtt = measurements().srtt(hops[i].face)) {
      weights[i] = 1.0 / std::max(srtt->toSeconds(), 1e-6);
      measured_sum += weights[i];
      ++measured_count;
    }
  }
  const double fallback =
      measured_count > 0 ? measured_sum / static_cast<double>(measured_count) : 1.0;
  double total = 0.0;
  for (auto& w : weights) {
    if (w == 0.0) w = fallback;
    total += w;
  }
  double pick = rng_.uniformDouble() * total;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    pick -= weights[i];
    if (pick <= 0.0) {
      sendInterestTo(entry, hops[i].face);
      return;
    }
  }
  sendInterestTo(entry, hops.back().face);
}

void LoadBalanceStrategy::afterReceiveNack(const Nack& nack, Face& inFace,
                                           const std::shared_ptr<PitEntry>& entry) {
  if (auto* out = entry->findOutRecord(inFace.id())) {
    out->nacked = true;
    out->nackReason = nack.reason();
  }
  const auto* fibEntry = lookupFib(entry->interest());
  auto hops = viableNextHops(fibEntry, kInvalidFaceId, *this,
                             [this](FaceId f) { return faceIsUp(f); });
  for (const auto& hop : hops) {
    if (entry->findOutRecord(hop.face) == nullptr) {
      sendInterestTo(entry, hop.face);
      return;
    }
  }
  if (entry->allUpstreamsNacked()) {
    sendNackDownstream(entry, leastSevereNackReason(entry, nack.reason()));
  }
}

void AsfStrategy::afterReceiveInterest(const Interest& interest, Face& inFace,
                                       const std::shared_ptr<PitEntry>& entry) {
  const auto* fibEntry = lookupFib(interest);
  auto hops = viableNextHops(fibEntry, inFace.id(), *this,
                             [this](FaceId f) { return faceIsUp(f); });
  if (hops.empty()) {
    sendNackDownstream(entry, NackReason::kNoRoute);
    return;
  }
  ++interest_count_;

  // Pick the face with the best (lowest) SRTT; unmeasured faces rank by
  // configured cost behind any measured face.
  const NextHop* best = nullptr;
  double bestSrtt = 0.0;
  const NextHop* bestUnmeasured = nullptr;
  std::vector<const NextHop*> unmeasured;
  for (const auto& hop : hops) {
    if (auto srtt = measurements().srtt(hop.face)) {
      if (best == nullptr || srtt->toSeconds() < bestSrtt) {
        best = &hop;
        bestSrtt = srtt->toSeconds();
      }
    } else {
      unmeasured.push_back(&hop);
      if (bestUnmeasured == nullptr || hop.cost < bestUnmeasured->cost) {
        bestUnmeasured = &hop;
      }
    }
  }
  const NextHop* primary = best != nullptr ? best : bestUnmeasured;
  sendInterestTo(entry, primary->face);

  // Probing: periodically also forward to an unmeasured face (priority)
  // or a random alternative, so a recovered/faster path is rediscovered.
  if (hops.size() > 1 && probe_interval_ > 0 &&
      interest_count_ % static_cast<std::uint64_t>(probe_interval_) == 0) {
    const NextHop* probe = nullptr;
    if (!unmeasured.empty() && unmeasured.front() != primary) {
      probe = unmeasured.front();
    } else {
      const auto& candidate = hops[rng_.uniform(hops.size())];
      if (candidate.face != primary->face) probe = &candidate;
    }
    if (probe != nullptr && entry->findOutRecord(probe->face) == nullptr) {
      sendInterestTo(entry, probe->face);
    }
  }
}

void AsfStrategy::afterReceiveNack(const Nack& nack, Face& inFace,
                                   const std::shared_ptr<PitEntry>& entry) {
  if (auto* out = entry->findOutRecord(inFace.id())) {
    out->nacked = true;
    out->nackReason = nack.reason();
  }
  const auto* fibEntry = lookupFib(entry->interest());
  auto hops = viableNextHops(fibEntry, kInvalidFaceId, *this,
                             [this](FaceId f) { return faceIsUp(f); });
  for (const auto& hop : hops) {
    if (entry->findOutRecord(hop.face) == nullptr) {
      sendInterestTo(entry, hop.face);
      return;
    }
  }
  if (entry->allUpstreamsNacked()) {
    sendNackDownstream(entry, leastSevereNackReason(entry, nack.reason()));
  }
}

void RoundRobinStrategy::afterReceiveInterest(const Interest& interest, Face& inFace,
                                              const std::shared_ptr<PitEntry>& entry) {
  const auto* fibEntry = lookupFib(interest);
  auto hops = viableNextHops(fibEntry, inFace.id(), *this,
                             [this](FaceId f) { return faceIsUp(f); });
  if (hops.empty()) {
    sendNackDownstream(entry, NackReason::kNoRoute);
    return;
  }
  auto& cursor = cursor_[fibEntry->prefix()];
  sendInterestTo(entry, hops[cursor % hops.size()].face);
  ++cursor;
}

}  // namespace lidc::ndn
