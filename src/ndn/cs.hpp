// Content Store: the forwarder's in-network cache of Data packets with
// LRU eviction and freshness semantics. This is the substrate for
// LIDC's result caching (paper SVII): identical compute requests are
// satisfied from the CS without re-executing the job.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>

#include "ndn/packet.hpp"
#include "sim/time.hpp"

namespace lidc::ndn {

class ContentStore {
 public:
  explicit ContentStore(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Inserts (or refreshes) a Data packet observed at time `now`.
  void insert(const Data& data, sim::Time now);

  /// Looks up a match for the Interest. Exact-name match, or the
  /// lexicographically smallest name under the prefix when CanBePrefix.
  /// MustBeFresh requires now < arrival + freshnessPeriod.
  [[nodiscard]] std::optional<Data> find(const Interest& interest, sim::Time now);

  void erase(const Name& name);
  void clear();

  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  void setCapacity(std::size_t capacity);

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  struct Entry {
    Data data;
    sim::Time arrival;
  };
  using LruList = std::list<Name>;

  void touch(LruList::iterator it);
  void evictIfNeeded();

  [[nodiscard]] bool isFreshEnough(const Entry& entry, const Interest& interest,
                                   sim::Time now) const noexcept;

  std::size_t capacity_;
  // Ordered index enables prefix scans for CanBePrefix lookups.
  std::map<Name, std::pair<Entry, LruList::iterator>> index_;
  LruList lru_;  // front = most recently used
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace lidc::ndn
