// Content Store: the forwarder's in-network cache of Data packets with
// LRU eviction and freshness semantics. This is the substrate for
// LIDC's result caching (paper SVII): identical compute requests are
// satisfied from the CS without re-executing the job.
//
// Integrity policy (gray-failure defense): a Data packet that carries a
// signature failing verification is *poisoned* — it is rejected at
// admission and, if one ever got in (e.g. verification was toggled off),
// evicted on lookup instead of served. Unsigned Data is admitted
// unchanged: it carries no integrity information, and end hosts that
// care verify end-to-end.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>

#include "ndn/packet.hpp"
#include "sim/time.hpp"

namespace lidc::ndn {

class ContentStore {
 public:
  explicit ContentStore(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Inserts (or refreshes) a Data packet observed at time `now`.
  /// Poisoned packets (signed but failing verify()) are rejected and
  /// counted while verification is enabled.
  void insert(const Data& data, sim::Time now);

  /// Looks up a match for the Interest. Exact-name match, or the
  /// lexicographically smallest name under the prefix when CanBePrefix.
  /// MustBeFresh requires now < arrival + freshnessPeriod. Entries whose
  /// digest matches the Interest's excludeDigest hint are skipped;
  /// poisoned entries are evicted rather than served.
  [[nodiscard]] std::optional<Data> find(const Interest& interest, sim::Time now);

  void erase(const Name& name);
  void clear();

  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  void setCapacity(std::size_t capacity);

  /// Admission-time integrity checking (on by default). Benches turn it
  /// off to measure the undefended baseline.
  void setVerification(bool enabled) noexcept { verify_inserts_ = enabled; }
  [[nodiscard]] bool verificationEnabled() const noexcept { return verify_inserts_; }

  /// Chaos hook (kStaleReplay): a buggy cache that keeps serving entries
  /// past their freshness, ignoring MustBeFresh.
  void setServeStale(bool on) noexcept { serve_stale_ = on; }
  [[nodiscard]] bool servesStale() const noexcept { return serve_stale_; }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t poisonedRejects() const noexcept {
    return poisoned_rejects_;
  }
  [[nodiscard]] std::uint64_t poisonedEvictions() const noexcept {
    return poisoned_evictions_;
  }

 private:
  struct Entry {
    Data data;
    sim::Time arrival;
  };
  using LruList = std::list<Name>;

  void touch(LruList::iterator it);
  void evictIfNeeded();

  [[nodiscard]] bool isFreshEnough(const Entry& entry, const Interest& interest,
                                   sim::Time now) const noexcept;

  std::size_t capacity_;
  // Ordered index enables prefix scans for CanBePrefix lookups.
  std::map<Name, std::pair<Entry, LruList::iterator>> index_;
  LruList lru_;  // front = most recently used
  bool verify_inserts_ = true;
  bool serve_stale_ = false;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t poisoned_rejects_ = 0;
  std::uint64_t poisoned_evictions_ = 0;
};

}  // namespace lidc::ndn
