#include "ndn/name.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <ostream>

#include "common/strings.hpp"

namespace lidc::ndn {

namespace {

constexpr bool isUriUnreserved(std::uint8_t c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c == '-' || c == '.' || c == '_' || c == '~' ||
         // Kept readable in LIDC semantic names:
         c == '=' || c == '&' || c == '+' || c == ':';
}

constexpr char kHexDigits[] = "0123456789ABCDEF";

int hexValue(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::optional<Component> Component::fromEscaped(std::string_view escaped) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '%') {
      if (i + 2 >= escaped.size()) return std::nullopt;
      const int hi = hexValue(escaped[i + 1]);
      const int lo = hexValue(escaped[i + 2]);
      if (hi < 0 || lo < 0) return std::nullopt;
      bytes.push_back(static_cast<std::uint8_t>(hi * 16 + lo));
      i += 2;
    } else {
      bytes.push_back(static_cast<std::uint8_t>(escaped[i]));
    }
  }
  return Component(std::move(bytes));
}

std::string Component::toEscapedString() const {
  std::string out;
  out.reserve(value_.size());
  for (std::uint8_t byte : value_) {
    if (isUriUnreserved(byte)) {
      out.push_back(static_cast<char>(byte));
    } else {
      out.push_back('%');
      out.push_back(kHexDigits[byte >> 4]);
      out.push_back(kHexDigits[byte & 0x0F]);
    }
  }
  return out;
}

std::strong_ordering Component::compare(const Component& other) const noexcept {
  // NDN canonical order: shorter components sort first.
  if (value_.size() != other.value_.size()) {
    return value_.size() < other.value_.size() ? std::strong_ordering::less
                                               : std::strong_ordering::greater;
  }
  const int cmp = value_.empty()
                      ? 0
                      : std::memcmp(value_.data(), other.value_.data(), value_.size());
  if (cmp < 0) return std::strong_ordering::less;
  if (cmp > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

Name::Name(std::string_view uri) {
  // Accept both "/a/b" and "ndn:/a/b".
  if (strings::startsWith(uri, "ndn:")) uri.remove_prefix(4);
  for (auto segment : strings::splitSkipEmpty(uri, '/')) {
    if (auto component = Component::fromEscaped(segment)) {
      components_.push_back(std::move(*component));
    } else {
      // Malformed escape: keep the raw text so the name is still usable.
      components_.emplace_back(segment);
    }
  }
}

Name& Name::append(const Name& suffix) {
  components_.insert(components_.end(), suffix.components_.begin(),
                     suffix.components_.end());
  return *this;
}

Name& Name::appendNumber(std::uint64_t number) {
  return append(Component(std::string_view(std::to_string(number))));
}

Name Name::subName(std::size_t start, std::size_t count) const {
  if (start >= components_.size()) return {};
  const std::size_t end = count == static_cast<std::size_t>(-1)
                              ? components_.size()
                              : std::min(components_.size(), start + count);
  return Name(std::vector<Component>(components_.begin() + static_cast<long>(start),
                                     components_.begin() + static_cast<long>(end)));
}

bool Name::isPrefixOf(const Name& other) const noexcept {
  if (components_.size() > other.components_.size()) return false;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (!(components_[i] == other.components_[i])) return false;
  }
  return true;
}

std::strong_ordering Name::compare(const Name& other) const noexcept {
  const std::size_t n = std::min(components_.size(), other.components_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto cmp = components_[i].compare(other.components_[i]);
    if (cmp != std::strong_ordering::equal) return cmp;
  }
  if (components_.size() < other.components_.size()) return std::strong_ordering::less;
  if (components_.size() > other.components_.size())
    return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::string Name::toUri() const {
  if (components_.empty()) return "/";
  std::string out;
  for (const auto& component : components_) {
    out += '/';
    out += component.toEscapedString();
  }
  return out;
}

std::size_t Name::hash() const noexcept {
  // FNV-1a over (length, bytes) pairs so component boundaries matter.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  };
  for (const auto& component : components_) {
    const std::size_t len = component.size();
    mix(static_cast<std::uint8_t>(len & 0xFF));
    mix(static_cast<std::uint8_t>((len >> 8) & 0xFF));
    for (std::uint8_t byte : component.value()) mix(byte);
  }
  return static_cast<std::size_t>(h);
}

std::ostream& operator<<(std::ostream& os, const Name& name) {
  return os << name.toUri();
}

}  // namespace lidc::ndn
