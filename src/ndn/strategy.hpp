// Forwarding strategies, modeled on NFD's strategy framework: per-prefix
// pluggable modules that decide which next hop(s) receive an Interest.
// LIDC's "network as matchmaker" behaviour lives here — BestRoute picks
// the nearest/cheapest cluster, LoadBalance spreads jobs by observed RTT,
// Multicast floods to all clusters.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/rng.hpp"
#include "ndn/face.hpp"
#include "ndn/fib.hpp"
#include "ndn/packet.hpp"
#include "ndn/pit.hpp"

namespace lidc::ndn {

class Forwarder;

/// Smoothed RTT bookkeeping per upstream face, shared by strategies.
class RttMeasurements {
 public:
  /// Records one RTT sample for a face (EWMA, alpha = 1/8).
  void addSample(FaceId face, sim::Duration rtt);
  /// Smoothed RTT; nullopt when no samples yet.
  [[nodiscard]] std::optional<sim::Duration> srtt(FaceId face) const;
  void forget(FaceId face) { srtt_.erase(face); }

 private:
  std::unordered_map<FaceId, double> srtt_;  // seconds
};

class Strategy {
 public:
  explicit Strategy(Forwarder& forwarder) : forwarder_(forwarder) {}
  virtual ~Strategy() = default;
  Strategy(const Strategy&) = delete;
  Strategy& operator=(const Strategy&) = delete;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Called for each Interest that needs forwarding (CS miss, new or
  /// retransmitted PIT entry).
  virtual void afterReceiveInterest(const Interest& interest, Face& inFace,
                                    const std::shared_ptr<PitEntry>& entry) = 0;

  /// Called just before Data satisfies a PIT entry (RTT bookkeeping).
  virtual void beforeSatisfyInterest(const std::shared_ptr<PitEntry>& entry,
                                     Face& inFace, const Data& data);

  /// Called when an upstream nacks; default gives up and nacks downstream.
  virtual void afterReceiveNack(const Nack& nack, Face& inFace,
                                const std::shared_ptr<PitEntry>& entry);

  /// Called when the PIT entry expires unsatisfied.
  virtual void onInterestTimeout(const std::shared_ptr<PitEntry>& entry);

 protected:
  // Actions available to strategies (implemented via the forwarder).
  void sendInterestTo(const std::shared_ptr<PitEntry>& entry, FaceId upstream);
  void sendNackDownstream(const std::shared_ptr<PitEntry>& entry, NackReason reason);
  /// The least severe reason among the entry's nacked upstreams (NFD
  /// semantics: reason codes order by severity, so a Congestion from one
  /// path outranks a Duplicate from a looped one). `fallback` when no
  /// upstream recorded a reason.
  [[nodiscard]] static NackReason leastSevereNackReason(
      const std::shared_ptr<PitEntry>& entry, NackReason fallback);
  [[nodiscard]] const FibEntry* lookupFib(const Interest& interest) const;
  [[nodiscard]] RttMeasurements& measurements();
  [[nodiscard]] bool faceIsUp(FaceId face) const;

  Forwarder& forwarder_;
};

/// Forwards to the lowest-cost viable next hop; on Nack, falls over to the
/// next-cheapest upstream. This is NFD's best-route behaviour and the
/// mechanism behind LIDC's "nearest cluster wins" + automatic failover.
class BestRouteStrategy : public Strategy {
 public:
  using Strategy::Strategy;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "best-route";
  }
  void afterReceiveInterest(const Interest& interest, Face& inFace,
                            const std::shared_ptr<PitEntry>& entry) override;
  void afterReceiveNack(const Nack& nack, Face& inFace,
                        const std::shared_ptr<PitEntry>& entry) override;
};

/// Forwards every Interest to all next hops (except the ingress face).
class MulticastStrategy : public Strategy {
 public:
  using Strategy::Strategy;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "multicast";
  }
  void afterReceiveInterest(const Interest& interest, Face& inFace,
                            const std::shared_ptr<PitEntry>& entry) override;
};

/// Weighted-random next hop selection, weight = 1 / SRTT (unmeasured faces
/// get the median weight so new clusters receive probe traffic).
class LoadBalanceStrategy : public Strategy {
 public:
  LoadBalanceStrategy(Forwarder& forwarder, std::uint64_t seed)
      : Strategy(forwarder), rng_(seed) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "load-balance";
  }
  void afterReceiveInterest(const Interest& interest, Face& inFace,
                            const std::shared_ptr<PitEntry>& entry) override;
  void afterReceiveNack(const Nack& nack, Face& inFace,
                        const std::shared_ptr<PitEntry>& entry) override;

 private:
  Rng rng_;
};

/// ASF-flavoured adaptive forwarding (after NFD's Adaptive SRTT-based
/// Forwarding strategy): forwards on the face with the lowest smoothed
/// RTT, and every `probeInterval`-th Interest additionally probes one
/// unmeasured or alternative face so the measurements never go stale.
/// Where BestRoute trusts configured costs, ASF trusts what it observed.
class AsfStrategy : public Strategy {
 public:
  AsfStrategy(Forwarder& forwarder, std::uint64_t seed, int probeInterval = 10)
      : Strategy(forwarder), rng_(seed), probe_interval_(probeInterval) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "asf"; }
  void afterReceiveInterest(const Interest& interest, Face& inFace,
                            const std::shared_ptr<PitEntry>& entry) override;
  void afterReceiveNack(const Nack& nack, Face& inFace,
                        const std::shared_ptr<PitEntry>& entry) override;

 private:
  Rng rng_;
  int probe_interval_;
  std::uint64_t interest_count_ = 0;
};

/// Deterministic rotation over next hops; useful as a fairness baseline.
class RoundRobinStrategy : public Strategy {
 public:
  using Strategy::Strategy;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "round-robin";
  }
  void afterReceiveInterest(const Interest& interest, Face& inFace,
                            const std::shared_ptr<PitEntry>& entry) override;

 private:
  std::unordered_map<Name, std::size_t, NameHash> cursor_;
};

}  // namespace lidc::ndn
