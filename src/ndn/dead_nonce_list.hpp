// Dead Nonce List, per the NFD design: remembers (name, nonce) pairs of
// recently satisfied or expired Interests so that a looping copy that
// arrives *after* its PIT entry is gone is still detected as a duplicate
// instead of being forwarded again. A fixed-capacity FIFO ring of
// 64-bit hashes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "ndn/name.hpp"

namespace lidc::ndn {

class DeadNonceList {
 public:
  explicit DeadNonceList(std::size_t capacity = 8192) : capacity_(capacity) {}

  void add(const Name& name, std::uint32_t nonce) {
    if (capacity_ == 0) return;
    const std::uint64_t entry = hashOf(name, nonce);
    auto [it, inserted] = counts_.try_emplace(entry, 0);
    ++it->second;
    fifo_.push_back(entry);
    while (fifo_.size() > capacity_) {
      const std::uint64_t victim = fifo_.front();
      fifo_.pop_front();
      auto victimIt = counts_.find(victim);
      if (victimIt != counts_.end() && --victimIt->second == 0) {
        counts_.erase(victimIt);
      }
    }
  }

  [[nodiscard]] bool has(const Name& name, std::uint32_t nonce) const {
    return counts_.count(hashOf(name, nonce)) > 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return fifo_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  static std::uint64_t hashOf(const Name& name, std::uint32_t nonce) noexcept {
    std::uint64_t h = name.hash();
    h ^= 0x9e3779b97f4a7c15ULL + nonce + (h << 6) + (h >> 2);
    return h;
  }

  std::size_t capacity_;
  std::deque<std::uint64_t> fifo_;
  // Reference counts handle hash collisions between live FIFO slots.
  std::unordered_map<std::uint64_t, std::uint32_t> counts_;
};

}  // namespace lidc::ndn
