#include "ndn/fib.hpp"

#include <algorithm>

namespace lidc::ndn {

void FibEntry::addOrUpdateNextHop(FaceId face, std::uint64_t cost) {
  for (auto& hop : next_hops_) {
    if (hop.face == face) {
      hop.cost = cost;
      std::stable_sort(next_hops_.begin(), next_hops_.end(),
                       [](const NextHop& a, const NextHop& b) { return a.cost < b.cost; });
      return;
    }
  }
  next_hops_.push_back(NextHop{face, cost});
  std::stable_sort(next_hops_.begin(), next_hops_.end(),
                   [](const NextHop& a, const NextHop& b) { return a.cost < b.cost; });
}

void FibEntry::removeNextHop(FaceId face) {
  std::erase_if(next_hops_, [face](const NextHop& h) { return h.face == face; });
}

bool FibEntry::hasNextHop(FaceId face) const noexcept {
  return std::any_of(next_hops_.begin(), next_hops_.end(),
                     [face](const NextHop& h) { return h.face == face; });
}

FibEntry& Fib::insert(const Name& prefix, FaceId face, std::uint64_t cost) {
  auto [it, inserted] = entries_.try_emplace(prefix, FibEntry(prefix));
  it->second.addOrUpdateNextHop(face, cost);
  return it->second;
}

void Fib::removeNextHop(const Name& prefix, FaceId face) {
  auto it = entries_.find(prefix);
  if (it == entries_.end()) return;
  it->second.removeNextHop(face);
  if (it->second.empty()) entries_.erase(it);
}

void Fib::removeFaceFromAll(FaceId face) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    it->second.removeNextHop(face);
    if (it->second.empty()) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

const FibEntry* Fib::longestPrefixMatch(const Name& name) const {
  for (std::size_t len = name.size() + 1; len-- > 0;) {
    auto it = entries_.find(name.prefix(len));
    if (it != entries_.end() && !it->second.empty()) return &it->second;
  }
  return nullptr;
}

const FibEntry* Fib::findExact(const Name& prefix) const {
  auto it = entries_.find(prefix);
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace lidc::ndn
