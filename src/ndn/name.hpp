// NDN hierarchical names. A Name is an ordered list of Components
// (arbitrary byte strings); the URI form is '/'-separated with
// percent-escaping of non-URI-safe bytes, per the NDN naming conventions.
// Names are the addressing primitive of all of LIDC: computations, data,
// status checks, and service endpoints are all Names.
#pragma once

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lidc::ndn {

/// One name component: an opaque byte string.
class Component {
 public:
  Component() = default;
  explicit Component(std::vector<std::uint8_t> value) : value_(std::move(value)) {}
  /// Builds from raw text (no unescaping).
  explicit Component(std::string_view text)
      : value_(text.begin(), text.end()) {}

  /// Parses one percent-escaped URI component ("mem%3D4" -> "mem=4").
  static std::optional<Component> fromEscaped(std::string_view escaped);

  [[nodiscard]] const std::vector<std::uint8_t>& value() const noexcept { return value_; }
  [[nodiscard]] bool empty() const noexcept { return value_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return value_.size(); }

  /// Raw bytes as string (no escaping).
  [[nodiscard]] std::string toString() const {
    return {value_.begin(), value_.end()};
  }
  /// Percent-escaped URI form.
  [[nodiscard]] std::string toEscapedString() const;

  /// Canonical NDN order: shorter first, then lexicographic.
  [[nodiscard]] std::strong_ordering compare(const Component& other) const noexcept;

  friend bool operator==(const Component& a, const Component& b) noexcept {
    return a.value_ == b.value_;
  }
  friend std::strong_ordering operator<=>(const Component& a,
                                          const Component& b) noexcept {
    return a.compare(b);
  }

 private:
  std::vector<std::uint8_t> value_;
};

/// Hierarchical NDN name, e.g. /ndn/k8s/compute/mem=4&cpu=6&app=BLAST.
class Name {
 public:
  Name() = default;
  /// Parses a URI like "/ndn/k8s/data/human-ref". Empty segments collapse.
  // NOLINTNEXTLINE(google-explicit-constructor): URI literals read naturally.
  Name(std::string_view uri);
  Name(const char* uri) : Name(std::string_view(uri)) {}
  explicit Name(std::vector<Component> components)
      : components_(std::move(components)) {}

  [[nodiscard]] std::size_t size() const noexcept { return components_.size(); }
  [[nodiscard]] bool empty() const noexcept { return components_.empty(); }

  [[nodiscard]] const Component& at(std::size_t i) const { return components_.at(i); }
  [[nodiscard]] const Component& operator[](std::size_t i) const {
    return components_[i];
  }
  [[nodiscard]] auto begin() const noexcept { return components_.begin(); }
  [[nodiscard]] auto end() const noexcept { return components_.end(); }

  /// Appends one component (chainable).
  Name& append(Component component) {
    components_.push_back(std::move(component));
    return *this;
  }
  Name& append(std::string_view text) { return append(Component(text)); }
  Name& append(const char* text) { return append(std::string_view(text)); }
  /// Appends all components of another name.
  Name& append(const Name& suffix);
  /// Appends a decimal number as a text component.
  Name& appendNumber(std::uint64_t number);

  /// Sub-name [start, start+count); count npos-like means "to the end".
  [[nodiscard]] Name subName(std::size_t start,
                             std::size_t count = static_cast<std::size_t>(-1)) const;
  /// First `count` components.
  [[nodiscard]] Name prefix(std::size_t count) const { return subName(0, count); }

  /// True if this name is a prefix of (or equal to) `other`.
  [[nodiscard]] bool isPrefixOf(const Name& other) const noexcept;

  /// Canonical NDN order: shorter-prefix first, then component order.
  [[nodiscard]] std::strong_ordering compare(const Name& other) const noexcept;

  [[nodiscard]] std::string toUri() const;

  friend bool operator==(const Name& a, const Name& b) noexcept {
    return a.components_ == b.components_;
  }
  friend std::strong_ordering operator<=>(const Name& a, const Name& b) noexcept {
    return a.compare(b);
  }

  /// FNV-1a hash over the wire bytes; suitable for unordered containers.
  [[nodiscard]] std::size_t hash() const noexcept;

 private:
  std::vector<Component> components_;
};

std::ostream& operator<<(std::ostream& os, const Name& name);

struct NameHash {
  std::size_t operator()(const Name& name) const noexcept { return name.hash(); }
};

}  // namespace lidc::ndn
