// The NDN forwarding daemon (NFD) model: faces + PIT + FIB + CS + a
// strategy-choice table, wired through the standard incoming-Interest /
// incoming-Data / incoming-Nack pipelines. Each LIDC node — client hosts,
// network routers, and the cluster gateway NFD pods — runs one Forwarder.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "ndn/cs.hpp"
#include "ndn/dead_nonce_list.hpp"
#include "ndn/face.hpp"
#include "ndn/fib.hpp"
#include "ndn/packet.hpp"
#include "ndn/pit.hpp"
#include "ndn/strategy.hpp"
#include "sim/simulator.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace lidc::ndn {

/// Aggregate forwarder counters.
struct ForwarderCounters {
  std::uint64_t nInInterests = 0;
  std::uint64_t nOutInterests = 0;
  std::uint64_t nInData = 0;
  std::uint64_t nOutData = 0;
  std::uint64_t nCsHits = 0;
  std::uint64_t nCsMisses = 0;
  std::uint64_t nSatisfied = 0;
  std::uint64_t nUnsatisfied = 0;
  std::uint64_t nDuplicateNonce = 0;
  std::uint64_t nNoRoute = 0;
  std::uint64_t nUnsolicitedData = 0;
  /// Incoming Data dropped because its signature failed verification
  /// (poisoned packets never reach the CS or downstream consumers).
  std::uint64_t nIntegrityDrops = 0;
};

class Forwarder {
 public:
  Forwarder(std::string name, sim::Simulator& sim);
  ~Forwarder();
  Forwarder(const Forwarder&) = delete;
  Forwarder& operator=(const Forwarder&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

  // --- face management ---
  FaceId addFace(std::shared_ptr<Face> face);
  void removeFace(FaceId id);
  [[nodiscard]] Face* face(FaceId id) noexcept;
  [[nodiscard]] std::size_t faceCount() const noexcept { return faces_.size(); }

  // --- RIB-ish registration (paper: gateway registers /ndn/k8s/compute) ---
  void registerPrefix(const Name& prefix, FaceId face, std::uint64_t cost = 0);
  void unregisterPrefix(const Name& prefix, FaceId face);

  // --- strategy choice (per-namespace, longest-prefix match) ---
  void setStrategy(const Name& prefix, std::unique_ptr<Strategy> strategy);
  [[nodiscard]] Strategy& findStrategy(const Name& name);

  // --- tables ---
  [[nodiscard]] Pit& pit() noexcept { return pit_; }
  [[nodiscard]] Fib& fib() noexcept { return fib_; }
  [[nodiscard]] const Fib& fib() const noexcept { return fib_; }
  [[nodiscard]] ContentStore& cs() noexcept { return cs_; }
  [[nodiscard]] DeadNonceList& deadNonceList() noexcept { return dnl_; }
  [[nodiscard]] RttMeasurements& measurements() noexcept { return measurements_; }
  [[nodiscard]] const ForwarderCounters& counters() const noexcept { return counters_; }

  /// Data-plane integrity enforcement (on by default): incoming Data
  /// whose signature fails verification is dropped and counted instead
  /// of being cached or satisfying PIT entries, and the CS rejects
  /// poisoned inserts. Turning it off restores the undefended baseline
  /// (bench_gray_failures measures the difference).
  void setDataVerification(bool enabled) noexcept {
    verify_data_ = enabled;
    cs_.setVerification(enabled);
  }
  [[nodiscard]] bool dataVerificationEnabled() const noexcept {
    return verify_data_;
  }

  // --- telemetry ---
  /// Mirrors every ForwarderCounters increment into `registry` as
  /// lidc_forwarder_*{node=<name>} (live, one extra relaxed add per
  /// event), registers a collector that syncs the per-face aggregate
  /// FaceCounters plus CS/PIT gauges at snapshot time, and — when a
  /// tracer is given — records per-hop "forwarder-hop" instants for
  /// Interests carrying a TraceContext. The forwarder must outlive any
  /// snapshot of the registry.
  void attachTelemetry(telemetry::MetricsRegistry& registry,
                       telemetry::Tracer* tracer = nullptr);
  [[nodiscard]] telemetry::Tracer* tracer() noexcept {
    return telemetry_ ? telemetry_->tracer : nullptr;
  }

  /// Records forwarding failures (unsatisfied expiry, no-route nacks)
  /// into `recorder` for post-mortem alert windows. Null detaches.
  void setFlightRecorder(telemetry::FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

  /// Attaches the traffic observability plane: every "link://" face
  /// (current and future) gets a wait-free LinkFlowStats tap registered
  /// in `accountant` under its URI, and the Data pipelines attribute
  /// forwarded bytes to (group, tenant, tag) flows — CS-served bytes
  /// split from upstream-fetched ones. The accountant must outlive the
  /// forwarder's faces.
  void attachFlowAccounting(telemetry::FlowAccountant& accountant);
  [[nodiscard]] telemetry::FlowAccountant* flowAccountant() noexcept {
    return flow_;
  }

  // --- actions used by strategies ---
  void sendInterest(const std::shared_ptr<PitEntry>& entry, FaceId upstream);
  void sendNackDownstream(const std::shared_ptr<PitEntry>& entry, NackReason reason);

 private:
  // Pipelines (called via face receive handlers).
  void onIncomingInterest(Face& inFace, const Interest& interest);
  void onIncomingData(Face& inFace, const Data& data);
  void onIncomingNack(Face& inFace, const Nack& nack);
  void onInterestExpiry(std::weak_ptr<PitEntry> weakEntry);
  /// Records the entry's nonces in the Dead Nonce List before removal.
  void recordDeadNonces(const PitEntry& entry);

  void installHandlers(Face& face);
  /// Gives a link face its flow tap (no-op for app faces / no plane).
  void tapFace(Face& face);
  /// Attributes one outgoing Data's bytes on `outFace`'s link to the
  /// flow keyed by the Data name + the requesting Interest's label.
  void attributeData(Face& outFace, const Interest& interest,
                     const Data& data, bool fromCache);

  /// Live-mirror handles into an attached MetricsRegistry; null when
  /// telemetry is not attached (the common fast path).
  struct TelemetryHooks {
    telemetry::Counter* inInterests = nullptr;
    telemetry::Counter* outInterests = nullptr;
    telemetry::Counter* inData = nullptr;
    telemetry::Counter* outData = nullptr;
    telemetry::Counter* csHits = nullptr;
    telemetry::Counter* csMisses = nullptr;
    telemetry::Counter* satisfied = nullptr;
    telemetry::Counter* unsatisfied = nullptr;
    telemetry::Counter* duplicateNonce = nullptr;
    telemetry::Counter* noRoute = nullptr;
    telemetry::Counter* unsolicitedData = nullptr;
    telemetry::Counter* integrityDrops = nullptr;
    telemetry::Tracer* tracer = nullptr;
  };

  /// Records one "forwarder-hop" instant for a traced Interest.
  void hopInstant(const Interest& interest, const char* decision,
                  telemetry::SpanAttrs extra = {});

  std::string name_;
  sim::Simulator& sim_;
  FaceId next_face_id_ = 1;
  std::unordered_map<FaceId, std::shared_ptr<Face>> faces_;
  Pit pit_;
  Fib fib_;
  ContentStore cs_;
  DeadNonceList dnl_;
  RttMeasurements measurements_;
  ForwarderCounters counters_;
  bool verify_data_ = true;
  std::unique_ptr<TelemetryHooks> telemetry_;
  telemetry::FlightRecorder* recorder_ = nullptr;
  telemetry::FlowAccountant* flow_ = nullptr;
  // Strategy-choice table: ordered by name for longest-prefix resolution.
  std::map<Name, std::unique_ptr<Strategy>> strategies_;
};

}  // namespace lidc::ndn
