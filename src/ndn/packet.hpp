// NDN Interest / Data / Nack packets with real TLV wire encoding.
// LIDC compute requests are Interests whose names carry semantic job
// descriptions; results and acknowledgements travel as Data.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "ndn/name.hpp"
#include "ndn/tlv.hpp"
#include "sim/time.hpp"
#include "telemetry/flow_label.hpp"
#include "telemetry/trace_context.hpp"

namespace lidc::ndn {

/// An Interest requests the Data identified (or prefixed) by its Name.
class Interest {
 public:
  Interest() = default;
  explicit Interest(Name name) : name_(std::move(name)) {}

  [[nodiscard]] const Name& name() const noexcept { return name_; }
  void setName(Name name) {
    name_ = std::move(name);
    wire_size_cache_ = 0;
  }

  [[nodiscard]] bool canBePrefix() const noexcept { return can_be_prefix_; }
  Interest& setCanBePrefix(bool v) noexcept {
    can_be_prefix_ = v;
    wire_size_cache_ = 0;
    return *this;
  }

  [[nodiscard]] bool mustBeFresh() const noexcept { return must_be_fresh_; }
  Interest& setMustBeFresh(bool v) noexcept {
    must_be_fresh_ = v;
    wire_size_cache_ = 0;
    return *this;
  }

  [[nodiscard]] std::uint32_t nonce() const noexcept { return nonce_; }
  Interest& setNonce(std::uint32_t nonce) noexcept {
    nonce_ = nonce;
    wire_size_cache_ = 0;
    return *this;
  }

  [[nodiscard]] sim::Duration lifetime() const noexcept { return lifetime_; }
  Interest& setLifetime(sim::Duration lifetime) noexcept {
    lifetime_ = lifetime;
    wire_size_cache_ = 0;
    return *this;
  }

  [[nodiscard]] std::uint8_t hopLimit() const noexcept { return hop_limit_; }
  Interest& setHopLimit(std::uint8_t limit) noexcept {
    hop_limit_ = limit;
    wire_size_cache_ = 0;
    return *this;
  }

  /// Digest exclusion hint: a re-expressed Interest carrying the digest
  /// of a Data packet that failed verification asks content stores to
  /// skip that exact (poisoned) copy and go further upstream.
  [[nodiscard]] std::optional<std::uint64_t> excludeDigest() const noexcept {
    return exclude_digest_;
  }
  Interest& setExcludeDigest(std::uint64_t digest) noexcept {
    exclude_digest_ = digest;
    wire_size_cache_ = 0;
    return *this;
  }

  [[nodiscard]] const std::vector<std::uint8_t>& applicationParameters()
      const noexcept {
    return app_parameters_;
  }
  Interest& setApplicationParameters(std::vector<std::uint8_t> params) {
    app_parameters_ = std::move(params);
    wire_size_cache_ = 0;
    return *this;
  }
  Interest& setApplicationParameters(std::string_view text) {
    app_parameters_.assign(text.begin(), text.end());
    wire_size_cache_ = 0;
    return *this;
  }

  /// Trace context carried alongside the packet (like an NDNLPv2
  /// hop-by-hop header): not part of the name, the wire encoding, or
  /// CS/PIT matching, so tracing never perturbs forwarding behaviour.
  [[nodiscard]] telemetry::TraceContext traceContext() const noexcept {
    return trace_;
  }
  Interest& setTraceContext(telemetry::TraceContext ctx) noexcept {
    trace_ = ctx;
    return *this;
  }

  /// Flow-attribution label, carried hop-by-hop exactly like the trace
  /// context: never part of the name/wire/CS/PIT matching, so flow
  /// accounting cannot perturb forwarding or result caching.
  [[nodiscard]] const telemetry::FlowLabel& flowLabel() const noexcept {
    return flow_label_;
  }
  Interest& setFlowLabel(telemetry::FlowLabel label) {
    flow_label_ = std::move(label);
    return *this;
  }

  /// Full TLV wire encoding.
  [[nodiscard]] tlv::Buffer wireEncode() const;
  static Result<Interest> wireDecode(std::span<const std::uint8_t> wire);

  /// Size of the wire encoding in bytes (used for link transmission
  /// delay and per-link byte accounting). Encoding a packet just to
  /// count it is the single hottest forwarder cost, so the size is
  /// cached until a wire-visible setter dirties it (trace context and
  /// flow label ride outside the encoding and never invalidate).
  [[nodiscard]] std::size_t wireSize() const {
    if (wire_size_cache_ == 0) wire_size_cache_ = wireEncode().size();
    return wire_size_cache_;
  }

 private:
  Name name_;
  bool can_be_prefix_ = false;
  bool must_be_fresh_ = false;
  std::uint32_t nonce_ = 0;
  sim::Duration lifetime_ = sim::Duration::millis(4000);
  std::uint8_t hop_limit_ = 64;
  std::optional<std::uint64_t> exclude_digest_;
  std::vector<std::uint8_t> app_parameters_;
  telemetry::TraceContext trace_;
  telemetry::FlowLabel flow_label_;
  /// 0 = unknown (a TLV encoding is never empty).
  mutable std::size_t wire_size_cache_ = 0;
};

/// Content type codes (subset of the NDN spec).
enum class ContentType : std::uint32_t {
  kBlob = 0,
  kLink = 1,
  kKey = 2,
  kNack = 3,  // application-level NACK content
};

/// A Data packet carries named, signed content.
class Data {
 public:
  Data() = default;
  explicit Data(Name name) : name_(std::move(name)) {}

  [[nodiscard]] const Name& name() const noexcept { return name_; }
  void setName(Name name) {
    name_ = std::move(name);
    wire_size_cache_ = 0;
  }

  [[nodiscard]] const std::vector<std::uint8_t>& content() const noexcept {
    return content_;
  }
  Data& setContent(std::vector<std::uint8_t> content) {
    content_ = std::move(content);
    wire_size_cache_ = 0;
    return *this;
  }
  Data& setContent(std::string_view text) {
    content_.assign(text.begin(), text.end());
    wire_size_cache_ = 0;
    return *this;
  }
  [[nodiscard]] std::string contentAsString() const {
    return {content_.begin(), content_.end()};
  }

  [[nodiscard]] ContentType contentType() const noexcept { return content_type_; }
  Data& setContentType(ContentType type) noexcept {
    content_type_ = type;
    wire_size_cache_ = 0;
    return *this;
  }

  /// How long a cached copy may satisfy MustBeFresh Interests.
  [[nodiscard]] sim::Duration freshnessPeriod() const noexcept { return freshness_; }
  Data& setFreshnessPeriod(sim::Duration period) noexcept {
    freshness_ = period;
    wire_size_cache_ = 0;
    return *this;
  }

  /// Computes and attaches the (simulated DigestSha256-style) signature.
  Data& sign();
  /// True if a signature is present and matches the payload.
  [[nodiscard]] bool verify() const;
  /// True once sign() has run (or a signature arrived on the wire).
  [[nodiscard]] bool hasSignature() const noexcept { return signature_.has_value(); }
  /// Digest of the packet as it stands now — the value a matching
  /// excludeDigest hint would carry for this exact copy.
  [[nodiscard]] std::uint64_t contentDigest() const { return computeDigest(); }

  [[nodiscard]] tlv::Buffer wireEncode() const;
  static Result<Data> wireDecode(std::span<const std::uint8_t> wire);

  /// Cached like Interest::wireSize(): flow attribution and the face
  /// byte counters ask for the size of every Data crossing a link, and
  /// re-encoding a 32 KiB payload per query would dwarf the tap itself.
  [[nodiscard]] std::size_t wireSize() const {
    if (wire_size_cache_ == 0) wire_size_cache_ = wireEncode().size();
    return wire_size_cache_;
  }

 private:
  [[nodiscard]] std::uint64_t computeDigest() const;

  Name name_;
  std::vector<std::uint8_t> content_;
  ContentType content_type_ = ContentType::kBlob;
  sim::Duration freshness_ = sim::Duration::millis(0);
  std::optional<std::uint64_t> signature_;
  /// 0 = unknown (a TLV encoding is never empty).
  mutable std::size_t wire_size_cache_ = 0;
};

/// Network NACK reasons (NDNLPv2 subset).
enum class NackReason : std::uint32_t {
  kNone = 0,
  kCongestion = 50,
  kDuplicate = 100,
  /// Producer-side quota/rate rejection. Less severe than kNoRoute (the
  /// consumer can retry after backoff) but unlike kCongestion it must
  /// not trigger an immediate failover storm: the consumer's quota is
  /// exhausted everywhere, not just on this path.
  kQuotaExceeded = 140,
  kNoRoute = 150,
};

std::string_view nackReasonName(NackReason reason) noexcept;

/// A Nack rejects a specific Interest (carried alongside it).
class Nack {
 public:
  Nack() = default;
  Nack(Interest interest, NackReason reason)
      : interest_(std::move(interest)), reason_(reason) {}

  [[nodiscard]] const Interest& interest() const noexcept { return interest_; }
  [[nodiscard]] NackReason reason() const noexcept { return reason_; }

 private:
  Interest interest_;
  NackReason reason_ = NackReason::kNone;
};

}  // namespace lidc::ndn
