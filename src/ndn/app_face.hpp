// Application endpoint face, modeled on the ndn-cxx Face API: consumers
// call expressInterest() with callbacks, producers install an Interest
// handler and answer with putData(). LIDC clients, gateways, and data
// lake file servers all sit on AppFaces.
#pragma once

#include <functional>
#include <list>
#include <memory>

#include "common/rng.hpp"
#include "ndn/face.hpp"
#include "sim/simulator.hpp"

namespace lidc::ndn {

class AppFace : public Face {
 public:
  using DataCallback = std::function<void(const Interest&, const Data&)>;
  using NackCallback = std::function<void(const Interest&, const Nack&)>;
  using TimeoutCallback = std::function<void(const Interest&)>;
  using InterestHandler = std::function<void(const Interest&)>;

  AppFace(std::string uri, sim::Simulator& sim, std::uint64_t nonceSeed = 1)
      : Face(std::move(uri)), sim_(sim), nonce_rng_(nonceSeed) {}

  /// Consumer side: sends an Interest into the forwarder; exactly one of
  /// onData / onNack / onTimeout will fire.
  void expressInterest(Interest interest, DataCallback onData,
                       NackCallback onNack = nullptr,
                       TimeoutCallback onTimeout = nullptr);

  /// Producer side: receives Interests the forwarder routes to this face.
  void setInterestHandler(InterestHandler handler) {
    interest_handler_ = std::move(handler);
  }

  /// Producer side: publishes Data back into the forwarder.
  void putData(Data data);

  /// Producer side: sends a Nack for an Interest this app cannot serve.
  void putNack(const Interest& interest, NackReason reason);

  [[nodiscard]] std::size_t pendingInterestCount() const noexcept {
    return pending_.size();
  }

  // --- Face overrides: forwarder -> application delivery ---
  void sendInterest(const Interest& interest) override;
  void sendData(const Data& data) override;
  void sendNack(const Nack& nack) override;

 private:
  struct Pending {
    Interest interest;
    DataCallback onData;
    NackCallback onNack;
    TimeoutCallback onTimeout;
    sim::EventHandle timeoutEvent;
  };
  using PendingList = std::list<Pending>;

  /// Matches a Data/Nack against pending Interests; returns end() if none.
  PendingList::iterator findPendingForData(const Data& data);
  PendingList::iterator findPendingForInterest(const Name& name);

  sim::Simulator& sim_;
  Rng nonce_rng_;
  PendingList pending_;
  InterestHandler interest_handler_;
};

}  // namespace lidc::ndn
