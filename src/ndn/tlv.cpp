#include "ndn/tlv.hpp"

namespace lidc::ndn::tlv {

void Encoder::writeVarNumber(std::uint64_t value) {
  if (value < 253) {
    buffer_.push_back(static_cast<std::uint8_t>(value));
  } else if (value <= 0xFFFF) {
    buffer_.push_back(253);
    buffer_.push_back(static_cast<std::uint8_t>(value >> 8));
    buffer_.push_back(static_cast<std::uint8_t>(value));
  } else if (value <= 0xFFFFFFFF) {
    buffer_.push_back(254);
    for (int shift = 24; shift >= 0; shift -= 8) {
      buffer_.push_back(static_cast<std::uint8_t>(value >> shift));
    }
  } else {
    buffer_.push_back(255);
    for (int shift = 56; shift >= 0; shift -= 8) {
      buffer_.push_back(static_cast<std::uint8_t>(value >> shift));
    }
  }
}

void Encoder::writeBlock(std::uint32_t type, std::span<const std::uint8_t> payload) {
  writeVarNumber(type);
  writeVarNumber(payload.size());
  buffer_.insert(buffer_.end(), payload.begin(), payload.end());
}

void Encoder::writeNonNegativeInteger(std::uint32_t type, std::uint64_t value) {
  writeVarNumber(type);
  if (value <= 0xFF) {
    writeVarNumber(1);
    buffer_.push_back(static_cast<std::uint8_t>(value));
  } else if (value <= 0xFFFF) {
    writeVarNumber(2);
    buffer_.push_back(static_cast<std::uint8_t>(value >> 8));
    buffer_.push_back(static_cast<std::uint8_t>(value));
  } else if (value <= 0xFFFFFFFF) {
    writeVarNumber(4);
    for (int shift = 24; shift >= 0; shift -= 8) {
      buffer_.push_back(static_cast<std::uint8_t>(value >> shift));
    }
  } else {
    writeVarNumber(8);
    for (int shift = 56; shift >= 0; shift -= 8) {
      buffer_.push_back(static_cast<std::uint8_t>(value >> shift));
    }
  }
}

void Encoder::writeNested(std::uint32_t type, const Encoder& child) {
  writeVarNumber(type);
  writeVarNumber(child.buffer_.size());
  buffer_.insert(buffer_.end(), child.buffer_.begin(), child.buffer_.end());
}

Result<std::uint64_t> Decoder::readVarNumber() {
  if (atEnd()) return Status::InvalidArgument("TLV truncated: missing var-number");
  const std::uint8_t first = input_[offset_++];
  if (first < 253) return static_cast<std::uint64_t>(first);

  int extra = 0;
  if (first == 253) {
    extra = 2;
  } else if (first == 254) {
    extra = 4;
  } else {
    extra = 8;
  }
  if (remaining() < static_cast<std::size_t>(extra)) {
    return Status::InvalidArgument("TLV truncated: short var-number");
  }
  std::uint64_t value = 0;
  for (int i = 0; i < extra; ++i) {
    value = (value << 8) | input_[offset_++];
  }
  return value;
}

Result<Element> Decoder::readElement() {
  auto type = readVarNumber();
  if (!type) return type.status();
  auto length = readVarNumber();
  if (!length) return length.status();
  if (*length > remaining()) {
    return Status::InvalidArgument("TLV truncated: declared length exceeds input");
  }
  if (*type > 0xFFFFFFFFULL) {
    return Status::InvalidArgument("TLV type out of range");
  }
  Element element;
  element.type = static_cast<std::uint32_t>(*type);
  element.value = input_.subspan(offset_, *length);
  offset_ += *length;
  return element;
}

Result<Element> Decoder::readElement(std::uint32_t expectedType) {
  auto element = readElement();
  if (!element) return element.status();
  if (element->type != expectedType) {
    return Status::InvalidArgument("unexpected TLV type " +
                                   std::to_string(element->type) + ", wanted " +
                                   std::to_string(expectedType));
  }
  return element;
}

Result<std::uint64_t> Decoder::readNonNegativeInteger(
    std::span<const std::uint8_t> v) {
  if (v.size() != 1 && v.size() != 2 && v.size() != 4 && v.size() != 8) {
    return Status::InvalidArgument("NonNegativeInteger has invalid width");
  }
  std::uint64_t value = 0;
  for (std::uint8_t byte : v) value = (value << 8) | byte;
  return value;
}

}  // namespace lidc::ndn::tlv
