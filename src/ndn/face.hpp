// Faces are the forwarder's packet interfaces, as in NFD: a face can be
// a point-to-point link to a remote forwarder (net::LinkFace) or a local
// application endpoint (AppFace). The forwarder installs receive
// handlers; transports call the receive*() methods to inject packets.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "ndn/packet.hpp"
#include "telemetry/flow.hpp"

namespace lidc::ndn {

using FaceId = std::uint64_t;
constexpr FaceId kInvalidFaceId = 0;

/// Per-face packet counters (mirrors NFD's face counters).
struct FaceCounters {
  std::uint64_t nInInterests = 0;
  std::uint64_t nOutInterests = 0;
  std::uint64_t nInData = 0;
  std::uint64_t nOutData = 0;
  std::uint64_t nInNacks = 0;
  std::uint64_t nOutNacks = 0;
  std::uint64_t nInBytes = 0;
  std::uint64_t nOutBytes = 0;
};

class Face {
 public:
  explicit Face(std::string uri) : uri_(std::move(uri)) {}
  virtual ~Face() = default;
  Face(const Face&) = delete;
  Face& operator=(const Face&) = delete;

  [[nodiscard]] FaceId id() const noexcept { return id_; }
  void setId(FaceId id) noexcept { id_ = id; }

  [[nodiscard]] const std::string& uri() const noexcept { return uri_; }

  [[nodiscard]] bool isUp() const noexcept { return up_; }
  virtual void setUp(bool up) noexcept { up_ = up; }

  [[nodiscard]] const FaceCounters& counters() const noexcept { return counters_; }

  /// Installs a flow-accounting tap: every packet through this face
  /// (both directions) is recorded into `stats` — the wait-free hot
  /// path of the traffic observability plane. Null detaches.
  void setFlowStats(telemetry::LinkFlowStats* stats) noexcept { flow_ = stats; }
  [[nodiscard]] telemetry::LinkFlowStats* flowStats() const noexcept {
    return flow_;
  }

  // --- outgoing direction (forwarder -> transport) ---
  virtual void sendInterest(const Interest& interest) = 0;
  virtual void sendData(const Data& data) = 0;
  virtual void sendNack(const Nack& nack) = 0;

  // --- incoming direction (transport -> forwarder) ---
  /// Handlers installed by the owning Forwarder.
  std::function<void(Face&, const Interest&)> onReceiveInterest;
  std::function<void(Face&, const Data&)> onReceiveData;
  std::function<void(Face&, const Nack&)> onReceiveNack;

  /// Called by the transport when a packet arrives on this face.
  void receiveInterest(const Interest& interest) {
    if (!up_) return;
    ++counters_.nInInterests;
    counters_.nInBytes += interest.wireSize();
    if (onReceiveInterest) onReceiveInterest(*this, interest);
  }
  void receiveData(const Data& data) {
    if (!up_) return;
    ++counters_.nInData;
    counters_.nInBytes += data.wireSize();
    if (onReceiveData) onReceiveData(*this, data);
  }
  void receiveNack(const Nack& nack) {
    if (!up_) return;
    ++counters_.nInNacks;
    if (onReceiveNack) onReceiveNack(*this, nack);
  }

 protected:
  // The flow tap fires on egress only: face "link://a->b" counts what
  // a transmits toward b, so each direction of a link is accounted
  // exactly once (at its transmitter) and never double-counted fleet
  // wide. Receive-side counters stay in FaceCounters for diagnostics.
  void countOutInterest(const Interest& interest) {
    ++counters_.nOutInterests;
    const std::size_t wire = interest.wireSize();
    counters_.nOutBytes += wire;
    if (flow_) flow_->onInterest(wire);
  }
  void countOutData(const Data& data) {
    ++counters_.nOutData;
    const std::size_t wire = data.wireSize();
    counters_.nOutBytes += wire;
    if (flow_) flow_->onData(wire);
  }
  void countOutNack() {
    ++counters_.nOutNacks;
    if (flow_) flow_->onNack();
  }

 private:
  FaceId id_ = kInvalidFaceId;
  std::string uri_;
  bool up_ = true;
  FaceCounters counters_;
  telemetry::LinkFlowStats* flow_ = nullptr;
};

}  // namespace lidc::ndn
