// Forwarding Information Base: name prefixes -> next-hop faces with
// costs, resolved by longest-prefix match. Cluster gateways registering
// "/ndn/k8s/compute" into the overlay become FIB next hops here — this
// table is what makes LIDC placement location-independent.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ndn/face.hpp"
#include "ndn/name.hpp"

namespace lidc::ndn {

struct NextHop {
  FaceId face = kInvalidFaceId;
  std::uint64_t cost = 0;
};

class FibEntry {
 public:
  explicit FibEntry(Name prefix) : prefix_(std::move(prefix)) {}

  [[nodiscard]] const Name& prefix() const noexcept { return prefix_; }
  [[nodiscard]] const std::vector<NextHop>& nextHops() const noexcept {
    return next_hops_;
  }

  /// Adds or updates a next hop; keeps the list sorted by ascending cost.
  void addOrUpdateNextHop(FaceId face, std::uint64_t cost);
  void removeNextHop(FaceId face);
  [[nodiscard]] bool hasNextHop(FaceId face) const noexcept;
  [[nodiscard]] bool empty() const noexcept { return next_hops_.empty(); }

 private:
  Name prefix_;
  std::vector<NextHop> next_hops_;
};

class Fib {
 public:
  /// Inserts (or finds) the entry for an exact prefix and adds a next hop.
  FibEntry& insert(const Name& prefix, FaceId face, std::uint64_t cost);

  /// Removes one next hop; drops the entry when it becomes empty.
  void removeNextHop(const Name& prefix, FaceId face);

  /// Removes `face` from every entry (used when a face goes down).
  void removeFaceFromAll(FaceId face);

  /// Longest-prefix-match lookup. nullptr when nothing matches.
  [[nodiscard]] const FibEntry* longestPrefixMatch(const Name& name) const;

  /// Exact-prefix lookup.
  [[nodiscard]] const FibEntry* findExact(const Name& prefix) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::unordered_map<Name, FibEntry, NameHash> entries_;
};

}  // namespace lidc::ndn
