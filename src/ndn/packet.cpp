#include "ndn/packet.hpp"

#include <algorithm>

namespace lidc::ndn {

namespace {

void encodeName(tlv::Encoder& encoder, const Name& name) {
  tlv::Encoder inner;
  for (const auto& component : name) {
    inner.writeBlock(tlv::kGenericNameComponent,
                     std::span<const std::uint8_t>(component.value().data(),
                                                   component.value().size()));
  }
  encoder.writeNested(tlv::kName, inner);
}

Result<Name> decodeName(std::span<const std::uint8_t> value) {
  tlv::Decoder decoder(value);
  std::vector<Component> components;
  while (!decoder.atEnd()) {
    auto element = decoder.readElement(tlv::kGenericNameComponent);
    if (!element) return element.status();
    components.emplace_back(
        std::vector<std::uint8_t>(element->value.begin(), element->value.end()));
  }
  return Name(std::move(components));
}

}  // namespace

tlv::Buffer Interest::wireEncode() const {
  tlv::Encoder inner;
  encodeName(inner, name_);
  if (can_be_prefix_) inner.writeFlag(tlv::kCanBePrefix);
  if (must_be_fresh_) inner.writeFlag(tlv::kMustBeFresh);
  inner.writeNonNegativeInteger(tlv::kNonce, nonce_);
  inner.writeNonNegativeInteger(
      tlv::kInterestLifetime,
      static_cast<std::uint64_t>(std::max<std::int64_t>(0, lifetime_.toNanos() / 1'000'000)));
  inner.writeNonNegativeInteger(tlv::kHopLimit, hop_limit_);
  if (exclude_digest_) {
    inner.writeNonNegativeInteger(tlv::kExcludeDigest, *exclude_digest_);
  }
  if (!app_parameters_.empty()) {
    inner.writeBlock(tlv::kApplicationParameters,
                     std::span<const std::uint8_t>(app_parameters_.data(),
                                                   app_parameters_.size()));
  }
  tlv::Encoder outer;
  outer.writeNested(tlv::kInterest, inner);
  return outer.takeBuffer();
}

Result<Interest> Interest::wireDecode(std::span<const std::uint8_t> wire) {
  tlv::Decoder outer(wire);
  auto top = outer.readElement(tlv::kInterest);
  if (!top) return top.status();

  Interest interest;
  tlv::Decoder decoder(top->value);
  bool saw_name = false;
  while (!decoder.atEnd()) {
    auto element = decoder.readElement();
    if (!element) return element.status();
    switch (element->type) {
      case tlv::kName: {
        auto name = decodeName(element->value);
        if (!name) return name.status();
        interest.name_ = std::move(*name);
        saw_name = true;
        break;
      }
      case tlv::kCanBePrefix:
        interest.can_be_prefix_ = true;
        break;
      case tlv::kMustBeFresh:
        interest.must_be_fresh_ = true;
        break;
      case tlv::kNonce: {
        auto v = tlv::Decoder::readNonNegativeInteger(element->value);
        if (!v) return v.status();
        interest.nonce_ = static_cast<std::uint32_t>(*v);
        break;
      }
      case tlv::kInterestLifetime: {
        auto v = tlv::Decoder::readNonNegativeInteger(element->value);
        if (!v) return v.status();
        interest.lifetime_ = sim::Duration::millis(static_cast<std::int64_t>(*v));
        break;
      }
      case tlv::kHopLimit: {
        auto v = tlv::Decoder::readNonNegativeInteger(element->value);
        if (!v) return v.status();
        interest.hop_limit_ = static_cast<std::uint8_t>(*v);
        break;
      }
      case tlv::kApplicationParameters:
        interest.app_parameters_.assign(element->value.begin(), element->value.end());
        break;
      case tlv::kExcludeDigest: {
        auto v = tlv::Decoder::readNonNegativeInteger(element->value);
        if (!v) return v.status();
        interest.exclude_digest_ = *v;
        break;
      }
      default:
        // Unknown non-critical elements are skipped (NDN evolvability rule).
        break;
    }
  }
  if (!saw_name) return Status::InvalidArgument("Interest missing Name");
  return interest;
}

std::uint64_t Data::computeDigest() const {
  // FNV-1a over name + metainfo + content; stands in for DigestSha256.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  };
  for (const auto& component : name_) {
    for (std::uint8_t byte : component.value()) mix(byte);
    mix(0xFF);
  }
  mix(static_cast<std::uint8_t>(content_type_));
  const auto freshness = static_cast<std::uint64_t>(freshness_.toNanos());
  for (int shift = 56; shift >= 0; shift -= 8) {
    mix(static_cast<std::uint8_t>(freshness >> shift));
  }
  for (std::uint8_t byte : content_) mix(byte);
  return h;
}

Data& Data::sign() {
  signature_ = computeDigest();
  wire_size_cache_ = 0;  // the SignatureValue block changes the encoding
  return *this;
}

bool Data::verify() const { return signature_ && *signature_ == computeDigest(); }

tlv::Buffer Data::wireEncode() const {
  tlv::Encoder inner;
  encodeName(inner, name_);

  tlv::Encoder meta;
  meta.writeNonNegativeInteger(tlv::kContentType,
                               static_cast<std::uint64_t>(content_type_));
  meta.writeNonNegativeInteger(
      tlv::kFreshnessPeriod,
      static_cast<std::uint64_t>(std::max<std::int64_t>(0, freshness_.toNanos() / 1'000'000)));
  inner.writeNested(tlv::kMetaInfo, meta);

  inner.writeBlock(tlv::kContent,
                   std::span<const std::uint8_t>(content_.data(), content_.size()));

  tlv::Encoder sigInfo;
  sigInfo.writeNonNegativeInteger(tlv::kSignatureType, 0);  // DigestSha256 stand-in
  inner.writeNested(tlv::kSignatureInfo, sigInfo);
  if (signature_) {
    tlv::Encoder sigValue;
    sigValue.writeNonNegativeInteger(tlv::kSignatureValue, *signature_);
    inner.writeNested(tlv::kSignatureValue, sigValue);
  }

  tlv::Encoder outer;
  outer.writeNested(tlv::kData, inner);
  return outer.takeBuffer();
}

Result<Data> Data::wireDecode(std::span<const std::uint8_t> wire) {
  tlv::Decoder outer(wire);
  auto top = outer.readElement(tlv::kData);
  if (!top) return top.status();

  Data data;
  tlv::Decoder decoder(top->value);
  bool saw_name = false;
  while (!decoder.atEnd()) {
    auto element = decoder.readElement();
    if (!element) return element.status();
    switch (element->type) {
      case tlv::kName: {
        auto name = decodeName(element->value);
        if (!name) return name.status();
        data.name_ = std::move(*name);
        saw_name = true;
        break;
      }
      case tlv::kMetaInfo: {
        tlv::Decoder meta(element->value);
        while (!meta.atEnd()) {
          auto field = meta.readElement();
          if (!field) return field.status();
          auto v = tlv::Decoder::readNonNegativeInteger(field->value);
          if (!v) return v.status();
          if (field->type == tlv::kContentType) {
            data.content_type_ = static_cast<ContentType>(*v);
          } else if (field->type == tlv::kFreshnessPeriod) {
            data.freshness_ = sim::Duration::millis(static_cast<std::int64_t>(*v));
          }
        }
        break;
      }
      case tlv::kContent:
        data.content_.assign(element->value.begin(), element->value.end());
        break;
      case tlv::kSignatureInfo:
        break;  // only one signature type supported
      case tlv::kSignatureValue: {
        tlv::Decoder sig(element->value);
        auto field = sig.readElement(tlv::kSignatureValue);
        if (!field) return field.status();
        auto v = tlv::Decoder::readNonNegativeInteger(field->value);
        if (!v) return v.status();
        data.signature_ = *v;
        break;
      }
      default:
        break;
    }
  }
  if (!saw_name) return Status::InvalidArgument("Data missing Name");
  return data;
}

std::string_view nackReasonName(NackReason reason) noexcept {
  switch (reason) {
    case NackReason::kNone:
      return "None";
    case NackReason::kCongestion:
      return "Congestion";
    case NackReason::kDuplicate:
      return "Duplicate";
    case NackReason::kQuotaExceeded:
      return "QuotaExceeded";
    case NackReason::kNoRoute:
      return "NoRoute";
  }
  return "Unknown";
}

}  // namespace lidc::ndn
