#include "ndn/pit.hpp"

#include <algorithm>

namespace lidc::ndn {

void PitEntry::insertInRecord(FaceId face, std::uint32_t nonce, sim::Time expiry) {
  for (auto& record : in_records_) {
    if (record.face == face) {
      record.nonce = nonce;
      record.expiry = expiry;
      return;
    }
  }
  in_records_.push_back(InRecord{face, nonce, expiry});
}

void PitEntry::insertOutRecord(FaceId face, std::uint32_t nonce, sim::Time sentAt) {
  for (auto& record : out_records_) {
    if (record.face == face) {
      record.nonce = nonce;
      record.lastSent = sentAt;
      record.nacked = false;
      return;
    }
  }
  out_records_.push_back(OutRecord{face, nonce, sentAt, false});
}

OutRecord* PitEntry::findOutRecord(FaceId face) noexcept {
  for (auto& record : out_records_) {
    if (record.face == face) return &record;
  }
  return nullptr;
}

void PitEntry::deleteInRecord(FaceId face) {
  std::erase_if(in_records_, [face](const InRecord& r) { return r.face == face; });
}

bool PitEntry::isDuplicateNonce(std::uint32_t nonce, FaceId face) const noexcept {
  for (const auto& record : in_records_) {
    if (record.nonce == nonce && record.face != face) return true;
  }
  for (const auto& record : out_records_) {
    if (record.nonce == nonce && record.face != face) return true;
  }
  return false;
}

bool PitEntry::allUpstreamsNacked() const noexcept {
  if (out_records_.empty()) return false;
  return std::all_of(out_records_.begin(), out_records_.end(),
                     [](const OutRecord& r) { return r.nacked; });
}

Pit::InsertResult Pit::insert(const Interest& interest) {
  const Key key = makeKey(interest);
  auto it = entries_.find(key);
  if (it != entries_.end()) return {it->second, false};
  auto entry = std::make_shared<PitEntry>(interest);
  entries_.emplace(key, entry);
  return {entry, true};
}

std::shared_ptr<PitEntry> Pit::find(const Interest& interest) const {
  auto it = entries_.find(makeKey(interest));
  return it == entries_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<PitEntry>> Pit::findMatches(const Data& data) const {
  std::vector<std::shared_ptr<PitEntry>> matches;
  // Exact-name entries (CanBePrefix false or true), then every proper
  // prefix with CanBePrefix set. Probing prefixes keeps this O(name length)
  // rather than O(table size).
  const Name& dataName = data.name();
  for (std::size_t len = 0; len <= dataName.size(); ++len) {
    const Name probe = dataName.prefix(len);
    const bool exact = len == dataName.size();
    for (const bool mustBeFresh : {false, true}) {
      if (exact) {
        auto it = entries_.find(Key{probe, false, mustBeFresh});
        if (it != entries_.end()) matches.push_back(it->second);
      }
      auto it = entries_.find(Key{probe, true, mustBeFresh});
      if (it != entries_.end()) matches.push_back(it->second);
    }
  }
  return matches;
}

void Pit::erase(const std::shared_ptr<PitEntry>& entry) {
  if (!entry) return;
  entries_.erase(makeKey(entry->interest()));
}

}  // namespace lidc::ndn
