// Completion-time predictor (paper SVII: "leveraging machine learning
// algorithms to predict completion times"). An online learner that keeps
// per-(app, dataset) and per-app exponentially weighted runtime
// averages; cluster selection can use predictions to route jobs to the
// cluster expected to finish first.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "core/semantic_name.hpp"
#include "sim/time.hpp"

namespace lidc::core {

class CompletionTimePredictor {
 public:
  explicit CompletionTimePredictor(double alpha = 0.25) : alpha_(alpha) {}

  /// Records an observed completion time for a finished request.
  void record(const ComputeRequest& request, sim::Duration runtime);

  /// Predicts the runtime: exact (app, dataset) model first, then the
  /// per-app model; nullopt with no history at all.
  [[nodiscard]] std::optional<sim::Duration> predict(
      const ComputeRequest& request) const;

  /// Mean absolute prediction error observed so far (seconds); the
  /// "did the intelligence learn?" metric used by the benches.
  [[nodiscard]] double meanAbsoluteErrorSeconds() const noexcept {
    return samples_ == 0 ? 0.0 : error_sum_ / static_cast<double>(samples_);
  }
  [[nodiscard]] std::size_t sampleCount() const noexcept { return samples_; }

 private:
  /// Returns "app|dataset-ish" keys for the request.
  [[nodiscard]] static std::string fineKey(const ComputeRequest& request);

  double alpha_;
  std::map<std::string, double> fine_;    // (app, dataset) -> EWMA seconds
  std::map<std::string, double> coarse_;  // app -> EWMA seconds
  double error_sum_ = 0.0;
  std::size_t samples_ = 0;
};

}  // namespace lidc::core
