#include "core/job_manager.hpp"

#include <algorithm>
#include <utility>

#include "common/strings.hpp"
#include "qos/tenant.hpp"

namespace lidc::core {

std::string JobManager::namespaceFor(const ComputeRequest& request) const {
  auto it = request.params.find("tenant");
  if (it == request.params.end()) return namespace_;
  return "tenant-" + it->second;
}

bool JobManager::hasApp(const std::string& app) const {
  auto it = app_images_.find(app);
  const std::string& image = it == app_images_.end() ? app : it->second;
  return cluster_.hasApp(image);
}

Result<std::string> JobManager::submit(const ComputeRequest& request,
                                       int priorityClass) {
  auto imageIt = app_images_.find(request.app);
  const std::string image =
      imageIt == app_images_.end() ? request.app : imageIt->second;
  if (!cluster_.hasApp(image)) {
    return Status::NotFound("cluster " + cluster_.name() +
                            " does not serve application '" + request.app + "'");
  }

  if (auto it = request.params.find("tenant");
      it != request.params.end() && !qos::isValidTenantId(it->second)) {
    return Status::InvalidArgument("invalid tenant name '" + it->second +
                                   "' (lowercase alphanumerics and '-' only)");
  }
  const std::string ns = namespaceFor(request);

  const std::string jobId =
      "job-" + cluster_.name() + "-" + std::to_string(++next_job_seq_);

  k8s::JobSpec spec;
  spec.app = image;
  spec.priorityClass = priorityClass;
  spec.requests.cpu = request.cpu.millicores() > 0
                          ? request.cpu
                          : MilliCpu(kDefaultCpuMillicores);
  spec.requests.memory =
      request.memory.bytes() > 0 ? request.memory : defaultMemory();
  spec.args = request.params;
  for (std::size_t i = 0; i < request.datasets.size(); ++i) {
    spec.args["dataset" + std::to_string(i)] = request.datasets[i];
  }
  // Deterministic result location keyed by the job id.
  spec.args.try_emplace("out", "results/" + jobId);
  spec.pvcName = "datalake-pvc";
  // Users may request pod retries via the semantic name ("retries=2");
  // capped to keep a hostile request from pinning resources forever.
  spec.backoffLimit = 0;
  if (auto it = request.params.find("retries"); it != request.params.end()) {
    if (auto retries = strings::parseUint(it->second)) {
      spec.backoffLimit = static_cast<int>(std::min<std::uint64_t>(*retries, 5));
    }
  }

  auto job = cluster_.createJob(ns, jobId, std::move(spec));
  if (!job.ok()) return job.status();
  job_namespaces_[jobId] = ns;
  return jobId;
}

Result<JobStatusInfo> JobManager::status(const std::string& jobId) const {
  auto it = job_namespaces_.find(jobId);
  if (it == job_namespaces_.end()) {
    return Status::NotFound("unknown job id " + jobId);
  }
  const auto* job = std::as_const(cluster_).job(it->second, jobId);
  if (job == nullptr) return Status::NotFound("job object vanished: " + jobId);

  const auto& status = job->status();
  JobStatusInfo info;
  info.state = status.state;
  info.message = status.message;
  if (status.state == k8s::JobState::kCompleted) {
    info.resultPath = status.resultPath;
    info.outputBytes = status.outputBytes;
  }
  if (status.state == k8s::JobState::kCompleted ||
      status.state == k8s::JobState::kFailed) {
    info.runtime = status.completionTime - status.startTime;
  }
  return info;
}

}  // namespace lidc::core
