// Per-cluster circuit breaker for the LIDC control plane. Gray
// clusters — gateways that admit jobs but never run them, nodes that
// limp along at 20x latency — keep passing health probes, so the
// health-gate alone cannot steer traffic away. The breaker watches
// request *outcomes* instead: after `failureThreshold` consecutive
// failures it opens (submissions to that cluster are refused locally,
// before any Interest is sent), stays open for a seeded jittered
// window, then half-opens and admits a bounded number of probe
// requests. A probe success closes it; a probe failure re-opens it.
// All timing is simulator time and all jitter comes from a seeded
// Rng, so breaker traces are byte-identical across same-seed runs.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace lidc::core {

enum class BreakerState {
  kClosed,    // normal operation, failures counted
  kOpen,      // refusing requests until the open window elapses
  kHalfOpen,  // admitting up to halfOpenProbes trial requests
};

std::string_view breakerStateName(BreakerState state) noexcept;

struct BreakerOptions {
  /// Consecutive failures that trip the breaker open.
  std::uint32_t failureThreshold = 3;
  /// Base refusal window once open; the actual window is drawn in
  /// [openDuration, openDuration * (1 + openJitter)] from the seed so
  /// a fleet of breakers does not half-open in lockstep.
  sim::Duration openDuration = sim::Duration::seconds(10);
  double openJitter = 0.2;
  /// Trial requests admitted while half-open.
  std::uint32_t halfOpenProbes = 1;
  /// Probe successes required to close again.
  std::uint32_t successesToClose = 1;
};

class CircuitBreaker {
 public:
  using Listener = std::function<void(BreakerState)>;

  explicit CircuitBreaker(BreakerOptions options = {}, std::uint64_t seed = 99)
      : options_(options), rng_(seed) {}

  /// Current state, advancing open -> half-open lazily once the open
  /// window has elapsed (no timers: state is evaluated on use).
  [[nodiscard]] BreakerState state(sim::Time now);

  /// True if a request may be sent now. While half-open this admits at
  /// most `halfOpenProbes` in-flight probes and counts the caller as
  /// one of them, so pair every allowed request with a later
  /// recordSuccess()/recordFailure().
  [[nodiscard]] bool allowRequest(sim::Time now);

  void recordSuccess(sim::Time now);
  void recordFailure(sim::Time now);

  /// Times the breaker transitioned closed/half-open -> open.
  [[nodiscard]] std::uint64_t trips() const noexcept { return trips_; }
  /// Requests refused because the breaker was open.
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }

  /// Called on every state transition (after the state is updated).
  void setListener(Listener listener) { listener_ = std::move(listener); }

 private:
  void transition(BreakerState next, sim::Time now);
  void open(sim::Time now);

  BreakerOptions options_;
  Rng rng_;
  BreakerState state_ = BreakerState::kClosed;
  std::uint32_t consecutive_failures_ = 0;
  std::uint32_t probes_inflight_ = 0;
  std::uint32_t probe_successes_ = 0;
  sim::Time reopen_at_{};
  std::uint64_t trips_ = 0;
  std::uint64_t rejected_ = 0;
  Listener listener_;
};

}  // namespace lidc::core
