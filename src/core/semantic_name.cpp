#include "core/semantic_name.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/strings.hpp"

namespace lidc::core {

namespace {

/// Formats memory as integer GB when possible (the paper writes "mem=4").
std::string formatMemGb(ByteSize memory) {
  const double gib = memory.gib();
  if (gib == std::floor(gib)) {
    return std::to_string(static_cast<std::uint64_t>(gib));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", gib);
  return buf;
}

/// Formats cpu as integer cores when whole ("cpu=6"), else millicores.
std::string formatCpu(MilliCpu cpu) {
  if (cpu.millicores() % 1000 == 0) {
    return std::to_string(cpu.millicores() / 1000);
  }
  return std::to_string(cpu.millicores()) + "m";
}

}  // namespace

ndn::Name ComputeRequest::toName() const {
  // Assemble "key=value" pairs sorted by key for canonical ordering.
  std::vector<std::string> pairs;
  pairs.push_back("app=" + app);
  if (cpu.millicores() > 0) pairs.push_back("cpu=" + formatCpu(cpu));
  if (memory.bytes() > 0) pairs.push_back("mem=" + formatMemGb(memory));
  for (const auto& [key, value] : params) pairs.push_back(key + "=" + value);
  for (const auto& dataset : datasets) pairs.push_back("dataset=" + dataset);
  std::sort(pairs.begin(), pairs.end());

  std::string component;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (i != 0) component += '&';
    component += pairs[i];
  }

  ndn::Name name = kComputePrefix;
  name.append(component);
  if (!requestId.empty()) name.append("req=" + requestId);
  return name;
}

ndn::Name ComputeRequest::canonicalName() const {
  ComputeRequest copy = *this;
  copy.requestId.clear();
  return copy.toName();
}

Result<ComputeRequest> ComputeRequest::fromName(const ndn::Name& name) {
  if (!kComputePrefix.isPrefixOf(name) || name.size() <= kComputePrefix.size()) {
    return Status::InvalidArgument("not a compute name: " + name.toUri());
  }

  ComputeRequest request;
  // Component 0 after the prefix holds the '&'-joined job description;
  // later components may carry "req=<id>".
  for (std::size_t i = kComputePrefix.size(); i < name.size(); ++i) {
    const std::string component = name[i].toString();
    for (auto pair : strings::splitSkipEmpty(component, '&')) {
      const auto eq = pair.find('=');
      if (eq == std::string_view::npos) {
        return Status::InvalidArgument("malformed key=value pair '" +
                                       std::string(pair) + "' in " + name.toUri());
      }
      const std::string key(strings::trim(pair.substr(0, eq)));
      const std::string value(strings::trim(pair.substr(eq + 1)));
      if (key.empty() || value.empty()) {
        return Status::InvalidArgument("empty key or value in " + name.toUri());
      }
      if (key == "app") {
        request.app = value;
      } else if (key == "cpu") {
        auto cpu = MilliCpu::parse(value);
        if (!cpu) return Status::InvalidArgument("bad cpu value '" + value + "'");
        request.cpu = *cpu;
      } else if (key == "mem") {
        // Bare numbers mean GB, per the paper's "mem=4".
        auto mem = strings::parseDouble(value);
        if (mem) {
          request.memory = ByteSize(
              static_cast<std::uint64_t>(*mem * (1ULL << 30)));
        } else if (auto parsed = ByteSize::parse(value)) {
          request.memory = *parsed;
        } else {
          return Status::InvalidArgument("bad mem value '" + value + "'");
        }
      } else if (key == "dataset") {
        request.datasets.push_back(value);
      } else if (key == "req") {
        request.requestId = value;
      } else {
        request.params[key] = value;
      }
    }
  }

  if (request.app.empty()) {
    return Status::InvalidArgument("compute name missing app= : " + name.toUri());
  }
  return request;
}

ndn::Name makeSubmitName(const std::string& tenant, const ComputeRequest& request) {
  // The tenant travels as a dedicated component; drop any redundant
  // tenant param so the job description stays canonical.
  ComputeRequest copy = request;
  copy.params.erase("tenant");
  const ndn::Name compute = copy.toName();
  ndn::Name name = kSubmitPrefix;
  name.append(tenant);
  for (std::size_t i = kComputePrefix.size(); i < compute.size(); ++i) {
    name.append(compute[i]);
  }
  return name;
}

Result<std::pair<std::string, ComputeRequest>> parseSubmitName(
    const ndn::Name& name) {
  if (!kSubmitPrefix.isPrefixOf(name) ||
      name.size() < kSubmitPrefix.size() + 2) {
    return Status::InvalidArgument("not a submit name: " + name.toUri());
  }
  const std::string tenant = name[kSubmitPrefix.size()].toString();
  if (tenant.empty()) {
    return Status::InvalidArgument("empty tenant component: " + name.toUri());
  }
  ndn::Name compute = kComputePrefix;
  for (std::size_t i = kSubmitPrefix.size() + 1; i < name.size(); ++i) {
    compute.append(name[i]);
  }
  auto request = ComputeRequest::fromName(compute);
  if (!request) return request.status();
  request->params["tenant"] = tenant;
  return std::make_pair(tenant, *std::move(request));
}

ndn::Name makeStatusName(const std::string& cluster, const std::string& jobId) {
  ndn::Name name = kStatusPrefix;
  name.append(cluster);
  name.append(jobId);
  return name;
}

Result<std::pair<std::string, std::string>> parseStatusName(const ndn::Name& name) {
  if (!kStatusPrefix.isPrefixOf(name) ||
      name.size() < kStatusPrefix.size() + 2) {
    return Status::InvalidArgument("not a status name: " + name.toUri());
  }
  return std::make_pair(name[kStatusPrefix.size()].toString(),
                        name[kStatusPrefix.size() + 1].toString());
}

ndn::Name makeDataName(const std::string& path) {
  ndn::Name name = kDataPrefix;
  for (auto part : strings::splitSkipEmpty(path, '/')) name.append(part);
  return name;
}

}  // namespace lidc::core
