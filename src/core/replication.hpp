// Data replication across cluster lakes — now a thin compatibility
// wrapper over the replica plane's TransferScheduler (src/replica/).
// The paper's workflows "retrieve raw datasets from a data lake and
// publish intermediate datasets back to the lake" [9][13]; when a new
// cluster joins the overlay it has an empty lake. DataReplicator keeps
// its original one-shot API (replicate / replicateAll, first-error
// batch reporting) while the scheduler underneath supplies the
// priority queue, dedupe/join, bounded concurrency, and capacity-aware
// puts that the replica plane's repair and pre-staging loops also use.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/compute_cluster.hpp"
#include "datalake/retriever.hpp"
#include "replica/scheduler.hpp"
#include "telemetry/metrics.hpp"

namespace lidc::core {

class DataReplicator {
 public:
  /// Attaches to the destination cluster's forwarder; fetches travel
  /// through the overlay like any client retrieval.
  explicit DataReplicator(ComputeCluster& destination,
                          datalake::RetrieveOptions options = {});

  using DoneCallback = std::function<void(Status)>;

  /// Replicates one object into the destination lake. No-op success if
  /// the destination already holds it.
  void replicate(const ndn::Name& objectName, DoneCallback done);

  /// Replicates a batch; the callback fires once with the first error
  /// or OK after all complete.
  void replicateAll(const std::vector<ndn::Name>& objects, DoneCallback done);

  [[nodiscard]] std::uint64_t objectsReplicated() const noexcept {
    return replicated_;
  }
  [[nodiscard]] std::uint64_t bytesReplicated() const noexcept { return bytes_; }

  /// The underlying staging queue, for callers graduating to the full
  /// replica plane (priorities, tags, cancellation, event trace).
  [[nodiscard]] replica::TransferScheduler& scheduler() noexcept {
    return *scheduler_;
  }

  /// Mirrors the legacy counters into `registry` at snapshot time as
  /// lidc_replicator_objects_total / lidc_replicator_bytes_total,
  /// labeled by destination cluster. The accessors above stay the
  /// source of truth; the registry series are a synced view.
  void attachTelemetry(telemetry::MetricsRegistry& registry);

 private:
  ComputeCluster& destination_;
  std::unique_ptr<replica::TransferScheduler> scheduler_;
  std::uint64_t replicated_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace lidc::core
