// Result cache (paper SVII future work, implemented here): maps the
// canonical compute-request name to the completed job's result location
// so identical requests from any client are answered without
// re-executing the computation. LRU with TTL.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "ndn/name.hpp"
#include "sim/time.hpp"

namespace lidc::core {

struct CachedResult {
  std::string jobId;
  std::string resultPath;  // data-lake name of the output object
  std::uint64_t outputBytes = 0;
  sim::Time storedAt;
};

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity = 256,
                       sim::Duration ttl = sim::Duration::hours(24))
      : capacity_(capacity), ttl_(ttl) {}

  void put(const ndn::Name& canonicalName, CachedResult result);

  /// Fresh entry for the canonical name, or nullopt.
  [[nodiscard]] std::optional<CachedResult> get(const ndn::Name& canonicalName,
                                                sim::Time now);

  void clear();
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  void evictIfNeeded();

  std::size_t capacity_;
  sim::Duration ttl_;
  std::list<ndn::Name> lru_;  // front = most recent
  std::unordered_map<ndn::Name, std::pair<CachedResult, std::list<ndn::Name>::iterator>,
                     ndn::NameHash>
      entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace lidc::core
