// LidcClient: the user-side application (the paper's "sample client
// application", SIV-A). Expresses semantically named compute Interests,
// polls /ndn/k8s/status, and retrieves results from the data lake —
// without ever naming a cluster.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "core/semantic_name.hpp"
#include "datalake/retriever.hpp"
#include "k8s/job.hpp"
#include "ndn/app_face.hpp"
#include "ndn/forwarder.hpp"

namespace lidc::core {

/// Outcome of a compute submission.
struct SubmitResult {
  std::string jobId;
  std::string cluster;       // which cluster took the job (informational)
  std::string statusName;    // poll here
  bool cached = false;       // answered from a result cache
  bool deduplicated = false; // joined an in-flight identical job
  std::string resultPath;    // set when cached
  std::uint64_t outputBytes = 0;
  sim::Duration placementLatency;  // Interest out -> ack back
};

/// One status poll answer.
struct JobStatusSnapshot {
  k8s::JobState state = k8s::JobState::kPending;
  std::string cluster;
  std::string resultPath;
  std::uint64_t outputBytes = 0;
  sim::Duration runtime;
  std::string error;
};

/// A cluster's advertised capabilities (/ndn/k8s/info/<cluster>).
struct ClusterInfo {
  std::string cluster;
  MilliCpu freeCpu;
  ByteSize freeMemory;
  MilliCpu totalCpu;
  ByteSize totalMemory;
  std::size_t runningJobs = 0;
  std::size_t nodes = 0;
  std::vector<std::string> apps;
};

/// Terminal outcome of runToCompletion().
struct JobOutcome {
  SubmitResult submit;
  JobStatusSnapshot finalStatus;
  sim::Duration totalLatency;  // submit -> terminal status observed
};

struct ClientOptions {
  /// Attach a unique request id to every submission, bypassing result
  /// caches (false = canonical names; identical requests may be served
  /// from caches, the paper's SVII behaviour).
  bool bypassCache = true;
  sim::Duration interestLifetime = sim::Duration::seconds(10);
  sim::Duration statusPollInterval = sim::Duration::seconds(2);
  int maxSubmitRetries = 2;  // on timeout
  /// waitForCompletion() tolerates this many *consecutive* failed polls
  /// (lossy networks) before giving up.
  int maxStatusPollFailures = 5;
};

class LidcClient {
 public:
  LidcClient(ndn::Forwarder& forwarder, std::string name, ClientOptions options = {},
             std::uint64_t seed = 1234);

  using SubmitCallback = std::function<void(Result<SubmitResult>)>;
  using StatusCallback = std::function<void(Result<JobStatusSnapshot>)>;
  using OutcomeCallback = std::function<void(Result<JobOutcome>)>;
  using FetchCallback = datalake::Retriever::CompletionCallback;

  /// Sends the compute Interest; the callback fires with the gateway ack
  /// (job id / cached result) or an error.
  void submit(ComputeRequest request, SubmitCallback done);

  /// One status poll by status name ("/ndn/k8s/status/<cluster>/<job>").
  void queryStatus(const ndn::Name& statusName, StatusCallback done);

  /// Polls until the job reaches Completed or Failed.
  void waitForCompletion(const ndn::Name& statusName, StatusCallback done);

  /// Full workflow: submit -> poll -> final status (Fig. 5's timeline).
  void runToCompletion(ComputeRequest request, OutcomeCallback done);

  /// Retrieves a named object from the data lake.
  void fetchData(const ndn::Name& objectName, FetchCallback done);

  /// Queries a cluster's advertised capabilities (paper SVII: "once the
  /// network knows cluster capabilities, it can select the best cluster").
  using InfoCallback = std::function<void(Result<ClusterInfo>)>;
  void queryClusterInfo(const std::string& cluster, InfoCallback done);

  /// Publishes a dataset into the nearest lake that accepts publishes
  /// (paper: workflows "publish intermediate datasets back to the
  /// lake"). `path` is '/'-separated under /ndn/k8s/data. The callback
  /// receives the stored content name.
  using PublishCallback = std::function<void(Result<ndn::Name>)>;
  void publishData(const std::string& path, std::vector<std::uint8_t> bytes,
                   PublishCallback done);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t submitsSent() const noexcept { return submits_; }

 private:
  void submitAttempt(std::shared_ptr<ComputeRequest> request, int attempt,
                     sim::Time startedAt, SubmitCallback done);
  void pollLoop(const ndn::Name& statusName, int consecutiveFailures,
                StatusCallback done);

  ndn::Forwarder& forwarder_;
  std::string name_;
  ClientOptions options_;
  Rng rng_;
  std::shared_ptr<ndn::AppFace> face_;
  std::unique_ptr<datalake::Retriever> retriever_;
  std::uint64_t submits_ = 0;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace lidc::core
