// LidcClient: the user-side application (the paper's "sample client
// application", SIV-A). Expresses semantically named compute Interests,
// polls /ndn/k8s/status, and retrieves results from the data lake —
// without ever naming a cluster.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "core/circuit_breaker.hpp"
#include "core/semantic_name.hpp"
#include "datalake/retriever.hpp"
#include "k8s/job.hpp"
#include "ndn/app_face.hpp"
#include "ndn/forwarder.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace lidc::core {

/// Outcome of a compute submission.
struct SubmitResult {
  std::string jobId;
  std::string cluster;       // which cluster took the job (informational)
  std::string statusName;    // poll here
  bool cached = false;       // answered from a result cache
  bool deduplicated = false; // joined an in-flight identical job
  std::string resultPath;    // set when cached
  std::uint64_t outputBytes = 0;
  sim::Duration placementLatency;  // Interest out -> ack back
};

/// One status poll answer.
struct JobStatusSnapshot {
  k8s::JobState state = k8s::JobState::kPending;
  std::string cluster;
  std::string resultPath;
  std::uint64_t outputBytes = 0;
  sim::Duration runtime;
  std::string error;
};

/// A cluster's advertised capabilities (/ndn/k8s/info/<cluster>).
struct ClusterInfo {
  std::string cluster;
  MilliCpu freeCpu;
  ByteSize freeMemory;
  MilliCpu totalCpu;
  ByteSize totalMemory;
  std::size_t runningJobs = 0;
  std::size_t nodes = 0;
  std::vector<std::string> apps;
};

/// Terminal outcome of runToCompletion().
struct JobOutcome {
  SubmitResult submit;         // the ack of the attempt that finished
  JobStatusSnapshot finalStatus;
  sim::Duration totalLatency;  // first submit -> terminal status observed
  int failovers = 0;           // resubmissions after Failed / dark status
  /// Root of the job's span tree when tracing was attached (trace id +
  /// root span id); invalid otherwise.
  telemetry::TraceContext trace;
};

struct ClientOptions {
  /// Attach a unique request id to every submission, bypassing result
  /// caches (false = canonical names; identical requests may be served
  /// from caches, the paper's SVII behaviour).
  bool bypassCache = true;
  sim::Duration interestLifetime = sim::Duration::seconds(10);
  sim::Duration statusPollInterval = sim::Duration::seconds(2);
  /// Extra submit attempts on timeout or a retryable Nack (kCongestion /
  /// kNoRoute), paced by exponential backoff below.
  int maxSubmitRetries = 2;
  /// waitForCompletion() tolerates this many *consecutive* failed polls
  /// (lossy networks, route flaps) before giving up.
  int maxStatusPollFailures = 5;
  /// Exponential backoff between submit attempts: attempt n waits
  /// backoffInitial * backoffMultiplier^n (capped at backoffMax), scaled
  /// by a seeded jitter factor in [1-backoffJitter, 1+backoffJitter].
  sim::Duration backoffInitial = sim::Duration::millis(200);
  double backoffMultiplier = 2.0;
  sim::Duration backoffMax = sim::Duration::seconds(5);
  double backoffJitter = 0.2;
  /// Wall-clock budget for one runToCompletion() request, covering every
  /// retry, poll, and failover. Zero = unbounded.
  sim::Duration deadline{};
  /// runToCompletion() resubmits (with a fresh request id, so the
  /// forwarding strategy can fail over to a healthy cluster) when a job
  /// lands Failed or its status endpoint goes dark past the poll budget.
  int maxFailovers = 2;
  /// Telemetry-steered proactive failover: when set and a submit ack
  /// names a cluster whose health (as reported by this provider, e.g.
  /// TelemetryCollector::healthScore) is below minClusterHealth, the
  /// client fails over with a fresh request id instead of parking the
  /// job on a degraded cluster. Zero threshold = disabled.
  std::function<double(const std::string& cluster)> healthProvider;
  double minClusterHealth = 0.0;
  /// Per-cluster circuit breakers: runToCompletion() records every job
  /// outcome against the cluster that took it; after `breaker.
  /// failureThreshold` consecutive failures the breaker opens and acks
  /// naming that cluster are refused locally (the attempt fails over
  /// with a fresh request id instead of parking on a gray cluster).
  bool enableCircuitBreaker = false;
  BreakerOptions breaker;
  /// Observes every breaker transition (wire to placement steering,
  /// e.g. AdaptivePlacement::observeBreaker).
  std::function<void(const std::string& cluster, BreakerState state)>
      breakerListener;
  /// Hedged submits: when a submit ack has not arrived after a
  /// p`hedgeQuantile` delay (derived from this client's observed ack
  /// latencies, floored at hedgeDelayFloor), a backup Interest with a
  /// fresh request id races the primary; the first answer wins and the
  /// loser is abandoned (and counted).
  bool enableHedging = false;
  sim::Duration hedgeDelayFloor = sim::Duration::millis(500);
  double hedgeQuantile = 0.99;
  /// Progress watchdog: a job still Pending this long after polling
  /// began is treated as dark (gray gateways admit jobs that never
  /// run), so runToCompletion() records a breaker failure and fails
  /// over. Zero disables the watchdog.
  sim::Duration pendingProgressTtl{};
  /// Tenant context: when set, submits go out under the tenant-scoped
  /// /ndn/k8s/submit/<tenant>/... namespace (QoS gateways apply quotas
  /// and fair-share queueing) and publishes carry a tenant component
  /// charged against the tenant's byte quota. A kQuotaExceeded nack maps
  /// to RESOURCE_EXHAUSTED and backs off quotaBackoffScale times slower
  /// than ordinary retries — quota pressure is global, so hammering the
  /// overlay cannot help.
  std::string tenant;
  double quotaBackoffScale = 4.0;
};

class LidcClient {
 public:
  LidcClient(ndn::Forwarder& forwarder, std::string name, ClientOptions options = {},
             std::uint64_t seed = 1234);

  using SubmitCallback = std::function<void(Result<SubmitResult>)>;
  using StatusCallback = std::function<void(Result<JobStatusSnapshot>)>;
  using OutcomeCallback = std::function<void(Result<JobOutcome>)>;
  using FetchCallback = datalake::Retriever::CompletionCallback;

  /// Sends the compute Interest; the callback fires with the gateway ack
  /// (job id / cached result) or an error. `parent` (optional) attaches
  /// the submit-attempt spans to an existing trace.
  void submit(ComputeRequest request, SubmitCallback done,
              telemetry::TraceContext parent = {});

  /// One status poll by status name ("/ndn/k8s/status/<cluster>/<job>").
  void queryStatus(const ndn::Name& statusName, StatusCallback done,
                   telemetry::TraceContext parent = {});

  /// Polls until the job reaches Completed or Failed.
  void waitForCompletion(const ndn::Name& statusName, StatusCallback done,
                         telemetry::TraceContext parent = {});

  /// Full workflow: submit -> poll -> final status (Fig. 5's timeline).
  /// With a tracer attached, opens a root "job" span (or a child of
  /// `parent`) covering every retry, poll, and failover; the outcome
  /// carries its TraceContext.
  void runToCompletion(ComputeRequest request, OutcomeCallback done,
                       telemetry::TraceContext parent = {});

  /// Retrieves a named object from the data lake. `flowTag` (e.g.
  /// "wf/<id>") rides the segment Interests as a FlowLabel alongside
  /// the client's tenant, so link flow accounting can attribute the
  /// transferred bytes; empty means untagged.
  void fetchData(const ndn::Name& objectName, FetchCallback done,
                 telemetry::TraceContext parent = {},
                 std::string flowTag = {});

  /// Queries a cluster's advertised capabilities (paper SVII: "once the
  /// network knows cluster capabilities, it can select the best cluster").
  using InfoCallback = std::function<void(Result<ClusterInfo>)>;
  void queryClusterInfo(const std::string& cluster, InfoCallback done);

  /// Publishes a dataset into the nearest lake that accepts publishes
  /// (paper: workflows "publish intermediate datasets back to the
  /// lake"). `path` is '/'-separated under /ndn/k8s/data. The callback
  /// receives the stored content name.
  using PublishCallback = std::function<void(Result<ndn::Name>)>;
  void publishData(const std::string& path, std::vector<std::uint8_t> bytes,
                   PublishCallback done, telemetry::TraceContext parent = {},
                   std::string flowTag = {});

  /// Mirrors client activity into `registry` (submits, retries,
  /// failovers, end-to-end latency histogram) and — with a tracer —
  /// records the client-side span tree for every runToCompletion().
  void attachTelemetry(telemetry::MetricsRegistry& registry,
                       telemetry::Tracer* tracer = nullptr);
  [[nodiscard]] telemetry::Tracer* tracer() noexcept {
    return telemetry_ ? telemetry_->tracer : nullptr;
  }

  /// Records retry/backoff and failover steps into `recorder` for
  /// alert post-mortem windows.
  void setFlightRecorder(telemetry::FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t submitsSent() const noexcept { return submits_; }

  // --- gray-failure defense counters ------------------------------------
  [[nodiscard]] std::uint64_t hedgesIssued() const noexcept { return hedges_issued_; }
  [[nodiscard]] std::uint64_t hedgesWon() const noexcept { return hedges_won_; }
  [[nodiscard]] std::uint64_t hedgesCancelled() const noexcept {
    return hedges_cancelled_;
  }
  [[nodiscard]] std::uint64_t breakerTrips() const noexcept { return breaker_trips_; }
  [[nodiscard]] std::uint64_t breakerSteered() const noexcept {
    return breaker_steered_;
  }
  [[nodiscard]] std::uint64_t watchdogTimeouts() const noexcept {
    return watchdog_timeouts_;
  }
  /// The breaker guarding `cluster`, or nullptr when none exists yet
  /// (no job outcome has been recorded against it, or breakers are
  /// disabled).
  [[nodiscard]] CircuitBreaker* clusterBreaker(const std::string& cluster) noexcept {
    auto it = breakers_.find(cluster);
    return it == breakers_.end() ? nullptr : it->second.get();
  }

  /// The simulator this client's forwarder runs on; layered components
  /// (e.g. the workflow engine) need it for timestamps and scheduling.
  [[nodiscard]] sim::Simulator& simulator() noexcept {
    return forwarder_.simulator();
  }

  /// Times at which submit Interests actually left this client (one
  /// entry per attempt, across all submissions). Exposed so tests can
  /// assert that backoff schedules are deterministic per seed.
  [[nodiscard]] const std::vector<sim::Time>& submitAttemptLog() const noexcept {
    return submit_attempt_log_;
  }

 private:
  struct HedgeRace;

  void submitAttempt(std::shared_ptr<ComputeRequest> request, int attempt,
                     sim::Time startedAt, sim::Time deadlineAt,
                     SubmitCallback done, telemetry::TraceContext parent);
  /// Hedged variant: a primary leg plus (after the hedge delay) a
  /// backup leg with a fresh request id; first ack settles the race.
  void submitAttemptHedged(std::shared_ptr<ComputeRequest> request, int attempt,
                           sim::Time startedAt, sim::Time deadlineAt,
                           SubmitCallback done, telemetry::TraceContext parent);
  /// Sends one leg of a hedge race.
  void sendSubmitLeg(std::shared_ptr<HedgeRace> race, bool isHedge,
                     std::shared_ptr<ComputeRequest> legRequest,
                     std::shared_ptr<ComputeRequest> request, int attempt,
                     sim::Time startedAt, sim::Time deadlineAt,
                     SubmitCallback done, telemetry::TraceContext parent);
  /// p`hedgeQuantile` of observed ack latencies, floored at
  /// hedgeDelayFloor (used until enough samples accumulate).
  [[nodiscard]] sim::Duration hedgeDelay() const;
  void recordAckLatency(sim::Duration latency);
  /// The breaker guarding `cluster`, created (seeded from the client
  /// seed and the cluster name) on first use; nullptr when breakers are
  /// disabled or the cluster is unknown.
  CircuitBreaker* breakerFor(const std::string& cluster);
  /// Retries after a jittered backoff delay, or fails with `why` when
  /// the attempt budget or the deadline is exhausted.
  void retryOrGiveUp(std::shared_ptr<ComputeRequest> request, int attempt,
                     sim::Time startedAt, sim::Time deadlineAt,
                     SubmitCallback done, Status why,
                     telemetry::TraceContext parent);
  [[nodiscard]] sim::Duration backoffDelay(int attempt);
  /// `progressSince` anchors the Pending watchdog: it is the last time
  /// the job was observed making progress (poll start, or any
  /// non-Pending state).
  void pollLoop(const ndn::Name& statusName, int consecutiveFailures,
                sim::Time deadlineAt, sim::Time progressSince,
                StatusCallback done, telemetry::TraceContext parent);
  /// One submit+poll attempt of the runToCompletion() failover loop.
  void runAttempt(std::shared_ptr<ComputeRequest> request, int failover,
                  sim::Time startedAt, sim::Time deadlineAt,
                  OutcomeCallback done, telemetry::TraceContext root);
  /// Resubmits with a fresh request id within the failover/deadline
  /// budget; otherwise reports `why` (or `failedOutcome` when the job
  /// terminated Failed and no budget remains).
  void failoverOrGiveUp(std::shared_ptr<ComputeRequest> request, int failover,
                        sim::Time startedAt, sim::Time deadlineAt,
                        OutcomeCallback done, Status why,
                        std::optional<JobOutcome> failedOutcome,
                        telemetry::TraceContext root);
  [[nodiscard]] sim::Time deadlineFor(sim::Time startedAt) const;
  /// The Interest name a request goes out under: the tenant-scoped
  /// submit name when a tenant context is set, else the compute name.
  [[nodiscard]] ndn::Name requestName(const ComputeRequest& request) const;

  /// Registry handles + tracer; null until attachTelemetry().
  struct Telemetry {
    telemetry::Counter* submits = nullptr;
    telemetry::Counter* retries = nullptr;
    telemetry::Counter* failovers = nullptr;
    telemetry::Counter* polls = nullptr;
    telemetry::Counter* hedgesIssued = nullptr;
    telemetry::Counter* hedgesWon = nullptr;
    telemetry::Counter* hedgesCancelled = nullptr;
    telemetry::Counter* breakerTrips = nullptr;
    telemetry::Counter* breakerSteered = nullptr;
    telemetry::Counter* watchdogTimeouts = nullptr;
    telemetry::Histogram* jobLatencyUs = nullptr;
    telemetry::Tracer* tracer = nullptr;
    /// Kept for the lazily created per-cluster lidc_breaker_state gauge.
    telemetry::MetricsRegistry* registry = nullptr;
  };

  ndn::Forwarder& forwarder_;
  std::string name_;
  ClientOptions options_;
  telemetry::FlightRecorder* recorder_ = nullptr;
  Rng rng_;
  std::uint64_t seed_;
  std::shared_ptr<ndn::AppFace> face_;
  std::unique_ptr<datalake::Retriever> retriever_;
  std::uint64_t submits_ = 0;
  std::uint64_t next_request_id_ = 1;
  std::vector<sim::Time> submit_attempt_log_;
  std::unique_ptr<Telemetry> telemetry_;
  /// cluster name -> its circuit breaker (created on first outcome).
  std::unordered_map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
  /// Ring buffer of submit-ack latencies in seconds (hedge-delay input).
  std::vector<double> ack_latencies_;
  std::size_t ack_latency_next_ = 0;
  std::uint64_t hedges_issued_ = 0;
  std::uint64_t hedges_won_ = 0;
  std::uint64_t hedges_cancelled_ = 0;
  std::uint64_t breaker_trips_ = 0;
  std::uint64_t breaker_steered_ = 0;
  std::uint64_t watchdog_timeouts_ = 0;
};

}  // namespace lidc::core
