// Checkpoint naming & manifest format (migration plane, DESIGN.md §14).
// Checkpoints are ordinary named data-lake objects, so "resume anywhere"
// falls out of the same machinery as "fetch anywhere":
//
//   /ndn/k8s/ckpt/<job_id>/<epoch>      -> opaque checkpoint payload
//   /ndn/k8s/ckpt/<job_id>/_manifest    -> "app=...;bytes=...;digest=...;
//                                          epoch=...;job=...;progress_pm=..."
//
// The per-epoch object is immutable (CS-cacheable, replicable by the
// repair loop); the `_manifest` is overwritten on every write and served
// with short freshness, mirroring the ReplicaCatalog `_map` /
// TelemetryPublisher revision-gated pattern. This module lives in core
// (below the migrate plane) so the gateway can parse and validate resume
// points without depending on lidc_migrate.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "ndn/name.hpp"

namespace lidc::core {

/// Root of the checkpoint namespace. Location-independent like
/// /ndn/k8s/data: announced anycast by every checkpoint-serving cluster,
/// so a restore fetches the epoch from whichever lake still holds it.
inline const ndn::Name kCkptPrefix{"/ndn/k8s/ckpt"};

/// A parsed "<job_id>/<epoch>" resume reference (the ckpt= param value).
struct CkptRef {
  std::string jobId;
  std::uint64_t epoch = 0;
};

/// /ndn/k8s/ckpt/<job_id>/<epoch>
ndn::Name makeCkptName(const std::string& jobId, std::uint64_t epoch);
/// /ndn/k8s/ckpt/<job_id>/_manifest
ndn::Name makeCkptManifestName(const std::string& jobId);

/// Parses the "<job_id>/<epoch>" form carried in ckpt= params. Job ids
/// are validated against the gateway's own grammar (printable, no '/',
/// bounded length) so hostile names fail cleanly.
Result<CkptRef> parseCkptRef(std::string_view text);

/// Parses a full /ndn/k8s/ckpt/<job_id>/<epoch> name.
Result<CkptRef> parseCkptName(const ndn::Name& name);

/// FNV-1a content digest — the same integrity primitive the publish
/// pipeline uses, so corrupt or stale epochs are rejected identically.
std::uint64_t ckptDigest(const std::vector<std::uint8_t>& payload);

/// Manifest fields for the latest checkpoint epoch of one job.
struct CkptManifest {
  std::string jobId;
  std::string app;                 // producing application image
  std::uint64_t epoch = 0;         // latest epoch written
  std::uint64_t bytes = 0;         // payload size of that epoch
  std::uint64_t digest = 0;        // FNV-1a of the payload
  std::uint32_t progressPermille = 0;  // job progress at the write, 0..1000
};

/// Deterministic "k=v;k=v" encoding (sorted keys via KvMap).
std::string encodeCkptManifest(const CkptManifest& manifest);

/// Strict decode: every numeric field must parse, the job id must pass
/// the ref grammar, and progress must stay within [0, 1000].
Result<CkptManifest> decodeCkptManifest(std::string_view text);

}  // namespace lidc::core
