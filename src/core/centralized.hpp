// Baseline: a logically centralized multi-cluster controller in the
// style of K8s federation / Virtual Kubelet (what the paper argues
// against, SI). Clients submit jobs to the controller over simulated
// RPC; the controller keeps a manually configured registry of clusters,
// picks one (least loaded), and forwards the job. Properties the benches
// contrast with LIDC:
//   - single point of failure: controller down => nothing places;
//   - failure detection by heartbeat: a dead cluster keeps receiving
//     jobs until the next heartbeat, unlike NDN's immediate nack
//     failover;
//   - manual configuration: clusters must be registered by an operator.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/status.hpp"
#include "core/compute_cluster.hpp"
#include "core/semantic_name.hpp"
#include "sim/simulator.hpp"

namespace lidc::core {

struct CentralizedOptions {
  sim::Duration clientRpcLatency = sim::Duration::millis(20);
  sim::Duration heartbeatInterval = sim::Duration::seconds(10);
  sim::Duration rpcTimeout = sim::Duration::seconds(5);
};

class CentralizedController {
 public:
  CentralizedController(sim::Simulator& sim, CentralizedOptions options = {});

  /// Manual operator step: add a cluster with its controller<->cluster
  /// RPC latency.
  void registerCluster(ComputeCluster& cluster, sim::Duration rpcLatency);
  void unregisterCluster(const std::string& name);

  /// Controller outage injection (the single point of failure).
  void setDown(bool down) noexcept { down_ = down; }
  [[nodiscard]] bool isDown() const noexcept { return down_; }

  /// Cluster outage injection: the controller does NOT see this until
  /// its next heartbeat; meanwhile it keeps scheduling onto the corpse.
  void setClusterReachable(const std::string& name, bool reachable);

  struct SubmitAck {
    std::string jobId;
    std::string cluster;
    sim::Duration latency;
  };
  using SubmitCallback = std::function<void(Result<SubmitAck>)>;

  /// Client-side submission (RPC to the controller and back).
  void submit(const ComputeRequest& request, SubmitCallback done);

  struct StatusReport {
    k8s::JobState state = k8s::JobState::kPending;
    std::string resultPath;
    std::uint64_t outputBytes = 0;
  };
  using StatusCallback = std::function<void(Result<StatusReport>)>;
  void queryStatus(const std::string& jobId, StatusCallback done);

  [[nodiscard]] std::uint64_t jobsPlaced() const noexcept { return placed_; }
  [[nodiscard]] std::uint64_t jobsLost() const noexcept { return lost_; }

 private:
  struct ClusterEntry {
    ComputeCluster* cluster = nullptr;
    sim::Duration rpcLatency;
    bool reachable = true;       // ground truth
    bool believedAlive = true;   // view as of the last heartbeat
    sim::Time lastChange;        // when ground truth last changed
  };

  /// Heartbeat semantics without a periodic event: the controller's
  /// belief catches up with ground truth only once a full heartbeat
  /// interval has elapsed since the change.
  void refreshBelief(ClusterEntry& entry);
  /// Least-loaded selection among clusters believed alive.
  [[nodiscard]] ClusterEntry* pickCluster(const ComputeRequest& request);

  sim::Simulator& sim_;
  CentralizedOptions options_;
  bool down_ = false;
  std::map<std::string, ClusterEntry> clusters_;
  std::map<std::string, std::string> job_locations_;  // jobId -> cluster
  std::uint64_t placed_ = 0;
  std::uint64_t lost_ = 0;
};

}  // namespace lidc::core
