#include "core/client.hpp"

#include <algorithm>
#include <limits>

#include "common/logging.hpp"
#include "core/wire_format.hpp"

namespace lidc::core {

LidcClient::LidcClient(ndn::Forwarder& forwarder, std::string name,
                       ClientOptions options, std::uint64_t seed)
    : forwarder_(forwarder), name_(std::move(name)), options_(options), rng_(seed) {
  face_ = std::make_shared<ndn::AppFace>("app://client/" + name_,
                                         forwarder_.simulator(), seed);
  forwarder_.addFace(face_);
  retriever_ = std::make_unique<datalake::Retriever>(*face_);
}

namespace {
constexpr sim::Time kNoDeadline =
    sim::Time::fromNanos(std::numeric_limits<std::int64_t>::max());

bool isRetryableNack(ndn::NackReason reason) {
  // Congestion (cluster full / unhealthy) and missing routes (route
  // flaps during failover, clusters mid-rejoin) are transient cluster or
  // network conditions; duplicates and the rest are not helped by
  // re-expressing the same name.
  return reason == ndn::NackReason::kCongestion ||
         reason == ndn::NackReason::kNoRoute;
}
}  // namespace

sim::Time LidcClient::deadlineFor(sim::Time startedAt) const {
  if (options_.deadline.toNanos() <= 0) return kNoDeadline;
  return startedAt + options_.deadline;
}

void LidcClient::attachTelemetry(telemetry::MetricsRegistry& registry,
                                 telemetry::Tracer* tracer) {
  telemetry_ = std::make_unique<Telemetry>();
  const telemetry::Labels labels{{"client", name_}};
  telemetry_->submits = &registry.counter("lidc_client_submits", labels);
  telemetry_->submits->set(submits_);
  telemetry_->retries = &registry.counter("lidc_client_retries", labels);
  telemetry_->failovers = &registry.counter("lidc_client_failovers", labels);
  telemetry_->polls = &registry.counter("lidc_client_status_polls", labels);
  telemetry_->jobLatencyUs =
      &registry.histogram("lidc_client_job_latency_us", labels);
  telemetry_->tracer = tracer;
}

sim::Duration LidcClient::backoffDelay(int attempt) {
  double delay = options_.backoffInitial.toSeconds();
  for (int i = 0; i < attempt; ++i) delay *= options_.backoffMultiplier;
  delay = std::min(delay, options_.backoffMax.toSeconds());
  const double jitter =
      1.0 + options_.backoffJitter * (2.0 * rng_.uniformDouble() - 1.0);
  return sim::Duration::seconds(delay * jitter);
}

void LidcClient::submit(ComputeRequest request, SubmitCallback done,
                        telemetry::TraceContext parent) {
  if (options_.bypassCache && request.requestId.empty()) {
    // Unique request id defeats caches and Interest aggregation.
    request.requestId = name_ + "-" + std::to_string(next_request_id_++);
  }
  auto shared = std::make_shared<ComputeRequest>(std::move(request));
  const sim::Time now = forwarder_.simulator().now();
  submitAttempt(std::move(shared), 0, now, deadlineFor(now), std::move(done),
                parent);
}

void LidcClient::retryOrGiveUp(std::shared_ptr<ComputeRequest> request,
                               int attempt, sim::Time startedAt,
                               sim::Time deadlineAt, SubmitCallback done,
                               Status why, telemetry::TraceContext parent) {
  if (attempt + 1 > options_.maxSubmitRetries) {
    done(std::move(why));
    return;
  }
  const sim::Duration delay = backoffDelay(attempt);
  if (forwarder_.simulator().now() + delay > deadlineAt) {
    done(Status::Timeout("deadline exceeded after " +
                         std::to_string(attempt + 1) + " submit attempts (" +
                         why.toString() + ")"));
    return;
  }
  if (telemetry_) {
    telemetry_->retries->inc();
    if (telemetry_->tracer != nullptr) {
      telemetry_->tracer->instant(
          "backoff", "client:" + name_, parent,
          {{"delay_ms", std::to_string(delay.toMillis())},
           {"after", why.toString()}});
    }
  }
  LIDC_FR_EVENT(recorder_, kWarn, "client",
                name_ + " backoff attempt=" + std::to_string(attempt + 1) +
                    " delay_ms=" + std::to_string(delay.toMillis()) + " after " +
                    why.toString());
  forwarder_.simulator().scheduleAfter(
      delay, [this, request = std::move(request), attempt, startedAt, deadlineAt,
              done = std::move(done), parent] {
        submitAttempt(request, attempt + 1, startedAt, deadlineAt, done, parent);
      });
}

void LidcClient::submitAttempt(std::shared_ptr<ComputeRequest> request, int attempt,
                               sim::Time startedAt, sim::Time deadlineAt,
                               SubmitCallback done,
                               telemetry::TraceContext parent) {
  ++submits_;
  if (telemetry_) telemetry_->submits->inc();
  submit_attempt_log_.push_back(forwarder_.simulator().now());

  telemetry::TraceContext span;
  telemetry::Tracer* tracer = telemetry_ ? telemetry_->tracer : nullptr;
  if (tracer != nullptr) {
    span = tracer->startSpan("submit-attempt", "client:" + name_, parent,
                             {{"attempt", std::to_string(attempt)}});
  }
  auto closeSpan = [tracer, span](const char* outcome) {
    if (tracer != nullptr && span) {
      tracer->setAttr(span, "outcome", outcome);
      tracer->endSpan(span);
    }
  };

  ndn::Interest interest(request->toName());
  interest.setLifetime(options_.interestLifetime);
  interest.setTraceContext(span);
  // MustBeFresh keeps network caches from answering with acks older
  // than the gateway's ackFreshness; within that window, identical
  // canonical requests may legitimately be served from any CS.
  interest.setMustBeFresh(true);

  face_->expressInterest(
      interest,
      [this, startedAt, done, closeSpan](const ndn::Interest&,
                                         const ndn::Data& data) {
        const KvMap fields = decodeKv(data.contentAsString());
        if (auto it = fields.find("error"); it != fields.end()) {
          closeSpan("error");
          done(Status::InvalidArgument(it->second));
          return;
        }
        SubmitResult result;
        if (auto it = fields.find("job_id"); it != fields.end()) {
          result.jobId = it->second;
        }
        if (auto it = fields.find("cluster"); it != fields.end()) {
          result.cluster = it->second;
        }
        if (auto it = fields.find("status_name"); it != fields.end()) {
          result.statusName = it->second;
        } else if (!result.jobId.empty() && !result.cluster.empty()) {
          result.statusName = makeStatusName(result.cluster, result.jobId).toUri();
        }
        result.cached = fields.count("cached") > 0;
        result.deduplicated = fields.count("deduplicated") > 0;
        if (auto it = fields.find("result"); it != fields.end()) {
          result.resultPath = it->second;
        }
        if (auto it = fields.find("output_bytes"); it != fields.end()) {
          result.outputBytes = strings::parseUint(it->second).value_or(0);
        }
        result.placementLatency = forwarder_.simulator().now() - startedAt;
        closeSpan(result.cached ? "cache-hit"
                                : (result.deduplicated ? "dedup" : "ack"));
        done(std::move(result));
      },
      [this, request, attempt, startedAt, deadlineAt, done, closeSpan,
       parent](const ndn::Interest&, const ndn::Nack& nack) {
        closeSpan("nack");
        Status why = Status::Unavailable(
            "compute request nacked after " + std::to_string(attempt + 1) +
            " attempts: " + std::string(ndn::nackReasonName(nack.reason())));
        if (isRetryableNack(nack.reason())) {
          retryOrGiveUp(request, attempt, startedAt, deadlineAt, done,
                        std::move(why), parent);
        } else {
          done(std::move(why));
        }
      },
      [this, request, attempt, startedAt, deadlineAt, done, closeSpan,
       parent](const ndn::Interest&) {
        closeSpan("timeout");
        retryOrGiveUp(request, attempt, startedAt, deadlineAt, done,
                      Status::Timeout("compute request timed out after " +
                                      std::to_string(attempt + 1) +
                                      " attempts"),
                      parent);
      });
}

void LidcClient::queryStatus(const ndn::Name& statusName, StatusCallback done,
                             telemetry::TraceContext parent) {
  if (telemetry_) telemetry_->polls->inc();
  ndn::Interest interest(statusName);
  interest.setTraceContext(parent);
  interest.setMustBeFresh(true);  // never accept a stale cached state
  interest.setLifetime(options_.interestLifetime);

  face_->expressInterest(
      interest,
      [done](const ndn::Interest&, const ndn::Data& data) {
        const KvMap fields = decodeKv(data.contentAsString());
        JobStatusSnapshot snapshot;
        if (auto it = fields.find("error");
            it != fields.end() && fields.count("state") == 0) {
          done(Status::NotFound(it->second));
          return;
        }
        if (auto it = fields.find("state"); it != fields.end()) {
          const std::string& state = it->second;
          if (state == "Pending") {
            snapshot.state = k8s::JobState::kPending;
          } else if (state == "Running") {
            snapshot.state = k8s::JobState::kRunning;
          } else if (state == "Completed") {
            snapshot.state = k8s::JobState::kCompleted;
          } else {
            snapshot.state = k8s::JobState::kFailed;
          }
        }
        if (auto it = fields.find("cluster"); it != fields.end()) {
          snapshot.cluster = it->second;
        }
        if (auto it = fields.find("result"); it != fields.end()) {
          snapshot.resultPath = it->second;
        }
        if (auto it = fields.find("output_bytes"); it != fields.end()) {
          snapshot.outputBytes = strings::parseUint(it->second).value_or(0);
        }
        if (auto it = fields.find("runtime_s"); it != fields.end()) {
          snapshot.runtime =
              sim::Duration::seconds(strings::parseDouble(it->second).value_or(0));
        }
        if (auto it = fields.find("error"); it != fields.end()) {
          snapshot.error = it->second;
        }
        done(std::move(snapshot));
      },
      [done](const ndn::Interest&, const ndn::Nack& nack) {
        done(Status::Unavailable("status query nacked: " +
                                 std::string(ndn::nackReasonName(nack.reason()))));
      },
      [done](const ndn::Interest& i) {
        done(Status::Timeout("status query timed out: " + i.name().toUri()));
      });
}

void LidcClient::waitForCompletion(const ndn::Name& statusName, StatusCallback done,
                                   telemetry::TraceContext parent) {
  pollLoop(statusName, 0, deadlineFor(forwarder_.simulator().now()),
           std::move(done), parent);
}

void LidcClient::pollLoop(const ndn::Name& statusName, int consecutiveFailures,
                          sim::Time deadlineAt, StatusCallback done,
                          telemetry::TraceContext parent) {
  queryStatus(
      statusName,
      [this, statusName, consecutiveFailures, deadlineAt, done,
       parent](Result<JobStatusSnapshot> result) {
    const sim::Time now = forwarder_.simulator().now();
    if (!result.ok()) {
      // Timeouts on a lossy path and Nacks (transient kNoRoute/
      // kCongestion during a route flap mid-failover) are transient:
      // keep polling within the consecutive-failure budget. NotFound
      // (the job vanished) and other errors are terminal.
      const StatusCode code = result.status().code();
      const bool transient =
          code == StatusCode::kTimeout || code == StatusCode::kUnavailable;
      if (transient && consecutiveFailures + 1 < options_.maxStatusPollFailures &&
          now + options_.statusPollInterval <= deadlineAt) {
        forwarder_.simulator().scheduleAfter(
            options_.statusPollInterval, [this, statusName, consecutiveFailures,
                                          deadlineAt, done, parent] {
              pollLoop(statusName, consecutiveFailures + 1, deadlineAt, done,
                       parent);
            });
        return;
      }
      done(std::move(result));
      return;
    }
    if (result->state == k8s::JobState::kCompleted ||
        result->state == k8s::JobState::kFailed) {
      done(std::move(result));
      return;
    }
    if (now + options_.statusPollInterval > deadlineAt) {
      done(Status::Timeout("deadline exceeded while job still " +
                           std::string(k8s::jobStateName(result->state))));
      return;
    }
    forwarder_.simulator().scheduleAfter(
        options_.statusPollInterval, [this, statusName, deadlineAt, done, parent] {
          pollLoop(statusName, 0, deadlineAt, done, parent);
        });
      },
      parent);
}

void LidcClient::runToCompletion(ComputeRequest request, OutcomeCallback done,
                                 telemetry::TraceContext parent) {
  const sim::Time startedAt = forwarder_.simulator().now();

  // Root of the job's span tree: a fresh trace, or a child of the
  // caller's span (e.g. a workflow-stage span).
  telemetry::TraceContext root;
  telemetry::Tracer* tracer = telemetry_ ? telemetry_->tracer : nullptr;
  if (tracer != nullptr) {
    const telemetry::SpanAttrs attrs{{"app", request.app}};
    root = parent ? tracer->startSpan("job", "client:" + name_, parent, attrs)
                  : tracer->startTrace("job", "client:" + name_, attrs);
  }

  auto shared = std::make_shared<ComputeRequest>(std::move(request));
  auto finish = [this, tracer, root, startedAt,
                 done = std::move(done)](Result<JobOutcome> outcome) {
    if (outcome.ok()) {
      outcome->trace = root;
      if (telemetry_) {
        telemetry_->jobLatencyUs->observe(
            static_cast<double>(outcome->totalLatency.toNanos()) / 1e3);
      }
    }
    if (tracer != nullptr && root) {
      if (outcome.ok()) {
        tracer->setAttr(root, "job_id", outcome->submit.jobId);
        tracer->setAttr(root, "cluster", outcome->finalStatus.cluster);
        tracer->setAttr(root, "failovers",
                        std::to_string(outcome->failovers));
        if (!outcome->submit.jobId.empty()) {
          tracer->bindJob(outcome->submit.jobId, root.trace);
        }
      } else {
        tracer->setAttr(root, "error", outcome.status().toString());
      }
      tracer->endSpan(root);
    }
    done(std::move(outcome));
  };
  runAttempt(std::move(shared), 0, startedAt, deadlineFor(startedAt),
             std::move(finish), root);
}

void LidcClient::failoverOrGiveUp(std::shared_ptr<ComputeRequest> request,
                                  int failover, sim::Time startedAt,
                                  sim::Time deadlineAt, OutcomeCallback done,
                                  Status why,
                                  std::optional<JobOutcome> failedOutcome,
                                  telemetry::TraceContext root) {
  if (failover + 1 > options_.maxFailovers ||
      forwarder_.simulator().now() >= deadlineAt) {
    // Out of budget: a job that terminated Failed is still a valid
    // outcome (the pre-failover behaviour); everything else is an error.
    if (failedOutcome.has_value()) {
      done(std::move(*failedOutcome));
    } else {
      done(std::move(why));
    }
    return;
  }
  if (telemetry_) {
    telemetry_->failovers->inc();
    if (telemetry_->tracer != nullptr) {
      telemetry_->tracer->instant("failover", "client:" + name_, root,
                                  {{"after", why.toString()}});
    }
  }
  log::ScopedTrace scopedTrace(root.trace);
  LIDC_FR_EVENT(recorder_, kWarn, "client",
                name_ + " failover attempt=" + std::to_string(failover + 1) +
                    " after " + why.toString());
  LIDC_LOG(kInfo, "client") << name_ << " failing over (attempt "
                            << (failover + 1) << "): " << why.toString();
  runAttempt(std::move(request), failover + 1, startedAt, deadlineAt,
             std::move(done), root);
}

void LidcClient::runAttempt(std::shared_ptr<ComputeRequest> request, int failover,
                            sim::Time startedAt, sim::Time deadlineAt,
                            OutcomeCallback done, telemetry::TraceContext root) {
  ComputeRequest attemptRequest = *request;
  if (failover > 0) {
    // A fresh request id guarantees the resubmission is a new name: no
    // content store, PIT aggregation, or gateway dedup entry can answer
    // with the dead job, so the forwarding strategy is free to place it
    // on a healthy cluster.
    attemptRequest.requestId = name_ + "-fo" + std::to_string(failover) + "-" +
                               std::to_string(next_request_id_++);
  }
  if (options_.bypassCache && attemptRequest.requestId.empty()) {
    attemptRequest.requestId = name_ + "-" + std::to_string(next_request_id_++);
  }
  auto shared = std::make_shared<ComputeRequest>(std::move(attemptRequest));
  submitAttempt(
      std::move(shared), 0, startedAt, deadlineAt,
      [this, request, failover, startedAt, deadlineAt, done,
       root](Result<SubmitResult> submitted) {
        if (!submitted.ok()) {
          failoverOrGiveUp(request, failover, startedAt, deadlineAt, done,
                           submitted.status(), std::nullopt, root);
          return;
        }
        telemetry::Tracer* tracer = telemetry_ ? telemetry_->tracer : nullptr;
        if (tracer != nullptr && root && !submitted->jobId.empty()) {
          // Bind early so explain(job_id) works even for jobs that never
          // reach a terminal state (e.g. lost with their cluster).
          tracer->bindJob(submitted->jobId, root.trace);
        }
        if (submitted->cached) {
          // Cache hit: no job to wait for.
          JobOutcome outcome;
          outcome.submit = *submitted;
          outcome.finalStatus.state = k8s::JobState::kCompleted;
          outcome.finalStatus.cluster = submitted->cluster;
          outcome.finalStatus.resultPath = submitted->resultPath;
          outcome.finalStatus.outputBytes = submitted->outputBytes;
          outcome.totalLatency = forwarder_.simulator().now() - startedAt;
          outcome.failovers = failover;
          done(std::move(outcome));
          return;
        }
        // Telemetry-steered proactive failover: the ack names the
        // cluster the job landed on; if the health plane says it is
        // degraded, resubmit elsewhere now rather than poll a job that
        // is likely to stall or fail. Skipped once the failover budget
        // is spent — a running job beats an error.
        if (options_.healthProvider && options_.minClusterHealth > 0.0 &&
            failover < options_.maxFailovers && !submitted->cluster.empty()) {
          const double health = options_.healthProvider(submitted->cluster);
          if (health < options_.minClusterHealth) {
            LIDC_FR_EVENT(recorder_, kWarn, "client",
                          name_ + " steering off " + submitted->cluster);
            failoverOrGiveUp(
                request, failover, startedAt, deadlineAt, done,
                Status::Unavailable("cluster " + submitted->cluster +
                                    " health below minimum"),
                std::nullopt, root);
            return;
          }
        }
        const SubmitResult submitCopy = *submitted;
        telemetry::TraceContext await;
        if (tracer != nullptr) {
          await = tracer->startSpan("await-completion", "client:" + name_, root,
                                    {{"job_id", submitCopy.jobId}});
        }
        pollLoop(
            ndn::Name(submitCopy.statusName), 0, deadlineAt,
            [this, request, failover, startedAt, deadlineAt, submitCopy, done,
             root, await, tracer](Result<JobStatusSnapshot> status) {
              if (tracer != nullptr && await) {
                tracer->setAttr(await, "outcome",
                                status.ok()
                                    ? std::string(k8s::jobStateName(status->state))
                                    : status.status().toString());
                tracer->endSpan(await);
              }
              if (!status.ok()) {
                // Status endpoint dark past the poll budget, or the job
                // vanished (reaped after its cluster died): resubmit.
                failoverOrGiveUp(request, failover, startedAt, deadlineAt,
                                 done, status.status(), std::nullopt, root);
                return;
              }
              JobOutcome outcome;
              outcome.submit = submitCopy;
              outcome.finalStatus = *status;
              outcome.totalLatency = forwarder_.simulator().now() - startedAt;
              outcome.failovers = failover;
              if (status->state == k8s::JobState::kFailed) {
                failoverOrGiveUp(request, failover, startedAt, deadlineAt,
                                 done,
                                 Status::Unavailable("job failed: " +
                                                     status->error),
                                 std::move(outcome), root);
                return;
              }
              done(std::move(outcome));
            },
            await ? await : root);
      },
      root);
}

void LidcClient::fetchData(const ndn::Name& objectName, FetchCallback done,
                           telemetry::TraceContext parent) {
  telemetry::Tracer* tracer = telemetry_ ? telemetry_->tracer : nullptr;
  if (tracer == nullptr || !parent) {
    retriever_->fetch(objectName, std::move(done));
    return;
  }
  const telemetry::TraceContext span =
      tracer->startSpan("data-retrieval", "client:" + name_, parent,
                        {{"object", objectName.toUri()}});
  retriever_->fetch(
      objectName,
      [tracer, span, done = std::move(done)](
          Result<std::vector<std::uint8_t>> result) {
        if (result.ok()) {
          tracer->setAttr(span, "bytes", std::to_string(result->size()));
        } else {
          tracer->setAttr(span, "error", result.status().toString());
        }
        tracer->endSpan(span);
        done(std::move(result));
      },
      span);
}

void LidcClient::publishData(const std::string& path,
                             std::vector<std::uint8_t> bytes,
                             PublishCallback done,
                             telemetry::TraceContext parent) {
  // Digest binds the command name to the exact payload bytes.
  std::uint64_t digest = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : bytes) {
    digest ^= byte;
    digest *= 0x100000001b3ULL;
  }
  ndn::Name name = kPublishPrefix;
  for (auto part : strings::splitSkipEmpty(path, '/')) name.append(part);
  name.append("sha=" + std::to_string(digest));

  telemetry::Tracer* tracer = telemetry_ ? telemetry_->tracer : nullptr;
  telemetry::TraceContext span;
  if (tracer != nullptr && parent) {
    span = tracer->startSpan("data-publish", "client:" + name_, parent,
                             {{"path", path},
                              {"bytes", std::to_string(bytes.size())}});
  }
  auto closeSpan = [tracer, span](const std::string& outcome) {
    if (tracer != nullptr && span) {
      tracer->setAttr(span, "outcome", outcome);
      tracer->endSpan(span);
    }
  };

  ndn::Interest interest(name);
  interest.setMustBeFresh(true);
  interest.setLifetime(options_.interestLifetime);
  interest.setApplicationParameters(std::move(bytes));
  interest.setTraceContext(span);

  face_->expressInterest(
      interest,
      [done, closeSpan](const ndn::Interest&, const ndn::Data& data) {
        const KvMap fields = decodeKv(data.contentAsString());
        if (auto it = fields.find("error"); it != fields.end()) {
          closeSpan("error");
          done(Status::InvalidArgument(it->second));
          return;
        }
        if (auto it = fields.find("stored"); it != fields.end()) {
          closeSpan("stored");
          done(ndn::Name(it->second));
          return;
        }
        closeSpan("malformed-ack");
        done(Status::Internal("malformed publish ack"));
      },
      [done, closeSpan](const ndn::Interest&, const ndn::Nack& nack) {
        closeSpan("nack");
        done(Status::Unavailable("publish nacked: " +
                                 std::string(ndn::nackReasonName(nack.reason()))));
      },
      [done, closeSpan](const ndn::Interest& i) {
        closeSpan("timeout");
        done(Status::Timeout("publish timed out: " + i.name().toUri()));
      });
}

void LidcClient::queryClusterInfo(const std::string& cluster, InfoCallback done) {
  ndn::Name name = kInfoPrefix;
  name.append(cluster);
  ndn::Interest interest(name);
  interest.setMustBeFresh(true);  // capabilities change with load
  interest.setLifetime(options_.interestLifetime);

  face_->expressInterest(
      interest,
      [done](const ndn::Interest&, const ndn::Data& data) {
        const KvMap fields = decodeKv(data.contentAsString());
        ClusterInfo info;
        if (auto it = fields.find("cluster"); it != fields.end()) {
          info.cluster = it->second;
        }
        if (auto it = fields.find("free_cpu_m"); it != fields.end()) {
          info.freeCpu = MilliCpu(strings::parseUint(it->second).value_or(0));
        }
        if (auto it = fields.find("free_mem_bytes"); it != fields.end()) {
          info.freeMemory = ByteSize(strings::parseUint(it->second).value_or(0));
        }
        if (auto it = fields.find("total_cpu_m"); it != fields.end()) {
          info.totalCpu = MilliCpu(strings::parseUint(it->second).value_or(0));
        }
        if (auto it = fields.find("total_mem_bytes"); it != fields.end()) {
          info.totalMemory = ByteSize(strings::parseUint(it->second).value_or(0));
        }
        if (auto it = fields.find("running_jobs"); it != fields.end()) {
          info.runningJobs = strings::parseUint(it->second).value_or(0);
        }
        if (auto it = fields.find("nodes"); it != fields.end()) {
          info.nodes = strings::parseUint(it->second).value_or(0);
        }
        if (auto it = fields.find("apps"); it != fields.end()) {
          for (auto app : strings::splitSkipEmpty(it->second, ',')) {
            info.apps.emplace_back(app);
          }
        }
        done(std::move(info));
      },
      [done](const ndn::Interest&, const ndn::Nack& nack) {
        done(Status::Unavailable("info query nacked: " +
                                 std::string(ndn::nackReasonName(nack.reason()))));
      },
      [done](const ndn::Interest& i) {
        done(Status::Timeout("info query timed out: " + i.name().toUri()));
      });
}

}  // namespace lidc::core
