#include "core/client.hpp"

#include <algorithm>
#include <limits>

#include "common/logging.hpp"
#include "core/wire_format.hpp"

namespace lidc::core {

namespace {
constexpr sim::Time kNoDeadline =
    sim::Time::fromNanos(std::numeric_limits<std::int64_t>::max());

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}
}  // namespace

LidcClient::LidcClient(ndn::Forwarder& forwarder, std::string name,
                       ClientOptions options, std::uint64_t seed)
    : forwarder_(forwarder), name_(std::move(name)), options_(options), rng_(seed),
      seed_(seed) {
  // The face's nonce stream mixes in the client name: two clients built
  // with the same seed (e.g. a user poller and an ops monitor watching
  // the same status name) must not draw identical nonces, or the
  // producer's dead-nonce list nacks one of them as a looped Duplicate.
  face_ = std::make_shared<ndn::AppFace>("app://client/" + name_,
                                         forwarder_.simulator(),
                                         seed ^ fnv1a(name_));
  forwarder_.addFace(face_);
  retriever_ = std::make_unique<datalake::Retriever>(*face_);
}

namespace {

bool isRetryableNack(ndn::NackReason reason) {
  // Congestion (cluster full / unhealthy) and missing routes (route
  // flaps during failover, clusters mid-rejoin) are transient cluster or
  // network conditions; quota rejections clear once the tenant's queued
  // work drains or its token bucket refills, so a (slow) retry can
  // succeed. Duplicates and the rest are not helped by re-expressing
  // the same name.
  return reason == ndn::NackReason::kCongestion ||
         reason == ndn::NackReason::kNoRoute ||
         reason == ndn::NackReason::kQuotaExceeded;
}

/// Distinct quota signal: RESOURCE_EXHAUSTED tells the caller this is
/// its own budget, not a sick cluster — back off, don't fail over.
Status nackStatus(ndn::NackReason reason, const std::string& what, int attempts) {
  const std::string detail = what + " nacked after " +
                             std::to_string(attempts) + " attempts: " +
                             std::string(ndn::nackReasonName(reason));
  if (reason == ndn::NackReason::kQuotaExceeded) {
    return Status::ResourceExhausted(detail);
  }
  return Status::Unavailable(detail);
}
}  // namespace

sim::Time LidcClient::deadlineFor(sim::Time startedAt) const {
  if (options_.deadline.toNanos() <= 0) return kNoDeadline;
  return startedAt + options_.deadline;
}

ndn::Name LidcClient::requestName(const ComputeRequest& request) const {
  if (options_.tenant.empty()) return request.toName();
  return makeSubmitName(options_.tenant, request);
}

void LidcClient::attachTelemetry(telemetry::MetricsRegistry& registry,
                                 telemetry::Tracer* tracer) {
  telemetry_ = std::make_unique<Telemetry>();
  const telemetry::Labels labels{{"client", name_}};
  telemetry_->submits = &registry.counter("lidc_client_submits", labels);
  telemetry_->submits->set(submits_);
  telemetry_->retries = &registry.counter("lidc_client_retries", labels);
  telemetry_->failovers = &registry.counter("lidc_client_failovers", labels);
  telemetry_->polls = &registry.counter("lidc_client_status_polls", labels);
  telemetry_->hedgesIssued = &registry.counter("lidc_hedges_issued_total", labels);
  telemetry_->hedgesIssued->set(hedges_issued_);
  telemetry_->hedgesWon = &registry.counter("lidc_hedges_won_total", labels);
  telemetry_->hedgesWon->set(hedges_won_);
  telemetry_->hedgesCancelled =
      &registry.counter("lidc_hedges_cancelled_total", labels);
  telemetry_->hedgesCancelled->set(hedges_cancelled_);
  telemetry_->breakerTrips = &registry.counter("lidc_breaker_trips_total", labels);
  telemetry_->breakerTrips->set(breaker_trips_);
  telemetry_->breakerSteered =
      &registry.counter("lidc_breaker_steered_total", labels);
  telemetry_->breakerSteered->set(breaker_steered_);
  telemetry_->watchdogTimeouts =
      &registry.counter("lidc_watchdog_timeouts_total", labels);
  telemetry_->watchdogTimeouts->set(watchdog_timeouts_);
  telemetry_->jobLatencyUs =
      &registry.histogram("lidc_client_job_latency_us", labels);
  telemetry_->tracer = tracer;
  telemetry_->registry = &registry;
}

CircuitBreaker* LidcClient::breakerFor(const std::string& cluster) {
  if (!options_.enableCircuitBreaker || cluster.empty()) return nullptr;
  auto it = breakers_.find(cluster);
  if (it == breakers_.end()) {
    auto breaker =
        std::make_unique<CircuitBreaker>(options_.breaker, seed_ ^ fnv1a(cluster));
    breaker->setListener([this, cluster](BreakerState state) {
      if (state == BreakerState::kOpen) {
        ++breaker_trips_;
        if (telemetry_) telemetry_->breakerTrips->inc();
      }
      if (telemetry_ && telemetry_->registry != nullptr) {
        // 0 = closed, 1 = half-open, 2 = open.
        const double encoded = state == BreakerState::kClosed     ? 0.0
                               : state == BreakerState::kHalfOpen ? 1.0
                                                                  : 2.0;
        telemetry_->registry
            ->gauge("lidc_breaker_state", {{"client", name_}, {"cluster", cluster}})
            .set(encoded);
      }
      LIDC_FR_EVENT(recorder_, kWarn, "client",
                    name_ + " breaker " + cluster + " -> " +
                        std::string(breakerStateName(state)));
      if (options_.breakerListener) options_.breakerListener(cluster, state);
    });
    it = breakers_.emplace(cluster, std::move(breaker)).first;
  }
  return it->second.get();
}

void LidcClient::recordAckLatency(sim::Duration latency) {
  constexpr std::size_t kWindow = 128;
  const double seconds = latency.toSeconds();
  if (ack_latencies_.size() < kWindow) {
    ack_latencies_.push_back(seconds);
  } else {
    ack_latencies_[ack_latency_next_] = seconds;
    ack_latency_next_ = (ack_latency_next_ + 1) % kWindow;
  }
}

sim::Duration LidcClient::hedgeDelay() const {
  // Too little signal: fall back to the configured floor.
  if (ack_latencies_.size() < 8) return options_.hedgeDelayFloor;
  std::vector<double> sorted = ack_latencies_;
  std::sort(sorted.begin(), sorted.end());
  const auto index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(options_.hedgeQuantile *
                               static_cast<double>(sorted.size())));
  return std::max(options_.hedgeDelayFloor, sim::Duration::seconds(sorted[index]));
}

sim::Duration LidcClient::backoffDelay(int attempt) {
  double delay = options_.backoffInitial.toSeconds();
  for (int i = 0; i < attempt; ++i) delay *= options_.backoffMultiplier;
  delay = std::min(delay, options_.backoffMax.toSeconds());
  const double jitter =
      1.0 + options_.backoffJitter * (2.0 * rng_.uniformDouble() - 1.0);
  return sim::Duration::seconds(delay * jitter);
}

void LidcClient::submit(ComputeRequest request, SubmitCallback done,
                        telemetry::TraceContext parent) {
  if (options_.bypassCache && request.requestId.empty()) {
    // Unique request id defeats caches and Interest aggregation.
    request.requestId = name_ + "-" + std::to_string(next_request_id_++);
  }
  auto shared = std::make_shared<ComputeRequest>(std::move(request));
  const sim::Time now = forwarder_.simulator().now();
  submitAttempt(std::move(shared), 0, now, deadlineFor(now), std::move(done),
                parent);
}

void LidcClient::retryOrGiveUp(std::shared_ptr<ComputeRequest> request,
                               int attempt, sim::Time startedAt,
                               sim::Time deadlineAt, SubmitCallback done,
                               Status why, telemetry::TraceContext parent) {
  if (attempt + 1 > options_.maxSubmitRetries) {
    done(std::move(why));
    return;
  }
  sim::Duration delay = backoffDelay(attempt);
  if (why.code() == StatusCode::kResourceExhausted &&
      options_.quotaBackoffScale > 1.0) {
    // Quota pressure is global (the tenant's budget, not this path):
    // retrying fast or failing over cannot help, so wait it out.
    delay = delay * options_.quotaBackoffScale;
  }
  if (forwarder_.simulator().now() + delay > deadlineAt) {
    done(Status::Timeout("deadline exceeded after " +
                         std::to_string(attempt + 1) + " submit attempts (" +
                         why.toString() + ")"));
    return;
  }
  if (telemetry_) {
    telemetry_->retries->inc();
    if (telemetry_->tracer != nullptr) {
      telemetry_->tracer->instant(
          "backoff", "client:" + name_, parent,
          {{"delay_ms", std::to_string(delay.toMillis())},
           {"after", why.toString()}});
    }
  }
  LIDC_FR_EVENT(recorder_, kWarn, "client",
                name_ + " backoff attempt=" + std::to_string(attempt + 1) +
                    " delay_ms=" + std::to_string(delay.toMillis()) + " after " +
                    why.toString());
  forwarder_.simulator().scheduleAfter(
      delay, [this, request = std::move(request), attempt, startedAt, deadlineAt,
              done = std::move(done), parent] {
        submitAttempt(request, attempt + 1, startedAt, deadlineAt, done, parent);
      });
}

void LidcClient::submitAttempt(std::shared_ptr<ComputeRequest> request, int attempt,
                               sim::Time startedAt, sim::Time deadlineAt,
                               SubmitCallback done,
                               telemetry::TraceContext parent) {
  if (options_.enableHedging) {
    submitAttemptHedged(std::move(request), attempt, startedAt, deadlineAt,
                        std::move(done), parent);
    return;
  }
  ++submits_;
  if (telemetry_) telemetry_->submits->inc();
  submit_attempt_log_.push_back(forwarder_.simulator().now());

  telemetry::TraceContext span;
  telemetry::Tracer* tracer = telemetry_ ? telemetry_->tracer : nullptr;
  if (tracer != nullptr) {
    span = tracer->startSpan("submit-attempt", "client:" + name_, parent,
                             {{"attempt", std::to_string(attempt)}});
  }
  auto closeSpan = [tracer, span](const char* outcome) {
    if (tracer != nullptr && span) {
      tracer->setAttr(span, "outcome", outcome);
      tracer->endSpan(span);
    }
  };

  ndn::Interest interest(requestName(*request));
  interest.setLifetime(options_.interestLifetime);
  interest.setTraceContext(span);
  interest.setFlowLabel({options_.tenant, request->flowTag});
  // MustBeFresh keeps network caches from answering with acks older
  // than the gateway's ackFreshness; within that window, identical
  // canonical requests may legitimately be served from any CS.
  interest.setMustBeFresh(true);

  const sim::Time sentAt = forwarder_.simulator().now();
  face_->expressInterest(
      interest,
      [this, startedAt, sentAt, done, closeSpan](const ndn::Interest&,
                                                 const ndn::Data& data) {
        recordAckLatency(forwarder_.simulator().now() - sentAt);
        const KvMap fields = decodeKv(data.contentAsString());
        if (auto it = fields.find("error"); it != fields.end()) {
          closeSpan("error");
          done(Status::InvalidArgument(it->second));
          return;
        }
        SubmitResult result;
        if (auto it = fields.find("job_id"); it != fields.end()) {
          result.jobId = it->second;
        }
        if (auto it = fields.find("cluster"); it != fields.end()) {
          result.cluster = it->second;
        }
        if (auto it = fields.find("status_name"); it != fields.end()) {
          result.statusName = it->second;
        } else if (!result.jobId.empty() && !result.cluster.empty()) {
          result.statusName = makeStatusName(result.cluster, result.jobId).toUri();
        }
        result.cached = fields.count("cached") > 0;
        result.deduplicated = fields.count("deduplicated") > 0;
        if (auto it = fields.find("result"); it != fields.end()) {
          result.resultPath = it->second;
        }
        if (auto it = fields.find("output_bytes"); it != fields.end()) {
          result.outputBytes = strings::parseUint(it->second).value_or(0);
        }
        result.placementLatency = forwarder_.simulator().now() - startedAt;
        closeSpan(result.cached ? "cache-hit"
                                : (result.deduplicated ? "dedup" : "ack"));
        done(std::move(result));
      },
      [this, request, attempt, startedAt, deadlineAt, done, closeSpan,
       parent](const ndn::Interest&, const ndn::Nack& nack) {
        closeSpan("nack");
        Status why = nackStatus(nack.reason(), "compute request", attempt + 1);
        if (isRetryableNack(nack.reason())) {
          retryOrGiveUp(request, attempt, startedAt, deadlineAt, done,
                        std::move(why), parent);
        } else {
          done(std::move(why));
        }
      },
      [this, request, attempt, startedAt, deadlineAt, done, closeSpan,
       parent](const ndn::Interest&) {
        closeSpan("timeout");
        retryOrGiveUp(request, attempt, startedAt, deadlineAt, done,
                      Status::Timeout("compute request timed out after " +
                                      std::to_string(attempt + 1) +
                                      " attempts"),
                      parent);
      });
}

/// Shared state of one hedged submit attempt. A race is "settled" once
/// a winner delivered its result (or every leg failed); late responses
/// after that are cancelled losers and only bump counters.
struct LidcClient::HedgeRace {
  bool settled = false;
  int outstanding = 0;
  Status error;
  bool retryable = false;
};

void LidcClient::submitAttemptHedged(std::shared_ptr<ComputeRequest> request,
                                     int attempt, sim::Time startedAt,
                                     sim::Time deadlineAt, SubmitCallback done,
                                     telemetry::TraceContext parent) {
  auto race = std::make_shared<HedgeRace>();
  sendSubmitLeg(race, /*isHedge=*/false, request, request, attempt, startedAt,
                deadlineAt, done, parent);
  const sim::Duration delay = hedgeDelay();
  forwarder_.simulator().scheduleAfter(
      delay, [this, race, request, attempt, startedAt, deadlineAt, done, parent,
              delay] {
        if (race->settled) return;  // already answered (or already failed)
        if (forwarder_.simulator().now() >= deadlineAt) return;
        ++hedges_issued_;
        if (telemetry_) {
          telemetry_->hedgesIssued->inc();
          if (telemetry_->tracer != nullptr) {
            telemetry_->tracer->instant(
                "hedge", "client:" + name_, parent,
                {{"delay_ms", std::to_string(delay.toMillis())}});
          }
        }
        LIDC_FR_EVENT(recorder_, kWarn, "client",
                      name_ + " hedge after " + std::to_string(delay.toMillis()) +
                          "ms attempt=" + std::to_string(attempt));
        // A fresh request id makes the backup a new name: no PIT entry
        // or content store can collapse it onto the stalled primary, so
        // the forwarding strategy is free to try another path.
        auto backup = std::make_shared<ComputeRequest>(*request);
        backup->requestId = (backup->requestId.empty() ? name_ : backup->requestId) +
                            "-h" + std::to_string(next_request_id_++);
        sendSubmitLeg(race, /*isHedge=*/true, std::move(backup), request, attempt,
                      startedAt, deadlineAt, done, parent);
      });
}

void LidcClient::sendSubmitLeg(std::shared_ptr<HedgeRace> race, bool isHedge,
                               std::shared_ptr<ComputeRequest> legRequest,
                               std::shared_ptr<ComputeRequest> request, int attempt,
                               sim::Time startedAt, sim::Time deadlineAt,
                               SubmitCallback done,
                               telemetry::TraceContext parent) {
  ++submits_;
  if (telemetry_) telemetry_->submits->inc();
  submit_attempt_log_.push_back(forwarder_.simulator().now());
  ++race->outstanding;
  const sim::Time sentAt = forwarder_.simulator().now();

  telemetry::TraceContext span;
  telemetry::Tracer* tracer = telemetry_ ? telemetry_->tracer : nullptr;
  if (tracer != nullptr) {
    span = tracer->startSpan("submit-attempt", "client:" + name_, parent,
                             {{"attempt", std::to_string(attempt)},
                              {"hedge", isHedge ? "1" : "0"}});
  }
  auto closeSpan = [tracer, span](const char* outcome) {
    if (tracer != nullptr && span) {
      tracer->setAttr(span, "outcome", outcome);
      tracer->endSpan(span);
    }
  };

  ndn::Interest interest(requestName(*legRequest));
  interest.setLifetime(options_.interestLifetime);
  interest.setTraceContext(span);
  interest.setFlowLabel({options_.tenant, legRequest->flowTag});
  interest.setMustBeFresh(true);

  face_->expressInterest(
      interest,
      [this, race, isHedge, sentAt, startedAt, done, closeSpan](
          const ndn::Interest&, const ndn::Data& data) {
        if (race->settled) {
          // The other leg already won: this is the cancelled loser.
          ++hedges_cancelled_;
          if (telemetry_) telemetry_->hedgesCancelled->inc();
          closeSpan("hedge-lost");
          return;
        }
        race->settled = true;
        --race->outstanding;
        if (isHedge) {
          ++hedges_won_;
          if (telemetry_) telemetry_->hedgesWon->inc();
        }
        recordAckLatency(forwarder_.simulator().now() - sentAt);
        const KvMap fields = decodeKv(data.contentAsString());
        if (auto it = fields.find("error"); it != fields.end()) {
          closeSpan("error");
          done(Status::InvalidArgument(it->second));
          return;
        }
        SubmitResult result;
        if (auto it = fields.find("job_id"); it != fields.end()) {
          result.jobId = it->second;
        }
        if (auto it = fields.find("cluster"); it != fields.end()) {
          result.cluster = it->second;
        }
        if (auto it = fields.find("status_name"); it != fields.end()) {
          result.statusName = it->second;
        } else if (!result.jobId.empty() && !result.cluster.empty()) {
          result.statusName = makeStatusName(result.cluster, result.jobId).toUri();
        }
        result.cached = fields.count("cached") > 0;
        result.deduplicated = fields.count("deduplicated") > 0;
        if (auto it = fields.find("result"); it != fields.end()) {
          result.resultPath = it->second;
        }
        if (auto it = fields.find("output_bytes"); it != fields.end()) {
          result.outputBytes = strings::parseUint(it->second).value_or(0);
        }
        result.placementLatency = forwarder_.simulator().now() - startedAt;
        closeSpan(isHedge ? "hedge-won"
                          : (result.cached ? "cache-hit"
                                           : (result.deduplicated ? "dedup" : "ack")));
        done(std::move(result));
      },
      [this, race, request, attempt, startedAt, deadlineAt, done, closeSpan,
       parent](const ndn::Interest&, const ndn::Nack& nack) {
        closeSpan("nack");
        if (race->settled) return;
        --race->outstanding;
        race->error = nackStatus(nack.reason(), "compute request", attempt + 1);
        race->retryable = isRetryableNack(nack.reason());
        if (race->outstanding == 0) {
          // Every leg failed; settle so a pending hedge timer is a no-op.
          race->settled = true;
          if (race->retryable) {
            retryOrGiveUp(request, attempt, startedAt, deadlineAt, done,
                          race->error, parent);
          } else {
            done(race->error);
          }
        }
      },
      [this, race, request, attempt, startedAt, deadlineAt, done, closeSpan,
       parent](const ndn::Interest&) {
        closeSpan("timeout");
        if (race->settled) return;
        --race->outstanding;
        race->error =
            Status::Timeout("compute request timed out after " +
                            std::to_string(attempt + 1) + " attempts");
        race->retryable = true;
        if (race->outstanding == 0) {
          race->settled = true;
          retryOrGiveUp(request, attempt, startedAt, deadlineAt, done,
                        race->error, parent);
        }
      });
}

void LidcClient::queryStatus(const ndn::Name& statusName, StatusCallback done,
                             telemetry::TraceContext parent) {
  if (telemetry_) telemetry_->polls->inc();
  ndn::Interest interest(statusName);
  interest.setTraceContext(parent);
  interest.setMustBeFresh(true);  // never accept a stale cached state
  interest.setLifetime(options_.interestLifetime);

  face_->expressInterest(
      interest,
      [done](const ndn::Interest&, const ndn::Data& data) {
        const KvMap fields = decodeKv(data.contentAsString());
        JobStatusSnapshot snapshot;
        if (auto it = fields.find("error");
            it != fields.end() && fields.count("state") == 0) {
          done(Status::NotFound(it->second));
          return;
        }
        if (auto it = fields.find("state"); it != fields.end()) {
          const std::string& state = it->second;
          if (state == "Pending") {
            snapshot.state = k8s::JobState::kPending;
          } else if (state == "Running") {
            snapshot.state = k8s::JobState::kRunning;
          } else if (state == "Completed") {
            snapshot.state = k8s::JobState::kCompleted;
          } else {
            snapshot.state = k8s::JobState::kFailed;
          }
        }
        if (auto it = fields.find("cluster"); it != fields.end()) {
          snapshot.cluster = it->second;
        }
        if (auto it = fields.find("result"); it != fields.end()) {
          snapshot.resultPath = it->second;
        }
        if (auto it = fields.find("output_bytes"); it != fields.end()) {
          snapshot.outputBytes = strings::parseUint(it->second).value_or(0);
        }
        if (auto it = fields.find("runtime_s"); it != fields.end()) {
          snapshot.runtime =
              sim::Duration::seconds(strings::parseDouble(it->second).value_or(0));
        }
        if (auto it = fields.find("error"); it != fields.end()) {
          snapshot.error = it->second;
        }
        done(std::move(snapshot));
      },
      [done](const ndn::Interest&, const ndn::Nack& nack) {
        done(Status::Unavailable("status query nacked: " +
                                 std::string(ndn::nackReasonName(nack.reason()))));
      },
      [done](const ndn::Interest& i) {
        done(Status::Timeout("status query timed out: " + i.name().toUri()));
      });
}

void LidcClient::waitForCompletion(const ndn::Name& statusName, StatusCallback done,
                                   telemetry::TraceContext parent) {
  const sim::Time now = forwarder_.simulator().now();
  pollLoop(statusName, 0, deadlineFor(now), now, std::move(done), parent);
}

void LidcClient::pollLoop(const ndn::Name& statusName, int consecutiveFailures,
                          sim::Time deadlineAt, sim::Time progressSince,
                          StatusCallback done, telemetry::TraceContext parent) {
  queryStatus(
      statusName,
      [this, statusName, consecutiveFailures, deadlineAt, progressSince, done,
       parent](Result<JobStatusSnapshot> result) {
    const sim::Time now = forwarder_.simulator().now();
    if (!result.ok()) {
      // Timeouts on a lossy path and Nacks (transient kNoRoute/
      // kCongestion during a route flap mid-failover) are transient:
      // keep polling within the consecutive-failure budget. NotFound
      // (the job vanished) and other errors are terminal.
      const StatusCode code = result.status().code();
      const bool transient =
          code == StatusCode::kTimeout || code == StatusCode::kUnavailable;
      if (transient && consecutiveFailures + 1 < options_.maxStatusPollFailures &&
          now + options_.statusPollInterval <= deadlineAt) {
        forwarder_.simulator().scheduleAfter(
            options_.statusPollInterval, [this, statusName, consecutiveFailures,
                                          deadlineAt, progressSince, done, parent] {
              pollLoop(statusName, consecutiveFailures + 1, deadlineAt,
                       progressSince, done, parent);
            });
        return;
      }
      done(std::move(result));
      return;
    }
    if (result->state == k8s::JobState::kCompleted ||
        result->state == k8s::JobState::kFailed) {
      done(std::move(result));
      return;
    }
    // Progress watchdog: a healthy cluster moves a job to Running
    // quickly; one that answers polls with Pending forever is a gray
    // gateway (it admitted the job but never scheduled it). Treat the
    // stall as a dark status so the caller records a breaker failure
    // and fails over — the poll itself keeps "succeeding", which is
    // exactly why a plain failure budget never fires here.
    sim::Time nextProgress = progressSince;
    if (options_.pendingProgressTtl.toNanos() > 0) {
      if (result->state == k8s::JobState::kPending) {
        if (now - progressSince >= options_.pendingProgressTtl) {
          ++watchdog_timeouts_;
          if (telemetry_) telemetry_->watchdogTimeouts->inc();
          LIDC_FR_EVENT(recorder_, kWarn, "client",
                        name_ + " watchdog: no progress on " +
                            statusName.toUri());
          done(Status::Unavailable(
              "progress watchdog: job still Pending after " +
              std::to_string(options_.pendingProgressTtl.toMillis()) + "ms"));
          return;
        }
      } else {
        nextProgress = now;  // Running counts as progress
      }
    }
    if (now + options_.statusPollInterval > deadlineAt) {
      done(Status::Timeout("deadline exceeded while job still " +
                           std::string(k8s::jobStateName(result->state))));
      return;
    }
    forwarder_.simulator().scheduleAfter(
        options_.statusPollInterval,
        [this, statusName, deadlineAt, nextProgress, done, parent] {
          pollLoop(statusName, 0, deadlineAt, nextProgress, done, parent);
        });
      },
      parent);
}

void LidcClient::runToCompletion(ComputeRequest request, OutcomeCallback done,
                                 telemetry::TraceContext parent) {
  const sim::Time startedAt = forwarder_.simulator().now();

  // Root of the job's span tree: a fresh trace, or a child of the
  // caller's span (e.g. a workflow-stage span).
  telemetry::TraceContext root;
  telemetry::Tracer* tracer = telemetry_ ? telemetry_->tracer : nullptr;
  if (tracer != nullptr) {
    const telemetry::SpanAttrs attrs{{"app", request.app}};
    root = parent ? tracer->startSpan("job", "client:" + name_, parent, attrs)
                  : tracer->startTrace("job", "client:" + name_, attrs);
  }

  auto shared = std::make_shared<ComputeRequest>(std::move(request));
  auto finish = [this, tracer, root, startedAt,
                 done = std::move(done)](Result<JobOutcome> outcome) {
    if (outcome.ok()) {
      outcome->trace = root;
      if (telemetry_) {
        // Tail samples carry the job's trace id as an exemplar, so a
        // latency-regression alert links to a concrete slow trace.
        telemetry_->jobLatencyUs->observe(
            static_cast<double>(outcome->totalLatency.toNanos()) / 1e3,
            root.trace);
      }
    }
    if (tracer != nullptr && root) {
      if (outcome.ok()) {
        tracer->setAttr(root, "job_id", outcome->submit.jobId);
        tracer->setAttr(root, "cluster", outcome->finalStatus.cluster);
        tracer->setAttr(root, "failovers",
                        std::to_string(outcome->failovers));
        if (!outcome->submit.jobId.empty()) {
          tracer->bindJob(outcome->submit.jobId, root.trace);
        }
      } else {
        tracer->setAttr(root, "error", outcome.status().toString());
      }
      tracer->endSpan(root);
    }
    done(std::move(outcome));
  };
  runAttempt(std::move(shared), 0, startedAt, deadlineFor(startedAt),
             std::move(finish), root);
}

void LidcClient::failoverOrGiveUp(std::shared_ptr<ComputeRequest> request,
                                  int failover, sim::Time startedAt,
                                  sim::Time deadlineAt, OutcomeCallback done,
                                  Status why,
                                  std::optional<JobOutcome> failedOutcome,
                                  telemetry::TraceContext root) {
  if (failover + 1 > options_.maxFailovers ||
      forwarder_.simulator().now() >= deadlineAt) {
    // Out of budget: a job that terminated Failed is still a valid
    // outcome (the pre-failover behaviour); everything else is an error.
    if (failedOutcome.has_value()) {
      done(std::move(*failedOutcome));
    } else {
      done(std::move(why));
    }
    return;
  }
  if (telemetry_) {
    telemetry_->failovers->inc();
    if (telemetry_->tracer != nullptr) {
      telemetry_->tracer->instant("failover", "client:" + name_, root,
                                  {{"after", why.toString()}});
    }
  }
  log::ScopedTrace scopedTrace(root.trace);
  LIDC_FR_EVENT(recorder_, kWarn, "client",
                name_ + " failover attempt=" + std::to_string(failover + 1) +
                    " after " + why.toString());
  LIDC_LOG(kInfo, "client") << name_ << " failing over (attempt "
                            << (failover + 1) << "): " << why.toString();
  runAttempt(std::move(request), failover + 1, startedAt, deadlineAt,
             std::move(done), root);
}

void LidcClient::runAttempt(std::shared_ptr<ComputeRequest> request, int failover,
                            sim::Time startedAt, sim::Time deadlineAt,
                            OutcomeCallback done, telemetry::TraceContext root) {
  ComputeRequest attemptRequest = *request;
  if (failover > 0) {
    // A fresh request id guarantees the resubmission is a new name: no
    // content store, PIT aggregation, or gateway dedup entry can answer
    // with the dead job, so the forwarding strategy is free to place it
    // on a healthy cluster.
    attemptRequest.requestId = name_ + "-fo" + std::to_string(failover) + "-" +
                               std::to_string(next_request_id_++);
  }
  if (options_.bypassCache && attemptRequest.requestId.empty()) {
    attemptRequest.requestId = name_ + "-" + std::to_string(next_request_id_++);
  }
  auto shared = std::make_shared<ComputeRequest>(std::move(attemptRequest));
  submitAttempt(
      std::move(shared), 0, startedAt, deadlineAt,
      [this, request, failover, startedAt, deadlineAt, done,
       root](Result<SubmitResult> submitted) {
        if (!submitted.ok()) {
          if (submitted.status().code() == StatusCode::kResourceExhausted) {
            // The tenant's quota is exhausted federation-wide; a fresh
            // request id on another cluster hits the same budget. Report
            // RESOURCE_EXHAUSTED instead of burning the failover budget.
            done(submitted.status());
            return;
          }
          failoverOrGiveUp(request, failover, startedAt, deadlineAt, done,
                           submitted.status(), std::nullopt, root);
          return;
        }
        telemetry::Tracer* tracer = telemetry_ ? telemetry_->tracer : nullptr;
        if (tracer != nullptr && root && !submitted->jobId.empty()) {
          // Bind early so explain(job_id) works even for jobs that never
          // reach a terminal state (e.g. lost with their cluster).
          tracer->bindJob(submitted->jobId, root.trace);
        }
        if (submitted->cached) {
          // Cache hit: no job to wait for.
          JobOutcome outcome;
          outcome.submit = *submitted;
          outcome.finalStatus.state = k8s::JobState::kCompleted;
          outcome.finalStatus.cluster = submitted->cluster;
          outcome.finalStatus.resultPath = submitted->resultPath;
          outcome.finalStatus.outputBytes = submitted->outputBytes;
          outcome.totalLatency = forwarder_.simulator().now() - startedAt;
          outcome.failovers = failover;
          done(std::move(outcome));
          return;
        }
        // Circuit breaker gate: the ack names the cluster; if its
        // breaker refuses requests (tripped by consecutive failures —
        // gray gateways, limping nodes), abandon this attempt and fail
        // over with a fresh request id instead of parking the job on a
        // cluster that keeps answering but never delivers. Skipped once
        // the failover budget is spent — a possible job beats an error.
        if (CircuitBreaker* breaker = breakerFor(submitted->cluster);
            breaker != nullptr && failover < options_.maxFailovers &&
            !breaker->allowRequest(forwarder_.simulator().now())) {
          ++breaker_steered_;
          if (telemetry_) telemetry_->breakerSteered->inc();
          LIDC_FR_EVENT(recorder_, kWarn, "client",
                        name_ + " breaker open, steering off " +
                            submitted->cluster);
          failoverOrGiveUp(request, failover, startedAt, deadlineAt, done,
                           Status::Unavailable("circuit breaker open for " +
                                               submitted->cluster),
                           std::nullopt, root);
          return;
        }
        // Telemetry-steered proactive failover: the ack names the
        // cluster the job landed on; if the health plane says it is
        // degraded, resubmit elsewhere now rather than poll a job that
        // is likely to stall or fail. Skipped once the failover budget
        // is spent — a running job beats an error.
        if (options_.healthProvider && options_.minClusterHealth > 0.0 &&
            failover < options_.maxFailovers && !submitted->cluster.empty()) {
          const double health = options_.healthProvider(submitted->cluster);
          if (health < options_.minClusterHealth) {
            LIDC_FR_EVENT(recorder_, kWarn, "client",
                          name_ + " steering off " + submitted->cluster);
            failoverOrGiveUp(
                request, failover, startedAt, deadlineAt, done,
                Status::Unavailable("cluster " + submitted->cluster +
                                    " health below minimum"),
                std::nullopt, root);
            return;
          }
        }
        const SubmitResult submitCopy = *submitted;
        telemetry::TraceContext await;
        if (tracer != nullptr) {
          await = tracer->startSpan("await-completion", "client:" + name_, root,
                                    {{"job_id", submitCopy.jobId}});
        }
        const sim::Time pollStart = forwarder_.simulator().now();
        pollLoop(
            ndn::Name(submitCopy.statusName), 0, deadlineAt, pollStart,
            [this, request, failover, startedAt, deadlineAt, submitCopy, done,
             root, await, tracer](Result<JobStatusSnapshot> status) {
              if (tracer != nullptr && await) {
                tracer->setAttr(await, "outcome",
                                status.ok()
                                    ? std::string(k8s::jobStateName(status->state))
                                    : status.status().toString());
                tracer->endSpan(await);
              }
              const sim::Time now = forwarder_.simulator().now();
              if (!status.ok()) {
                // Status endpoint dark past the poll budget, the
                // progress watchdog fired, or the job vanished (reaped
                // after its cluster died): count the failure against
                // the cluster's breaker and resubmit.
                if (CircuitBreaker* b = breakerFor(submitCopy.cluster)) {
                  b->recordFailure(now);
                }
                failoverOrGiveUp(request, failover, startedAt, deadlineAt,
                                 done, status.status(), std::nullopt, root);
                return;
              }
              JobOutcome outcome;
              outcome.submit = submitCopy;
              outcome.finalStatus = *status;
              outcome.totalLatency = forwarder_.simulator().now() - startedAt;
              outcome.failovers = failover;
              if (status->state == k8s::JobState::kFailed) {
                if (CircuitBreaker* b = breakerFor(submitCopy.cluster)) {
                  b->recordFailure(now);
                }
                failoverOrGiveUp(request, failover, startedAt, deadlineAt,
                                 done,
                                 Status::Unavailable("job failed: " +
                                                     status->error),
                                 std::move(outcome), root);
                return;
              }
              if (CircuitBreaker* b = breakerFor(submitCopy.cluster)) {
                b->recordSuccess(now);
              }
              done(std::move(outcome));
            },
            await ? await : root);
      },
      root);
}

void LidcClient::fetchData(const ndn::Name& objectName, FetchCallback done,
                           telemetry::TraceContext parent,
                           std::string flowTag) {
  telemetry::FlowLabel label{options_.tenant, std::move(flowTag)};
  telemetry::Tracer* tracer = telemetry_ ? telemetry_->tracer : nullptr;
  if (tracer == nullptr || !parent) {
    retriever_->fetch(objectName, std::move(done), {}, std::move(label));
    return;
  }
  const telemetry::TraceContext span =
      tracer->startSpan("data-retrieval", "client:" + name_, parent,
                        {{"object", objectName.toUri()}});
  retriever_->fetch(
      objectName,
      [tracer, span, done = std::move(done)](
          Result<std::vector<std::uint8_t>> result) {
        if (result.ok()) {
          tracer->setAttr(span, "bytes", std::to_string(result->size()));
        } else {
          tracer->setAttr(span, "error", result.status().toString());
        }
        tracer->endSpan(span);
        done(std::move(result));
      },
      span, std::move(label));
}

void LidcClient::publishData(const std::string& path,
                             std::vector<std::uint8_t> bytes,
                             PublishCallback done,
                             telemetry::TraceContext parent,
                             std::string flowTag) {
  // Digest binds the command name to the exact payload bytes.
  std::uint64_t digest = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : bytes) {
    digest ^= byte;
    digest *= 0x100000001b3ULL;
  }
  ndn::Name name = kPublishPrefix;
  // Tenant attribution: QoS gateways charge the publish against the
  // tenant's byte quota and strip the component from the stored name.
  if (!options_.tenant.empty()) name.append("tenant=" + options_.tenant);
  for (auto part : strings::splitSkipEmpty(path, '/')) name.append(part);
  name.append("sha=" + std::to_string(digest));

  telemetry::Tracer* tracer = telemetry_ ? telemetry_->tracer : nullptr;
  telemetry::TraceContext span;
  if (tracer != nullptr && parent) {
    span = tracer->startSpan("data-publish", "client:" + name_, parent,
                             {{"path", path},
                              {"bytes", std::to_string(bytes.size())}});
  }
  auto closeSpan = [tracer, span](const std::string& outcome) {
    if (tracer != nullptr && span) {
      tracer->setAttr(span, "outcome", outcome);
      tracer->endSpan(span);
    }
  };

  ndn::Interest interest(name);
  interest.setMustBeFresh(true);
  interest.setLifetime(options_.interestLifetime);
  interest.setApplicationParameters(std::move(bytes));
  interest.setTraceContext(span);
  interest.setFlowLabel({options_.tenant, std::move(flowTag)});

  face_->expressInterest(
      interest,
      [done, closeSpan](const ndn::Interest&, const ndn::Data& data) {
        const KvMap fields = decodeKv(data.contentAsString());
        if (auto it = fields.find("error"); it != fields.end()) {
          closeSpan("error");
          done(Status::InvalidArgument(it->second));
          return;
        }
        if (auto it = fields.find("stored"); it != fields.end()) {
          closeSpan("stored");
          done(ndn::Name(it->second));
          return;
        }
        closeSpan("malformed-ack");
        done(Status::Internal("malformed publish ack"));
      },
      [done, closeSpan](const ndn::Interest&, const ndn::Nack& nack) {
        closeSpan("nack");
        done(nackStatus(nack.reason(), "publish", 1));
      },
      [done, closeSpan](const ndn::Interest& i) {
        closeSpan("timeout");
        done(Status::Timeout("publish timed out: " + i.name().toUri()));
      });
}

void LidcClient::queryClusterInfo(const std::string& cluster, InfoCallback done) {
  ndn::Name name = kInfoPrefix;
  name.append(cluster);
  ndn::Interest interest(name);
  interest.setMustBeFresh(true);  // capabilities change with load
  interest.setLifetime(options_.interestLifetime);

  face_->expressInterest(
      interest,
      [done](const ndn::Interest&, const ndn::Data& data) {
        const KvMap fields = decodeKv(data.contentAsString());
        ClusterInfo info;
        if (auto it = fields.find("cluster"); it != fields.end()) {
          info.cluster = it->second;
        }
        if (auto it = fields.find("free_cpu_m"); it != fields.end()) {
          info.freeCpu = MilliCpu(strings::parseUint(it->second).value_or(0));
        }
        if (auto it = fields.find("free_mem_bytes"); it != fields.end()) {
          info.freeMemory = ByteSize(strings::parseUint(it->second).value_or(0));
        }
        if (auto it = fields.find("total_cpu_m"); it != fields.end()) {
          info.totalCpu = MilliCpu(strings::parseUint(it->second).value_or(0));
        }
        if (auto it = fields.find("total_mem_bytes"); it != fields.end()) {
          info.totalMemory = ByteSize(strings::parseUint(it->second).value_or(0));
        }
        if (auto it = fields.find("running_jobs"); it != fields.end()) {
          info.runningJobs = strings::parseUint(it->second).value_or(0);
        }
        if (auto it = fields.find("nodes"); it != fields.end()) {
          info.nodes = strings::parseUint(it->second).value_or(0);
        }
        if (auto it = fields.find("apps"); it != fields.end()) {
          for (auto app : strings::splitSkipEmpty(it->second, ',')) {
            info.apps.emplace_back(app);
          }
        }
        done(std::move(info));
      },
      [done](const ndn::Interest&, const ndn::Nack& nack) {
        done(Status::Unavailable("info query nacked: " +
                                 std::string(ndn::nackReasonName(nack.reason()))));
      },
      [done](const ndn::Interest& i) {
        done(Status::Timeout("info query timed out: " + i.name().toUri()));
      });
}

}  // namespace lidc::core
