#include "core/client.hpp"

#include "common/logging.hpp"
#include "core/wire_format.hpp"

namespace lidc::core {

LidcClient::LidcClient(ndn::Forwarder& forwarder, std::string name,
                       ClientOptions options, std::uint64_t seed)
    : forwarder_(forwarder), name_(std::move(name)), options_(options), rng_(seed) {
  face_ = std::make_shared<ndn::AppFace>("app://client/" + name_,
                                         forwarder_.simulator(), seed);
  forwarder_.addFace(face_);
  retriever_ = std::make_unique<datalake::Retriever>(*face_);
}

void LidcClient::submit(ComputeRequest request, SubmitCallback done) {
  if (options_.bypassCache && request.requestId.empty()) {
    // Unique request id defeats caches and Interest aggregation.
    request.requestId = name_ + "-" + std::to_string(next_request_id_++);
  }
  auto shared = std::make_shared<ComputeRequest>(std::move(request));
  submitAttempt(std::move(shared), 0, forwarder_.simulator().now(), std::move(done));
}

void LidcClient::submitAttempt(std::shared_ptr<ComputeRequest> request, int attempt,
                               sim::Time startedAt, SubmitCallback done) {
  ++submits_;
  ndn::Interest interest(request->toName());
  interest.setLifetime(options_.interestLifetime);
  // MustBeFresh keeps network caches from answering with acks older
  // than the gateway's ackFreshness; within that window, identical
  // canonical requests may legitimately be served from any CS.
  interest.setMustBeFresh(true);

  face_->expressInterest(
      interest,
      [this, startedAt, done](const ndn::Interest&, const ndn::Data& data) {
        const KvMap fields = decodeKv(data.contentAsString());
        if (auto it = fields.find("error"); it != fields.end()) {
          done(Status::InvalidArgument(it->second));
          return;
        }
        SubmitResult result;
        if (auto it = fields.find("job_id"); it != fields.end()) {
          result.jobId = it->second;
        }
        if (auto it = fields.find("cluster"); it != fields.end()) {
          result.cluster = it->second;
        }
        if (auto it = fields.find("status_name"); it != fields.end()) {
          result.statusName = it->second;
        } else if (!result.jobId.empty() && !result.cluster.empty()) {
          result.statusName = makeStatusName(result.cluster, result.jobId).toUri();
        }
        result.cached = fields.count("cached") > 0;
        result.deduplicated = fields.count("deduplicated") > 0;
        if (auto it = fields.find("result"); it != fields.end()) {
          result.resultPath = it->second;
        }
        if (auto it = fields.find("output_bytes"); it != fields.end()) {
          result.outputBytes = strings::parseUint(it->second).value_or(0);
        }
        result.placementLatency = forwarder_.simulator().now() - startedAt;
        done(std::move(result));
      },
      [done](const ndn::Interest&, const ndn::Nack& nack) {
        done(Status::Unavailable(
            "compute request nacked: " +
            std::string(ndn::nackReasonName(nack.reason()))));
      },
      [this, request, attempt, startedAt, done](const ndn::Interest&) {
        if (attempt + 1 <= options_.maxSubmitRetries) {
          submitAttempt(request, attempt + 1, startedAt, done);
        } else {
          done(Status::Timeout("compute request timed out after " +
                               std::to_string(attempt + 1) + " attempts"));
        }
      });
}

void LidcClient::queryStatus(const ndn::Name& statusName, StatusCallback done) {
  ndn::Interest interest(statusName);
  interest.setMustBeFresh(true);  // never accept a stale cached state
  interest.setLifetime(options_.interestLifetime);

  face_->expressInterest(
      interest,
      [done](const ndn::Interest&, const ndn::Data& data) {
        const KvMap fields = decodeKv(data.contentAsString());
        JobStatusSnapshot snapshot;
        if (auto it = fields.find("error");
            it != fields.end() && fields.count("state") == 0) {
          done(Status::NotFound(it->second));
          return;
        }
        if (auto it = fields.find("state"); it != fields.end()) {
          const std::string& state = it->second;
          if (state == "Pending") {
            snapshot.state = k8s::JobState::kPending;
          } else if (state == "Running") {
            snapshot.state = k8s::JobState::kRunning;
          } else if (state == "Completed") {
            snapshot.state = k8s::JobState::kCompleted;
          } else {
            snapshot.state = k8s::JobState::kFailed;
          }
        }
        if (auto it = fields.find("cluster"); it != fields.end()) {
          snapshot.cluster = it->second;
        }
        if (auto it = fields.find("result"); it != fields.end()) {
          snapshot.resultPath = it->second;
        }
        if (auto it = fields.find("output_bytes"); it != fields.end()) {
          snapshot.outputBytes = strings::parseUint(it->second).value_or(0);
        }
        if (auto it = fields.find("runtime_s"); it != fields.end()) {
          snapshot.runtime =
              sim::Duration::seconds(strings::parseDouble(it->second).value_or(0));
        }
        if (auto it = fields.find("error"); it != fields.end()) {
          snapshot.error = it->second;
        }
        done(std::move(snapshot));
      },
      [done](const ndn::Interest&, const ndn::Nack& nack) {
        done(Status::Unavailable("status query nacked: " +
                                 std::string(ndn::nackReasonName(nack.reason()))));
      },
      [done](const ndn::Interest& i) {
        done(Status::Timeout("status query timed out: " + i.name().toUri()));
      });
}

void LidcClient::waitForCompletion(const ndn::Name& statusName, StatusCallback done) {
  pollLoop(statusName, 0, std::move(done));
}

void LidcClient::pollLoop(const ndn::Name& statusName, int consecutiveFailures,
                          StatusCallback done) {
  queryStatus(statusName, [this, statusName, consecutiveFailures,
                           done](Result<JobStatusSnapshot> result) {
    if (!result.ok()) {
      // Timeouts on a lossy path are transient: keep polling within the
      // failure budget. Nacks and other errors are terminal.
      if (result.status().code() == StatusCode::kTimeout &&
          consecutiveFailures + 1 < options_.maxStatusPollFailures) {
        forwarder_.simulator().scheduleAfter(
            options_.statusPollInterval, [this, statusName, consecutiveFailures,
                                          done] {
              pollLoop(statusName, consecutiveFailures + 1, done);
            });
        return;
      }
      done(std::move(result));
      return;
    }
    if (result->state == k8s::JobState::kCompleted ||
        result->state == k8s::JobState::kFailed) {
      done(std::move(result));
      return;
    }
    forwarder_.simulator().scheduleAfter(
        options_.statusPollInterval,
        [this, statusName, done] { pollLoop(statusName, 0, done); });
  });
}

void LidcClient::runToCompletion(ComputeRequest request, OutcomeCallback done) {
  const sim::Time startedAt = forwarder_.simulator().now();
  submit(std::move(request), [this, startedAt, done](Result<SubmitResult> submitted) {
    if (!submitted.ok()) {
      done(submitted.status());
      return;
    }
    if (submitted->cached) {
      // Cache hit: no job to wait for.
      JobOutcome outcome;
      outcome.submit = *submitted;
      outcome.finalStatus.state = k8s::JobState::kCompleted;
      outcome.finalStatus.cluster = submitted->cluster;
      outcome.finalStatus.resultPath = submitted->resultPath;
      outcome.finalStatus.outputBytes = submitted->outputBytes;
      outcome.totalLatency = forwarder_.simulator().now() - startedAt;
      done(std::move(outcome));
      return;
    }
    const SubmitResult submitCopy = *submitted;
    waitForCompletion(
        ndn::Name(submitCopy.statusName),
        [this, startedAt, submitCopy, done](Result<JobStatusSnapshot> status) {
          if (!status.ok()) {
            done(status.status());
            return;
          }
          JobOutcome outcome;
          outcome.submit = submitCopy;
          outcome.finalStatus = *status;
          outcome.totalLatency = forwarder_.simulator().now() - startedAt;
          done(std::move(outcome));
        });
  });
}

void LidcClient::fetchData(const ndn::Name& objectName, FetchCallback done) {
  retriever_->fetch(objectName, std::move(done));
}

void LidcClient::publishData(const std::string& path,
                             std::vector<std::uint8_t> bytes,
                             PublishCallback done) {
  // Digest binds the command name to the exact payload bytes.
  std::uint64_t digest = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : bytes) {
    digest ^= byte;
    digest *= 0x100000001b3ULL;
  }
  ndn::Name name = kPublishPrefix;
  for (auto part : strings::splitSkipEmpty(path, '/')) name.append(part);
  name.append("sha=" + std::to_string(digest));

  ndn::Interest interest(name);
  interest.setMustBeFresh(true);
  interest.setLifetime(options_.interestLifetime);
  interest.setApplicationParameters(std::move(bytes));

  face_->expressInterest(
      interest,
      [done](const ndn::Interest&, const ndn::Data& data) {
        const KvMap fields = decodeKv(data.contentAsString());
        if (auto it = fields.find("error"); it != fields.end()) {
          done(Status::InvalidArgument(it->second));
          return;
        }
        if (auto it = fields.find("stored"); it != fields.end()) {
          done(ndn::Name(it->second));
          return;
        }
        done(Status::Internal("malformed publish ack"));
      },
      [done](const ndn::Interest&, const ndn::Nack& nack) {
        done(Status::Unavailable("publish nacked: " +
                                 std::string(ndn::nackReasonName(nack.reason()))));
      },
      [done](const ndn::Interest& i) {
        done(Status::Timeout("publish timed out: " + i.name().toUri()));
      });
}

void LidcClient::queryClusterInfo(const std::string& cluster, InfoCallback done) {
  ndn::Name name = kInfoPrefix;
  name.append(cluster);
  ndn::Interest interest(name);
  interest.setMustBeFresh(true);  // capabilities change with load
  interest.setLifetime(options_.interestLifetime);

  face_->expressInterest(
      interest,
      [done](const ndn::Interest&, const ndn::Data& data) {
        const KvMap fields = decodeKv(data.contentAsString());
        ClusterInfo info;
        if (auto it = fields.find("cluster"); it != fields.end()) {
          info.cluster = it->second;
        }
        if (auto it = fields.find("free_cpu_m"); it != fields.end()) {
          info.freeCpu = MilliCpu(strings::parseUint(it->second).value_or(0));
        }
        if (auto it = fields.find("free_mem_bytes"); it != fields.end()) {
          info.freeMemory = ByteSize(strings::parseUint(it->second).value_or(0));
        }
        if (auto it = fields.find("total_cpu_m"); it != fields.end()) {
          info.totalCpu = MilliCpu(strings::parseUint(it->second).value_or(0));
        }
        if (auto it = fields.find("total_mem_bytes"); it != fields.end()) {
          info.totalMemory = ByteSize(strings::parseUint(it->second).value_or(0));
        }
        if (auto it = fields.find("running_jobs"); it != fields.end()) {
          info.runningJobs = strings::parseUint(it->second).value_or(0);
        }
        if (auto it = fields.find("nodes"); it != fields.end()) {
          info.nodes = strings::parseUint(it->second).value_or(0);
        }
        if (auto it = fields.find("apps"); it != fields.end()) {
          for (auto app : strings::splitSkipEmpty(it->second, ',')) {
            info.apps.emplace_back(app);
          }
        }
        done(std::move(info));
      },
      [done](const ndn::Interest&, const ndn::Nack& nack) {
        done(Status::Unavailable("info query nacked: " +
                                 std::string(ndn::nackReasonName(nack.reason()))));
      },
      [done](const ndn::Interest& i) {
        done(Status::Timeout("info query timed out: " + i.name().toUri()));
      });
}

}  // namespace lidc::core
