#include "core/checkpoint_format.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "core/wire_format.hpp"

namespace lidc::core {

namespace {

constexpr std::size_t kMaxJobIdLength = 128;

bool validJobId(std::string_view jobId) {
  if (jobId.empty() || jobId.size() > kMaxJobIdLength) return false;
  if (jobId.front() == '_') return false;  // reserved for _manifest & friends
  return std::all_of(jobId.begin(), jobId.end(), [](unsigned char c) {
    return c > 0x20 && c < 0x7f && c != '/' && c != ';' && c != '=';
  });
}

}  // namespace

ndn::Name makeCkptName(const std::string& jobId, std::uint64_t epoch) {
  ndn::Name name = kCkptPrefix;
  name.append(jobId);
  name.append(std::to_string(epoch));
  return name;
}

ndn::Name makeCkptManifestName(const std::string& jobId) {
  ndn::Name name = kCkptPrefix;
  name.append(jobId);
  name.append("_manifest");
  return name;
}

Result<CkptRef> parseCkptRef(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    return Status::InvalidArgument("ckpt ref needs <job_id>/<epoch>");
  }
  if (text.find('/', slash + 1) != std::string_view::npos) {
    return Status::InvalidArgument("ckpt ref has too many components");
  }
  CkptRef ref;
  ref.jobId = std::string(text.substr(0, slash));
  if (!validJobId(ref.jobId)) {
    return Status::InvalidArgument("malformed ckpt job id");
  }
  const std::string_view epochText = text.substr(slash + 1);
  auto epoch = strings::parseUint(epochText);
  if (!epoch || epochText.empty() || epochText.size() > 19) {
    return Status::InvalidArgument("malformed ckpt epoch");
  }
  if (*epoch == 0) {
    return Status::InvalidArgument("ckpt epochs start at 1");
  }
  ref.epoch = *epoch;
  return ref;
}

Result<CkptRef> parseCkptName(const ndn::Name& name) {
  if (!kCkptPrefix.isPrefixOf(name)) {
    return Status::InvalidArgument("not under " + kCkptPrefix.toUri());
  }
  if (name.size() != kCkptPrefix.size() + 2) {
    return Status::InvalidArgument("ckpt name needs /<job_id>/<epoch>");
  }
  return parseCkptRef(name[kCkptPrefix.size()].toString() + "/" +
                      name[kCkptPrefix.size() + 1].toString());
}

std::uint64_t ckptDigest(const std::vector<std::uint8_t>& payload) {
  std::uint64_t digest = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : payload) {
    digest ^= byte;
    digest *= 0x100000001b3ULL;
  }
  return digest;
}

std::string encodeCkptManifest(const CkptManifest& manifest) {
  return encodeKv({{"app", manifest.app},
                   {"bytes", std::to_string(manifest.bytes)},
                   {"digest", std::to_string(manifest.digest)},
                   {"epoch", std::to_string(manifest.epoch)},
                   {"job", manifest.jobId},
                   {"progress_pm", std::to_string(manifest.progressPermille)}});
}

Result<CkptManifest> decodeCkptManifest(std::string_view text) {
  // Bound hostile input before parsing: a manifest is a handful of short
  // fields, never megabytes.
  if (text.size() > 4096) {
    return Status::InvalidArgument("manifest too large");
  }
  const KvMap fields = decodeKv(text);
  CkptManifest manifest;
  auto require = [&fields](const char* key) -> Result<std::string> {
    auto it = fields.find(key);
    if (it == fields.end()) {
      return Status::InvalidArgument(std::string("manifest missing ") + key);
    }
    return it->second;
  };
  auto requireUint = [&require](const char* key) -> Result<std::uint64_t> {
    auto raw = require(key);
    if (!raw.ok()) return raw.status();
    auto value = strings::parseUint(*raw);
    if (!value || raw->empty() || raw->size() > 20) {
      return Status::InvalidArgument(std::string("manifest field ") + key +
                                     " is not a number");
    }
    return *value;
  };

  auto job = require("job");
  if (!job.ok()) return job.status();
  if (!validJobId(*job)) {
    return Status::InvalidArgument("manifest carries a malformed job id");
  }
  manifest.jobId = *job;
  if (auto it = fields.find("app"); it != fields.end()) manifest.app = it->second;

  auto epoch = requireUint("epoch");
  if (!epoch.ok()) return epoch.status();
  if (*epoch == 0) return Status::InvalidArgument("ckpt epochs start at 1");
  manifest.epoch = *epoch;

  auto bytes = requireUint("bytes");
  if (!bytes.ok()) return bytes.status();
  manifest.bytes = *bytes;

  auto digest = requireUint("digest");
  if (!digest.ok()) return digest.status();
  manifest.digest = *digest;

  auto progress = requireUint("progress_pm");
  if (!progress.ok()) return progress.status();
  if (*progress > 1000) {
    return Status::InvalidArgument("manifest progress_pm out of range");
  }
  manifest.progressPermille = static_cast<std::uint32_t>(*progress);
  return manifest;
}

}  // namespace lidc::core
