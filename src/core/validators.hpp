// Application-specific request validation (paper SIV-B): checks are
// modular and managed per application. The BLAST validator confirms
// SRR id syntax; a compression tool has different checks; new apps
// register their own.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "common/status.hpp"
#include "core/semantic_name.hpp"
#include "datalake/object_store.hpp"

namespace lidc::core {

/// Validates one parsed request; OK means the Gateway may launch it.
using Validator = std::function<Status(const ComputeRequest&)>;

class ValidatorRegistry {
 public:
  /// Registers (or replaces) the validator for an application name.
  void add(const std::string& app, Validator validator) {
    validators_[app] = std::move(validator);
  }
  void remove(const std::string& app) { validators_.erase(app); }
  [[nodiscard]] bool has(const std::string& app) const {
    return validators_.count(app) > 0;
  }

  /// Runs the app's validator; apps without one pass by default.
  [[nodiscard]] Status validate(const ComputeRequest& request) const {
    auto it = validators_.find(request.app);
    if (it == validators_.end()) return Status::Ok();
    return it->second(request);
  }

 private:
  std::map<std::string, Validator> validators_;
};

/// True iff `id` looks like an SRA run accession ("SRR" + 6-9 digits).
bool isValidSrrId(const std::string& id);

/// The Magic-BLAST validator: requires a well-formed srr_id parameter
/// and at least 1 CPU / 1 GiB requests.
Validator makeBlastValidator();

/// Example second application (paper SIV-B): a file compression tool
/// that needs an "input" dataset but no SRR id.
Validator makeCompressionValidator();

/// The generic transform stage app: needs at least one input object
/// (dataset= or input=), like compression, but no SRR id.
Validator makeTransformValidator();

/// Runs both validators; fails on the first error.
Validator combineValidators(Validator first, Validator second);

/// Checks that every dataset the request references — the srr_id and
/// input parameters plus all dataset= entries — exists in the local
/// data lake, so jobs that would fail on missing inputs are rejected at
/// the gateway instead of consuming cluster resources.
Validator makeDataLakeValidator(const datalake::ObjectStore& store);

}  // namespace lidc::core
