#include "core/validators.hpp"

#include <cctype>

#include "common/strings.hpp"

namespace lidc::core {

bool isValidSrrId(const std::string& id) {
  if (id.size() < 9 || id.size() > 12) return false;
  if (id.compare(0, 3, "SRR") != 0) return false;
  for (std::size_t i = 3; i < id.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(id[i]))) return false;
  }
  return true;
}

Validator makeBlastValidator() {
  return [](const ComputeRequest& request) -> Status {
    auto it = request.params.find("srr_id");
    if (it == request.params.end()) {
      return Status::InvalidArgument("BLAST requires an srr_id parameter");
    }
    if (!isValidSrrId(it->second)) {
      return Status::InvalidArgument("malformed SRR id '" + it->second + "'");
    }
    if (request.cpu.millicores() < 1000) {
      return Status::InvalidArgument("BLAST requires at least cpu=1");
    }
    if (request.memory < ByteSize::fromGiB(1)) {
      return Status::InvalidArgument("BLAST requires at least mem=1 (GB)");
    }
    return Status::Ok();
  };
}

Validator makeCompressionValidator() {
  return [](const ComputeRequest& request) -> Status {
    if (request.datasets.empty() && request.params.count("input") == 0) {
      return Status::InvalidArgument(
          "compression requires a dataset= or input= parameter");
    }
    // No SRR id requirement — each app owns its own checks (paper SIV-B).
    return Status::Ok();
  };
}

Validator makeTransformValidator() {
  return [](const ComputeRequest& request) -> Status {
    if (request.datasets.empty() && request.params.count("input") == 0) {
      return Status::InvalidArgument(
          "transform requires a dataset= or input= parameter");
    }
    return Status::Ok();
  };
}

Validator makeDataLakeValidator(const datalake::ObjectStore& store) {
  return [&store](const ComputeRequest& request) -> Status {
    auto checkExists = [&store](const std::string& object) -> Status {
      ndn::Name name = kDataPrefix;
      for (auto part : strings::splitSkipEmpty(object, '/')) name.append(part);
      if (!store.contains(name)) {
        return Status::NotFound("dataset not in data lake: " + name.toUri());
      }
      return Status::Ok();
    };
    if (auto it = request.params.find("srr_id"); it != request.params.end()) {
      LIDC_RETURN_IF_ERROR(checkExists(it->second));
    }
    if (auto it = request.params.find("input"); it != request.params.end()) {
      LIDC_RETURN_IF_ERROR(checkExists(it->second));
    }
    for (const auto& dataset : request.datasets) {
      LIDC_RETURN_IF_ERROR(checkExists(dataset));
    }
    return Status::Ok();
  };
}

Validator combineValidators(Validator first, Validator second) {
  return [first = std::move(first),
          second = std::move(second)](const ComputeRequest& request) -> Status {
    LIDC_RETURN_IF_ERROR(first(request));
    return second(request);
  };
}

}  // namespace lidc::core
