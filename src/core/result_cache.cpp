#include "core/result_cache.hpp"

namespace lidc::core {

void ResultCache::put(const ndn::Name& canonicalName, CachedResult result) {
  if (capacity_ == 0) return;
  auto it = entries_.find(canonicalName);
  if (it != entries_.end()) {
    it->second.first = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second.second);
    return;
  }
  lru_.push_front(canonicalName);
  entries_.emplace(canonicalName, std::make_pair(std::move(result), lru_.begin()));
  evictIfNeeded();
}

std::optional<CachedResult> ResultCache::get(const ndn::Name& canonicalName,
                                             sim::Time now) {
  auto it = entries_.find(canonicalName);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  if (now - it->second.first.storedAt > ttl_) {
    // Expired: drop it.
    lru_.erase(it->second.second);
    entries_.erase(it);
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second.second);
  ++hits_;
  return it->second.first;
}

void ResultCache::clear() {
  entries_.clear();
  lru_.clear();
}

void ResultCache::evictIfNeeded() {
  while (entries_.size() > capacity_ && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace lidc::core
