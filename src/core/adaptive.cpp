#include "core/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.hpp"
#include "replica/directory.hpp"

namespace lidc::core {

void AdaptivePlacement::recordCompletion(const std::string& cluster,
                                         sim::Duration totalLatency) {
  const double seconds = totalLatency.toSeconds();
  auto [it, inserted] = observed_latency_s_.try_emplace(cluster, seconds);
  if (!inserted) {
    it->second = (1.0 - options_.alpha) * it->second + options_.alpha * seconds;
  }
}

void AdaptivePlacement::observeHealth(const std::string& cluster, double score) {
  if (cluster.empty()) return;
  observed_health_[cluster] = score < 0.0 ? 0.0 : (score > 1.0 ? 1.0 : score);
}

double AdaptivePlacement::observedHealth(const std::string& cluster) const {
  auto it = observed_health_.find(cluster);
  return it == observed_health_.end() ? 1.0 : it->second;
}

void AdaptivePlacement::observeBreaker(const std::string& cluster, bool open) {
  if (cluster.empty()) return;
  breaker_open_[cluster] = open;
}

bool AdaptivePlacement::breakerOpen(const std::string& cluster) const {
  auto it = breaker_open_.find(cluster);
  return it != breaker_open_.end() && it->second;
}

void AdaptivePlacement::observeInfo(const ClusterInfo& info) {
  if (info.cluster.empty() || info.totalCpu.millicores() == 0) return;
  advertised_utilization_[info.cluster] =
      1.0 - static_cast<double>(info.freeCpu.millicores()) /
                static_cast<double>(info.totalCpu.millicores());
}

std::uint64_t AdaptivePlacement::computeCost(const std::string& cluster) const {
  double cost = 0.0;
  if (auto it = observed_latency_s_.find(cluster); it != observed_latency_s_.end()) {
    cost += options_.latencyCostUsPerSecond * it->second;
  }
  // Prefer load learned from /ndn/k8s/info advertisements; fall back to
  // reading the (in-process) cluster object when none were observed.
  if (auto it = advertised_utilization_.find(cluster);
      it != advertised_utilization_.end()) {
    cost += options_.loadCostUs * it->second;
  } else if (auto* host = const_cast<ClusterOverlay&>(overlay_).cluster(cluster);
             host != nullptr) {
    const auto allocatable = host->cluster().totalAllocatable();
    const auto allocated = host->cluster().totalAllocated();
    if (allocatable.cpu.millicores() > 0) {
      const double utilization =
          static_cast<double>(allocated.cpu.millicores()) /
          static_cast<double>(allocatable.cpu.millicores());
      cost += options_.loadCostUs * utilization;
    }
  }
  if (auto it = observed_health_.find(cluster); it != observed_health_.end()) {
    cost += options_.healthCostUs * (1.0 - it->second);
    if (it->second <= options_.unhealthyThreshold) {
      cost += options_.unhealthyExtraCostUs;
    }
  }
  if (auto it = breaker_open_.find(cluster); it != breaker_open_.end() && it->second) {
    cost += options_.breakerCostUs;
  }
  if (replica_directory_ != nullptr && options_.dataLocalityCostUs > 0.0 &&
      !tracked_datasets_.empty()) {
    std::size_t missing = 0;
    for (const ndn::Name& dataset : tracked_datasets_) {
      const auto holders = replica_directory_->holders(dataset);
      if (std::find(holders.begin(), holders.end(), cluster) == holders.end()) {
        ++missing;
      }
    }
    cost += options_.dataLocalityCostUs * static_cast<double>(missing) /
            static_cast<double>(tracked_datasets_.size());
  }
  return static_cast<std::uint64_t>(std::llround(cost));
}

void AdaptivePlacement::trackDataset(const ndn::Name& dataset) {
  if (std::find(tracked_datasets_.begin(), tracked_datasets_.end(), dataset) ==
      tracked_datasets_.end()) {
    tracked_datasets_.push_back(dataset);
  }
}

int AdaptivePlacement::tick() {
  int reannounced = 0;
  for (const auto& name : overlay_.clusterNames()) {
    const std::uint64_t cost = computeCost(name);
    const std::uint64_t applied =
        applied_cost_us_.count(name) > 0 ? applied_cost_us_.at(name) : 0;
    const std::uint64_t delta = cost > applied ? cost - applied : applied - cost;
    if (delta < options_.updateThresholdUs) continue;

    // Re-announce the compute prefix with the new bias. Withdrawing and
    // re-installing only touches /ndn/k8s/compute routes for this
    // producer; data and status routes are untouched.
    overlay_.topology().uninstallRoutesTo(kComputePrefix, name);
    overlay_.topology().installRoutesTo(kComputePrefix, name, cost);
    applied_cost_us_[name] = cost;
    ++reannounced;
    ++updates_;
    LIDC_LOG(kDebug, "adaptive")
        << "cluster " << name << " compute cost -> " << cost << "us";
  }
  return reannounced;
}

std::uint64_t AdaptivePlacement::extraCostUs(const std::string& cluster) const {
  auto it = applied_cost_us_.find(cluster);
  return it == applied_cost_us_.end() ? 0 : it->second;
}

}  // namespace lidc::core
