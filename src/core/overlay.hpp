// ClusterOverlay: the loosely coupled overlay of compute clusters the
// paper builds (SI: "a loosely coupled overlay of compute clusters
// using named cluster endpoints"). Clusters join and leave at runtime;
// routes for the LIDC namespaces are (un)installed automatically, so
// clients keep expressing the same names regardless of which clusters
// currently exist — the location-independence property.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/compute_cluster.hpp"
#include "net/topology.hpp"

namespace lidc::core {

/// Which forwarding strategy the overlay uses for /ndn/k8s/compute.
enum class PlacementStrategy {
  kBestRoute,    // nearest cluster (lowest path latency), failover on nack
  kLoadBalance,  // SRTT-weighted spread across clusters
  kMulticast,    // flood (first answer wins)
  kRoundRobin,   // rotate
  kAsf,          // observed-RTT best with periodic probing
};

/// Parses a strategy name ("best-route", "load-balance", "multicast",
/// "round-robin", "asf"); nullopt for anything else.
std::optional<PlacementStrategy> parsePlacementStrategy(std::string_view name);

class ClusterOverlay {
 public:
  explicit ClusterOverlay(sim::Simulator& sim) : topology_(sim) {}

  [[nodiscard]] net::Topology& topology() noexcept { return topology_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept {
    return topology_.simulator();
  }

  /// Plain forwarder node (client host or intermediate router).
  ndn::Forwarder& addNode(const std::string& name) {
    return topology_.addNode(name);
  }

  /// Creates a topology node named config.name hosting a ComputeCluster.
  ComputeCluster& addCluster(ComputeClusterConfig config);

  [[nodiscard]] ComputeCluster* cluster(const std::string& name);
  [[nodiscard]] std::vector<std::string> clusterNames() const;

  /// Connects two nodes with a link.
  void connect(const std::string& a, const std::string& b, net::LinkParams params) {
    topology_.connect(a, b, params);
  }

  /// Announces a cluster into the overlay: installs routes at every node
  /// for /ndn/k8s/compute, /ndn/k8s/data, and /ndn/k8s/status/<cluster>
  /// toward it. Call after its links exist. `computeExtraCostUs` biases
  /// only the compute-prefix routes (adaptive placement, paper SVII).
  void announceCluster(const std::string& name,
                       std::uint64_t computeExtraCostUs = 0);

  /// Withdraws a cluster's routes (cluster leaving the overlay). The
  /// cluster object and node survive; re-announce to rejoin.
  void withdrawCluster(const std::string& name);

  /// Re-announces every currently announced cluster. Needed after the
  /// topology grows: route installation only reaches nodes that existed
  /// when announceCluster() ran, so nodes added later (e.g. a cluster
  /// joining the overlay) call this to learn paths to their peers.
  void refreshAnnouncements();

  /// Withdraw + take all of the cluster's links down (simulated outage).
  void failCluster(const std::string& name);
  /// Bring links back + re-announce.
  void recoverCluster(const std::string& name);

  /// Applies a forwarding strategy for the compute prefix at every node.
  /// (New nodes added later need another call.)
  void setPlacementStrategy(PlacementStrategy strategy, std::uint64_t seed = 99);

  /// Hooks every current node and cluster into `registry` (and `tracer`,
  /// when given): forwarder counters everywhere, plus gateway counters,
  /// capacity gauges, and a /ndn/k8s/telemetry publisher per cluster.
  /// Like setPlacementStrategy(), nodes added later need another call.
  void attachTelemetry(telemetry::MetricsRegistry& registry,
                       telemetry::Tracer* tracer = nullptr);

  /// Points every current node's forwarder and every cluster's gateway
  /// at `recorder` (see FlightRecorder). Nodes added later need another
  /// call; null detaches.
  void attachFlightRecorder(telemetry::FlightRecorder* recorder);

  /// Attaches the traffic observability plane to every current cluster:
  /// each gets its own FlowAccountant (tapping its forwarder's link
  /// faces), and per-link capacities are learned from the topology's
  /// edge bandwidths so utilization is computable. Like
  /// attachTelemetry(), clusters/links added later need another call.
  void enableFlowAccounting(telemetry::FlowAccountantOptions options = {});

 private:
  net::Topology topology_;
  std::map<std::string, std::unique_ptr<ComputeCluster>> clusters_;
  std::vector<std::string> announced_;
};

}  // namespace lidc::core
