#include "core/circuit_breaker.hpp"

namespace lidc::core {

std::string_view breakerStateName(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

BreakerState CircuitBreaker::state(sim::Time now) {
  if (state_ == BreakerState::kOpen && now >= reopen_at_) {
    probes_inflight_ = 0;
    probe_successes_ = 0;
    transition(BreakerState::kHalfOpen, now);
  }
  return state_;
}

bool CircuitBreaker::allowRequest(sim::Time now) {
  switch (state(now)) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      ++rejected_;
      return false;
    case BreakerState::kHalfOpen:
      if (probes_inflight_ >= options_.halfOpenProbes) {
        ++rejected_;
        return false;
      }
      ++probes_inflight_;
      return true;
  }
  return false;
}

void CircuitBreaker::recordSuccess(sim::Time now) {
  switch (state(now)) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      if (probes_inflight_ > 0) --probes_inflight_;
      if (++probe_successes_ >= options_.successesToClose) {
        consecutive_failures_ = 0;
        transition(BreakerState::kClosed, now);
      }
      break;
    case BreakerState::kOpen:
      // A straggler response from before the trip: ignore.
      break;
  }
}

void CircuitBreaker::recordFailure(sim::Time now) {
  switch (state(now)) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= options_.failureThreshold) open(now);
      break;
    case BreakerState::kHalfOpen:
      // One failed probe re-opens immediately.
      open(now);
      break;
    case BreakerState::kOpen:
      break;
  }
}

void CircuitBreaker::transition(BreakerState next, sim::Time now) {
  if (next == state_) return;
  state_ = next;
  if (listener_) listener_(state_);
  (void)now;
}

void CircuitBreaker::open(sim::Time now) {
  ++trips_;
  const double jitter =
      options_.openJitter > 0 ? rng_.uniformDouble() * options_.openJitter : 0.0;
  reopen_at_ = now + options_.openDuration * (1.0 + jitter);
  probes_inflight_ = 0;
  probe_successes_ = 0;
  consecutive_failures_ = 0;
  transition(BreakerState::kOpen, now);
}

}  // namespace lidc::core
