#include "core/replication.hpp"

#include "common/logging.hpp"

namespace lidc::core {

DataReplicator::DataReplicator(ComputeCluster& destination,
                               datalake::RetrieveOptions options)
    : destination_(destination) {
  face_ = std::make_shared<ndn::AppFace>(
      "app://replicator/" + destination.name(),
      destination.forwarder().simulator(),
      std::hash<std::string>{}(destination.name()) | 1);
  destination_.forwarder().addFace(face_);
  retriever_ = std::make_unique<datalake::Retriever>(*face_, options);
}

void DataReplicator::replicate(const ndn::Name& objectName, DoneCallback done) {
  if (destination_.store().contains(objectName)) {
    if (done) done(Status::Ok());
    return;
  }
  retriever_->fetch(objectName, [this, objectName,
                                 done](Result<std::vector<std::uint8_t>> bytes) {
    if (!bytes.ok()) {
      if (done) done(bytes.status());
      return;
    }
    const std::size_t size = bytes->size();
    Status stored = destination_.store().put(objectName, std::move(*bytes));
    if (stored.ok()) {
      ++replicated_;
      bytes_ += size;
      LIDC_LOG(kInfo, "replicator")
          << objectName.toUri() << " -> " << destination_.name() << " (" << size
          << " bytes)";
    }
    if (done) done(stored);
  });
}

void DataReplicator::attachTelemetry(telemetry::MetricsRegistry& registry) {
  const telemetry::Labels labels{{"cluster", destination_.name()}};
  registry.registerCollector([this, &registry, labels] {
    registry.counter("lidc_replicator_objects_total", labels)
        .set(static_cast<double>(replicated_));
    registry.counter("lidc_replicator_bytes_total", labels)
        .set(static_cast<double>(bytes_));
  });
}

void DataReplicator::replicateAll(const std::vector<ndn::Name>& objects,
                                  DoneCallback done) {
  if (objects.empty()) {
    if (done) done(Status::Ok());
    return;
  }
  struct Progress {
    std::size_t remaining;
    Status firstError = Status::Ok();
    bool reported = false;
  };
  auto progress = std::make_shared<Progress>();
  progress->remaining = objects.size();
  for (const auto& object : objects) {
    replicate(object, [progress, done](Status status) {
      if (!status.ok() && progress->firstError.ok()) {
        progress->firstError = status;
      }
      if (--progress->remaining == 0 && !progress->reported) {
        progress->reported = true;
        if (done) done(progress->firstError);
      }
    });
  }
}

}  // namespace lidc::core
