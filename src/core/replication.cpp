#include "core/replication.hpp"

namespace lidc::core {

DataReplicator::DataReplicator(ComputeCluster& destination,
                               datalake::RetrieveOptions options)
    : destination_(destination) {
  replica::TransferOptions transferOptions;
  transferOptions.retrieve = options;
  // The legacy replicator fetched batches with unbounded concurrency;
  // keep the wrapper close to that so batch latencies don't regress.
  transferOptions.maxConcurrent = 8;
  scheduler_ = std::make_unique<replica::TransferScheduler>(
      destination.forwarder(), destination.store(), destination.name(),
      transferOptions);
  // When the destination already runs the flow plane, staged bytes
  // land in its ledger too (clusters enabling it later re-wire via
  // scheduler().setFlowAccountant()).
  if (auto* flow = destination.flowAccountant()) {
    scheduler_->setFlowAccountant(flow);
  }
}

void DataReplicator::replicate(const ndn::Name& objectName, DoneCallback done) {
  if (destination_.store().contains(objectName)) {
    if (done) done(Status::Ok());
    return;
  }
  scheduler_->enqueue(objectName, {},
                      [this, done](Status status, std::uint64_t bytes) {
                        if (status.ok()) {
                          ++replicated_;
                          bytes_ += bytes;
                        }
                        if (done) done(status);
                      });
}

void DataReplicator::attachTelemetry(telemetry::MetricsRegistry& registry) {
  const telemetry::Labels labels{{"cluster", destination_.name()}};
  registry.registerCollector([this, &registry, labels] {
    registry.counter("lidc_replicator_objects_total", labels)
        .set(static_cast<double>(replicated_));
    registry.counter("lidc_replicator_bytes_total", labels)
        .set(static_cast<double>(bytes_));
  });
}

void DataReplicator::replicateAll(const std::vector<ndn::Name>& objects,
                                  DoneCallback done) {
  if (objects.empty()) {
    if (done) done(Status::Ok());
    return;
  }
  struct Progress {
    std::size_t remaining;
    Status firstError = Status::Ok();
    bool reported = false;
  };
  auto progress = std::make_shared<Progress>();
  progress->remaining = objects.size();
  for (const auto& object : objects) {
    replicate(object, [progress, done](Status status) {
      if (!status.ok() && progress->firstError.ok()) {
        progress->firstError = status;
      }
      if (--progress->remaining == 0 && !progress->reported) {
        progress->reported = true;
        if (done) done(progress->firstError);
      }
    });
  }
}

}  // namespace lidc::core
