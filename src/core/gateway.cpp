#include "core/gateway.hpp"

#include <optional>
#include <string_view>

#include "common/logging.hpp"
#include "core/checkpoint_format.hpp"
#include "core/wire_format.hpp"

namespace lidc::core {

Gateway::Gateway(ndn::Forwarder& forwarder, k8s::Cluster& cluster,
                 ValidatorRegistry validators, GatewayOptions options,
                 CompletionTimePredictor* predictor)
    : forwarder_(forwarder),
      cluster_(cluster),
      cluster_name_(cluster.name()),
      validators_(std::move(validators)),
      options_(options),
      predictor_(predictor),
      jobs_(cluster),
      cache_(options.cacheCapacity, options.cacheTtl) {
  face_ = std::make_shared<ndn::AppFace>("app://gateway/" + cluster_name_,
                                         forwarder_.simulator());
  face_->setInterestHandler([this](const ndn::Interest& i) { handleInterest(i); });
  face_id_ = forwarder_.addFace(face_);

  // The gateway NFD's prefix registrations (paper SIV): compute handled
  // locally, status scoped to this cluster.
  forwarder_.registerPrefix(kComputePrefix, face_id_, /*cost=*/0);
  ndn::Name statusPrefix = kStatusPrefix;
  statusPrefix.append(cluster_name_);
  forwarder_.registerPrefix(statusPrefix, face_id_, /*cost=*/0);
  // Capability advertisement endpoint (paper SVII: the network learning
  // cluster capabilities).
  ndn::Name infoPrefix = kInfoPrefix;
  infoPrefix.append(cluster_name_);
  forwarder_.registerPrefix(infoPrefix, face_id_, /*cost=*/0);

  cluster_.onJobFinished([this](const k8s::Job& job) { onJobFinished(job); });
}

void Gateway::enablePublish(datalake::ObjectStore& store) {
  publish_store_ = &store;
  forwarder_.registerPrefix(kPublishPrefix, face_id_, /*cost=*/0);
  if (tenants_ != nullptr) {
    publish_store_->setQuotaCharger(
        [this](const std::string& tenant, std::uint64_t bytes) {
          return tenants_->chargePublish(tenant, bytes);
        });
  }
}

void Gateway::enableQos(qos::TenantRegistry& tenants,
                        qos::AdmissionOptions admission) {
  tenants_ = &tenants;
  admission_ = std::make_unique<qos::AdmissionController>(
      forwarder_.simulator(), tenants, cluster_name_, admission);
  admission_->setFlightRecorder(recorder_);
  // The drain-time capacity gate mirrors the legacy path's admission
  // control: health first, then whether the job fits the free capacity.
  admission_->setCapacityProbe([this](const qos::AdmissionJob& job) {
    if (!admission_control_) return true;
    if (healthyNodeFraction() < options_.minHealthyNodeFraction) return false;
    k8s::Resources needed;
    needed.cpu = MilliCpu(static_cast<std::int64_t>(job.cpuMillicores));
    needed.memory = ByteSize(job.memoryBytes);
    return needed.fitsWithin(cluster_.totalFree());
  });
  forwarder_.registerPrefix(kSubmitPrefix, face_id_, /*cost=*/0);
  if (publish_store_ != nullptr) {
    publish_store_->setQuotaCharger(
        [this](const std::string& tenant, std::uint64_t bytes) {
          return tenants_->chargePublish(tenant, bytes);
        });
  }
  if (metrics_registry_ != nullptr) {
    admission_->attachTelemetry(*metrics_registry_);
  }
}

void Gateway::handleInterest(const ndn::Interest& interest) {
  if (blackout_) {
    // Gateway process "down": total silence, the PIT entry times out.
    ++counters_.blackoutDropped;
    LIDC_FR_EVENT(recorder_, kWarn, "gateway",
                  cluster_name_ + " blackout-drop " + interest.name().toUri());
    return;
  }
  if (kComputePrefix.isPrefixOf(interest.name())) {
    onCompute(interest);
  } else if (kSubmitPrefix.isPrefixOf(interest.name())) {
    onSubmit(interest);
  } else if (kStatusPrefix.isPrefixOf(interest.name())) {
    onStatus(interest);
  } else if (kInfoPrefix.isPrefixOf(interest.name())) {
    onInfo(interest);
  } else if (kPublishPrefix.isPrefixOf(interest.name())) {
    onPublish(interest);
  } else {
    face_->putNack(interest, ndn::NackReason::kNoRoute);
  }
}

void Gateway::replyKv(const ndn::Name& name, const KvMap& fields,
                      sim::Duration freshness) {
  ndn::Data data(name);
  data.setContent(encodeKv(fields));
  data.setFreshnessPeriod(freshness);
  data.sign();
  face_->putData(std::move(data));
}

// Gray failure: admit the job with a straight face — plausible ack,
// fresh job id — then never schedule anything. The client only finds
// out when its progress watchdog notices the job never leaves Pending.
void Gateway::grayAdmit(const ndn::Interest& interest) {
  ++counters_.grayAdmitted;
  const std::string jobId = "gray-" + std::to_string(next_gray_id_++);
  gray_jobs_.insert(jobId);
  LIDC_FR_EVENT(recorder_, kWarn, "gateway",
                cluster_name_ + " gray-admit " + jobId);
  replyKv(interest.name(),
          {{"job_id", jobId},
           {"cluster", cluster_name_},
           {"status_name", makeStatusName(cluster_name_, jobId).toUri()}},
          options_.ackFreshness);
}

void Gateway::onCompute(const ndn::Interest& interest) {
  ++counters_.computeReceived;
  if (gray_) {
    grayAdmit(interest);
    return;
  }

  auto parsed = ComputeRequest::fromName(interest.name());
  if (!parsed.ok()) {
    ++counters_.computeRejected;
    if (tracer_ != nullptr) {
      tracer_->instant("gateway-admission", "gateway:" + cluster_name_,
                       interest.traceContext(),
                       {{"decision", "parse-reject"},
                        {"error", parsed.status().toString()}});
    }
    LIDC_FR_EVENT(recorder_, kWarn, "gateway", cluster_name_ + " parse-reject");
    replyKv(interest.name(),
            {{"error", parsed.status().toString()}, {"cluster", cluster_name_}},
            options_.ackFreshness);
    return;
  }
  processCompute(interest, *parsed, /*tenant=*/"", /*priorityClass=*/0,
                 /*checkCapacity=*/true);
}

void Gateway::onSubmit(const ndn::Interest& interest) {
  ++counters_.computeReceived;
  if (admission_ == nullptr) {
    // QoS not enabled here: let the network try another cluster.
    face_->putNack(interest, ndn::NackReason::kNoRoute);
    return;
  }
  if (gray_) {
    grayAdmit(interest);
    return;
  }

  auto parsed = parseSubmitName(interest.name());
  if (!parsed.ok()) {
    // Malformed submit names are terminal: no cluster can parse them.
    ++counters_.computeRejected;
    LIDC_FR_EVENT(recorder_, kWarn, "gateway",
                  cluster_name_ + " submit-parse-reject");
    replyKv(interest.name(),
            {{"error", parsed.status().toString()}, {"cluster", cluster_name_}},
            options_.ackFreshness);
    return;
  }
  const std::string tenant = parsed->first;
  auto request = std::make_shared<ComputeRequest>(std::move(parsed->second));
  const qos::TenantSpec* spec = tenants_->find(tenant);
  const int priority = spec != nullptr ? spec->priorityClass : 0;

  qos::AdmissionJob job;
  job.tenant = tenant;
  job.cpuMillicores = request->cpu.millicores() > 0
                          ? static_cast<std::uint64_t>(request->cpu.millicores())
                          : JobManager::kDefaultCpuMillicores;
  job.memoryBytes = request->memory.bytes() > 0
                        ? request->memory.bytes()
                        : JobManager::defaultMemory().bytes();
  job.expiresAt = forwarder_.simulator().now() + interest.lifetime();
  job.tag = request->requestId.empty() ? request->app : request->requestId;
  job.wireBytes = interest.wireSize();
  auto held = std::make_shared<ndn::Interest>(interest);
  const std::uint64_t cpu = job.cpuMillicores;
  const std::uint64_t mem = job.memoryBytes;
  job.launch = [this, held, request, tenant, priority, cpu, mem] {
    // A launch that produced no job record (cache hit, dedup, rejection)
    // holds no usage: release the admission charge immediately.
    if (!processCompute(*held, *request, tenant, priority,
                        /*checkCapacity=*/false)) {
      admission_->releaseJob(tenant, cpu, mem);
    }
  };
  job.evict = [this, held](const std::string&) {
    ++counters_.computeRejected;
    face_->putNack(*held, ndn::NackReason::kQuotaExceeded);
  };

  switch (admission_->offer(std::move(job))) {
    case qos::AdmitDecision::kQueued:
      return;  // launch or evict will answer the Interest
    case qos::AdmitDecision::kRejectedUnknownTenant:
      // Terminal: an unknown tenant is unknown everywhere (the registry
      // is federation-wide), so an error Data beats a failover storm.
      ++counters_.computeRejected;
      replyKv(interest.name(),
              {{"error", "unknown tenant '" + tenant + "'"},
               {"cluster", cluster_name_}},
              options_.ackFreshness);
      return;
    case qos::AdmitDecision::kRejectedRate:
    case qos::AdmitDecision::kRejectedQuota:
    case qos::AdmitDecision::kRejectedQueueFull:
      ++counters_.computeRejected;
      face_->putNack(interest, ndn::NackReason::kQuotaExceeded);
      return;
  }
}

bool Gateway::processCompute(const ndn::Interest& interest,
                             const ComputeRequest& request,
                             const std::string& tenant, int priorityClass,
                             bool checkCapacity) {
  // Admission decisions become zero-duration "gateway-admission" spans on
  // the submitter's trace; the launch decision's context also parents the
  // retroactive K8s spans recorded in onJobFinished().
  const telemetry::TraceContext traceCtx = interest.traceContext();
  auto admission = [this, traceCtx](const char* decision,
                                    telemetry::SpanAttrs extra = {}) {
    // Rejections land in the flight recorder (alert post-mortems);
    // normal launches would only drown the window.
    if (std::string_view(decision).ends_with("-reject")) {
      LIDC_FR_EVENT(recorder_, kWarn, "gateway",
                    cluster_name_ + " " + decision);
    }
    if (tracer_ == nullptr) return telemetry::TraceContext{};
    telemetry::SpanAttrs attrs{{"decision", decision}};
    attrs.insert(attrs.end(), extra.begin(), extra.end());
    return tracer_->instant("gateway-admission", "gateway:" + cluster_name_,
                            traceCtx, std::move(attrs));
  };

  // Application-specific validation (paper SIV-B). Cluster-local
  // conditions (NOT_FOUND: e.g. a dataset absent from *this* lake) nack
  // so the network fails over to a cluster that can serve the request;
  // malformed requests get a terminal error Data — no cluster can help.
  if (Status valid = validators_.validate(request); !valid.ok()) {
    ++counters_.computeRejected;
    admission("validation-reject", {{"error", valid.toString()}});
    if (valid.code() == StatusCode::kNotFound) {
      face_->putNack(interest, ndn::NackReason::kNoRoute);
      return false;
    }
    replyKv(interest.name(),
            {{"error", valid.toString()}, {"cluster", cluster_name_}},
            options_.ackFreshness);
    return false;
  }

  // --- checkpoint restore (migration plane) ---
  // A ckpt=<job_id>/<epoch> param asks this cluster to resume from a
  // named checkpoint instead of cold-starting. Resume-point validation
  // rejects stale or corrupt checkpoints (counted cold start) and nacks
  // when the object is not in this lake, so the forwarding strategy
  // steers the resume to whichever cluster holds a replica.
  ComputeRequest effective = request;
  bool restoring = false;
  std::string ckptJobId;     // checkpoint owner, for the status alias
  std::string restoredFrom;  // old cluster name (ckpt_from param)
  if (auto ckptIt = effective.params.find("ckpt");
      ckptIt != effective.params.end()) {
    const auto ref = parseCkptRef(ckptIt->second);
    if (!ref) {
      // Malformed references are terminal: no cluster can parse them.
      ++counters_.computeRejected;
      admission("ckpt-parse-reject");
      replyKv(interest.name(),
              {{"error", "INVALID_ARGUMENT: malformed ckpt reference '" +
                             ckptIt->second + "'"},
               {"cluster", cluster_name_}},
              options_.ackFreshness);
      return false;
    }
    if (ckpt_store_ == nullptr) {
      // This cluster does not serve checkpoints: steer elsewhere.
      admission("ckpt-miss-reject");
      face_->putNack(interest, ndn::NackReason::kNoRoute);
      return false;
    }
    const auto payload = ckpt_store_->get(makeCkptName(ref->jobId, ref->epoch));
    if (!payload) {
      admission("ckpt-miss-reject");
      face_->putNack(interest, ndn::NackReason::kNoRoute);
      return false;
    }
    // Resume-point validation. A ckpt_digest pin (set by the migration
    // coordinator from the manifest it read while planning) is the
    // authoritative integrity check — the local manifest replica may
    // legitimately lag the latest epoch after a crash. Without a pin,
    // the local manifest must name this exact epoch and digest.
    const std::uint64_t digest = ckptDigest(*payload);
    std::string invalid;
    if (auto pin = effective.params.find("ckpt_digest");
        pin != effective.params.end()) {
      if (pin->second != std::to_string(digest)) invalid = "digest-pin-mismatch";
    } else {
      std::optional<CkptManifest> manifest;
      if (const auto bytes =
              ckpt_store_->get(makeCkptManifestName(ref->jobId))) {
        const std::string text(bytes->begin(), bytes->end());
        if (auto decoded = decodeCkptManifest(text)) manifest = *decoded;
      }
      if (!manifest) {
        invalid = "manifest-missing";
      } else if (manifest->epoch != ref->epoch) {
        invalid = "stale-epoch";
      } else if (manifest->digest != digest) {
        invalid = "digest-mismatch";
      }
    }
    if (!invalid.empty()) {
      ++counters_.ckptRestoreFailures;
      LIDC_FR_EVENT(recorder_, kWarn, "gateway",
                    cluster_name_ + " ckpt-restore-fallback " + ckptIt->second +
                        " (" + invalid + ")");
      admission("ckpt-fallback", {{"why", invalid}});
      effective.params.erase("ckpt");
      effective.params.erase("ckpt_digest");
      effective.params.erase("ckpt_from");
    } else {
      restoring = true;
      ckptJobId = ref->jobId;
      if (auto from = effective.params.find("ckpt_from");
          from != effective.params.end()) {
        restoredFrom = from->second;
      }
    }
  }

  const ndn::Name canonical = effective.canonicalName();

  // Result cache: identical canonical requests are answered directly
  // with the stored result location (paper SVII).
  if (options_.enableResultCache && request.requestId.empty()) {
    if (auto cached = cache_.get(canonical, forwarder_.simulator().now())) {
      ++counters_.cacheHits;
      admission("cache-hit", {{"job_id", cached->jobId}});
      replyKv(interest.name(),
              {{"cached", "1"},
               {"job_id", cached->jobId},
               {"cluster", cluster_name_},
               {"result", cached->resultPath},
               {"output_bytes", std::to_string(cached->outputBytes)}},
              options_.ackFreshness);
      return false;
    }
    // In-flight dedup: join a running job for the same canonical name.
    if (auto it = inflight_.find(canonical); it != inflight_.end()) {
      ++counters_.inflightDedup;
      admission("dedup", {{"job_id", it->second}});
      replyKv(interest.name(),
              {{"job_id", it->second},
               {"cluster", cluster_name_},
               {"status_name", makeStatusName(cluster_name_, it->second).toUri()},
               {"deduplicated", "1"}},
              options_.ackFreshness);
      return false;
    }
  }

  // Admission control: if this cluster cannot fit the job now, nack so
  // the forwarding strategy fails over to another cluster (the paper's
  // "any cluster with sufficient resources" property). QoS launches skip
  // this: the AdmissionController's capacity probe already gated them at
  // drain time.
  if (admission_control_ && checkCapacity) {
    // Health gate: a cluster that lost too many nodes stops admitting
    // jobs entirely, even if the survivors nominally have capacity —
    // partial failures usually cascade, and the overlay has healthier
    // clusters to offer.
    if (healthyNodeFraction() < options_.minHealthyNodeFraction) {
      ++counters_.healthRejected;
      admission("health-reject",
                {{"healthy_fraction", std::to_string(healthyNodeFraction())}});
      face_->putNack(interest, ndn::NackReason::kCongestion);
      return false;
    }
    k8s::Resources needed;
    needed.cpu = effective.cpu.millicores() > 0
                     ? effective.cpu
                     : MilliCpu(JobManager::kDefaultCpuMillicores);
    needed.memory = effective.memory.bytes() > 0 ? effective.memory
                                                 : JobManager::defaultMemory();
    if (!needed.fitsWithin(cluster_.totalFree())) {
      ++counters_.capacityRejected;
      admission("capacity-reject");
      face_->putNack(interest, ndn::NackReason::kCongestion);
      return false;
    }
  }

  auto jobId = jobs_.submit(effective, priorityClass);
  if (!jobId.ok()) {
    ++counters_.computeRejected;
    admission("launch-reject", {{"error", jobId.status().toString()}});
    if (jobId.status().code() == StatusCode::kNotFound) {
      // e.g. this cluster does not serve the application image; another
      // cluster in the overlay might.
      face_->putNack(interest, ndn::NackReason::kNoRoute);
      return false;
    }
    if (jobId.status().code() == StatusCode::kResourceExhausted) {
      // The tenant's ResourceQuota on *this* cluster is exhausted. On
      // the QoS path that is a quota signal (backoff, not failover); on
      // the legacy path quotas are per-cluster, so fail over.
      face_->putNack(interest, tenant.empty()
                                   ? ndn::NackReason::kCongestion
                                   : ndn::NackReason::kQuotaExceeded);
      return false;
    }
    replyKv(interest.name(),
            {{"error", jobId.status().toString()}, {"cluster", cluster_name_}},
            options_.ackFreshness);
    return false;
  }

  ++counters_.jobsLaunched;
  const telemetry::TraceContext launchCtx =
      admission("launch", {{"job_id", *jobId}});
  LaunchRecord record{effective, forwarder_.simulator().now(), launchCtx};
  if (!tenant.empty()) {
    record.tenant = tenant;
    record.chargedCpu = effective.cpu.millicores() > 0
                            ? static_cast<std::uint64_t>(effective.cpu.millicores())
                            : JobManager::kDefaultCpuMillicores;
    record.chargedMem = effective.memory.bytes() > 0
                            ? effective.memory.bytes()
                            : JobManager::defaultMemory().bytes();
  }
  launched_.emplace(*jobId, std::move(record));
  if (effective.requestId.empty()) inflight_.emplace(canonical, *jobId);
  scheduleReaper();

  if (restoring) {
    ++counters_.ckptRestores;
    LIDC_FR_EVENT(recorder_, kInfo, "gateway",
                  cluster_name_ + " ckpt-restore " + *jobId + " from " +
                      ckptJobId);
    // Alias the migrated-away job id so its pollers follow the move.
    if (!restoredFrom.empty()) addStatusAlias(restoredFrom, ckptJobId, *jobId);
  }

  log::ScopedTrace scopedTrace(traceCtx.trace);
  LIDC_LOG(kInfo, "gateway") << cluster_name_ << " launched " << *jobId << " for "
                             << interest.name().toUri();
  replyKv(interest.name(),
          {{"job_id", *jobId},
           {"cluster", cluster_name_},
           {"status_name", makeStatusName(cluster_name_, *jobId).toUri()}},
          options_.ackFreshness);
  return true;
}

void Gateway::onStatus(const ndn::Interest& interest) {
  ++counters_.statusReceived;
  auto parsed = parseStatusName(interest.name());
  if (!parsed.ok()) {
    face_->putNack(interest, ndn::NackReason::kNoRoute);
    return;
  }
  std::string jobKey = parsed->second;
  if (parsed->first != cluster_name_) {
    // Migration alias: polls under the old cluster's name for a job
    // that moved here are answered with the local successor's status.
    auto alias = status_aliases_.find(parsed->first + "/" + parsed->second);
    if (alias == status_aliases_.end()) {
      face_->putNack(interest, ndn::NackReason::kNoRoute);
      return;
    }
    ++counters_.aliasServed;
    jobKey = alias->second.jobId;
  }
  // Touch-eviction: an expired terminal entry is forgotten on contact,
  // so status GC holds even while the reaper timer is idle.
  if (options_.enableStatusGc) {
    if (auto t = terminal_.find(jobKey);
        t != terminal_.end() &&
        forwarder_.simulator().now() - t->second > options_.statusRetention) {
      ++counters_.statusEvicted;
      jobs_.forget(jobKey);
      terminal_.erase(t);
    }
  }
  // A gray-admitted id has no job behind it: report Pending forever,
  // exactly the signature a stalled-but-alive gateway shows.
  if (gray_jobs_.count(jobKey) > 0) {
    replyKv(interest.name(),
            {{"state", std::string(k8s::jobStateName(k8s::JobState::kPending))},
             {"cluster", cluster_name_}},
            options_.statusFreshness);
    return;
  }
  auto status = jobs_.status(jobKey);
  if (!status.ok()) {
    // The job object vanished (reaped, or lost with its cluster state):
    // evict any dangling dedup bookkeeping so a later identical request
    // launches fresh instead of joining a dead job, then answer a clean
    // NotFound.
    if (status.status().code() == StatusCode::kNotFound &&
        launched_.count(jobKey) > 0) {
      ++counters_.vanishedEvicted;
      evictJob(jobKey, /*forgetStatus=*/false);
    }
    replyKv(interest.name(), {{"error", status.status().toString()}},
            options_.statusFreshness);
    return;
  }

  if (tracer_ != nullptr) {
    tracer_->instant("status-serve", "gateway:" + cluster_name_,
                     interest.traceContext(),
                     {{"job_id", jobKey},
                      {"state", std::string(k8s::jobStateName(status->state))}});
  }

  KvMap fields{{"state", std::string(k8s::jobStateName(status->state))},
               {"cluster", cluster_name_}};
  switch (status->state) {
    case k8s::JobState::kCompleted:
      // Paper SIV-A: "The response contains the information as to how to
      // retrieve the results from the data lake."
      fields["result"] = status->resultPath;
      fields["output_bytes"] = std::to_string(status->outputBytes);
      fields["runtime_s"] = std::to_string(status->runtime.toSeconds());
      break;
    case k8s::JobState::kFailed:
      fields["error"] = status->message;
      break;
    case k8s::JobState::kRunning:
    case k8s::JobState::kPending:
      break;
  }
  replyKv(interest.name(), fields, options_.statusFreshness);
}

void Gateway::onInfo(const ndn::Interest& interest) {
  ++counters_.infoReceived;
  const auto free = cluster_.totalFree();
  const auto total = cluster_.totalAllocatable();
  std::string apps;
  for (const auto& app : cluster_.appNames()) {
    if (!apps.empty()) apps += ',';
    apps += app;
  }
  replyKv(interest.name(),
          {{"cluster", cluster_name_},
           {"free_cpu_m", std::to_string(free.cpu.millicores())},
           {"free_mem_bytes", std::to_string(free.memory.bytes())},
           {"total_cpu_m", std::to_string(total.cpu.millicores())},
           {"total_mem_bytes", std::to_string(total.memory.bytes())},
           {"running_jobs", std::to_string(cluster_.runningJobCount())},
           {"nodes", std::to_string(cluster_.nodeCount())},
           {"apps", apps}},
          options_.infoFreshness);
}

void Gateway::onPublish(const ndn::Interest& interest) {
  // Command Interest: /ndn/k8s/publish/<object...>/sha=<digest>, payload
  // in ApplicationParameters. The trailing digest makes the command name
  // unique per content version and lets the gateway verify integrity.
  auto reject = [this, &interest](const std::string& reason) {
    ++counters_.publishesRejected;
    replyKv(interest.name(), {{"error", reason}, {"cluster", cluster_name_}},
            options_.statusFreshness);
  };

  if (publish_store_ == nullptr) {
    face_->putNack(interest, ndn::NackReason::kNoRoute);
    return;
  }
  const ndn::Name& name = interest.name();
  if (name.size() < kPublishPrefix.size() + 2) {
    reject("publish name needs /<object...>/sha=<digest>");
    return;
  }
  // Optional tenant attribution: a "tenant=<id>" component right after
  // the prefix scopes the publish to that tenant's byte quota. It is
  // stripped from the stored object name.
  std::string tenant;
  std::size_t objectStart = kPublishPrefix.size();
  if (const std::string first = name[objectStart].toString();
      strings::startsWith(first, "tenant=")) {
    tenant = first.substr(7);
    ++objectStart;
    if (name.size() < objectStart + 2) {
      reject("publish name needs /<object...>/sha=<digest>");
      return;
    }
    if (tenants_ == nullptr || tenants_->find(tenant) == nullptr) {
      reject("unknown tenant '" + tenant + "'");
      return;
    }
  }
  const std::string last = name[name.size() - 1].toString();
  if (!strings::startsWith(last, "sha=")) {
    reject("publish name missing trailing sha= component");
    return;
  }
  const auto& payload = interest.applicationParameters();
  if (payload.empty()) {
    reject("publish carries no ApplicationParameters payload");
    return;
  }
  if (payload.size() > options_.maxPublishBytes) {
    reject("publish payload exceeds " +
           std::to_string(options_.maxPublishBytes) + " bytes");
    return;
  }
  // Integrity: the digest in the name must match the payload.
  std::uint64_t digest = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : payload) {
    digest ^= byte;
    digest *= 0x100000001b3ULL;
  }
  if (last != "sha=" + std::to_string(digest)) {
    reject("payload digest mismatch");
    return;
  }

  ndn::Name objectName = kDataPrefix;
  objectName.append(name.subName(objectStart, name.size() - objectStart - 1));
  Status stored = tenant.empty()
                      ? publish_store_->put(objectName, payload)
                      : publish_store_->put(objectName, payload, tenant);
  if (!stored.ok()) {
    if (stored.code() == StatusCode::kResourceExhausted) {
      // Over the tenant's publish byte budget: distinct quota signal so
      // the client backs off instead of failing over.
      ++counters_.publishesRejected;
      LIDC_FR_EVENT(recorder_, kWarn, "gateway",
                    cluster_name_ + " publish-quota-reject tenant=" + tenant);
      face_->putNack(interest, ndn::NackReason::kQuotaExceeded);
      return;
    }
    reject(stored.toString());
    return;
  }
  ++counters_.publishesAccepted;
  LIDC_LOG(kInfo, "gateway") << cluster_name_ << " stored published object "
                             << objectName.toUri();
  replyKv(interest.name(),
          {{"stored", objectName.toUri()},
           {"bytes", std::to_string(payload.size())},
           {"cluster", cluster_name_}},
          options_.statusFreshness);
}

void Gateway::onJobFinished(const k8s::Job& job) {
  // Status GC: remember when the job turned terminal so its status
  // entry can be retired after the retention window.
  if (options_.enableStatusGc) {
    terminal_[job.name()] = forwarder_.simulator().now();
  }
  auto it = launched_.find(job.name());
  if (it == launched_.end()) return;  // not one of ours (or already reaped)
  const ComputeRequest& request = it->second.request;
  const ndn::Name canonical = request.canonicalName();
  inflight_.erase(canonical);

  // The gateway only learns scheduling/execution boundaries at terminal
  // state, so the K8s spans are recorded retroactively under the launch
  // decision's span.
  if (tracer_ != nullptr && it->second.trace) {
    const auto& st = job.status();
    if (st.startTime >= it->second.launchedAt) {
      tracer_->recordSpan("k8s-schedule", "k8s:" + cluster_name_,
                          it->second.trace, it->second.launchedAt, st.startTime);
      if (st.completionTime >= st.startTime) {
        tracer_->recordSpan(
            "k8s-exec", "k8s:" + cluster_name_, it->second.trace, st.startTime,
            st.completionTime,
            {{"state", std::string(k8s::jobStateName(st.state))}});
      }
    }
    tracer_->bindJob(job.name(), it->second.trace.trace);
  }

  if (job.status().state == k8s::JobState::kCompleted) {
    if (options_.enableResultCache && request.requestId.empty()) {
      cache_.put(canonical, CachedResult{job.name(), job.status().resultPath,
                                         job.status().outputBytes,
                                         forwarder_.simulator().now()});
    }
    if (predictor_ != nullptr) {
      predictor_->record(request,
                         job.status().completionTime - job.status().startTime);
    }
  }
  // Erase before releasing: releaseJob drains the admission queue, which
  // can synchronously launch work and mutate launched_ under us.
  const std::string tenant = it->second.tenant;
  const std::uint64_t cpu = it->second.chargedCpu;
  const std::uint64_t mem = it->second.chargedMem;
  launched_.erase(it);
  if (admission_ != nullptr && !tenant.empty()) {
    admission_->releaseJob(tenant, cpu, mem);
  }
}

void Gateway::attachTelemetry(telemetry::MetricsRegistry& registry,
                              telemetry::Tracer* tracer) {
  tracer_ = tracer;
  metrics_registry_ = &registry;
  if (admission_) admission_->attachTelemetry(registry);
  const telemetry::Labels labels{{"cluster", cluster_name_}};
  registry.registerCollector([this, &registry, labels] {
    auto sync = [&](const char* name, std::uint64_t value) {
      registry.counter(name, labels).set(value);
    };
    sync("lidc_gateway_compute_received", counters_.computeReceived);
    sync("lidc_gateway_compute_rejected", counters_.computeRejected);
    sync("lidc_gateway_jobs_launched", counters_.jobsLaunched);
    sync("lidc_gateway_cache_hits", counters_.cacheHits);
    sync("lidc_gateway_inflight_dedup", counters_.inflightDedup);
    sync("lidc_gateway_status_received", counters_.statusReceived);
    sync("lidc_gateway_capacity_rejected", counters_.capacityRejected);
    sync("lidc_gateway_info_received", counters_.infoReceived);
    sync("lidc_gateway_publishes_accepted", counters_.publishesAccepted);
    sync("lidc_gateway_publishes_rejected", counters_.publishesRejected);
    sync("lidc_gateway_health_rejected", counters_.healthRejected);
    sync("lidc_gateway_orphans_reaped", counters_.orphansReaped);
    sync("lidc_gateway_vanished_evicted", counters_.vanishedEvicted);
    sync("lidc_gateway_blackout_dropped", counters_.blackoutDropped);
    sync("lidc_gateway_gray_admitted", counters_.grayAdmitted);
    sync("lidc_ckpt_restores_total", counters_.ckptRestores);
    sync("lidc_ckpt_restore_failures_total", counters_.ckptRestoreFailures);
    sync("lidc_status_evicted_total", counters_.statusEvicted);
    sync("lidc_status_alias_served_total", counters_.aliasServed);
    sync("lidc_result_cache_hits", cache_.hits());
    sync("lidc_result_cache_misses", cache_.misses());
    registry.gauge("lidc_result_cache_size", labels)
        .set(static_cast<double>(cache_.size()));
    registry.gauge("lidc_gateway_healthy_node_fraction", labels)
        .set(healthyNodeFraction());
  });
}

double Gateway::healthyNodeFraction() const {
  const std::size_t nodes = cluster_.nodeCount();
  if (nodes == 0) return 0.0;
  return static_cast<double>(cluster_.readyNodeCount()) /
         static_cast<double>(nodes);
}

void Gateway::evictJob(const std::string& jobId, bool forgetStatus) {
  auto it = launched_.find(jobId);
  if (it == launched_.end()) return;
  // Only drop the dedup entry if it still points at this job — a fresh
  // identical request may have re-populated it with a newer job id.
  const ndn::Name canonical = it->second.request.canonicalName();
  if (auto inflightIt = inflight_.find(canonical);
      inflightIt != inflight_.end() && inflightIt->second == jobId) {
    inflight_.erase(inflightIt);
  }
  const std::string tenant = it->second.tenant;
  const std::uint64_t cpu = it->second.chargedCpu;
  const std::uint64_t mem = it->second.chargedMem;
  launched_.erase(it);
  if (forgetStatus) jobs_.forget(jobId);
  if (admission_ != nullptr && !tenant.empty()) {
    admission_->releaseJob(tenant, cpu, mem);
  }
}

void Gateway::scheduleReaper() {
  // Lazy arming: no recurring event while nothing is launched, so
  // simulations with a drained job table still run to completion.
  if (!options_.enableOrphanReaper || reaper_pending_ || launched_.empty()) {
    return;
  }
  reaper_pending_ = true;
  forwarder_.simulator().scheduleAfter(options_.reaperInterval, [this] {
    reaper_pending_ = false;
    reapOrphans();
    scheduleReaper();
  });
}

void Gateway::reapOrphans() {
  const sim::Time now = forwarder_.simulator().now();
  std::vector<std::string> victims;
  for (const auto& [jobId, record] : launched_) {
    auto status = jobs_.status(jobId);
    if (!status.ok()) {
      // Job object gone (e.g. cluster state lost): dangling entry.
      victims.push_back(jobId);
      continue;
    }
    // Only Pending counts as "stuck": a Running job has a completion
    // event scheduled and will reach a terminal state on its own, but a
    // pod that cannot be scheduled (cluster lost its nodes, capacity
    // gone for good) waits forever.
    if (status->state == k8s::JobState::kPending &&
        now - record.launchedAt > options_.orphanTtl) {
      victims.push_back(jobId);
    }
  }
  for (const auto& jobId : victims) {
    ++counters_.orphansReaped;
    LIDC_LOG(kInfo, "gateway")
        << cluster_name_ << " reaped orphaned job " << jobId;
    evictJob(jobId, /*forgetStatus=*/true);
  }

  // Status-namespace GC rides along with the reaper sweep (no extra
  // timer: terminal-only state is otherwise evicted on touch).
  if (options_.enableStatusGc) {
    for (auto it = terminal_.begin(); it != terminal_.end();) {
      if (now - it->second > options_.statusRetention) {
        ++counters_.statusEvicted;
        jobs_.forget(it->first);
        it = terminal_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = status_aliases_.begin(); it != status_aliases_.end();) {
      // An alias lives as long as its successor's status entry: while
      // the restored job is still running (migrations can outlive the
      // retention window many times over), pollers of the old name must
      // keep being answered. Retention ages the alias from the
      // successor's *terminal* time; createdAt only covers successors
      // that vanished without ever turning terminal here.
      bool expired;
      if (auto t = terminal_.find(it->second.jobId); t != terminal_.end()) {
        expired = now - t->second > options_.statusRetention;
      } else {
        expired = now - it->second.createdAt > options_.statusRetention &&
                  !jobs_.status(it->second.jobId).ok();
      }
      it = expired ? status_aliases_.erase(it) : std::next(it);
    }
  }
}

void Gateway::addStatusAlias(const std::string& oldCluster,
                             const std::string& oldJobId,
                             const std::string& newJobId) {
  status_aliases_[oldCluster + "/" + oldJobId] =
      StatusAlias{newJobId, forwarder_.simulator().now()};
  // Exact route for the old status name: its 5 components beat the dead
  // cluster's 4-component /ndn/k8s/status/<cluster> registration in
  // longest-prefix match, so existing pollers are steered here without
  // learning the new name.
  forwarder_.registerPrefix(makeStatusName(oldCluster, oldJobId), face_id_,
                            /*cost=*/0);
  LIDC_FR_EVENT(recorder_, kInfo, "gateway",
                cluster_name_ + " status-alias " + oldCluster + "/" +
                    oldJobId + " -> " + newJobId);
}

}  // namespace lidc::core
