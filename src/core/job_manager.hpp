// JobManager: translates validated ComputeRequests into Kubernetes Jobs
// on one cluster and answers status queries in LIDC's four states
// (paper SIV-A: Completed / Failed / Running / Pending).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/status.hpp"
#include "core/semantic_name.hpp"
#include "k8s/cluster.hpp"

namespace lidc::core {

/// LIDC job status as reported to clients.
struct JobStatusInfo {
  k8s::JobState state = k8s::JobState::kPending;
  std::string message;
  std::string resultPath;       // data name of the output when Completed
  std::uint64_t outputBytes = 0;
  sim::Duration runtime;        // start -> completion (terminal states)
};

class JobManager {
 public:
  JobManager(k8s::Cluster& cluster, std::string namespaceName = "ndnk8s")
      : cluster_(cluster), namespace_(std::move(namespaceName)) {}

  /// Maps a semantic application name (what users write, e.g. "BLAST")
  /// to a cluster application image (e.g. "magic-blast").
  void mapAppToImage(const std::string& app, const std::string& image) {
    app_images_[app] = image;
  }
  [[nodiscard]] bool hasApp(const std::string& app) const;

  /// Launches a K8s Job for the request; returns the LIDC job id.
  /// Multi-tenant isolation (the paper's multi-organizational setting):
  /// a "tenant=<name>" parameter routes the job into namespace
  /// "tenant-<name>", where per-organization ResourceQuotas apply.
  /// `priorityClass` flows onto the JobSpec so higher classes jump the
  /// scheduler's unschedulable queue under saturation.
  Result<std::string> submit(const ComputeRequest& request,
                             int priorityClass = 0);

  /// The namespace a request's job would run in.
  [[nodiscard]] std::string namespaceFor(const ComputeRequest& request) const;

  [[nodiscard]] Result<JobStatusInfo> status(const std::string& jobId) const;

  /// Drops all bookkeeping for a job id: subsequent status() queries
  /// return NotFound. Used by the gateway's orphan reaper to retire jobs
  /// stuck non-terminal past their TTL.
  void forget(const std::string& jobId) { job_namespaces_.erase(jobId); }

  [[nodiscard]] const std::string& namespaceName() const noexcept {
    return namespace_;
  }
  [[nodiscard]] k8s::Cluster& cluster() noexcept { return cluster_; }
  [[nodiscard]] std::uint64_t submitted() const noexcept { return next_job_seq_; }

  /// Defaults applied when the request omits resources.
  static constexpr std::uint64_t kDefaultCpuMillicores = 1000;
  static ByteSize defaultMemory() { return ByteSize::fromGiB(1); }

 private:
  k8s::Cluster& cluster_;
  std::string namespace_;
  std::map<std::string, std::string> app_images_;
  /// jobId -> namespace the job lives in (job name == jobId).
  std::map<std::string, std::string> job_namespaces_;
  std::uint64_t next_job_seq_ = 0;
};

}  // namespace lidc::core
