#include "core/predictor.hpp"

#include <cmath>

namespace lidc::core {

std::string CompletionTimePredictor::fineKey(const ComputeRequest& request) {
  std::string key = request.app;
  if (auto it = request.params.find("srr_id"); it != request.params.end()) {
    key += "|" + it->second;
  }
  if (auto it = request.params.find("input"); it != request.params.end()) {
    key += "|" + it->second;
  }
  for (const auto& dataset : request.datasets) key += "|" + dataset;
  return key;
}

void CompletionTimePredictor::record(const ComputeRequest& request,
                                     sim::Duration runtime) {
  const double seconds = runtime.toSeconds();

  // Score the prediction we *would* have made before updating the model.
  if (auto predicted = predict(request)) {
    error_sum_ += std::abs(predicted->toSeconds() - seconds);
    ++samples_;
  }

  auto update = [this, seconds](std::map<std::string, double>& model,
                                const std::string& key) {
    auto [it, inserted] = model.try_emplace(key, seconds);
    if (!inserted) it->second = (1.0 - alpha_) * it->second + alpha_ * seconds;
  };
  update(fine_, fineKey(request));
  update(coarse_, request.app);
}

std::optional<sim::Duration> CompletionTimePredictor::predict(
    const ComputeRequest& request) const {
  if (auto it = fine_.find(fineKey(request)); it != fine_.end()) {
    return sim::Duration::seconds(it->second);
  }
  if (auto it = coarse_.find(request.app); it != coarse_.end()) {
    return sim::Duration::seconds(it->second);
  }
  return std::nullopt;
}

}  // namespace lidc::core
