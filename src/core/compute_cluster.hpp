// ComputeCluster: one LIDC cluster as deployed in the paper (SIV) — a
// Kubernetes cluster with a gateway NFD pod (here: the node's
// Forwarder + Gateway app), a PVC-backed data lake with its file
// server, and application images. This is the unit that joins the
// multi-cluster overlay.
#pragma once

#include <memory>
#include <string>

#include "core/gateway.hpp"
#include "core/predictor.hpp"
#include "datalake/file_server.hpp"
#include "datalake/object_store.hpp"
#include "genomics/datasets.hpp"
#include "genomics/magic_blast_app.hpp"
#include "k8s/cluster.hpp"
#include "ndn/forwarder.hpp"
#include "qos/admission.hpp"
#include "qos/tenant.hpp"
#include "telemetry/flow.hpp"
#include "telemetry/monitor.hpp"

namespace lidc::core {

struct ComputeClusterConfig {
  std::string name;
  int nodeCount = 1;  // the paper's default deployment is single-node
  k8s::Resources perNode{MilliCpu::fromCores(8), ByteSize::fromGiB(16)};
  ByteSize pvcCapacity = ByteSize::fromGiB(4);
  GatewayOptions gateway;
  genomics::MagicBlastConfig blast;
  /// Multi-tenant QoS: when set, the gateway registers the tenant-scoped
  /// /ndn/k8s/submit prefix and admits through a fair-share
  /// AdmissionController charging against this (federation-wide,
  /// caller-owned) registry. Null = untenanted gateway.
  qos::TenantRegistry* tenants = nullptr;
  qos::AdmissionOptions admission;
};

class ComputeCluster {
 public:
  /// Builds the cluster on an existing forwarder (typically a node of
  /// the overlay topology).
  ComputeCluster(ndn::Forwarder& forwarder, ComputeClusterConfig config);

  [[nodiscard]] const std::string& name() const noexcept { return config_.name; }
  [[nodiscard]] k8s::Cluster& cluster() noexcept { return *cluster_; }
  [[nodiscard]] Gateway& gateway() noexcept { return *gateway_; }
  [[nodiscard]] datalake::ObjectStore& store() noexcept { return *store_; }
  [[nodiscard]] datalake::FileServer& fileServer() noexcept { return *file_server_; }
  [[nodiscard]] CompletionTimePredictor& predictor() noexcept { return predictor_; }
  [[nodiscard]] ndn::Forwarder& forwarder() noexcept { return forwarder_; }

  /// Loads the synthetic genomics datasets into the data lake and
  /// installs the magic-blast image (the paper's data-loading tool +
  /// app deployment, SV-B). Idempotent per object name.
  void loadGenomicsDatasets(const genomics::DatasetCatalog& catalog);

  /// Enables the migration plane's checkpoint namespace on this
  /// cluster: a second FileServer serves /ndn/k8s/ckpt objects out of
  /// the same data lake (short freshness — the _manifest is a mutable
  /// latest-epoch pointer) and the gateway restores ckpt=<job>/<epoch>
  /// compute requests from it. Idempotent.
  void enableCheckpointServing();
  /// Null until enableCheckpointServing().
  [[nodiscard]] datalake::FileServer* ckptServer() noexcept {
    return ckpt_server_.get();
  }

  /// Hooks the whole cluster into `registry`: forwarder + gateway
  /// counters, K8s capacity gauges, and a TelemetryPublisher serving the
  /// registry under /ndn/k8s/telemetry/<name>. Call once.
  void attachTelemetry(telemetry::MetricsRegistry& registry,
                       telemetry::Tracer* tracer = nullptr,
                       telemetry::TelemetryPublisherOptions publisherOptions = {});
  [[nodiscard]] telemetry::TelemetryPublisher* telemetryPublisher() noexcept {
    return publisher_.get();
  }

  /// Points the cluster's forwarder and gateway at a flight recorder
  /// (forwarding failures + admission rejections). Null detaches.
  void setFlightRecorder(telemetry::FlightRecorder* recorder) noexcept {
    forwarder_.setFlightRecorder(recorder);
    gateway_->setFlightRecorder(recorder);
  }

  /// Attaches the traffic observability plane: the cluster owns a
  /// FlowAccountant, the forwarder's link faces get wait-free taps, the
  /// gateway's admission path reports per-tenant submit bytes, and —
  /// combined with attachTelemetry(), in either order — the accountant
  /// is mirrored into the registry and served as the
  /// /ndn/k8s/telemetry/<name>/flow/ content group. Idempotent.
  telemetry::FlowAccountant& enableFlowAccounting(
      telemetry::FlowAccountantOptions options = {});
  /// Null until enableFlowAccounting().
  [[nodiscard]] telemetry::FlowAccountant* flowAccountant() noexcept {
    return flow_.get();
  }

 private:
  ComputeClusterConfig config_;
  ndn::Forwarder& forwarder_;
  std::unique_ptr<k8s::Cluster> cluster_;
  k8s::PersistentVolumeClaim* pvc_ = nullptr;
  std::unique_ptr<datalake::ObjectStore> store_;
  std::unique_ptr<datalake::FileServer> file_server_;
  std::unique_ptr<datalake::FileServer> ckpt_server_;
  CompletionTimePredictor predictor_;
  std::unique_ptr<Gateway> gateway_;
  std::unique_ptr<telemetry::TelemetryPublisher> publisher_;
  std::unique_ptr<telemetry::FlowAccountant> flow_;
  /// Registry from attachTelemetry(), kept so enableFlowAccounting()
  /// works in either call order relative to it.
  telemetry::MetricsRegistry* registry_ = nullptr;
  bool flow_mirrored_ = false;
  bool flow_published_ = false;

  /// Wires the accountant into whatever export targets exist yet.
  void wireFlowExports();
};

}  // namespace lidc::core
