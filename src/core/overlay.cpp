#include "core/overlay.hpp"

#include <algorithm>
#include <cassert>

#include "core/checkpoint_format.hpp"
#include "replica/catalog.hpp"

namespace lidc::core {

std::optional<PlacementStrategy> parsePlacementStrategy(std::string_view name) {
  if (name == "best-route") return PlacementStrategy::kBestRoute;
  if (name == "load-balance") return PlacementStrategy::kLoadBalance;
  if (name == "multicast") return PlacementStrategy::kMulticast;
  if (name == "round-robin") return PlacementStrategy::kRoundRobin;
  if (name == "asf") return PlacementStrategy::kAsf;
  return std::nullopt;
}

ComputeCluster& ClusterOverlay::addCluster(ComputeClusterConfig config) {
  assert(clusters_.count(config.name) == 0 && "duplicate cluster name");
  ndn::Forwarder& forwarder = topology_.addNode(config.name);
  auto host = std::make_unique<ComputeCluster>(forwarder, config);
  auto [it, inserted] = clusters_.emplace(config.name, std::move(host));
  return *it->second;
}

ComputeCluster* ClusterOverlay::cluster(const std::string& name) {
  auto it = clusters_.find(name);
  return it == clusters_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ClusterOverlay::clusterNames() const {
  std::vector<std::string> names;
  names.reserve(clusters_.size());
  for (const auto& [name, host] : clusters_) names.push_back(name);
  return names;
}

void ClusterOverlay::announceCluster(const std::string& name,
                                     std::uint64_t computeExtraCostUs) {
  assert(clusters_.count(name) > 0);
  topology_.installRoutesTo(kComputePrefix, name, computeExtraCostUs);
  // Tenant-scoped submits follow the same anycast bias as bare compute.
  topology_.installRoutesTo(kSubmitPrefix, name, computeExtraCostUs);
  topology_.installRoutesTo(kDataPrefix, name);
  // Checkpoints are anycast like datasets: any cluster whose lake holds
  // (a replica of) a checkpoint can serve its restore.
  topology_.installRoutesTo(kCkptPrefix, name);
  ndn::Name statusPrefix = kStatusPrefix;
  statusPrefix.append(name);
  topology_.installRoutesTo(statusPrefix, name);
  ndn::Name infoPrefix = kInfoPrefix;
  infoPrefix.append(name);
  topology_.installRoutesTo(infoPrefix, name);
  topology_.installRoutesTo(kPublishPrefix, name);
  ndn::Name telemetryPrefix = telemetry::kTelemetryPrefix;
  telemetryPrefix.append(name);
  topology_.installRoutesTo(telemetryPrefix, name);
  // The replica catalog publishes under its own per-cluster prefix so
  // directories can scrape any cluster's replica map by name.
  ndn::Name replicaPrefix = replica::kReplicaPrefix;
  replicaPrefix.append(name);
  topology_.installRoutesTo(replicaPrefix, name);
  if (std::find(announced_.begin(), announced_.end(), name) == announced_.end()) {
    announced_.push_back(name);
  }
}

void ClusterOverlay::withdrawCluster(const std::string& name) {
  topology_.uninstallRoutesTo(kComputePrefix, name);
  topology_.uninstallRoutesTo(kSubmitPrefix, name);
  topology_.uninstallRoutesTo(kDataPrefix, name);
  topology_.uninstallRoutesTo(kCkptPrefix, name);
  ndn::Name statusPrefix = kStatusPrefix;
  statusPrefix.append(name);
  topology_.uninstallRoutesTo(statusPrefix, name);
  ndn::Name infoPrefix = kInfoPrefix;
  infoPrefix.append(name);
  topology_.uninstallRoutesTo(infoPrefix, name);
  topology_.uninstallRoutesTo(kPublishPrefix, name);
  ndn::Name telemetryPrefix = telemetry::kTelemetryPrefix;
  telemetryPrefix.append(name);
  topology_.uninstallRoutesTo(telemetryPrefix, name);
  ndn::Name replicaPrefix = replica::kReplicaPrefix;
  replicaPrefix.append(name);
  topology_.uninstallRoutesTo(replicaPrefix, name);
  std::erase(announced_, name);
}

void ClusterOverlay::refreshAnnouncements() {
  const std::vector<std::string> current = announced_;
  for (const auto& name : current) {
    withdrawCluster(name);
    announceCluster(name);
  }
}

void ClusterOverlay::failCluster(const std::string& name) {
  withdrawCluster(name);
  for (const auto& edge : topology_.edges()) {
    if (edge.a == name || edge.b == name) edge.link->setUp(false);
  }
}

void ClusterOverlay::recoverCluster(const std::string& name) {
  for (const auto& edge : topology_.edges()) {
    if (edge.a == name || edge.b == name) edge.link->setUp(true);
  }
  announceCluster(name);
}

void ClusterOverlay::attachTelemetry(telemetry::MetricsRegistry& registry,
                                     telemetry::Tracer* tracer) {
  // Clusters attach their own forwarder (plus gateway, gauges, and the
  // telemetry publisher); plain nodes just get forwarder counters.
  for (auto& [name, host] : clusters_) host->attachTelemetry(registry, tracer);
  for (const auto& nodeName : topology_.nodeNames()) {
    if (clusters_.count(nodeName) > 0) continue;
    topology_.node(nodeName)->attachTelemetry(registry, tracer);
  }
}

void ClusterOverlay::attachFlightRecorder(telemetry::FlightRecorder* recorder) {
  for (auto& [name, host] : clusters_) host->setFlightRecorder(recorder);
  for (const auto& nodeName : topology_.nodeNames()) {
    if (clusters_.count(nodeName) > 0) continue;
    topology_.node(nodeName)->setFlightRecorder(recorder);
  }
}

void ClusterOverlay::enableFlowAccounting(
    telemetry::FlowAccountantOptions options) {
  for (auto& [name, host] : clusters_) host->enableFlowAccounting(options);
  // Capacities come from the topology: each directional face URI
  // belongs to the accountant of the cluster at its near end.
  for (const auto& edge : topology_.edges()) {
    const double bits = edge.link->params().bandwidthBitsPerSec;
    if (auto it = clusters_.find(edge.a); it != clusters_.end()) {
      it->second->flowAccountant()->setLinkCapacity(
          "link://" + edge.a + "->" + edge.b, bits);
    }
    if (auto it = clusters_.find(edge.b); it != clusters_.end()) {
      it->second->flowAccountant()->setLinkCapacity(
          "link://" + edge.b + "->" + edge.a, bits);
    }
  }
}

void ClusterOverlay::setPlacementStrategy(PlacementStrategy strategy,
                                          std::uint64_t seed) {
  for (const auto& nodeName : topology_.nodeNames()) {
    ndn::Forwarder* forwarder = topology_.node(nodeName);
    std::unique_ptr<ndn::Strategy> instance;
    switch (strategy) {
      case PlacementStrategy::kBestRoute:
        instance = std::make_unique<ndn::BestRouteStrategy>(*forwarder);
        break;
      case PlacementStrategy::kLoadBalance:
        instance = std::make_unique<ndn::LoadBalanceStrategy>(
            *forwarder, seed ^ std::hash<std::string>{}(nodeName));
        break;
      case PlacementStrategy::kMulticast:
        instance = std::make_unique<ndn::MulticastStrategy>(*forwarder);
        break;
      case PlacementStrategy::kRoundRobin:
        instance = std::make_unique<ndn::RoundRobinStrategy>(*forwarder);
        break;
      case PlacementStrategy::kAsf:
        instance = std::make_unique<ndn::AsfStrategy>(
            *forwarder, seed ^ std::hash<std::string>{}(nodeName));
        break;
    }
    forwarder->setStrategy(kComputePrefix, std::move(instance));
  }
}

}  // namespace lidc::core
