// The LIDC Gateway (paper SIII-C, Fig. 4): the decision-maker running
// at each cluster's edge. It receives compute Interests from the NDN
// network, parses the semantic name, runs application-specific
// validation, launches a Kubernetes Job, and answers with the job id.
// It also serves /ndn/k8s/status/<cluster>/<job_id> queries and — for
// canonical (request-id-free) names — a result cache so identical
// requests never recompute (paper SVII).
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>

#include "core/job_manager.hpp"
#include "core/predictor.hpp"
#include "core/result_cache.hpp"
#include "core/semantic_name.hpp"
#include "core/validators.hpp"
#include "core/wire_format.hpp"
#include "ndn/app_face.hpp"
#include "ndn/forwarder.hpp"
#include "qos/admission.hpp"
#include "qos/tenant.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace lidc::core {

struct GatewayOptions {
  bool enableResultCache = true;
  std::size_t cacheCapacity = 256;
  sim::Duration cacheTtl = sim::Duration::hours(24);
  /// Freshness on compute acks (lets the NDN content stores aggregate
  /// identical canonical requests network-wide).
  sim::Duration ackFreshness = sim::Duration::seconds(5);
  sim::Duration statusFreshness = sim::Duration::millis(500);
  /// Freshness on /ndn/k8s/info/<cluster> capability advertisements.
  sim::Duration infoFreshness = sim::Duration::seconds(2);
  /// Largest object accepted through a single publish command Interest.
  std::size_t maxPublishBytes = 1 << 20;
  /// Health gate: while the fraction of Ready nodes is below this, new
  /// compute Interests are nacked with kCongestion so the forwarding
  /// strategy fails over to a healthy cluster. 0 disables the gate.
  double minHealthyNodeFraction = 0.5;
  /// Orphan reaper: launched/in-flight bookkeeping for a job that is
  /// still non-terminal this long after launch is expired, so dedup can
  /// never join a dead job and status queries return a clean NotFound.
  sim::Duration orphanTtl = sim::Duration::minutes(10);
  sim::Duration reaperInterval = sim::Duration::seconds(30);
  bool enableOrphanReaper = true;
  /// Status-namespace GC: terminal job entries (and migration aliases)
  /// older than `statusRetention` are forgotten. Swept by the orphan
  /// reaper while it runs and evicted lazily when a poll touches an
  /// expired entry, so the status table cannot grow without bound — and
  /// no extra timer is armed for terminal-only state (idle simulations
  /// still drain).
  bool enableStatusGc = true;
  sim::Duration statusRetention = sim::Duration::minutes(30);
};

struct GatewayCounters {
  std::uint64_t computeReceived = 0;
  std::uint64_t computeRejected = 0;   // validation/parse failures
  std::uint64_t jobsLaunched = 0;
  std::uint64_t cacheHits = 0;         // served from the result cache
  std::uint64_t inflightDedup = 0;     // joined an already-running job
  std::uint64_t statusReceived = 0;
  std::uint64_t capacityRejected = 0;  // cluster could not fit the job
  std::uint64_t infoReceived = 0;      // capability queries served
  std::uint64_t publishesAccepted = 0;
  std::uint64_t publishesRejected = 0;
  std::uint64_t healthRejected = 0;    // nacked by the health gate
  std::uint64_t orphansReaped = 0;     // launched/inflight entries expired
  std::uint64_t vanishedEvicted = 0;   // evicted when the job object vanished
  std::uint64_t blackoutDropped = 0;   // Interests dropped during a blackout
  std::uint64_t grayAdmitted = 0;      // jobs "accepted" by a gray gateway
  std::uint64_t ckptRestores = 0;      // jobs launched from a checkpoint
  std::uint64_t ckptRestoreFailures = 0;  // stale/corrupt ckpt -> cold start
  std::uint64_t statusEvicted = 0;     // terminal status entries GC'd
  std::uint64_t aliasServed = 0;       // polls served through a migration alias
};

class Gateway {
 public:
  /// Attaches to `forwarder`, registering /ndn/k8s/compute and
  /// /ndn/k8s/status/<clusterName> toward a new AppFace.
  Gateway(ndn::Forwarder& forwarder, k8s::Cluster& cluster,
          ValidatorRegistry validators, GatewayOptions options = {},
          CompletionTimePredictor* predictor = nullptr);

  /// Enables /ndn/k8s/publish: clients push named objects into this
  /// cluster's data lake via command Interests.
  void enablePublish(datalake::ObjectStore& store);

  /// Enables the multi-tenant QoS front door: registers the
  /// /ndn/k8s/submit prefix and routes tenant-scoped submit Interests
  /// through an AdmissionController (rate limits, quotas, weighted fair
  /// queueing) before they reach the JobManager. Publishes carrying a
  /// tenant component are charged against the tenant's byte quota.
  void enableQos(qos::TenantRegistry& tenants,
                 qos::AdmissionOptions admission = {});

  /// Null until enableQos().
  [[nodiscard]] qos::AdmissionController* admission() noexcept {
    return admission_.get();
  }

  /// Enables checkpoint restore (migration plane): compute Interests
  /// carrying a ckpt=<job_id>/<epoch> param resume from the named
  /// /ndn/k8s/ckpt object in `store` instead of cold-starting. When the
  /// object is not in this lake the Interest is nacked kNoRoute, so the
  /// forwarding strategy steers the resume to a cluster holding a
  /// replica — checkpoints stay location-independent like any dataset.
  void enableCheckpointRestore(datalake::ObjectStore& store) noexcept {
    ckpt_store_ = &store;
  }

  /// Migration alias: /ndn/k8s/status/<oldCluster>/<oldJobId> polls are
  /// answered with the status of `newJobId` on this cluster, so pollers
  /// follow a migrated job without learning the new name. Registers the
  /// exact old status name on this gateway's forwarder — the
  /// 5-component route wins longest-prefix match over the dead
  /// cluster's 4-component status prefix.
  void addStatusAlias(const std::string& oldCluster,
                      const std::string& oldJobId, const std::string& newJobId);

  [[nodiscard]] const std::string& clusterName() const noexcept {
    return cluster_name_;
  }
  [[nodiscard]] JobManager& jobs() noexcept { return jobs_; }
  [[nodiscard]] ResultCache& cache() noexcept { return cache_; }
  [[nodiscard]] const GatewayCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] ValidatorRegistry& validators() noexcept { return validators_; }
  [[nodiscard]] ndn::FaceId faceId() const noexcept { return face_id_; }

  /// Reject new jobs when the cluster's free capacity cannot fit them
  /// (the gateway nacks, letting the network fail over to another
  /// cluster). Enabled by default.
  void setAdmissionControl(bool enabled) noexcept { admission_control_ = enabled; }

  /// Simulated gateway-process outage: while blacked out every Interest
  /// is dropped silently (no Data, no Nack), so clients see PIT timeouts
  /// exactly as if the gateway pod died. Driven by the chaos engine.
  void setBlackout(bool on) noexcept { blackout_ = on; }
  [[nodiscard]] bool blackedOut() const noexcept { return blackout_; }

  /// Gray failure (chaos kGrayGateway): unlike a blackout, the gateway
  /// keeps answering — compute Interests get a plausible ack with a job
  /// id, but nothing is ever scheduled and status polls for those ids
  /// return Pending forever. Health probes, info queries, and real jobs'
  /// status keep working, so only a progress watchdog can tell. Jobs
  /// admitted during the gray window stay dark even after recovery (the
  /// fabricated ids never map to real work).
  void setGrayFailure(bool on) noexcept { gray_ = on; }
  [[nodiscard]] bool grayFailed() const noexcept { return gray_; }

  /// Fraction of this cluster's nodes currently Ready, in [0, 1].
  [[nodiscard]] double healthyNodeFraction() const;

  /// Syncs GatewayCounters, result-cache stats, and the health gauge
  /// into `registry` at snapshot time (lidc_gateway_*{cluster=...}).
  /// With a tracer, traced compute Interests get a "gateway-admission"
  /// span, status serves get instants, and finished jobs get
  /// retroactive "k8s-schedule" / "k8s-exec" spans from the recorded
  /// launch and job timestamps.
  void attachTelemetry(telemetry::MetricsRegistry& registry,
                       telemetry::Tracer* tracer = nullptr);

  /// Records admission rejections and blackout drops into `recorder`,
  /// so fired alerts carry the gateway's recent decisions.
  void setFlightRecorder(telemetry::FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
    if (admission_) admission_->setFlightRecorder(recorder);
  }

 private:
  void handleInterest(const ndn::Interest& interest);
  void onCompute(const ndn::Interest& interest);
  void onSubmit(const ndn::Interest& interest);
  /// The shared back half of the compute pipeline (validation, cache,
  /// dedup, capacity, launch, ack). Returns true iff a LaunchRecord was
  /// created — QoS launches use this to release usage for answers that
  /// hold no job (cache hits, dedups, rejections).
  bool processCompute(const ndn::Interest& interest,
                      const ComputeRequest& request, const std::string& tenant,
                      int priorityClass, bool checkCapacity);
  /// Gray-failure fabricated admission (shared by compute and submit).
  void grayAdmit(const ndn::Interest& interest);
  void onStatus(const ndn::Interest& interest);
  void onInfo(const ndn::Interest& interest);
  void onPublish(const ndn::Interest& interest);
  void replyKv(const ndn::Name& name, const KvMap& fields, sim::Duration freshness);
  void onJobFinished(const k8s::Job& job);
  /// Drops launched_/inflight_ bookkeeping for a job and (for orphans)
  /// the JobManager mapping, so dedup/status never reference it again.
  void evictJob(const std::string& jobId, bool forgetStatus);
  /// Arms the reaper timer if it is enabled, not already pending, and
  /// there are launched jobs to watch (lazy, so idle simulations drain).
  void scheduleReaper();
  /// One reaper sweep: expires vanished jobs and non-terminal orphans.
  void reapOrphans();

  ndn::Forwarder& forwarder_;
  k8s::Cluster& cluster_;
  std::string cluster_name_;
  ValidatorRegistry validators_;
  GatewayOptions options_;
  CompletionTimePredictor* predictor_;
  datalake::ObjectStore* publish_store_ = nullptr;
  qos::TenantRegistry* tenants_ = nullptr;
  std::unique_ptr<qos::AdmissionController> admission_;
  telemetry::MetricsRegistry* metrics_registry_ = nullptr;
  JobManager jobs_;
  ResultCache cache_;
  std::shared_ptr<ndn::AppFace> face_;
  ndn::FaceId face_id_ = ndn::kInvalidFaceId;
  GatewayCounters counters_;
  telemetry::Tracer* tracer_ = nullptr;
  telemetry::FlightRecorder* recorder_ = nullptr;
  bool admission_control_ = true;
  bool blackout_ = false;
  bool gray_ = false;
  std::uint64_t next_gray_id_ = 1;
  /// Fabricated job ids handed out while gray; status stays Pending.
  std::set<std::string> gray_jobs_;
  bool reaper_pending_ = false;
  /// Checkpoint lake for ckpt= restores (null until enableCheckpointRestore).
  datalake::ObjectStore* ckpt_store_ = nullptr;

  struct StatusAlias {
    std::string jobId;       // local job serving the old name
    sim::Time createdAt;     // GC fallback; normally ages from the
                             // successor's terminal time instead
  };
  /// "<oldCluster>/<oldJobId>" -> alias (migrated-in jobs).
  std::unordered_map<std::string, StatusAlias> status_aliases_;
  /// jobId -> terminal time, for status-namespace GC.
  std::unordered_map<std::string, sim::Time> terminal_;

  struct LaunchRecord {
    ComputeRequest request;
    sim::Time launchedAt;
    /// Trace of the Interest that launched the job (invalid when the
    /// submitter was not tracing); parents the retroactive K8s spans.
    telemetry::TraceContext trace;
    /// QoS bookkeeping: tenant the job was admitted for (empty on the
    /// legacy compute path) and the usage charged at admission, released
    /// when the job reaches a terminal state or is evicted.
    std::string tenant;
    std::uint64_t chargedCpu = 0;
    std::uint64_t chargedMem = 0;
  };

  /// canonical name -> jobId for jobs still in flight (dedup).
  std::unordered_map<ndn::Name, std::string, ndn::NameHash> inflight_;
  /// jobId -> originating request + launch time (cache/predictor
  /// bookkeeping and orphan expiry).
  std::unordered_map<std::string, LaunchRecord> launched_;
};

}  // namespace lidc::core
