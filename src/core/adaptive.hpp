// Adaptive placement — the paper's SVII "intelligence in the control
// plane": "the network [can] identify the most suitable cluster for
// executing requests ... based on computing and timing requirements,
// data size, past performances, and other factors."
//
// AdaptivePlacement watches per-cluster observed completion latency and
// current resource utilization, converts them into an extra route cost,
// and re-announces each cluster's compute prefix with that bias. The
// BestRoute strategy then steers new jobs toward the cluster expected
// to finish them soonest — no client involvement.
//
// Driving: call recordCompletion() as jobs finish and tick() on
// whatever cadence the deployment wants (benches tick once per
// simulated second). Updates are explicit rather than self-scheduling
// so simulations that run()-to-idle terminate.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "core/overlay.hpp"
#include "sim/time.hpp"

namespace lidc::replica {
class ReplicaDirectory;
}

namespace lidc::core {

struct AdaptiveOptions {
  /// Extra cost per second of observed mean completion latency, in
  /// microseconds of equivalent link distance.
  double latencyCostUsPerSecond = 2'000.0;
  /// Extra cost at 100% cpu utilization.
  double loadCostUs = 100'000.0;
  /// EWMA smoothing for observed completion latency.
  double alpha = 0.3;
  /// Re-announce only when a cluster's cost moved by at least this much
  /// (hysteresis; avoids FIB churn).
  std::uint64_t updateThresholdUs = 5'000;
  /// Extra cost as telemetry-reported health degrades, scaled by
  /// (1 - score); only clusters fed via observeHealth() pay it.
  double healthCostUs = 500'000.0;
  /// At or below this health the cluster additionally pays
  /// unhealthyExtraCostUs, so even the most distant healthy cluster
  /// wins the route before the degraded one hard-fails jobs.
  double unhealthyThreshold = 0.25;
  double unhealthyExtraCostUs = 1'000'000.0;
  /// Extra cost while a cluster's circuit breaker is open (see
  /// LidcClient breakers; wire the breakerListener to observeBreaker).
  /// Large enough that any breaker-closed cluster wins the route —
  /// gray clusters pass health probes, so only outcome-driven breakers
  /// catch them.
  double breakerCostUs = 2'000'000.0;
  /// Data-locality bias (replica plane): extra cost paid by a cluster
  /// per tracked dataset it does NOT hold a ready replica of (per the
  /// ReplicaDirectory), scaled by the missing fraction. Clusters whose
  /// lakes already hold the inputs win the compute route — "compute
  /// goes to the data".
  double dataLocalityCostUs = 0.0;
};

class AdaptivePlacement {
 public:
  AdaptivePlacement(ClusterOverlay& overlay, AdaptiveOptions options = {})
      : overlay_(overlay), options_(options) {}

  /// Feeds one observed end-to-end completion (submit -> terminal).
  void recordCompletion(const std::string& cluster, sim::Duration totalLatency);

  /// Feeds a telemetry-plane health score in [0, 1] (see
  /// TelemetryCollector::healthScore); wire a collector health listener
  /// to this + tick() to close the steering loop.
  void observeHealth(const std::string& cluster, double score);

  /// Last health score fed for a cluster (1.0 if never fed).
  [[nodiscard]] double observedHealth(const std::string& cluster) const;

  /// Feeds a circuit-breaker transition: while `open` the cluster pays
  /// breakerCostUs on its compute route. Wire a client's breakerListener
  /// to this + tick() so tripped clusters stop receiving new jobs at
  /// the routing layer (half-open probes still reach them once the
  /// breaker lifts). Any non-closed state counts as open here.
  void observeBreaker(const std::string& cluster, bool open);

  /// True when the last observeBreaker() for the cluster reported open.
  [[nodiscard]] bool breakerOpen(const std::string& cluster) const;

  /// Wires the replica plane into steering: clusters missing ready
  /// replicas of tracked datasets pay dataLocalityCostUs on their
  /// compute route (scaled by the missing fraction). Null detaches.
  void setReplicaDirectory(const replica::ReplicaDirectory* directory) noexcept {
    replica_directory_ = directory;
  }
  /// Adds a dataset to the locality-tracked set (typically the hot
  /// inputs of the workload about to run). Duplicates are ignored.
  void trackDataset(const ndn::Name& dataset);
  [[nodiscard]] std::size_t trackedDatasets() const noexcept {
    return tracked_datasets_.size();
  }

  /// Feeds a cluster's /ndn/k8s/info advertisement. When info has been
  /// observed for a cluster, load costing uses the advertised free/total
  /// capacity instead of peeking at the cluster object — the pure
  /// "network learns over names" mode of SVII.
  void observeInfo(const ClusterInfo& info);

  /// Recomputes per-cluster extra costs and re-announces the compute
  /// routes for clusters whose cost moved beyond the threshold.
  /// Returns the number of clusters re-announced.
  int tick();

  /// Current extra cost assigned to a cluster (0 if never updated).
  [[nodiscard]] std::uint64_t extraCostUs(const std::string& cluster) const;

  [[nodiscard]] std::uint64_t updatesApplied() const noexcept { return updates_; }

 private:
  [[nodiscard]] std::uint64_t computeCost(const std::string& cluster) const;

  ClusterOverlay& overlay_;
  AdaptiveOptions options_;
  std::map<std::string, double> observed_latency_s_;  // EWMA per cluster
  std::map<std::string, double> advertised_utilization_;  // from /info
  std::map<std::string, double> observed_health_;     // from telemetry
  std::map<std::string, bool> breaker_open_;          // from client breakers
  std::map<std::string, std::uint64_t> applied_cost_us_;
  const replica::ReplicaDirectory* replica_directory_ = nullptr;
  std::vector<ndn::Name> tracked_datasets_;
  std::uint64_t updates_ = 0;
};

}  // namespace lidc::core
