#include "core/compute_cluster.hpp"

#include <cassert>

#include "apps/compress_app.hpp"
#include "core/checkpoint_format.hpp"
#include "apps/transform_app.hpp"
#include "genomics/fasta.hpp"

namespace lidc::core {

ComputeCluster::ComputeCluster(ndn::Forwarder& forwarder, ComputeClusterConfig config)
    : config_(std::move(config)), forwarder_(forwarder) {
  assert(!config_.name.empty());
  cluster_ = std::make_unique<k8s::Cluster>(config_.name, forwarder_.simulator());
  for (int i = 0; i < config_.nodeCount; ++i) {
    cluster_->addNode(config_.name + "-node-" + std::to_string(i), config_.perNode);
  }

  // The data lake: a PVC, its object store, and the NDN file server
  // exposed under /ndn/k8s/data (paper SIV: "a Kubernetes PVC ...
  // mounts it to an NFS server, which functions like a remote data lake").
  auto pvcResult = cluster_->createPvc("datalake-pvc", config_.pvcCapacity);
  assert(pvcResult.ok());
  pvc_ = *pvcResult;
  store_ = std::make_unique<datalake::ObjectStore>(*pvc_);
  file_server_ =
      std::make_unique<datalake::FileServer>(forwarder_, *store_, kDataPrefix);

  // Expose the gateway NFD as a NodePort service, as in Fig. 3.
  k8s::ServiceSpec nfdSpec;
  nfdSpec.type = k8s::ServiceType::kNodePort;
  nfdSpec.selector = {{"app", "nfd"}};
  nfdSpec.port = 6363;
  (void)cluster_->createService("ndnk8s", "gateway-nfd", nfdSpec);
  // The data lake's internal NFD service with its cluster DNS name
  // ("dl-nfd.ndnk8s.svc.cluster.local" in the paper).
  k8s::ServiceSpec dlSpec;
  dlSpec.selector = {{"app", "dl-nfd"}};
  dlSpec.port = 6363;
  (void)cluster_->createService("ndnk8s", "dl-nfd", dlSpec);

  // Application-specific validators (paper SIV-B): format checks first,
  // then data-lake existence so doomed jobs never launch.
  ValidatorRegistry validators;
  validators.add("BLAST", combineValidators(makeBlastValidator(),
                                            makeDataLakeValidator(*store_)));
  validators.add("compress", combineValidators(makeCompressionValidator(),
                                               makeDataLakeValidator(*store_)));
  validators.add("transform", combineValidators(makeTransformValidator(),
                                                makeDataLakeValidator(*store_)));

  gateway_ = std::make_unique<Gateway>(forwarder_, *cluster_, std::move(validators),
                                       config_.gateway, &predictor_);
  gateway_->jobs().mapAppToImage("BLAST", "magic-blast");
  gateway_->enablePublish(*store_);
  if (config_.tenants != nullptr) {
    gateway_->enableQos(*config_.tenants, config_.admission);
  }

  // The second stock application (paper SIV-B): a file compression tool
  // with its own validation rules.
  apps::installCompressApp(*cluster_, *store_);
  // The generic DAG-stage app used by workflow benches and tests.
  apps::installTransformApp(*cluster_, *store_);
}

void ComputeCluster::enableCheckpointServing() {
  if (ckpt_server_) return;
  ckpt_server_ =
      std::make_unique<datalake::FileServer>(forwarder_, *store_, kCkptPrefix);
  // The _manifest is a mutable latest-epoch pointer queried with
  // MustBeFresh: keep served freshness short so no poller acts on a
  // superseded pointer (epoch objects themselves are immutable).
  ckpt_server_->setFreshness(sim::Duration::millis(500));
  gateway_->enableCheckpointRestore(*store_);
}

void ComputeCluster::attachTelemetry(
    telemetry::MetricsRegistry& registry, telemetry::Tracer* tracer,
    telemetry::TelemetryPublisherOptions publisherOptions) {
  forwarder_.attachTelemetry(registry, tracer);
  gateway_->attachTelemetry(registry, tracer);

  // K8s capacity gauges, synced at snapshot time (the k8s layer itself
  // stays telemetry-free).
  const telemetry::Labels labels{{"cluster", config_.name}};
  registry.registerCollector([this, &registry, labels] {
    const auto free = cluster_->totalFree();
    const auto total = cluster_->totalAllocatable();
    registry.gauge("lidc_cluster_free_cpu_m", labels)
        .set(static_cast<double>(free.cpu.millicores()));
    registry.gauge("lidc_cluster_free_mem_bytes", labels)
        .set(static_cast<double>(free.memory.bytes()));
    registry.gauge("lidc_cluster_total_cpu_m", labels)
        .set(static_cast<double>(total.cpu.millicores()));
    registry.gauge("lidc_cluster_running_jobs", labels)
        .set(static_cast<double>(cluster_->runningJobCount()));
    registry.gauge("lidc_cluster_nodes_ready", labels)
        .set(static_cast<double>(cluster_->readyNodeCount()));
    registry.gauge("lidc_cluster_nodes_total", labels)
        .set(static_cast<double>(cluster_->nodeCount()));
  });

  publisher_ = std::make_unique<telemetry::TelemetryPublisher>(
      forwarder_, registry, config_.name, publisherOptions);
  publisher_->addGroup("forwarder", "lidc_forwarder");
  publisher_->addGroup("gateway", "lidc_gateway");
  if (config_.tenants != nullptr) {
    // Per-tenant admission series under /ndn/k8s/telemetry/<name>/qos/.
    publisher_->addGroup("qos", "lidc_qos");
  }
  registry_ = &registry;
  wireFlowExports();
}

telemetry::FlowAccountant& ComputeCluster::enableFlowAccounting(
    telemetry::FlowAccountantOptions options) {
  if (!flow_) {
    flow_ = std::make_unique<telemetry::FlowAccountant>(forwarder_.simulator(),
                                                        options);
    forwarder_.attachFlowAccounting(*flow_);
    if (auto* admission = gateway_->admission()) {
      admission->setFlowAccountant(flow_.get());
    }
    wireFlowExports();
  }
  return *flow_;
}

void ComputeCluster::wireFlowExports() {
  if (!flow_) return;
  if (registry_ != nullptr && !flow_mirrored_) {
    flow_->attachTelemetry(*registry_);
    flow_mirrored_ = true;
  }
  if (publisher_ != nullptr && !flow_published_) {
    // The flow ledger rides the monitoring plane as its own content
    // group: /ndn/k8s/telemetry/<name>/flow/ (same manifest + immutable
    // snapshot discipline as the registry groups).
    auto* fa = flow_.get();
    publisher_->addContentGroup(
        "flow", [fa] { return fa->toPrometheus(); },
        [fa] { return fa->revision(); });
    flow_published_ = true;
  }
}

void ComputeCluster::loadGenomicsDatasets(const genomics::DatasetCatalog& catalog) {
  // Reference database.
  {
    ndn::Name refName = kDataPrefix;
    refName.append(config_.blast.referenceObject);
    if (!store_->contains(refName)) {
      const auto reference = catalog.generateReference();
      (void)store_->put(refName, genomics::toFasta({reference}));
    }
  }
  // SRA samples (rice + kidney, paper SV-B).
  const auto reference = catalog.generateReference();
  for (const auto& spec : catalog.allSamples()) {
    ndn::Name sampleName = kDataPrefix;
    sampleName.append(spec.srrId);
    if (store_->contains(sampleName)) continue;
    const auto reads = catalog.generateSample(spec, reference.bases);
    (void)store_->put(sampleName, genomics::toFasta(reads));
  }
  genomics::installMagicBlast(*cluster_, *store_, catalog, config_.blast);
}

}  // namespace lidc::core
