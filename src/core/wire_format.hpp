// Tiny "k=v;k=v" text format used in LIDC response payloads (job
// submission acks, status reports). Human-readable, order-insensitive.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "common/strings.hpp"

namespace lidc::core {

using KvMap = std::map<std::string, std::string>;

inline std::string encodeKv(const KvMap& fields) {
  std::string out;
  for (const auto& [key, value] : fields) {
    if (!out.empty()) out += ';';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

inline KvMap decodeKv(std::string_view text) {
  KvMap fields;
  for (auto pair : strings::splitSkipEmpty(text, ';')) {
    const auto eq = pair.find('=');
    if (eq == std::string_view::npos) continue;
    fields.emplace(std::string(pair.substr(0, eq)), std::string(pair.substr(eq + 1)));
  }
  return fields;
}

}  // namespace lidc::core
