// The LIDC semantic-name grammar (paper SIII-C): computation requests
// are NDN names of the form
//   /ndn/k8s/compute/mem=4&cpu=6&app=BLAST&srr_id=SRR2931415
// carrying the application, resource requirements, and dataset names in
// one '&'-joined key=value component. This module parses and builds
// those names, plus the /ndn/k8s/data and /ndn/k8s/status namespaces.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "ndn/name.hpp"

namespace lidc::core {

/// Well-known LIDC namespaces (paper SIV; /info supports SVII's
/// capability discovery: "once the network knows cluster capabilities").
inline const ndn::Name kComputePrefix{"/ndn/k8s/compute"};
inline const ndn::Name kDataPrefix{"/ndn/k8s/data"};
inline const ndn::Name kStatusPrefix{"/ndn/k8s/status"};
inline const ndn::Name kInfoPrefix{"/ndn/k8s/info"};
/// Command-Interest namespace for pushing client datasets into a lake
/// (paper: workflows "publish intermediate datasets back to the lake").
inline const ndn::Name kPublishPrefix{"/ndn/k8s/publish"};
/// Tenant-scoped submit namespace: /ndn/k8s/submit/<tenant>/<job desc>.
/// Gateways with QoS enabled classify these by tenant, apply quotas and
/// fair-share queueing, then hand the embedded compute request to the
/// same pipeline kComputePrefix uses.
inline const ndn::Name kSubmitPrefix{"/ndn/k8s/submit"};

/// A parsed computation request.
struct ComputeRequest {
  std::string app;        // e.g. "BLAST"
  MilliCpu cpu;           // "cpu=6"
  ByteSize memory;        // "mem=4" (GB, per the paper's examples)
  std::map<std::string, std::string> params;  // everything else (srr_id, ...)
  /// Dataset content names the job consumes ("dataset" keys).
  std::vector<std::string> datasets;
  /// Optional unique request id ("req" key). When absent the request
  /// name is canonical and may be satisfied from result caches.
  std::string requestId;

  /// Optional flow-attribution tag (e.g. "wf/<workflow-id>"). Carried
  /// as a hop-by-hop FlowLabel on submit Interests — NOT part of the
  /// name, so caching and dedup semantics are unchanged.
  std::string flowTag;

  /// Builds the Interest name. Keys are emitted in sorted order so
  /// semantically identical requests produce byte-identical names —
  /// the property LIDC's result caching keys on (paper SVII).
  [[nodiscard]] ndn::Name toName() const;

  /// Canonical cache key: the name with any request id stripped.
  [[nodiscard]] ndn::Name canonicalName() const;

  /// Parses a /ndn/k8s/compute/... name.
  static Result<ComputeRequest> fromName(const ndn::Name& name);
};

/// Builds /ndn/k8s/submit/<tenant>/<compute components...> from a
/// request: the tenant travels as its own name component, ahead of the
/// job description.
ndn::Name makeSubmitName(const std::string& tenant, const ComputeRequest& request);

/// Parses a submit name into {tenant, request}. The tenant id is also
/// injected into the request's params ("tenant" key) so downstream
/// namespace routing (JobManager's tenant-<id> namespaces) keeps
/// working unchanged. Tenant charset is NOT validated here — the
/// gateway rejects unknown/invalid tenants cleanly.
Result<std::pair<std::string, ComputeRequest>> parseSubmitName(
    const ndn::Name& name);

/// Builds /ndn/k8s/status/<cluster>/<job_id>.
ndn::Name makeStatusName(const std::string& cluster, const std::string& jobId);

/// Parses a status name; returns {cluster, jobId}.
Result<std::pair<std::string, std::string>> parseStatusName(const ndn::Name& name);

/// Builds /ndn/k8s/data/<path components...> from a '/'-separated path.
ndn::Name makeDataName(const std::string& path);

}  // namespace lidc::core
