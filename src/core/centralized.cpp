#include "core/centralized.hpp"

namespace lidc::core {

CentralizedController::CentralizedController(sim::Simulator& sim,
                                             CentralizedOptions options)
    : sim_(sim), options_(options) {}

void CentralizedController::registerCluster(ComputeCluster& cluster,
                                            sim::Duration rpcLatency) {
  clusters_[cluster.name()] =
      ClusterEntry{&cluster, rpcLatency, true, true, sim_.now()};
}

void CentralizedController::unregisterCluster(const std::string& name) {
  clusters_.erase(name);
}

void CentralizedController::setClusterReachable(const std::string& name,
                                                bool reachable) {
  auto it = clusters_.find(name);
  if (it == clusters_.end()) return;
  refreshBelief(it->second);  // settle the old state first
  it->second.reachable = reachable;
  it->second.lastChange = sim_.now();
  // believedAlive lags by up to a heartbeat interval, on purpose.
}

void CentralizedController::refreshBelief(ClusterEntry& entry) {
  if (sim_.now() - entry.lastChange >= options_.heartbeatInterval) {
    entry.believedAlive = entry.reachable;
  }
}

CentralizedController::ClusterEntry* CentralizedController::pickCluster(
    const ComputeRequest& request) {
  k8s::Resources needed;
  needed.cpu = request.cpu.millicores() > 0 ? request.cpu : MilliCpu::fromCores(1);
  needed.memory =
      request.memory.bytes() > 0 ? request.memory : ByteSize::fromGiB(1);

  ClusterEntry* best = nullptr;
  double bestLoad = 2.0;
  for (auto& [name, entry] : clusters_) {
    refreshBelief(entry);
    if (!entry.believedAlive) continue;
    auto& k8sCluster = entry.cluster->cluster();
    if (!needed.fitsWithin(k8sCluster.totalFree())) continue;
    const auto allocatable = k8sCluster.totalAllocatable();
    const auto allocated = k8sCluster.totalAllocated();
    const double load =
        allocatable.cpu.millicores() == 0
            ? 1.0
            : static_cast<double>(allocated.cpu.millicores()) /
                  static_cast<double>(allocatable.cpu.millicores());
    if (load < bestLoad) {
      bestLoad = load;
      best = &entry;
    }
  }
  return best;
}

void CentralizedController::submit(const ComputeRequest& request,
                                   SubmitCallback done) {
  const sim::Time startedAt = sim_.now();
  // Client -> controller RPC leg.
  sim_.scheduleAfter(options_.clientRpcLatency, [this, request, done, startedAt] {
    if (down_) {
      // The controller is the single point of failure: the client's RPC
      // just times out.
      sim_.scheduleAfter(options_.rpcTimeout, [done] {
        done(Status::Unavailable("controller unreachable (RPC timeout)"));
      });
      return;
    }
    ClusterEntry* entry = pickCluster(request);
    if (entry == nullptr) {
      sim_.scheduleAfter(options_.clientRpcLatency, [done] {
        done(Status::ResourceExhausted("no registered cluster can fit the job"));
      });
      return;
    }
    // Controller -> cluster RPC leg.
    const std::string clusterName = entry->cluster->name();
    const sim::Duration toCluster = entry->rpcLatency;
    sim_.scheduleAfter(toCluster, [this, request, done, startedAt, clusterName,
                                   toCluster] {
      auto it = clusters_.find(clusterName);
      if (it == clusters_.end() || !it->second.reachable) {
        // The controller believed the cluster alive; the job is lost and
        // the client RPC fails only after the timeout.
        ++lost_;
        sim_.scheduleAfter(options_.rpcTimeout, [done] {
          done(Status::Unavailable("selected cluster did not respond"));
        });
        return;
      }
      auto jobId = it->second.cluster->gateway().jobs().submit(request);
      // Reply legs: cluster -> controller -> client.
      const sim::Duration replyLatency = toCluster + options_.clientRpcLatency;
      if (!jobId.ok()) {
        const Status failure = jobId.status();
        sim_.scheduleAfter(replyLatency, [done, failure] { done(failure); });
        return;
      }
      ++placed_;
      job_locations_[*jobId] = clusterName;
      const std::string id = *jobId;
      sim_.scheduleAfter(replyLatency, [this, done, id, clusterName, startedAt] {
        done(SubmitAck{id, clusterName, sim_.now() - startedAt});
      });
    });
  });
}

void CentralizedController::queryStatus(const std::string& jobId,
                                        StatusCallback done) {
  sim_.scheduleAfter(options_.clientRpcLatency, [this, jobId, done] {
    if (down_) {
      sim_.scheduleAfter(options_.rpcTimeout, [done] {
        done(Status::Unavailable("controller unreachable"));
      });
      return;
    }
    auto locationIt = job_locations_.find(jobId);
    if (locationIt == job_locations_.end()) {
      sim_.scheduleAfter(options_.clientRpcLatency, [done, jobId] {
        done(Status::NotFound("unknown job " + jobId));
      });
      return;
    }
    auto clusterIt = clusters_.find(locationIt->second);
    if (clusterIt == clusters_.end() || !clusterIt->second.reachable) {
      sim_.scheduleAfter(options_.rpcTimeout, [done] {
        done(Status::Unavailable("cluster holding the job is unreachable"));
      });
      return;
    }
    auto status = clusterIt->second.cluster->gateway().jobs().status(jobId);
    const sim::Duration replyLatency =
        clusterIt->second.rpcLatency * 2.0 + options_.clientRpcLatency;
    if (!status.ok()) {
      const Status failure = status.status();
      sim_.scheduleAfter(replyLatency, [done, failure] { done(failure); });
      return;
    }
    StatusReport report{status->state, status->resultPath, status->outputBytes};
    sim_.scheduleAfter(replyLatency, [done, report] { done(report); });
  });
}

}  // namespace lidc::core
