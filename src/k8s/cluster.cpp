#include "k8s/cluster.hpp"

#include <algorithm>
#include <cassert>

#include "common/logging.hpp"

namespace lidc::k8s {

namespace {
constexpr std::size_t kMaxEvents = 4096;
}  // namespace

Cluster::Cluster(std::string name, sim::Simulator& sim, std::uint64_t seed)
    : name_(std::move(name)), sim_(sim), rng_(seed) {}

// ---------- nodes ----------

Node& Cluster::addNode(const std::string& nodeName, Resources allocatable) {
  auto [it, inserted] =
      nodes_.emplace(nodeName, std::make_unique<Node>(nodeName, allocatable));
  assert(inserted && "duplicate node");
  recordEvent("NodeAdded", nodeName, "allocatable cpu=" + allocatable.cpu.toString() +
                                         " mem=" + allocatable.memory.toString());
  retryUnschedulable();
  return *it->second;
}

Node* Cluster::node(const std::string& nodeName) {
  auto it = nodes_.find(nodeName);
  return it == nodes_.end() ? nullptr : it->second.get();
}

void Cluster::setNodeReady(const std::string& nodeName, bool ready) {
  if (auto* n = node(nodeName)) {
    n->setReady(ready);
    recordEvent(ready ? "NodeReady" : "NodeNotReady", nodeName, "");
    if (ready) retryUnschedulable();
  }
}

void Cluster::setNodeSlowdown(const std::string& nodeName, double factor) {
  if (auto* n = node(nodeName)) {
    n->setSlowdownFactor(factor);
    recordEvent(factor > 1.0 ? "NodeSlowdown" : "NodeSpeedRestored", nodeName,
                "factor=" + std::to_string(factor));
  }
}

void Cluster::failNode(const std::string& nodeName) {
  auto* failed = node(nodeName);
  if (failed == nullptr) return;
  failed->setReady(false);
  recordEvent("NodeFailed", nodeName, "evicting pods");

  // Collect victims first: eviction mutates the node's pod set.
  std::vector<Pod*> victims;
  for (auto& [k, pod] : pods_) {
    if (pod->nodeName() == nodeName) victims.push_back(pod.get());
  }
  for (Pod* pod : victims) {
    const std::string podKey = key(pod->namespaceName(), pod->name());
    // Is this pod backing a running/pending job? Then the job's current
    // attempt fails as if the container died with the node.
    Job* owner = nullptr;
    for (auto& [jk, job] : jobs_) {
      if (job->podName() == pod->name() &&
          job->namespaceName() == pod->namespaceName() &&
          (job->status().state == JobState::kRunning ||
           job->status().state == JobState::kPending)) {
        owner = job.get();
        break;
      }
    }
    if (owner != nullptr && owner->status().state == JobState::kRunning) {
      AppResult death;
      death.status = Status::Unavailable("node " + nodeName + " failed");
      death.runtime = sim::Duration::nanos(0);
      finishJob(*owner, *pod, death);
      continue;
    }
    // Plain pod (or a job pod that never started): evict and requeue.
    releasePod(*pod);
    pod->setPhase(PodPhase::kPending);
    recordEvent("PodEvicted", podKey, "node failure");
    if (std::find(unschedulable_.begin(), unschedulable_.end(), podKey) ==
        unschedulable_.end()) {
      unschedulable_.push_back(podKey);
    }
  }
  retryUnschedulable();
}

std::size_t Cluster::readyNodeCount() const noexcept {
  std::size_t count = 0;
  for (const auto& [name, n] : nodes_) {
    if (n->ready()) ++count;
  }
  return count;
}

std::vector<std::string> Cluster::nodeNames() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& [name, n] : nodes_) names.push_back(name);
  return names;
}

Resources Cluster::totalAllocatable() const {
  Resources total;
  for (const auto& [name, n] : nodes_) total += n->allocatable();
  return total;
}

Resources Cluster::totalAllocated() const {
  Resources total;
  for (const auto& [name, n] : nodes_) total += n->allocated();
  return total;
}

Resources Cluster::totalFree() const {
  Resources total;
  for (const auto& [name, n] : nodes_) {
    if (n->ready()) total += n->free();
  }
  return total;
}

// ---------- namespaces ----------

void Cluster::setNamespaceQuota(const std::string& ns, Resources quota) {
  namespace_quotas_[ns] = quota;
  recordEvent("QuotaSet", ns, "cpu=" + quota.cpu.toString() +
                                  " mem=" + quota.memory.toString());
}

std::optional<Resources> Cluster::namespaceQuota(const std::string& ns) const {
  auto it = namespace_quotas_.find(ns);
  if (it == namespace_quotas_.end()) return std::nullopt;
  return it->second;
}

Resources Cluster::namespaceUsage(const std::string& ns) const {
  Resources usage;
  for (const auto& [k, pod] : pods_) {
    if (pod->namespaceName() == ns) usage += pod->spec().requests;
  }
  return usage;
}

// ---------- pods ----------

Result<Pod*> Cluster::createPod(const std::string& ns, const std::string& podName,
                                PodSpec spec) {
  const std::string k = key(ns, podName);
  if (pods_.count(k) > 0) return Status::AlreadyExists("pod " + k);

  // ResourceQuota admission: rejected, not queued (K8s semantics).
  if (auto quota = namespaceQuota(ns)) {
    const Resources projected = namespaceUsage(ns) + spec.requests;
    if (!projected.fitsWithin(*quota)) {
      recordEvent("QuotaExceeded", k, "namespace " + ns + " over quota");
      return Status::ResourceExhausted("namespace " + ns +
                                       " ResourceQuota exceeded");
    }
  }
  auto pod = std::make_unique<Pod>(podName, ns, std::move(spec));
  Pod* raw = pod.get();
  pods_.emplace(k, std::move(pod));
  if (!trySchedulePod(*raw)) {
    unschedulable_.push_back(k);
    recordEvent("FailedScheduling", k, "insufficient resources; pod stays Pending");
  }
  return raw;
}

Pod* Cluster::pod(const std::string& ns, const std::string& podName) {
  auto it = pods_.find(key(ns, podName));
  return it == pods_.end() ? nullptr : it->second.get();
}

Status Cluster::deletePod(const std::string& ns, const std::string& podName) {
  const std::string k = key(ns, podName);
  auto it = pods_.find(k);
  if (it == pods_.end()) return Status::NotFound("pod " + k);
  releasePod(*it->second);
  std::erase(unschedulable_, k);
  pods_.erase(it);
  retryUnschedulable();
  return Status::Ok();
}

std::vector<Pod*> Cluster::podsInNamespace(const std::string& ns) {
  std::vector<Pod*> out;
  for (auto& [k, pod] : pods_) {
    if (pod->namespaceName() == ns) out.push_back(pod.get());
  }
  return out;
}

bool Cluster::trySchedulePod(Pod& pod) {
  std::vector<Node*> candidates;
  candidates.reserve(nodes_.size());
  for (auto& [name, n] : nodes_) candidates.push_back(n.get());

  auto selected = scheduler_.selectNode(pod, candidates);
  if (!selected) return false;

  Node* target = node(*selected);
  target->allocate(key(pod.namespaceName(), pod.name()), pod.spec().requests);
  pod.bindToNode(*selected);
  pod.setPodIp("10.1.0." + std::to_string(next_pod_ip_++));
  recordEvent("PodScheduled", key(pod.namespaceName(), pod.name()),
              "bound to " + *selected);
  startPodOnNode(pod);
  return true;
}

void Cluster::retryUnschedulable() {
  // Higher priority classes get first claim on freed capacity; the sort
  // is stable so FIFO order survives within a class. Retry the whole
  // queue; stop early is not valid because a small pod later in the
  // queue may fit even when the head does not.
  std::stable_sort(unschedulable_.begin(), unschedulable_.end(),
                   [this](const std::string& a, const std::string& b) {
                     auto ia = pods_.find(a);
                     auto ib = pods_.find(b);
                     const int pa =
                         ia == pods_.end() ? 0 : ia->second->spec().priorityClass;
                     const int pb =
                         ib == pods_.end() ? 0 : ib->second->spec().priorityClass;
                     return pa > pb;
                   });
  std::deque<std::string> still_waiting;
  while (!unschedulable_.empty()) {
    const std::string k = unschedulable_.front();
    unschedulable_.pop_front();
    auto it = pods_.find(k);
    if (it == pods_.end()) continue;
    if (!trySchedulePod(*it->second)) still_waiting.push_back(k);
  }
  unschedulable_ = std::move(still_waiting);
}

void Cluster::startPodOnNode(Pod& pod) {
  const std::string k = key(pod.namespaceName(), pod.name());
  // Image pull + container start delay, then Running.
  sim_.scheduleAfter(pod.spec().startupDelay, [this, k] {
    auto it = pods_.find(k);
    if (it == pods_.end()) return;
    Pod& p = *it->second;
    if (p.phase() != PodPhase::kPending) return;
    p.setPhase(PodPhase::kRunning);
    p.setStartTime(sim_.now());
    recordEvent("PodStarted", k, "on node " + p.nodeName());

    // If this pod belongs to a job, run the application now.
    for (auto& [jk, job] : jobs_) {
      if (job->podName() == p.name() && job->namespaceName() == p.namespaceName() &&
          job->status().state == JobState::kPending) {
        executeJobPod(*job, p);
        break;
      }
    }
  });
}

void Cluster::releasePod(Pod& pod) {
  if (!pod.nodeName().empty()) {
    if (auto* n = node(pod.nodeName())) {
      n->release(key(pod.namespaceName(), pod.name()), pod.spec().requests);
    }
    pod.bindToNode("");
  }
}

// ---------- services ----------

Result<Service*> Cluster::createService(const std::string& ns,
                                        const std::string& svcName, ServiceSpec spec) {
  const std::string k = key(ns, svcName);
  if (services_.count(k) > 0) return Status::AlreadyExists("service " + k);
  if (spec.type == ServiceType::kNodePort && spec.nodePort == 0) {
    if (next_node_port_ > 32767) {
      return Status::ResourceExhausted("NodePort range 30000-32767 exhausted");
    }
    spec.nodePort = next_node_port_++;
  }
  auto svc = std::make_unique<Service>(svcName, ns, std::move(spec));
  svc->setClusterIp("10.152.183." + std::to_string(1 + services_.size() % 250));
  Service* raw = svc.get();
  services_.emplace(k, std::move(svc));
  dns_.addRecord(raw->dnsName(), k);
  recordEvent("ServiceCreated", k, "dns=" + raw->dnsName());
  return raw;
}

Service* Cluster::service(const std::string& ns, const std::string& svcName) {
  auto it = services_.find(key(ns, svcName));
  return it == services_.end() ? nullptr : it->second.get();
}

Status Cluster::deleteService(const std::string& ns, const std::string& svcName) {
  const std::string k = key(ns, svcName);
  auto it = services_.find(k);
  if (it == services_.end()) return Status::NotFound("service " + k);
  dns_.removeRecord(it->second->dnsName());
  services_.erase(it);
  return Status::Ok();
}

Service* Cluster::resolveDns(const std::string& dnsName) {
  auto k = dns_.resolve(dnsName);
  if (!k) return nullptr;
  auto it = services_.find(*k);
  return it == services_.end() ? nullptr : it->second.get();
}

std::vector<Pod*> Cluster::serviceEndpoints(const Service& svc) {
  std::vector<Pod*> endpoints;
  for (auto& [k, pod] : pods_) {
    if (pod->namespaceName() != svc.namespaceName()) continue;
    if (pod->phase() != PodPhase::kRunning) continue;
    if (selectorMatches(svc.spec().selector, pod->spec().labels)) {
      endpoints.push_back(pod.get());
    }
  }
  return endpoints;
}

// ---------- PVCs ----------

Result<PersistentVolumeClaim*> Cluster::createPvc(const std::string& pvcName,
                                                  ByteSize capacity) {
  if (pvcs_.count(pvcName) > 0) return Status::AlreadyExists("pvc " + pvcName);
  auto claim = std::make_unique<PersistentVolumeClaim>(pvcName, capacity);
  PersistentVolumeClaim* raw = claim.get();
  pvcs_.emplace(pvcName, std::move(claim));
  recordEvent("PvcCreated", pvcName, "capacity=" + capacity.toString());
  return raw;
}

PersistentVolumeClaim* Cluster::pvc(const std::string& pvcName) {
  auto it = pvcs_.find(pvcName);
  return it == pvcs_.end() ? nullptr : it->second.get();
}

// ---------- apps & jobs ----------

void Cluster::registerApp(const std::string& appName, AppRunner runner) {
  assert(runner);
  apps_[appName] = std::move(runner);
}

std::vector<std::string> Cluster::appNames() const {
  std::vector<std::string> names;
  names.reserve(apps_.size());
  for (const auto& [name, runner] : apps_) names.push_back(name);
  return names;
}

Status Cluster::resizePod(const std::string& ns, const std::string& podName,
                          Resources newRequests) {
  Pod* target = pod(ns, podName);
  if (target == nullptr) return Status::NotFound("pod " + key(ns, podName));
  const std::string k = key(ns, podName);

  if (target->nodeName().empty()) {
    // Still pending: just respecify and let the scheduler retry.
    target->setRequests(newRequests);
    retryUnschedulable();
    return Status::Ok();
  }

  Node* host = node(target->nodeName());
  assert(host != nullptr);
  const Resources old = target->spec().requests;
  host->release(k, old);
  if (!host->canFit(newRequests)) {
    host->allocate(k, old);  // restore
    return Status::ResourceExhausted("node " + host->name() +
                                     " cannot absorb the resize of " + k);
  }
  host->allocate(k, newRequests);
  target->setRequests(newRequests);
  recordEvent("PodResized", k,
              "cpu=" + newRequests.cpu.toString() +
                  " mem=" + newRequests.memory.toString());
  retryUnschedulable();  // shrinking may free room for queued pods
  return Status::Ok();
}

Result<Job*> Cluster::createJob(const std::string& ns, const std::string& jobName,
                                JobSpec spec) {
  const std::string k = key(ns, jobName);
  if (jobs_.count(k) > 0) return Status::AlreadyExists("job " + k);
  if (apps_.count(spec.app) == 0) {
    return Status::NotFound("no application image '" + spec.app + "' on cluster " +
                            name_);
  }

  auto job = std::make_unique<Job>(jobName, ns, spec);
  job->mutableStatus().submitTime = sim_.now();
  Job* raw = job.get();
  jobs_.emplace(k, std::move(job));

  PodSpec podSpec;
  podSpec.image = spec.app;
  podSpec.requests = spec.requests;
  podSpec.labels = {{"job-name", jobName}, {"app", spec.app}};
  podSpec.args = spec.args;
  podSpec.priorityClass = spec.priorityClass;
  const std::string podName = jobName + "-pod-0";
  raw->setPodName(podName);
  auto pod = createPod(ns, podName, std::move(podSpec));
  if (!pod.ok()) {
    jobs_.erase(k);
    return pod.status();
  }
  recordEvent("JobCreated", k, "app=" + spec.app);
  return raw;
}

Job* Cluster::job(const std::string& ns, const std::string& jobName) {
  auto it = jobs_.find(key(ns, jobName));
  return it == jobs_.end() ? nullptr : it->second.get();
}

const Job* Cluster::job(const std::string& ns, const std::string& jobName) const {
  auto it = jobs_.find(key(ns, jobName));
  return it == jobs_.end() ? nullptr : it->second.get();
}

std::vector<Job*> Cluster::jobsInNamespace(const std::string& ns) {
  std::vector<Job*> out;
  for (auto& [k, job] : jobs_) {
    if (job->namespaceName() == ns) out.push_back(job.get());
  }
  return out;
}

void Cluster::executeJobPod(Job& job, Pod& pod) {
  job.mutableStatus().state = JobState::kRunning;
  job.mutableStatus().startTime = sim_.now();
  job.mutableStatus().attempts += 1;
  ++running_jobs_;

  auto runnerIt = apps_.find(job.spec().app);
  assert(runnerIt != apps_.end() && "createJob validated the app image");

  AppContext context{job.spec(), pvc(job.spec().pvcName), rng_};
  // The runner does its real work now; its reported runtime drives the
  // simulated completion schedule.
  AppResult result = runnerIt->second(context);

  // A gray-degraded node stays Ready but serves at a fraction of its
  // rate: the pod's wall-clock runtime stretches by the bound node's
  // slowdown factor (sampled at execution start, like CPU throttling).
  if (const Node* bound = node(pod.nodeName());
      bound != nullptr && bound->slowdownFactor() > 1.0) {
    result.runtime = result.runtime * bound->slowdownFactor();
  }

  for (const auto& watcher : exec_watchers_) watcher(job, result);

  const std::string ns = job.namespaceName();
  const std::string jobName = job.name();
  const std::string podKey = key(pod.namespaceName(), pod.name());
  sim_.scheduleAfter(result.runtime, [this, ns, jobName, podKey, result] {
    auto jobIt = jobs_.find(key(ns, jobName));
    auto podIt = pods_.find(podKey);
    if (jobIt == jobs_.end() || podIt == pods_.end()) return;
    // The pod may have been killed in the meantime (node failure); only
    // a still-Running attempt can complete.
    if (jobIt->second->status().state != JobState::kRunning) return;
    if (podIt->second->phase() != PodPhase::kRunning) return;
    finishJob(*jobIt->second, *podIt->second, result);
  });
}

void Cluster::finishJob(Job& job, Pod& pod, const AppResult& result) {
  --running_jobs_;
  auto& status = job.mutableStatus();
  status.completionTime = sim_.now();
  status.message = result.message;
  status.resultPath = result.resultPath;
  status.outputBytes = result.outputBytes;

  if (result.status.ok()) {
    pod.setPhase(PodPhase::kSucceeded);
    status.state = JobState::kCompleted;
    recordEvent("JobCompleted", key(job.namespaceName(), job.name()),
                "output=" + std::to_string(result.outputBytes) + "B");
  } else {
    pod.setPhase(PodPhase::kFailed);
    pod.setTerminationMessage(result.status.toString());
    if (status.attempts <= job.spec().backoffLimit) {
      // Retry with a fresh pod, as the Job controller does.
      recordEvent("JobRetry", key(job.namespaceName(), job.name()),
                  "attempt " + std::to_string(status.attempts));
      releasePod(pod);
      status.state = JobState::kPending;
      PodSpec podSpec;
      podSpec.image = job.spec().app;
      podSpec.requests = job.spec().requests;
      podSpec.labels = {{"job-name", job.name()}, {"app", job.spec().app}};
      podSpec.args = job.spec().args;
      const std::string podName =
          job.name() + "-pod-" + std::to_string(status.attempts);
      job.setPodName(podName);
      auto created = createPod(job.namespaceName(), podName, std::move(podSpec));
      if (created.ok()) {
        retryUnschedulable();
        return;
      }
      // Fall through to Failed if even pod creation failed.
    }
    status.state = JobState::kFailed;
    status.message = result.status.toString();
    recordEvent("JobFailed", key(job.namespaceName(), job.name()), status.message);
  }

  releasePod(pod);
  retryUnschedulable();
  for (const auto& watcher : job_watchers_) watcher(job);
}

void Cluster::recordEvent(std::string kind, std::string object, std::string message) {
  LIDC_LOG(kDebug, "k8s") << name_ << " " << kind << " " << object << " " << message;
  events_.push_back(Event{sim_.now(), std::move(kind), std::move(object),
                          std::move(message)});
  while (events_.size() > kMaxEvents) events_.pop_front();
}

}  // namespace lidc::k8s
