// Worker node: allocatable resources and the accounting of what running
// pods have claimed. The paper's testbed is a single MicroK8s node per
// cluster; this model supports N nodes per cluster.
#pragma once

#include <set>
#include <string>

#include "k8s/resources.hpp"

namespace lidc::k8s {

class Node {
 public:
  Node(std::string name, Resources allocatable)
      : name_(std::move(name)), allocatable_(allocatable) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Resources& allocatable() const noexcept { return allocatable_; }
  [[nodiscard]] const Resources& allocated() const noexcept { return allocated_; }
  [[nodiscard]] Resources free() const noexcept { return allocatable_ - allocated_; }

  [[nodiscard]] bool ready() const noexcept { return ready_; }
  void setReady(bool ready) noexcept { ready_ = ready; }

  /// Gray failure: service-rate degradation. Pods bound here run
  /// `slowdownFactor` times slower, while the node keeps reporting
  /// Ready — health probes pass, the work just crawls.
  [[nodiscard]] double slowdownFactor() const noexcept { return slowdown_; }
  void setSlowdownFactor(double factor) noexcept {
    slowdown_ = factor < 1.0 ? 1.0 : factor;
  }

  /// True if `requests` fits into the remaining capacity.
  [[nodiscard]] bool canFit(const Resources& requests) const noexcept {
    return ready_ && requests.fitsWithin(free());
  }

  void allocate(const std::string& podName, const Resources& requests) {
    allocated_ += requests;
    pods_.insert(podName);
  }
  void release(const std::string& podName, const Resources& requests) {
    if (pods_.erase(podName) > 0) allocated_ -= requests;
  }

  [[nodiscard]] const std::set<std::string>& podNames() const noexcept { return pods_; }

  /// Fraction of CPU currently allocated, in [0, 1].
  [[nodiscard]] double cpuUtilization() const noexcept {
    if (allocatable_.cpu.millicores() == 0) return 0.0;
    return static_cast<double>(allocated_.cpu.millicores()) /
           static_cast<double>(allocatable_.cpu.millicores());
  }

 private:
  std::string name_;
  Resources allocatable_;
  Resources allocated_;
  std::set<std::string> pods_;
  bool ready_ = true;
  double slowdown_ = 1.0;
};

}  // namespace lidc::k8s
