#include "k8s/deployment.hpp"

#include <algorithm>
#include <cmath>

namespace lidc::k8s {

Deployment::Deployment(Cluster& cluster, std::string ns, std::string name,
                       PodSpec podTemplate, int replicas)
    : cluster_(cluster),
      namespace_(std::move(ns)),
      name_(std::move(name)),
      template_(std::move(podTemplate)),
      desired_(std::max(0, replicas)) {
  template_.labels["deployment"] = name_;
  (void)reconcile();
}

Status Deployment::scaleTo(int replicas) {
  desired_ = std::max(0, replicas);
  return reconcile();
}

Status Deployment::reconcile() {
  // Scale up: create missing replicas.
  while (static_cast<int>(pod_names_.size()) < desired_) {
    const std::string podName = name_ + "-" + std::to_string(next_ordinal_++);
    auto created = cluster_.createPod(namespace_, podName, template_);
    if (!created.ok()) return created.status();
    pod_names_.push_back(podName);
  }
  // Scale down: delete newest first (K8s deletes by pod cost/age heuristics;
  // newest-first is deterministic here).
  while (static_cast<int>(pod_names_.size()) > desired_) {
    const std::string podName = pod_names_.back();
    pod_names_.pop_back();
    LIDC_RETURN_IF_ERROR(cluster_.deletePod(namespace_, podName));
  }
  return Status::Ok();
}

int Deployment::readyReplicas() const {
  int ready = 0;
  for (const auto& podName : pod_names_) {
    const auto* pod =
        const_cast<Cluster&>(cluster_).pod(namespace_, podName);
    if (pod != nullptr && pod->phase() == PodPhase::kRunning) ++ready;
  }
  return ready;
}

int HorizontalAutoscaler::reconcile(double observedUtilization) {
  const int current = deployment_.replicas();
  int desired = current;
  if (target_ > 0.0) {
    // Standard HPA formula: desired = ceil(current * observed / target),
    // with a +-20% tolerance band to avoid thrashing.
    const double ratio = observedUtilization / target_;
    if (ratio > 1.2 || ratio < 0.8) {
      desired = static_cast<int>(std::ceil(current * ratio));
    }
  }
  desired = std::clamp(desired, min_, max_);
  if (desired != current) (void)deployment_.scaleTo(desired);
  return desired;
}

}  // namespace lidc::k8s
