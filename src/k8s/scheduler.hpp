// The pod scheduler: filter (enough free cpu/memory, node Ready) then
// score. Two scoring policies are provided, mirroring kube-scheduler's
// LeastAllocated (spread) and MostAllocated (bin-pack) strategies.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "k8s/node.hpp"
#include "k8s/pod.hpp"

namespace lidc::k8s {

enum class ScoringPolicy {
  kLeastAllocated,  // prefer emptier nodes (spread)
  kMostAllocated,   // prefer fuller nodes (bin-pack)
};

class Scheduler {
 public:
  explicit Scheduler(ScoringPolicy policy = ScoringPolicy::kLeastAllocated)
      : policy_(policy) {}

  [[nodiscard]] ScoringPolicy policy() const noexcept { return policy_; }
  void setPolicy(ScoringPolicy policy) noexcept { policy_ = policy; }

  /// Picks the best node for the pod's requests; returns its name.
  /// Fails with kResourceExhausted when no node fits.
  [[nodiscard]] Result<std::string> selectNode(const Pod& pod,
                                               const std::vector<Node*>& nodes) const;

 private:
  [[nodiscard]] double score(const Node& node, const Resources& requests) const;

  ScoringPolicy policy_;
};

}  // namespace lidc::k8s
