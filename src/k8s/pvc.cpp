#include "k8s/pvc.hpp"

#include "common/strings.hpp"

namespace lidc::k8s {

Status PersistentVolumeClaim::write(const std::string& path,
                                    std::vector<std::uint8_t> bytes) {
  const auto newSize = ByteSize(bytes.size());
  ByteSize existing;
  if (auto it = files_.find(path); it != files_.end()) {
    existing = ByteSize(it->second.size());
  }
  const ByteSize projected = used_ - existing + newSize;
  if (projected > capacity_) {
    return Status::ResourceExhausted("PVC " + name_ + " full: " +
                                     projected.toString() + " > " +
                                     capacity_.toString());
  }
  used_ = projected;
  files_[path] = std::move(bytes);
  return Status::Ok();
}

Status PersistentVolumeClaim::writeText(const std::string& path,
                                        std::string_view text) {
  return write(path, std::vector<std::uint8_t>(text.begin(), text.end()));
}

std::optional<std::vector<std::uint8_t>> PersistentVolumeClaim::read(
    const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint64_t> PersistentVolumeClaim::sizeOf(
    const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second.size();
}

Status PersistentVolumeClaim::remove(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no file " + path);
  used_ -= ByteSize(it->second.size());
  files_.erase(it);
  return Status::Ok();
}

std::vector<std::string> PersistentVolumeClaim::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, bytes] : files_) {
    if (strings::startsWith(path, prefix)) out.push_back(path);
  }
  return out;
}

}  // namespace lidc::k8s
