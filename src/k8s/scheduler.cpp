#include "k8s/scheduler.hpp"

#include <algorithm>

namespace lidc::k8s {

double Scheduler::score(const Node& node, const Resources& requests) const {
  // Utilization the node would have after placing the pod, averaged over
  // cpu and memory.
  const Resources after = node.allocated() + requests;
  double cpuFrac = 0.0;
  double memFrac = 0.0;
  if (node.allocatable().cpu.millicores() > 0) {
    cpuFrac = static_cast<double>(after.cpu.millicores()) /
              static_cast<double>(node.allocatable().cpu.millicores());
  }
  if (node.allocatable().memory.bytes() > 0) {
    memFrac = static_cast<double>(after.memory.bytes()) /
              static_cast<double>(node.allocatable().memory.bytes());
  }
  const double utilization = (cpuFrac + memFrac) / 2.0;
  // Higher score = better node.
  return policy_ == ScoringPolicy::kLeastAllocated ? 1.0 - utilization : utilization;
}

Result<std::string> Scheduler::selectNode(const Pod& pod,
                                          const std::vector<Node*>& nodes) const {
  const Node* best = nullptr;
  double bestScore = -1.0;
  for (const Node* node : nodes) {
    if (node == nullptr || !node->canFit(pod.spec().requests)) continue;
    const double s = score(*node, pod.spec().requests);
    if (s > bestScore) {
      bestScore = s;
      best = node;
    }
  }
  if (best == nullptr) {
    return Status::ResourceExhausted("no node can fit pod " + pod.name() + " (cpu=" +
                                     pod.spec().requests.cpu.toString() + ", mem=" +
                                     pod.spec().requests.memory.toString() + ")");
  }
  return best->name();
}

}  // namespace lidc::k8s
