// Cluster: the API-server facade tying together nodes, pods, services,
// DNS, PVCs, jobs, and the scheduler. One Cluster instance corresponds
// to one MicroK8s deployment in the paper's testbed. The LIDC Gateway
// drives everything through this interface only — it never reaches into
// pods directly, matching the paper's "network as simple matchmaker"
// division of labour (SIII-A).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "k8s/dns.hpp"
#include "k8s/job.hpp"
#include "k8s/node.hpp"
#include "k8s/pod.hpp"
#include "k8s/pvc.hpp"
#include "k8s/scheduler.hpp"
#include "k8s/service.hpp"
#include "sim/simulator.hpp"

namespace lidc::k8s {

/// One control-plane event (for observability and tests).
struct Event {
  sim::Time time;
  std::string kind;     // "PodScheduled", "JobCompleted", ...
  std::string object;   // "ns/name"
  std::string message;
};

class Cluster {
 public:
  Cluster(std::string name, sim::Simulator& sim, std::uint64_t seed = 7);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

  // --- nodes ---
  Node& addNode(const std::string& nodeName, Resources allocatable);
  [[nodiscard]] Node* node(const std::string& nodeName);
  void setNodeReady(const std::string& nodeName, bool ready);
  /// Hard node failure: the node goes NotReady and every pod bound to it
  /// is evicted. Job pods fail (and retry if backoffLimit allows);
  /// evicted non-job pods return to the scheduling queue.
  void failNode(const std::string& nodeName);
  /// Gray failure: scale the node's service rate down by `factor`
  /// (>= 1.0; 1.0 restores full speed) while it stays Ready. Job pods
  /// already running on it finish on their original schedule; newly
  /// executed pods take factor x as long. Driven by
  /// ChaosEngine::slowNode().
  void setNodeSlowdown(const std::string& nodeName, double factor);
  [[nodiscard]] std::size_t nodeCount() const noexcept { return nodes_.size(); }
  /// Nodes currently Ready (the gateway's health gate watches this).
  [[nodiscard]] std::size_t readyNodeCount() const noexcept;
  [[nodiscard]] std::vector<std::string> nodeNames() const;
  [[nodiscard]] Resources totalAllocatable() const;
  [[nodiscard]] Resources totalAllocated() const;
  /// Free resources across all Ready nodes.
  [[nodiscard]] Resources totalFree() const;

  // --- namespaces ---
  /// Caps the total resource *requests* of pods in a namespace (K8s
  /// ResourceQuota). Pods that would exceed the quota are rejected at
  /// admission, not queued.
  void setNamespaceQuota(const std::string& ns, Resources quota);
  [[nodiscard]] std::optional<Resources> namespaceQuota(const std::string& ns) const;
  /// Sum of requests of all pods currently in the namespace.
  [[nodiscard]] Resources namespaceUsage(const std::string& ns) const;

  // --- pods ---
  Result<Pod*> createPod(const std::string& ns, const std::string& podName,
                         PodSpec spec);
  [[nodiscard]] Pod* pod(const std::string& ns, const std::string& podName);
  Status deletePod(const std::string& ns, const std::string& podName);
  [[nodiscard]] std::vector<Pod*> podsInNamespace(const std::string& ns);
  [[nodiscard]] std::size_t pendingUnschedulable() const noexcept {
    return unschedulable_.size();
  }

  // --- services & DNS ---
  Result<Service*> createService(const std::string& ns, const std::string& svcName,
                                 ServiceSpec spec);
  [[nodiscard]] Service* service(const std::string& ns, const std::string& svcName);
  Status deleteService(const std::string& ns, const std::string& svcName);
  /// Resolves a cluster DNS name to the Service (paper: NDN names map to
  /// these endpoints).
  [[nodiscard]] Service* resolveDns(const std::string& dnsName);
  /// Pods currently backing a service (label selector match, Running only).
  [[nodiscard]] std::vector<Pod*> serviceEndpoints(const Service& svc);

  // --- PVCs ---
  Result<PersistentVolumeClaim*> createPvc(const std::string& pvcName,
                                           ByteSize capacity);
  [[nodiscard]] PersistentVolumeClaim* pvc(const std::string& pvcName);

  // --- application images ---
  void registerApp(const std::string& appName, AppRunner runner);
  [[nodiscard]] bool hasApp(const std::string& appName) const {
    return apps_.count(appName) > 0;
  }
  [[nodiscard]] std::vector<std::string> appNames() const;

  /// Vertical scaling (paper SIII-A): resizes a bound pod's resource
  /// requests in place when the node can absorb the delta; a pending
  /// pod is simply respecified and rescheduled.
  Status resizePod(const std::string& ns, const std::string& podName,
                   Resources newRequests);

  // --- jobs ---
  Result<Job*> createJob(const std::string& ns, const std::string& jobName,
                         JobSpec spec);
  [[nodiscard]] Job* job(const std::string& ns, const std::string& jobName);
  [[nodiscard]] const Job* job(const std::string& ns,
                               const std::string& jobName) const;
  [[nodiscard]] std::vector<Job*> jobsInNamespace(const std::string& ns);
  /// Fires when any job reaches Completed or Failed.
  void onJobFinished(std::function<void(const Job&)> callback) {
    job_watchers_.push_back(std::move(callback));
  }
  /// Fires when a job pod begins executing, right after its app runner
  /// produced the AppResult whose runtime drives the completion
  /// schedule (slowdown-adjusted). The migration plane's
  /// CheckpointManager hooks this to plan periodic checkpoint writes
  /// from the result's checkpointPlan closure.
  void onJobExecuted(std::function<void(const Job&, const AppResult&)> callback) {
    exec_watchers_.push_back(std::move(callback));
  }
  [[nodiscard]] std::size_t runningJobCount() const noexcept { return running_jobs_; }

  // --- events ---
  [[nodiscard]] const std::deque<Event>& events() const noexcept { return events_; }

  [[nodiscard]] Scheduler& scheduler() noexcept { return scheduler_; }

 private:
  static std::string key(const std::string& ns, const std::string& name) {
    return ns + "/" + name;
  }

  void recordEvent(std::string kind, std::string object, std::string message);
  /// Attempts to bind the pod to a node; on success drives its lifecycle.
  bool trySchedulePod(Pod& pod);
  /// Called when resources free up: retries unschedulable pods in order.
  void retryUnschedulable();
  void startPodOnNode(Pod& pod);
  /// Runs the job's application and schedules completion.
  void executeJobPod(Job& job, Pod& pod);
  void finishJob(Job& job, Pod& pod, const AppResult& result);
  void releasePod(Pod& pod);

  std::string name_;
  sim::Simulator& sim_;
  Rng rng_;
  Scheduler scheduler_;
  ClusterDns dns_;

  std::map<std::string, Resources> namespace_quotas_;
  std::map<std::string, std::unique_ptr<Node>> nodes_;
  std::map<std::string, std::unique_ptr<Pod>> pods_;          // key ns/name
  std::map<std::string, std::unique_ptr<Service>> services_;  // key ns/name
  std::map<std::string, std::unique_ptr<PersistentVolumeClaim>> pvcs_;
  std::map<std::string, std::unique_ptr<Job>> jobs_;  // key ns/name
  std::map<std::string, AppRunner> apps_;

  std::deque<std::string> unschedulable_;  // pod keys awaiting capacity
  std::vector<std::function<void(const Job&)>> job_watchers_;
  std::vector<std::function<void(const Job&, const AppResult&)>> exec_watchers_;
  std::deque<Event> events_;
  std::uint16_t next_node_port_ = 30000;
  std::uint32_t next_pod_ip_ = 1;
  std::size_t running_jobs_ = 0;
};

}  // namespace lidc::k8s
