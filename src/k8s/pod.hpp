// Pod: the smallest schedulable execution unit, as in Kubernetes.
// Pods carry resource requests, labels (for Service selectors), and a
// lifecycle phase driven by the JobController / Deployment reconciler.
#pragma once

#include <cstdint>
#include <string>

#include "k8s/resources.hpp"
#include "sim/time.hpp"

namespace lidc::k8s {

enum class PodPhase { kPending, kRunning, kSucceeded, kFailed };

std::string_view podPhaseName(PodPhase phase) noexcept;

struct PodSpec {
  std::string image;        // application image name, e.g. "magic-blast"
  Resources requests;       // admission is by requests, as in K8s
  Labels labels;
  std::map<std::string, std::string> args;  // container arguments
  sim::Duration startupDelay = sim::Duration::millis(800);  // image pull + start
  /// Higher classes are retried first when capacity frees up (the
  /// scheduler's unschedulable queue is served priority-first, FIFO
  /// within a class).
  int priorityClass = 0;
};

class Pod {
 public:
  Pod(std::string name, std::string namespaceName, PodSpec spec)
      : name_(std::move(name)),
        namespace_(std::move(namespaceName)),
        spec_(std::move(spec)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& namespaceName() const noexcept { return namespace_; }
  [[nodiscard]] const PodSpec& spec() const noexcept { return spec_; }
  /// Vertical resize support; accounting is the Cluster's responsibility.
  void setRequests(const Resources& requests) noexcept {
    spec_.requests = requests;
  }

  [[nodiscard]] PodPhase phase() const noexcept { return phase_; }
  void setPhase(PodPhase phase) noexcept { phase_ = phase; }

  /// Node this pod is bound to; empty while Pending.
  [[nodiscard]] const std::string& nodeName() const noexcept { return node_; }
  void bindToNode(std::string node) { node_ = std::move(node); }

  [[nodiscard]] sim::Time startTime() const noexcept { return start_time_; }
  void setStartTime(sim::Time t) noexcept { start_time_ = t; }

  /// Simulated pod-internal IP (assigned at bind time).
  [[nodiscard]] const std::string& podIp() const noexcept { return pod_ip_; }
  void setPodIp(std::string ip) { pod_ip_ = std::move(ip); }

  [[nodiscard]] const std::string& terminationMessage() const noexcept {
    return termination_message_;
  }
  void setTerminationMessage(std::string msg) {
    termination_message_ = std::move(msg);
  }

 private:
  std::string name_;
  std::string namespace_;
  PodSpec spec_;
  PodPhase phase_ = PodPhase::kPending;
  std::string node_;
  std::string pod_ip_;
  sim::Time start_time_;
  std::string termination_message_;
};

}  // namespace lidc::k8s
