// PersistentVolumeClaim backed by an in-memory key->bytes store.
// In the paper, a PVC mounted on an NFS server holds the genomics data
// lake; here the PVC is the storage substrate the data lake and compute
// jobs share.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"

namespace lidc::k8s {

class PersistentVolumeClaim {
 public:
  PersistentVolumeClaim(std::string name, ByteSize capacity)
      : name_(std::move(name)), capacity_(capacity) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] ByteSize capacity() const noexcept { return capacity_; }
  [[nodiscard]] ByteSize used() const noexcept { return used_; }

  /// Writes (or replaces) a file. Fails when capacity would be exceeded.
  Status write(const std::string& path, std::vector<std::uint8_t> bytes);
  /// Convenience text write.
  Status writeText(const std::string& path, std::string_view text);

  [[nodiscard]] std::optional<std::vector<std::uint8_t>> read(
      const std::string& path) const;
  [[nodiscard]] bool exists(const std::string& path) const {
    return files_.count(path) > 0;
  }
  [[nodiscard]] std::optional<std::uint64_t> sizeOf(const std::string& path) const;

  Status remove(const std::string& path);

  /// Paths under a directory-like prefix.
  [[nodiscard]] std::vector<std::string> list(const std::string& prefix) const;

  [[nodiscard]] std::size_t fileCount() const noexcept { return files_.size(); }

 private:
  std::string name_;
  ByteSize capacity_;
  ByteSize used_;
  std::map<std::string, std::vector<std::uint8_t>> files_;
};

}  // namespace lidc::k8s
