// K8s-style resource model: requests/limits of CPU (millicores) and
// memory (bytes), plus label maps used by selectors.
#pragma once

#include <map>
#include <string>

#include "common/units.hpp"

namespace lidc::k8s {

/// Resource quantities requested by (or allocatable on) a workload/node.
struct Resources {
  MilliCpu cpu;
  ByteSize memory;

  [[nodiscard]] bool fitsWithin(const Resources& available) const noexcept {
    return cpu <= available.cpu && memory <= available.memory;
  }
  Resources& operator+=(const Resources& other) noexcept {
    cpu += other.cpu;
    memory += other.memory;
    return *this;
  }
  Resources& operator-=(const Resources& other) noexcept {
    cpu -= other.cpu;
    memory -= other.memory;
    return *this;
  }
  friend Resources operator+(Resources a, const Resources& b) noexcept {
    a += b;
    return a;
  }
  friend Resources operator-(Resources a, const Resources& b) noexcept {
    a -= b;
    return a;
  }
  friend bool operator==(const Resources&, const Resources&) = default;
};

using Labels = std::map<std::string, std::string>;

/// True if every selector key/value is present in `labels`.
inline bool selectorMatches(const Labels& selector, const Labels& labels) {
  for (const auto& [key, value] : selector) {
    auto it = labels.find(key);
    if (it == labels.end() || it->second != value) return false;
  }
  return true;
}

}  // namespace lidc::k8s
