// Cluster DNS (CoreDNS stand-in): resolves service DNS names of the form
// "<service>.<namespace>.svc.cluster.local". The paper enables the
// MicroK8s DNS add-on precisely to give services stable names; LIDC maps
// NDN names onto these (paper SIII-B).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

namespace lidc::k8s {

class ClusterDns {
 public:
  /// Binds a DNS name to a service key ("namespace/name").
  void addRecord(const std::string& dnsName, const std::string& serviceKey) {
    records_[dnsName] = serviceKey;
  }
  void removeRecord(const std::string& dnsName) { records_.erase(dnsName); }

  /// Resolves a DNS name to the service key; nullopt for NXDOMAIN.
  [[nodiscard]] std::optional<std::string> resolve(const std::string& dnsName) const {
    auto it = records_.find(dnsName);
    if (it == records_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::size_t recordCount() const noexcept { return records_.size(); }

 private:
  std::unordered_map<std::string, std::string> records_;
};

}  // namespace lidc::k8s
