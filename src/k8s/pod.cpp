#include "k8s/pod.hpp"

namespace lidc::k8s {

std::string_view podPhaseName(PodPhase phase) noexcept {
  switch (phase) {
    case PodPhase::kPending:
      return "Pending";
    case PodPhase::kRunning:
      return "Running";
    case PodPhase::kSucceeded:
      return "Succeeded";
    case PodPhase::kFailed:
      return "Failed";
  }
  return "Unknown";
}

}  // namespace lidc::k8s
