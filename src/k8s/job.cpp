#include "k8s/job.hpp"

namespace lidc::k8s {

std::string_view jobStateName(JobState state) noexcept {
  switch (state) {
    case JobState::kPending:
      return "Pending";
    case JobState::kRunning:
      return "Running";
    case JobState::kCompleted:
      return "Completed";
    case JobState::kFailed:
      return "Failed";
  }
  return "Unknown";
}

}  // namespace lidc::k8s
