// Deployment: keeps N replica pods of a template alive, plus a
// horizontal autoscaler. The paper leans on K8s horizontal/vertical
// scaling so that "the network can serve as a simple matchmaker"
// (SIII-A); this is that substrate.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "k8s/cluster.hpp"
#include "k8s/pod.hpp"

namespace lidc::k8s {

class Deployment {
 public:
  Deployment(Cluster& cluster, std::string ns, std::string name, PodSpec podTemplate,
             int replicas);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int replicas() const noexcept { return desired_; }

  /// Reconciles toward the new replica count (creates/deletes pods).
  Status scaleTo(int replicas);

  /// Pods currently Running.
  [[nodiscard]] int readyReplicas() const;

  [[nodiscard]] const std::vector<std::string>& podNames() const noexcept {
    return pod_names_;
  }

 private:
  Status reconcile();

  Cluster& cluster_;
  std::string namespace_;
  std::string name_;
  PodSpec template_;
  int desired_;
  int next_ordinal_ = 0;
  std::vector<std::string> pod_names_;
};

/// Simple HPA: scale up when utilization exceeds target by 20%, scale
/// down when below target by 20%, clamped to [minReplicas, maxReplicas].
class HorizontalAutoscaler {
 public:
  HorizontalAutoscaler(Deployment& deployment, int minReplicas, int maxReplicas,
                       double targetUtilization)
      : deployment_(deployment),
        min_(minReplicas),
        max_(maxReplicas),
        target_(targetUtilization) {}

  /// One reconcile step given the currently observed utilization [0, 1].
  /// Returns the (possibly unchanged) desired replica count.
  int reconcile(double observedUtilization);

 private:
  Deployment& deployment_;
  int min_;
  int max_;
  double target_;
};

}  // namespace lidc::k8s
