// Kubernetes Job objects: run-to-completion workloads. The LIDC gateway
// turns each named compute Interest into one Job (paper SIII-C: "the
// Gateway initiates a Kubernetes job to run the desired computation").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "k8s/pvc.hpp"
#include "k8s/resources.hpp"
#include "sim/time.hpp"

namespace lidc::k8s {

enum class JobState { kPending, kRunning, kCompleted, kFailed };

std::string_view jobStateName(JobState state) noexcept;

struct JobSpec {
  std::string app;  // application image, e.g. "magic-blast"
  Resources requests;
  std::map<std::string, std::string> args;  // e.g. {"srr_id": "SRR2931415"}
  int backoffLimit = 0;                     // pod retries on failure
  std::string pvcName;                      // volume mounted into the pod
  /// Copied onto the job's pods; see PodSpec::priorityClass.
  int priorityClass = 0;
};

struct JobStatus {
  JobState state = JobState::kPending;
  std::string message;
  std::string resultPath;  // where the output landed in the PVC
  std::uint64_t outputBytes = 0;
  sim::Time submitTime;
  sim::Time startTime;
  sim::Time completionTime;
  int attempts = 0;
};

class Job {
 public:
  Job(std::string name, std::string namespaceName, JobSpec spec)
      : name_(std::move(name)),
        namespace_(std::move(namespaceName)),
        spec_(std::move(spec)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& namespaceName() const noexcept { return namespace_; }
  [[nodiscard]] const JobSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const JobStatus& status() const noexcept { return status_; }
  [[nodiscard]] JobStatus& mutableStatus() noexcept { return status_; }

  [[nodiscard]] const std::string& podName() const noexcept { return pod_name_; }
  void setPodName(std::string pod) { pod_name_ = std::move(pod); }

 private:
  std::string name_;
  std::string namespace_;
  JobSpec spec_;
  JobStatus status_;
  std::string pod_name_;
};

/// Execution context handed to an application runner.
struct AppContext {
  const JobSpec& spec;
  PersistentVolumeClaim* volume = nullptr;  // nullptr when no PVC mounted
  Rng& rng;
};

/// Outcome of running an application: the *simulated* runtime (how long
/// the pod occupies its resources) plus result metadata. Runners perform
/// their real work eagerly (e.g. alignment into the PVC) and report the
/// virtual duration that work would take at testbed scale.
struct AppResult {
  Status status = Status::Ok();
  sim::Duration runtime;
  std::string resultPath;
  std::uint64_t outputBytes = 0;
  std::string message;
  /// Incremental-progress hook (migration plane): apps that can resume
  /// mid-run expose a closure mapping a progress fraction in [0, 1] to a
  /// serialized checkpoint payload for that point of the (already
  /// eagerly computed) work. Because runners execute eagerly and only
  /// the completion event is simulated, a CheckpointManager invokes this
  /// at simulated intervals to materialize what the pod "would have"
  /// written by then. Null = app is not checkpointable.
  std::function<std::vector<std::uint8_t>(double progress)> checkpointPlan;
};

/// A runnable application "image". Registered per app name on the Cluster.
using AppRunner = std::function<AppResult(AppContext&)>;

}  // namespace lidc::k8s
