// Kubernetes Service: a named, stable endpoint selecting a set of pods
// by labels. Services get cluster DNS names
// ("<svc>.<ns>.svc.cluster.local") — the naming mechanism LIDC uses to
// bind semantic job names to concrete application endpoints (paper SIII-B).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "k8s/resources.hpp"

namespace lidc::k8s {

enum class ServiceType { kClusterIp, kNodePort };

struct ServiceSpec {
  ServiceType type = ServiceType::kClusterIp;
  Labels selector;
  std::uint16_t port = 80;
  /// NodePort assigned by the control plane from 30000-32767 (0 = auto).
  std::uint16_t nodePort = 0;
};

class Service {
 public:
  Service(std::string name, std::string namespaceName, ServiceSpec spec)
      : name_(std::move(name)),
        namespace_(std::move(namespaceName)),
        spec_(std::move(spec)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& namespaceName() const noexcept { return namespace_; }
  [[nodiscard]] const ServiceSpec& spec() const noexcept { return spec_; }

  /// The in-cluster DNS name, e.g. "dl-nfd.ndnk8s.svc.cluster.local".
  [[nodiscard]] std::string dnsName() const {
    return name_ + "." + namespace_ + ".svc.cluster.local";
  }

  [[nodiscard]] std::uint16_t nodePort() const noexcept { return spec_.nodePort; }
  void setNodePort(std::uint16_t port) noexcept { spec_.nodePort = port; }

  [[nodiscard]] const std::string& clusterIp() const noexcept { return cluster_ip_; }
  void setClusterIp(std::string ip) { cluster_ip_ = std::move(ip); }

 private:
  std::string name_;
  std::string namespace_;
  ServiceSpec spec_;
  std::string cluster_ip_;
};

}  // namespace lidc::k8s
