// EWMA + z-score anomaly detection over scraped time series: each
// detector tracks an exponentially-weighted mean and variance and
// flags samples whose deviation from the pre-update mean exceeds a
// z threshold — catching level shifts (a cluster's nack rate jumping
// from ~0 to sustained 40%) that a static threshold tuned for one
// deployment would miss in another. The mean keeps adapting after a
// flag, so a shift that persists becomes the new normal and the alert
// resolves instead of latching forever.
//
// Pure arithmetic on caller-supplied samples: deterministic, no clock,
// no allocation per observation.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace lidc::telemetry {

struct AnomalyOptions {
  /// EWMA smoothing factor for mean and variance (higher = adapts faster).
  double alpha = 0.3;
  /// Samples at least this many standard deviations from the mean flag.
  double zThreshold = 3.0;
  /// No flags until this many samples have been observed.
  std::uint64_t warmupSamples = 8;
  /// Floor on the standard deviation, so a perfectly flat series does
  /// not flag on its first micro-wiggle.
  double minStdDev = 1e-3;
  bool flagHigh = true;
  bool flagLow = true;
};

struct AnomalyPoint {
  double value = 0.0;
  double mean = 0.0;    // pre-update EWMA mean the z-score was taken against
  double stddev = 0.0;  // pre-update (floored) standard deviation
  double z = 0.0;
  bool anomalous = false;
};

class EwmaDetector {
 public:
  explicit EwmaDetector(AnomalyOptions options = {}) : options_(options) {}

  /// Scores `value` against the current estimate, then folds it in.
  AnomalyPoint observe(double value) noexcept;

  void reset() noexcept {
    mean_ = 0.0;
    variance_ = 0.0;
    samples_ = 0;
  }

  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] const AnomalyOptions& options() const noexcept { return options_; }

 private:
  AnomalyOptions options_;
  double mean_ = 0.0;
  double variance_ = 0.0;
  std::uint64_t samples_ = 0;
};

/// Find-or-create family of detectors keyed by series name, all sharing
/// default options — what AlertEngine anomaly rules use per series.
class AnomalyBank {
 public:
  explicit AnomalyBank(AnomalyOptions defaults = {}) : defaults_(defaults) {}

  EwmaDetector& detector(const std::string& series) {
    auto it = detectors_.find(series);
    if (it == detectors_.end()) {
      it = detectors_.emplace(series, EwmaDetector(defaults_)).first;
    }
    return it->second;
  }

  AnomalyPoint observe(const std::string& series, double value) {
    return detector(series).observe(value);
  }

  [[nodiscard]] std::size_t size() const noexcept { return detectors_.size(); }

 private:
  AnomalyOptions defaults_;
  std::map<std::string, EwmaDetector> detectors_;
};

}  // namespace lidc::telemetry
