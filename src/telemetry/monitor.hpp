// The named monitoring plane (paper SIV pattern, applied to telemetry;
// cf. OSDF's monitoring-as-a-service): each cluster's gateway node runs
// a TelemetryPublisher that serves signed metric snapshots under
//
//   /ndn/k8s/telemetry/<cluster>/<group>/_latest   -> "seq=N;generated=<ns>"
//   /ndn/k8s/telemetry/<cluster>/<group>/<seq>     -> Prometheus text
//
// The `_latest` manifest is short-freshness Data (a MustBeFresh Interest
// always reaches a live publisher once the cached copy ages out); the
// per-seq snapshot is immutable, long-freshness Data, so repeat scrapes
// by other collectors are served straight from Content Stores along the
// path — monitoring inherits NDN's caching and location independence.
//
// Snapshots are generated on demand: when a `_latest` Interest arrives
// and the newest snapshot is older than snapshotInterval, the publisher
// re-exports the registry and bumps the sequence number. (No periodic
// timer — idle simulations still drain.)
//
// The TelemetryCollector is the consumer side: it scrapes any number of
// clusters through ordinary Interests and exposes per-cluster views
// with a staleness flag, so a blacked-out cluster shows up as stale
// after its freshness window instead of wedging the collector.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ndn/app_face.hpp"
#include "ndn/forwarder.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/metrics.hpp"

namespace lidc::telemetry {

/// Root of the monitoring namespace.
inline const ndn::Name kTelemetryPrefix{"/ndn/k8s/telemetry"};

struct TelemetryPublisherOptions {
  /// Minimum age before a `_latest` Interest triggers a fresh export.
  sim::Duration snapshotInterval = sim::Duration::seconds(1);
  /// Freshness on the `_latest` manifest (collectors send MustBeFresh).
  sim::Duration manifestFreshness = sim::Duration::millis(500);
  /// Freshness on immutable per-seq snapshots (CS-cacheable).
  sim::Duration snapshotFreshness = sim::Duration::hours(1);
  /// How many historical snapshots stay answerable.
  std::size_t retainedSnapshots = 8;
};

class TelemetryPublisher {
 public:
  /// Attaches to `forwarder` (the cluster's gateway NFD), registering
  /// /ndn/k8s/telemetry/<cluster> toward a new AppFace. The default
  /// "all" group exports the whole registry; addGroup() narrows by
  /// metric-name prefix (e.g. "forwarder" -> "lidc_forwarder").
  TelemetryPublisher(ndn::Forwarder& forwarder, MetricsRegistry& registry,
                     std::string clusterName,
                     TelemetryPublisherOptions options = {});

  void addGroup(const std::string& group, const std::string& metricPrefix);

  /// A group whose snapshot text comes from `content` instead of the
  /// registry. A new sequence is exported only when `revision` has
  /// changed since the last export, so manifest reuse still works for
  /// slow-changing payloads — this is how the AlertEngine's transition
  /// log becomes /ndn/k8s/telemetry/<cluster>/alerts/.
  void addContentGroup(const std::string& group,
                       std::function<std::string()> content,
                       std::function<std::uint64_t()> revision);

  [[nodiscard]] const std::string& clusterName() const noexcept {
    return cluster_name_;
  }
  [[nodiscard]] std::uint64_t snapshotsGenerated() const noexcept {
    return snapshots_generated_;
  }
  [[nodiscard]] std::uint64_t interestsServed() const noexcept { return served_; }
  [[nodiscard]] std::uint64_t interestsRejected() const noexcept {
    return rejected_;
  }

 private:
  struct Group {
    std::string metricPrefix;
    /// Non-null for content groups (addContentGroup).
    std::function<std::string()> content;
    std::function<std::uint64_t()> revision;
    std::uint64_t lastRevision = 0;
    std::uint64_t seq = 0;  // 0 = nothing exported yet
    sim::Time generatedAt;
    std::map<std::uint64_t, std::string> snapshots;  // seq -> Prometheus text
  };

  void handleInterest(const ndn::Interest& interest);
  void replyLatest(const ndn::Interest& interest, Group& group);
  void replySnapshot(const ndn::Interest& interest, Group& group,
                     std::uint64_t seq);
  /// Exports the registry into a new sequence if the newest is stale.
  void refreshGroup(Group& group);

  ndn::Forwarder& forwarder_;
  MetricsRegistry& registry_;
  std::string cluster_name_;
  TelemetryPublisherOptions options_;
  std::shared_ptr<ndn::AppFace> face_;
  ndn::FaceId face_id_ = ndn::kInvalidFaceId;
  std::map<std::string, Group> groups_;
  std::uint64_t snapshots_generated_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t rejected_ = 0;
};

struct HealthPolicy {
  /// Score assigned to clusters never scraped or past their freshness
  /// window (a blacked-out gateway lands here).
  double staleScore = 0.0;
  /// Gauge series (before the {cluster=...} label) carrying the
  /// gateway's ready-node fraction; missing series counts as healthy.
  std::string healthyFractionSeries = "lidc_gateway_healthy_node_fraction";
  /// Weight of the refused-work ratio (admission rejections + blackout
  /// drops since the previous snapshot, over compute Interests
  /// received) in the score.
  double rejectionWeight = 1.0;
  /// A raw score below this arms the hold-down: the cluster keeps
  /// reporting its degraded score for `holdDown` even after steering
  /// has moved traffic away (so no new evidence accumulates), instead
  /// of flapping healthy and luring jobs back into the fault.
  double degradedThreshold = 0.5;
  sim::Duration holdDown = sim::Duration::seconds(10);
};

struct TelemetryCollectorOptions {
  /// Metric group to scrape.
  std::string group = "all";
  /// Lifetime of scrape Interests (bounds how long a dead cluster can
  /// keep a scrape outstanding).
  sim::Duration interestLifetime = sim::Duration::millis(1000);
  /// A cluster whose last successful scrape is older than this is stale.
  sim::Duration freshnessWindow = sim::Duration::seconds(5);
  /// Period of start()ed background scraping.
  sim::Duration scrapeInterval = sim::Duration::seconds(2);
  /// How scraped series aggregate into healthScore().
  HealthPolicy health;
};

struct CollectorCounters {
  std::uint64_t scrapesStarted = 0;    // per (cluster, scrapeOnce) pair
  std::uint64_t scrapesSucceeded = 0;
  std::uint64_t scrapesFailed = 0;     // nack / timeout / bad payload
  std::uint64_t manifestReuses = 0;    // seq unchanged, snapshot fetch skipped
  std::uint64_t snapshotsFetched = 0;
  std::uint64_t signatureFailures = 0;
};

class TelemetryCollector {
 public:
  /// One cluster's latest scraped state.
  struct ClusterView {
    std::uint64_t seq = 0;
    sim::Time lastUpdated;
    bool everScraped = false;
    std::map<std::string, double> values;  // Prometheus series -> value
    /// Previous snapshot's values — rejection pressure is scored on
    /// the delta between consecutive snapshots, not lifetime totals.
    std::map<std::string, double> prevValues;
    std::string rawText;
    /// Hold-down state (see HealthPolicy::holdDown).
    sim::Time degradedUntil;
    double degradedScore = 1.0;
  };

  /// Invoked with (cluster, healthScore) after every scrape attempt
  /// settles for that cluster — success OR failure, so a blackout
  /// drives the score down as soon as the scrape times out.
  using HealthListener =
      std::function<void(const std::string& cluster, double score)>;

  /// Attaches to the collector host's forwarder.
  TelemetryCollector(ndn::Forwarder& forwarder,
                     TelemetryCollectorOptions options = {});

  void watchCluster(const std::string& cluster);
  [[nodiscard]] std::vector<std::string> watchedClusters() const;

  /// Scrapes every watched cluster once; `done` fires after each cluster
  /// has succeeded or failed. Overlapping calls are independent.
  void scrapeOnce(std::function<void()> done = nullptr);

  /// Periodic scraping on the sim clock. stop() cancels the timer (and
  /// is required before the sim can drain).
  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  [[nodiscard]] const ClusterView* view(const std::string& cluster) const;
  /// True when the cluster has never been scraped successfully or its
  /// last success is older than the freshness window.
  [[nodiscard]] bool isStale(const std::string& cluster) const;
  /// Convenience: series value from the cluster's view (0 if absent).
  [[nodiscard]] double metric(const std::string& cluster,
                              const std::string& series) const;

  [[nodiscard]] const CollectorCounters& counters() const noexcept {
    return counters_;
  }

  /// Aggregated cluster health in [0, 1]: staleScore when stale or
  /// never scraped; otherwise the gateway's healthy-node fraction
  /// discounted by admission-rejection pressure since the previous
  /// snapshot. 1.0 = route work here, 0.0 = steer away.
  [[nodiscard]] double healthScore(const std::string& cluster) const;

  void setHealthListener(HealthListener listener) {
    health_listener_ = std::move(listener);
  }

  /// Mirrors lidc_collector_* counters plus the stale-cluster gauge and
  /// per-cluster health gauges into `registry`.
  void attachTelemetry(MetricsRegistry& registry);

  /// Forgets a cluster's scraped values (keeps it watched), forcing the
  /// next scrape to re-fetch the snapshot Data — which a warm Content
  /// Store on the path then answers without touching the publisher.
  void invalidate(const std::string& cluster);

 private:
  void scrapeCluster(const std::string& cluster, std::function<void()> done);
  void fetchSnapshot(const std::string& cluster, std::uint64_t seq,
                     std::function<void()> done);
  void scrapeTick();
  void notifyHealth(const std::string& cluster);
  /// healthScore() without the hold-down memory.
  [[nodiscard]] double rawHealthScore(const std::string& cluster) const;
  [[nodiscard]] ndn::Name groupPrefix(const std::string& cluster) const;

  ndn::Forwarder& forwarder_;
  sim::Simulator& sim_;
  TelemetryCollectorOptions options_;
  std::shared_ptr<ndn::AppFace> face_;
  ndn::FaceId face_id_ = ndn::kInvalidFaceId;
  std::vector<std::string> watched_;
  std::map<std::string, ClusterView> views_;
  CollectorCounters counters_;
  HealthListener health_listener_;
  bool running_ = false;
  sim::EventHandle tick_;
};

/// Adapter: an AlertEngine value source over a collector's scraped
/// views. For every watched cluster C it exposes
///   "<C>/stale"  — 1 when the cluster is stale, else 0
///   "<C>/health" — healthScore(C)
///   "<C>/<series>" — each scraped Prometheus series
/// so rules can reference cross-cluster series with stable names.
[[nodiscard]] AlertEngine::ValueSource collectorValueSource(
    const TelemetryCollector& collector);

}  // namespace lidc::telemetry
