#include "telemetry/alerts.hpp"

#include <algorithm>
#include <cstdio>

#include "common/logging.hpp"

namespace lidc::telemetry {

namespace {

double lookup(const std::map<std::string, double>& values,
              const std::string& series) {
  auto it = values.find(series);
  return it == values.end() ? 0.0 : it->second;
}

/// Deterministic short double rendering for logs and reasons.
std::string num(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string stamp(sim::Time at) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "t=%.6fs",
                static_cast<double>(at.toNanos()) / 1e9);
  return buf;
}

}  // namespace

AlertEngine::AlertEngine(sim::Simulator& sim, AlertEngineOptions options)
    : sim_(sim), options_(options) {}

AlertEngine::~AlertEngine() { stop(); }

void AlertEngine::addThresholdRule(std::string name, std::string series,
                                   AlertComparison cmp, double threshold,
                                   int forCount) {
  Rule rule;
  rule.kind = Rule::Kind::kThreshold;
  rule.name = std::move(name);
  rule.series = std::move(series);
  rule.cmp = cmp;
  rule.threshold = threshold;
  rule.forCount = std::max(1, forCount);
  rules_.push_back(std::move(rule));
}

void AlertEngine::addSloRule(SloSpec spec) {
  Rule rule;
  rule.kind = Rule::Kind::kSlo;
  rule.name = spec.name;
  rule.series = spec.primarySeries();
  rule.slo = std::make_unique<SloTracker>(std::move(spec));
  rules_.push_back(std::move(rule));
}

void AlertEngine::addAnomalyRule(std::string name, std::string series,
                                 AnomalyOptions options) {
  Rule rule;
  rule.kind = Rule::Kind::kAnomaly;
  rule.name = std::move(name);
  rule.series = std::move(series);
  rule.detector = std::make_unique<EwmaDetector>(options);
  rules_.push_back(std::move(rule));
}

int AlertEngine::evaluate() {
  ++evaluations_;
  if (!source_) return 0;
  const std::map<std::string, double> values = source_();
  int transitions = 0;
  for (Rule& rule : rules_) {
    bool breach = false;
    double value = 0.0;
    std::string reason;
    switch (rule.kind) {
      case Rule::Kind::kThreshold: {
        // An absent series never breaches: a "health below x" rule must
        // not fire before the first scrape has produced the series.
        const auto it = values.find(rule.series);
        if (it == values.end()) {
          rule.consecutive = 0;
          break;
        }
        value = it->second;
        const bool hit = rule.cmp == AlertComparison::kAbove
                             ? value > rule.threshold
                             : value < rule.threshold;
        rule.consecutive = hit ? rule.consecutive + 1 : 0;
        breach = rule.consecutive >= rule.forCount;
        if (breach) {
          reason = rule.series + " = " + num(value) +
                   (rule.cmp == AlertComparison::kAbove ? " > " : " < ") +
                   num(rule.threshold) + " for " +
                   std::to_string(rule.consecutive) + " evals";
        }
        break;
      }
      case Rule::Kind::kSlo: {
        const SloStatus status = rule.slo->evaluate(sim_.now(), values);
        breach = status.breached;
        value = status.gatingBurnRate;
        if (breach) {
          reason = "error budget burning at " + num(status.gatingBurnRate) +
                   "x across all " + std::to_string(status.windows.size()) +
                   " windows (current=" + num(status.currentValue) + ")";
        }
        break;
      }
      case Rule::Kind::kAnomaly: {
        const AnomalyPoint point =
            rule.detector->observe(lookup(values, rule.series));
        breach = point.anomalous;
        value = point.value;
        if (breach) {
          reason = rule.series + " = " + num(point.value) + " is " +
                   num(point.z) + " sigma from EWMA mean " + num(point.mean);
        }
        break;
      }
    }
    if (breach && rule.activeAlert == 0) {
      fire(rule, value, std::move(reason));
      ++transitions;
    } else if (!breach && rule.activeAlert != 0) {
      resolve(rule, value);
      ++transitions;
    }
  }
  return transitions;
}

void AlertEngine::fire(Rule& rule, double value, std::string reason) {
  Alert alert;
  alert.id = ++next_id_;
  alert.rule = rule.name;
  alert.series = rule.series;
  alert.value = value;
  alert.reason = std::move(reason);
  alert.firedAt = sim_.now();
  alert.firing = true;
  // Snapshot the recorder BEFORE logging the fire, so the window holds
  // the events that led here, not the alert's own announcement.
  if (recorder_ != nullptr) alert.events = recorder_->lastN(options_.eventWindow);
  rule.activeAlert = alert.id;
  ++fired_;
  ++revision_;
  appendLog(alert, /*fired=*/true);
  LIDC_LOG(kWarn, "alerts") << "fired #" << alert.id << " rule=" << alert.rule
                            << " series=" << alert.series << " " << alert.reason;
  alerts_.push_back(std::move(alert));
}

void AlertEngine::resolve(Rule& rule, double value) {
  for (Alert& alert : alerts_) {
    if (alert.id != rule.activeAlert) continue;
    alert.firing = false;
    alert.resolvedAt = sim_.now();
    alert.value = value;
    ++resolved_;
    ++revision_;
    appendLog(alert, /*fired=*/false);
    LIDC_LOG(kInfo, "alerts") << "resolved #" << alert.id
                              << " rule=" << alert.rule;
    break;
  }
  rule.activeAlert = 0;
  rule.consecutive = 0;
}

void AlertEngine::appendLog(const Alert& alert, bool fired) {
  std::string line = stamp(fired ? alert.firedAt : alert.resolvedAt);
  line += " alert=" + std::to_string(alert.id);
  line += " rule=" + alert.rule;
  line += fired ? " state=fired" : " state=resolved";
  line += " series=" + alert.series;
  line += " value=" + num(alert.value);
  line += " events=" + std::to_string(alert.events.size());
  if (fired && !alert.reason.empty()) line += " reason=" + alert.reason;
  log_lines_.push_back(std::move(line));
  while (log_lines_.size() > options_.maxLogLines) {
    log_lines_.erase(log_lines_.begin());
  }
}

void AlertEngine::start() {
  if (running_) return;
  running_ = true;
  evaluateTick();
}

void AlertEngine::stop() {
  running_ = false;
  tick_.cancel();
}

void AlertEngine::evaluateTick() {
  if (!running_) return;
  evaluate();
  tick_ = sim_.scheduleAfter(options_.evaluateInterval, [this] { evaluateTick(); });
}

const Alert* AlertEngine::alert(std::uint64_t id) const {
  for (const Alert& alert : alerts_) {
    if (alert.id == id) return &alert;
  }
  return nullptr;
}

std::size_t AlertEngine::firingCount() const {
  return static_cast<std::size_t>(
      std::count_if(alerts_.begin(), alerts_.end(),
                    [](const Alert& a) { return a.firing; }));
}

std::string AlertEngine::Rule::describe() const {
  switch (kind) {
    case Kind::kThreshold:
      return "threshold " + series +
             (cmp == AlertComparison::kAbove ? " > " : " < ") + [&] {
               char buf[32];
               std::snprintf(buf, sizeof(buf), "%.6g", threshold);
               return std::string(buf);
             }() + " for " + std::to_string(forCount) + " evals";
    case Kind::kSlo: {
      const SloSpec& spec = slo->spec();
      std::string windows;
      for (const SloWindow& w : spec.windows) {
        if (!windows.empty()) windows += "/";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0fs",
                      static_cast<double>(w.window.toNanos()) / 1e9);
        windows += buf;
      }
      char target[32];
      std::snprintf(target, sizeof(target), "%.6g", spec.target);
      return "slo target=" + std::string(target) + " windows=" + windows +
             " on " + series;
    }
    case Kind::kAnomaly: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", detector->options().zThreshold);
      return "anomaly " + series + " |z| >= " + buf;
    }
  }
  return "?";
}

std::string AlertEngine::explainAlert(std::uint64_t id) const {
  const Alert* a = alert(id);
  if (a == nullptr) return "";
  const Rule* owner = nullptr;
  for (const Rule& rule : rules_) {
    if (rule.name == a->rule) {
      owner = &rule;
      break;
    }
  }
  std::string out = "alert #" + std::to_string(a->id) + " rule=" + a->rule;
  out += a->firing ? " state=firing" : " state=resolved";
  out += " fired " + stamp(a->firedAt);
  if (!a->firing) out += " resolved " + stamp(a->resolvedAt);
  out += "\n";
  if (owner != nullptr) out += "  rule: " + owner->describe() + "\n";
  out += "  series: " + a->series + " = " + num(a->value) + "\n";
  if (!a->reason.empty()) out += "  reason: " + a->reason + "\n";
  out += "  events (" + std::to_string(a->events.size()) + "):\n";
  for (const FlightEvent& event : a->events) {
    std::string line = FlightRecorder::render({event});
    out += "    " + line;
  }
  return out;
}

std::string AlertEngine::serializedLog() const {
  std::string out;
  for (const std::string& line : log_lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

void AlertEngine::attachTelemetry(MetricsRegistry& registry) {
  registry.registerCollector([this, &registry] {
    registry.counter("lidc_alerts_fired_total").set(fired_);
    registry.counter("lidc_alerts_resolved_total").set(resolved_);
    registry.counter("lidc_alerts_evaluations_total").set(evaluations_);
    registry.gauge("lidc_alerts_firing").set(static_cast<double>(firingCount()));
  });
}

}  // namespace lidc::telemetry
