// Alert rule engine: threshold, SLO burn-rate, and anomaly rules
// evaluated on the sim clock against a pluggable flat series map (a
// registry flatten(), or a TelemetryCollector's scraped views via
// collectorValueSource() in monitor.hpp). Each rule owns at most one
// active alert; a fired alert snapshots the flight recorder's last-N
// event window, so explainAlert(id) renders rule, triggering series,
// reason, and recent structured events in one shot.
//
// serializedLog() is the cumulative fired/resolved transition log —
// deterministic text that TelemetryPublisher::addContentGroup() exposes
// as signed Data under /ndn/k8s/telemetry/<cluster>/alerts/, letting
// any collector scrape the alert plane with ordinary Interests.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "telemetry/anomaly.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/slo.hpp"

namespace lidc::telemetry {

enum class AlertComparison { kAbove, kBelow };

struct AlertEngineOptions {
  /// Flight-recorder events snapshotted into each fired alert.
  std::size_t eventWindow = 32;
  /// Cap on serializedLog() transition lines (oldest dropped).
  std::size_t maxLogLines = 256;
  /// Period of start()ed background evaluation.
  sim::Duration evaluateInterval = sim::Duration::seconds(1);
};

struct Alert {
  std::uint64_t id = 0;
  std::string rule;
  std::string series;
  double value = 0.0;
  std::string reason;
  sim::Time firedAt;
  sim::Time resolvedAt;
  bool firing = true;
  /// Flight-recorder window captured at fire time.
  std::vector<FlightEvent> events;
};

class AlertEngine {
 public:
  using ValueSource = std::function<std::map<std::string, double>()>;

  explicit AlertEngine(sim::Simulator& sim, AlertEngineOptions options = {});
  ~AlertEngine();

  void setValueSource(ValueSource source) { source_ = std::move(source); }
  void setFlightRecorder(FlightRecorder* recorder) { recorder_ = recorder; }

  /// Fires while `series cmp threshold` holds for `forCount`
  /// consecutive evaluations; resolves on the first non-breaching one.
  void addThresholdRule(std::string name, std::string series,
                        AlertComparison cmp, double threshold, int forCount = 1);
  /// Fires while all of the spec's burn-rate windows are burning.
  void addSloRule(SloSpec spec);
  /// Fires on EWMA z-score excursions of `series`.
  void addAnomalyRule(std::string name, std::string series,
                      AnomalyOptions options = {});

  /// One evaluation pass; returns the number of fired/resolved
  /// transitions it caused.
  int evaluate();

  /// Periodic evaluation on the sim clock; stop() is required before
  /// the simulation can drain.
  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  [[nodiscard]] const std::vector<Alert>& alerts() const noexcept {
    return alerts_;
  }
  [[nodiscard]] const Alert* alert(std::uint64_t id) const;
  [[nodiscard]] std::size_t firingCount() const;
  [[nodiscard]] std::uint64_t firedTotal() const noexcept { return fired_; }
  [[nodiscard]] std::uint64_t resolvedTotal() const noexcept { return resolved_; }
  [[nodiscard]] std::uint64_t evaluations() const noexcept { return evaluations_; }

  /// Bumped on every fired/resolved transition; the alert content
  /// group's revision, so unchanged state keeps its publisher seq.
  [[nodiscard]] std::uint64_t revision() const noexcept { return revision_; }

  /// Post-mortem for one alert: rule, triggering series, reason, and
  /// the captured event window. Empty string for unknown ids.
  [[nodiscard]] std::string explainAlert(std::uint64_t id) const;

  /// Cumulative transition log ("t=..s alert=N rule=... state=fired
  /// series=... value=... events=K reason=..."), one line per
  /// transition, capped at maxLogLines.
  [[nodiscard]] std::string serializedLog() const;

  /// Mirrors lidc_alerts_* counters/gauges into `registry`.
  void attachTelemetry(MetricsRegistry& registry);

 private:
  struct Rule {
    enum class Kind { kThreshold, kSlo, kAnomaly } kind = Kind::kThreshold;
    std::string name;
    std::string series;
    AlertComparison cmp = AlertComparison::kAbove;
    double threshold = 0.0;
    int forCount = 1;
    int consecutive = 0;
    std::unique_ptr<SloTracker> slo;
    std::unique_ptr<EwmaDetector> detector;
    std::uint64_t activeAlert = 0;  // 0 = not firing

    [[nodiscard]] std::string describe() const;
  };

  void fire(Rule& rule, double value, std::string reason);
  void resolve(Rule& rule, double value);
  void appendLog(const Alert& alert, bool fired);
  void evaluateTick();

  sim::Simulator& sim_;
  AlertEngineOptions options_;
  ValueSource source_;
  FlightRecorder* recorder_ = nullptr;
  std::vector<Rule> rules_;
  std::vector<Alert> alerts_;
  std::vector<std::string> log_lines_;
  std::uint64_t next_id_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t resolved_ = 0;
  std::uint64_t evaluations_ = 0;
  std::uint64_t revision_ = 0;
  bool running_ = false;
  sim::EventHandle tick_;
};

}  // namespace lidc::telemetry
