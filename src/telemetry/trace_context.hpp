// TraceContext: the causal identity a packet or operation carries so
// every layer it touches can attach spans to the same trace. Modeled on
// W3C traceparent, shrunk to the simulator's needs: a 64-bit trace id
// (one per submitted job / top-level operation) and a 64-bit span id
// (the parent span of whatever the receiver records). Carried on
// Interests the way NDNLPv2 carries hop-by-hop link-layer headers —
// alongside the packet, not inside the signed name.
#pragma once

#include <cstdint>
#include <string>

namespace lidc::telemetry {

using TraceId = std::uint64_t;
using SpanId = std::uint64_t;

struct TraceContext {
  TraceId trace = 0;  // 0 = not traced
  SpanId span = 0;    // parent span for anything recorded downstream

  [[nodiscard]] constexpr bool valid() const noexcept { return trace != 0; }
  explicit constexpr operator bool() const noexcept { return valid(); }
};

/// Fixed-width lowercase-hex rendering (log lines, explain() output).
std::string traceIdToString(TraceId id);

}  // namespace lidc::telemetry
