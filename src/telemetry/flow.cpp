#include "telemetry/flow.hpp"

#include <algorithm>
#include <sstream>

namespace lidc::telemetry {

namespace {

/// splitmix64: the one-shot mixer used everywhere seeds matter.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over the key bytes, folded with a per-row seed.
std::uint64_t hashKey(std::string_view key, std::uint64_t seed) noexcept {
  std::uint64_t h = 1469598103934665603ULL ^ seed;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return mix64(h);
}

bool safeLabelChar(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '=' ||
         c == '&' || c == ':' || c == '/' || c == '-';
}

void promLine(std::ostringstream& out, const std::string& name,
              const Labels& labels, double value) {
  out << name;
  const std::string ls = labelString(labels);
  if (!ls.empty()) out << '{' << ls << '}';
  std::ostringstream v;
  v << value;
  out << ' ' << v.str() << '\n';
}

}  // namespace

// --- FlowKey -----------------------------------------------------------

std::string FlowKey::toString() const {
  return group + "|" + tenant + "|" + tag;
}

FlowKey FlowKey::fromString(std::string_view s) {
  FlowKey key;
  const std::size_t first = s.find('|');
  if (first == std::string_view::npos) {
    key.group = sanitizeFlowComponent(s);
    return key;
  }
  const std::size_t second = s.find('|', first + 1);
  key.group = sanitizeFlowComponent(s.substr(0, first));
  if (second == std::string_view::npos) {
    key.tenant = sanitizeFlowComponent(s.substr(first + 1));
    return key;
  }
  key.tenant = sanitizeFlowComponent(s.substr(first + 1, second - first - 1));
  key.tag = sanitizeFlowComponent(s.substr(second + 1));
  return key;
}

std::string sanitizeFlowComponent(std::string_view raw) {
  if (raw.empty()) return "-";
  std::string out;
  out.reserve(std::min(raw.size(), kMaxFlowComponent));
  for (const char c : raw) {
    if (out.size() >= kMaxFlowComponent) break;
    // '|' is the FlowKey field separator and must never appear inside
    // a field, even though ':' and '/' pass through for link URIs.
    out.push_back(safeLabelChar(c) && c != '|' ? c : '_');
  }
  return out;
}

FlowKey extractFlowKey(const std::string_view* components, std::size_t count,
                       const FlowLabel& label) {
  FlowKey key;
  if (count >= 3 && components[0] == "ndn" && components[1] == "k8s") {
    key.group = sanitizeFlowComponent(components[2]);
  } else {
    key.group = "other";
  }
  if (!label.tenant.empty()) {
    key.tenant = sanitizeFlowComponent(label.tenant);
  } else if (key.group == "submit" && count >= 4) {
    // /ndn/k8s/submit/<tenant>/<desc...> carries the tenant in-name.
    key.tenant = sanitizeFlowComponent(components[3]);
  } else {
    // Publish names carry "tenant=<t>" as a regular component.
    constexpr std::string_view kPrefix = "tenant=";
    for (std::size_t i = 0; i < count; ++i) {
      const std::string_view c = components[i];
      if (c.size() > kPrefix.size() && c.substr(0, kPrefix.size()) == kPrefix) {
        key.tenant = sanitizeFlowComponent(c.substr(kPrefix.size()));
        break;
      }
    }
  }
  if (!label.tag.empty()) key.tag = sanitizeFlowComponent(label.tag);
  return key;
}

// --- CountMinSketch ----------------------------------------------------

CountMinSketch::CountMinSketch(std::size_t width, std::size_t depth,
                               std::uint64_t seed)
    : width_(std::max<std::size_t>(width, 8)) {
  depth = std::max<std::size_t>(depth, 1);
  rows_.assign(width_ * depth, 0);
  seeds_.reserve(depth);
  for (std::size_t d = 0; d < depth; ++d) seeds_.push_back(mix64(seed + d));
}

std::size_t CountMinSketch::cell(std::size_t row,
                                 std::string_view key) const noexcept {
  return row * width_ + hashKey(key, seeds_[row]) % width_;
}

void CountMinSketch::add(std::string_view key, std::uint64_t n) noexcept {
  for (std::size_t d = 0; d < seeds_.size(); ++d) rows_[cell(d, key)] += n;
  total_ += n;
}

std::uint64_t CountMinSketch::estimate(std::string_view key) const noexcept {
  std::uint64_t best = ~std::uint64_t{0};
  for (std::size_t d = 0; d < seeds_.size(); ++d) {
    best = std::min(best, rows_[cell(d, key)]);
  }
  return seeds_.empty() ? 0 : best;
}

// --- SpaceSaving -------------------------------------------------------

SpaceSaving::SpaceSaving(std::size_t k, std::size_t sketchWidth,
                         std::size_t sketchDepth)
    : k_(std::max<std::size_t>(k, 1)), cms_(sketchWidth, sketchDepth) {}

void SpaceSaving::add(const std::string& key, std::uint64_t n) noexcept {
  cms_.add(key, n);
  if (auto it = slots_.find(key); it != slots_.end()) {
    it->second.count += n;
    return;
  }
  if (slots_.size() < k_) {
    slots_.emplace(key, Slot{n, 0});
    return;
  }
  // Deterministic minimum: smallest count, then lexicographically
  // smallest key (map order supplies the tiebreak).
  auto victim = slots_.begin();
  for (auto it = std::next(slots_.begin()); it != slots_.end(); ++it) {
    if (it->second.count < victim->second.count) victim = it;
  }
  // Count-Min gate: a key whose estimated frequency cannot beat the
  // current minimum is noise — charging it the victim's count would
  // just churn real heavy hitters out of the monitored set.
  const std::uint64_t floor = victim->second.count;
  if (cms_.estimate(key) <= floor) return;
  slots_.erase(victim);
  slots_.emplace(key, Slot{floor + n, floor});
}

std::vector<TopKEntry> SpaceSaving::top() const {
  std::vector<TopKEntry> out;
  out.reserve(slots_.size());
  for (const auto& [key, slot] : slots_) {
    out.push_back({key, slot.count, slot.error});
  }
  std::sort(out.begin(), out.end(), [](const TopKEntry& a, const TopKEntry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  return out;
}

// --- LinkFlowStats -----------------------------------------------------

LinkFlowStats::LinkFlowStats(sim::Simulator& sim, std::uint64_t bucketWidthNs)
    : sim_(sim), bucket_width_ns_(std::max<std::uint64_t>(bucketWidthNs, 1)) {}

#if !defined(LIDC_TELEMETRY_DISABLED)
void LinkFlowStats::addBytes(std::uint64_t wireBytes) noexcept {
  bytes_.fetch_add(wireBytes, std::memory_order_relaxed);
  const std::uint64_t epoch =
      static_cast<std::uint64_t>(sim_.now().toNanos()) / bucket_width_ns_;
  Bucket& b = ring_[epoch % kBuckets];
  std::uint64_t seen = b.epoch.load(std::memory_order_relaxed);
  if (seen != epoch) {
    // First writer into a recycled bucket zeroes it; CAS losers just
    // add below — the winner's store is already visible.
    if (b.epoch.compare_exchange_strong(seen, epoch,
                                        std::memory_order_relaxed)) {
      b.bytes.store(0, std::memory_order_relaxed);
    }
  }
  b.bytes.fetch_add(wireBytes, std::memory_order_relaxed);
}
#endif

std::uint64_t LinkFlowStats::trailingWindowBytes() const noexcept {
  const std::uint64_t nowEpoch =
      static_cast<std::uint64_t>(sim_.now().toNanos()) / bucket_width_ns_;
  std::uint64_t sum = 0;
  for (const Bucket& b : ring_) {
    const std::uint64_t epoch = b.epoch.load(std::memory_order_relaxed);
    // Complete buckets only: the current epoch is still filling.
    if (epoch == kIdleEpoch || epoch >= nowEpoch) continue;
    if (nowEpoch - epoch > kBuckets - 1) continue;  // recycled, stale
    sum += b.bytes.load(std::memory_order_relaxed);
  }
  return sum;
}

std::uint64_t LinkFlowStats::trailingWindowNs() const noexcept {
  const std::uint64_t nowEpoch =
      static_cast<std::uint64_t>(sim_.now().toNanos()) / bucket_width_ns_;
  const std::uint64_t complete = std::min<std::uint64_t>(nowEpoch, kBuckets - 1);
  return complete * bucket_width_ns_;
}

// --- FlowAccountant ----------------------------------------------------

FlowAccountant::FlowAccountant(sim::Simulator& sim,
                               FlowAccountantOptions options)
    : sim_(sim), options_(options) {}

LinkFlowStats* FlowAccountant::registerLink(const std::string& link) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = links_.find(link);
  if (it == links_.end()) {
    LinkEntry entry;
    entry.stats = std::make_unique<LinkFlowStats>(
        sim_, static_cast<std::uint64_t>(options_.bucketWidth.toNanos()));
    entry.talkers = std::make_unique<SpaceSaving>(
        options_.topK, options_.sketchWidth, options_.sketchDepth);
    it = links_.emplace(link, std::move(entry)).first;
  }
  return it->second.stats.get();
}

LinkFlowStats* FlowAccountant::link(const std::string& link) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = links_.find(link);
  return it == links_.end() ? nullptr : it->second.stats.get();
}

void FlowAccountant::setLinkCapacity(const std::string& link,
                                     double bitsPerSec) {
  registerLink(link);
  std::lock_guard<std::mutex> lock(mutex_);
  links_[link].capacityBits = bitsPerSec;
}

std::vector<std::string> FlowAccountant::linkNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(links_.size());
  for (const auto& [name, entry] : links_) out.push_back(name);
  return out;
}

const FlowAccountant::LinkEntry* FlowAccountant::find(
    const std::string& link) const {
  auto it = links_.find(link);
  return it == links_.end() ? nullptr : &it->second;
}

void FlowAccountant::attribute(const std::string& link, const FlowKey& key,
                               std::uint64_t bytes, bool fromCache) {
#if defined(LIDC_TELEMETRY_DISABLED)
  (void)link;
  (void)key;
  (void)bytes;
  (void)fromCache;
#else
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = links_.find(link);
  if (it == links_.end()) return;
  LinkEntry& entry = it->second;
  if (fromCache) {
    entry.stats->onCsBytes(bytes);
  } else {
    entry.stats->onUpstreamBytes(bytes);
  }
  entry.talkers->add(key.toString(), bytes);
  entry.tenantBytes[key.tenant] += bytes;
  entry.attributedBytes += bytes;
  revision_.fetch_add(1, std::memory_order_relaxed);
#endif
}

void FlowAccountant::recordTransfer(const FlowKey& key, std::uint64_t bytes) {
#if defined(LIDC_TELEMETRY_DISABLED)
  (void)key;
  (void)bytes;
#else
  std::lock_guard<std::mutex> lock(mutex_);
  staged_[key] += bytes;
  staged_total_ += bytes;
  revision_.fetch_add(1, std::memory_order_relaxed);
#endif
}

std::uint64_t FlowAccountant::stagedBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return staged_total_;
}

std::map<FlowKey, std::uint64_t> FlowAccountant::stagedLedger() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return staged_;
}

std::uint64_t FlowAccountant::stagedBytes(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string wanted = sanitizeFlowComponent(tenant);
  std::uint64_t sum = 0;
  for (const auto& [key, bytes] : staged_) {
    if (key.tenant == wanted) sum += bytes;
  }
  return sum;
}

double FlowAccountant::utilization(const std::string& link) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const LinkEntry* entry = find(link);
  if (entry == nullptr || entry->capacityBits <= 0) return 0.0;
  const std::uint64_t windowNs = entry->stats->trailingWindowNs();
  if (windowNs == 0) return 0.0;
  const double bits = static_cast<double>(entry->stats->trailingWindowBytes()) * 8.0;
  const double seconds = static_cast<double>(windowNs) * 1e-9;
  return bits / (seconds * entry->capacityBits);
}

double FlowAccountant::dominantShare(const std::string& link) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const LinkEntry* entry = find(link);
  if (entry == nullptr || entry->attributedBytes == 0) return 0.0;
  std::uint64_t best = 0;
  for (const auto& [tenant, bytes] : entry->tenantBytes) {
    if (tenant == "-") continue;  // unattributed traffic dominates nothing
    best = std::max(best, bytes);
  }
  return static_cast<double>(best) / static_cast<double>(entry->attributedBytes);
}

std::string FlowAccountant::dominantTenant(const std::string& link) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const LinkEntry* entry = find(link);
  if (entry == nullptr) return "-";
  std::string bestTenant = "-";
  std::uint64_t best = 0;
  for (const auto& [tenant, bytes] : entry->tenantBytes) {
    if (tenant == "-") continue;
    if (bytes > best) {  // map order makes ties lexicographic-first
      best = bytes;
      bestTenant = tenant;
    }
  }
  return bestTenant;
}

std::vector<TopKEntry> FlowAccountant::topTalkers(
    const std::string& link) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const LinkEntry* entry = find(link);
  return entry == nullptr ? std::vector<TopKEntry>{} : entry->talkers->top();
}

std::string FlowAccountant::toPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, entry] : links_) {
    const Labels link{{"link", name}};
    const LinkFlowStats& s = *entry.stats;
    promLine(out, "lidc_link_interests_total", link,
             static_cast<double>(s.interests()));
    promLine(out, "lidc_link_data_total", link,
             static_cast<double>(s.dataPackets()));
    promLine(out, "lidc_link_nacks_total", link,
             static_cast<double>(s.nacks()));
    promLine(out, "lidc_link_bytes_total", link,
             static_cast<double>(s.bytes()));
    promLine(out, "lidc_link_cs_bytes_total", link,
             static_cast<double>(s.csBytes()));
    promLine(out, "lidc_link_upstream_bytes_total", link,
             static_cast<double>(s.upstreamBytes()));
    promLine(out, "lidc_link_capacity_bits_per_sec", link, entry.capacityBits);
    // Inline recomputation (find() under the already-held lock).
    double util = 0.0;
    if (entry.capacityBits > 0) {
      const std::uint64_t windowNs = s.trailingWindowNs();
      if (windowNs > 0) {
        util = static_cast<double>(s.trailingWindowBytes()) * 8.0 /
               (static_cast<double>(windowNs) * 1e-9 * entry.capacityBits);
      }
    }
    promLine(out, "lidc_link_utilization", link, util);
    std::uint64_t best = 0;
    for (const auto& [tenant, bytes] : entry.tenantBytes) {
      if (tenant != "-") best = std::max(best, bytes);
    }
    const double share =
        entry.attributedBytes == 0
            ? 0.0
            : static_cast<double>(best) /
                  static_cast<double>(entry.attributedBytes);
    promLine(out, "lidc_link_dominant_share", link, share);
    for (const auto& [tenant, bytes] : entry.tenantBytes) {
      promLine(out, "lidc_flow_tenant_bytes_total",
               {{"link", name}, {"tenant", tenant}},
               static_cast<double>(bytes));
    }
    const auto top = entry.talkers->top();
    for (std::size_t i = 0; i < top.size(); ++i) {
      const FlowKey key = FlowKey::fromString(top[i].key);
      promLine(out, "lidc_flow_topk_bytes",
               {{"link", name},
                {"rank", std::to_string(i + 1)},
                {"group", key.group},
                {"tenant", key.tenant},
                {"tag", key.tag}},
               static_cast<double>(top[i].count));
    }
  }
  for (const auto& [key, bytes] : staged_) {
    promLine(out, "lidc_flow_staged_bytes_total",
             {{"tenant", key.tenant}, {"group", key.group}, {"tag", key.tag}},
             static_cast<double>(bytes));
  }
  return out.str();
}

void FlowAccountant::attachTelemetry(MetricsRegistry& registry) {
  registry.registerCollector([this, &registry] {
    std::vector<std::string> names = linkNames();
    for (const std::string& name : names) {
      LinkFlowStats* s = nullptr;
      double capacity = 0;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        const LinkEntry* entry = find(name);
        if (entry == nullptr) continue;
        s = entry->stats.get();
        capacity = entry->capacityBits;
      }
      const Labels link{{"link", name}};
      registry.counter("lidc_link_interests_total", link).set(s->interests());
      registry.counter("lidc_link_data_total", link).set(s->dataPackets());
      registry.counter("lidc_link_nacks_total", link).set(s->nacks());
      registry.counter("lidc_link_bytes_total", link).set(s->bytes());
      registry.counter("lidc_link_cs_bytes_total", link).set(s->csBytes());
      registry.counter("lidc_link_upstream_bytes_total", link)
          .set(s->upstreamBytes());
      registry.gauge("lidc_link_capacity_bits_per_sec", link).set(capacity);
      registry.gauge("lidc_link_utilization", link).set(utilization(name));
      registry.gauge("lidc_link_dominant_share", link).set(dominantShare(name));
    }
  });
}

}  // namespace lidc::telemetry
