#include "telemetry/metrics.hpp"

#include "telemetry/trace_context.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string_view>

namespace lidc::telemetry {

int Histogram::bucketFor(double v) noexcept {
  if (!(v >= 1.0)) return 0;  // negatives and NaN also land in bucket 0
  // Values at or above 2^63 saturate into the last bucket.
  if (v >= 9.223372036854775808e18) return kBucketCount - 1;
  const auto x = static_cast<std::uint64_t>(v);
  const int b = std::bit_width(x);  // x in [2^(b-1), 2^b)
  return std::min(b, kBucketCount - 1);
}

std::pair<double, double> Histogram::bucketBounds(int bucket) noexcept {
  if (bucket <= 0) return {0.0, 1.0};
  return {std::ldexp(1.0, bucket - 1), std::ldexp(1.0, bucket)};
}

double Histogram::quantile(double q) const noexcept {
  std::uint64_t counts[kBucketCount];
  std::uint64_t total = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += counts[i];
    if (seen >= rank && counts[i] > 0) {
      const auto [lo, hi] = bucketBounds(i);
      return (lo + hi) / 2.0;
    }
  }
  const auto [lo, hi] = bucketBounds(kBucketCount - 1);
  return (lo + hi) / 2.0;
}

std::string labelString(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [k, v] : sorted) {
    if (!out.empty()) out += ',';
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  return out;
}

MetricsRegistry::Entry& MetricsRegistry::findOrCreate(const std::string& name,
                                                      Labels labels,
                                                      MetricKind kind) {
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lock(mutex_);
  auto key = std::make_pair(name, labelString(labels));
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = kind;
    entry.labels = std::move(labels);
    switch (kind) {
      case MetricKind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = entries_.emplace(std::move(key), std::move(entry)).first;
  }
  assert(it->second.kind == kind && "metric re-registered with a different kind");
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  return *findOrCreate(name, std::move(labels), MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  return *findOrCreate(name, std::move(labels), MetricKind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, Labels labels) {
  return *findOrCreate(name, std::move(labels), MetricKind::kHistogram).histogram;
}

void MetricsRegistry::registerCollector(std::function<void()> collect) {
  std::lock_guard<std::mutex> lock(mutex_);
  collectors_.push_back(std::move(collect));
}

void MetricsRegistry::runCollectors() {
  // Copy under the lock, run outside it: collectors are free to create
  // new instruments without deadlocking.
  std::vector<std::function<void()>> collectors;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    collectors = collectors_;
  }
  for (const auto& collect : collectors) collect();
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot(const std::string& prefix) {
  runCollectors();
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    if (!prefix.empty() && key.first.rfind(prefix, 0) != 0) continue;
    MetricSnapshot snap;
    snap.name = key.first;
    snap.labels = entry.labels;
    snap.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        snap.value = static_cast<double>(entry.counter->value());
        break;
      case MetricKind::kGauge:
        snap.value = entry.gauge->value();
        break;
      case MetricKind::kHistogram:
        snap.count = entry.histogram->count();
        snap.sum = entry.histogram->sum();
        snap.value = entry.histogram->mean();
        snap.p50 = entry.histogram->quantile(0.50);
        snap.p90 = entry.histogram->quantile(0.90);
        snap.p99 = entry.histogram->quantile(0.99);
        snap.exemplarTrace = entry.histogram->exemplarTrace();
        snap.exemplarValue = entry.histogram->exemplarValue();
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

namespace {

/// Renders integral values without a fractional part so counter exports
/// stay byte-stable across platforms.
std::string formatNumber(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

const char* kindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

/// `name{a="b",quantile="0.5"}` — merges extra label pairs in.
std::string promSeries(const std::string& name, const Labels& labels,
                       const Labels& extra = {}) {
  Labels all = labels;
  all.insert(all.end(), extra.begin(), extra.end());
  if (all.empty()) return name;
  return name + "{" + labelString(all) + "}";
}

}  // namespace

std::string MetricsRegistry::toJson(const std::string& prefix) {
  const auto snaps = snapshot(prefix);
  std::ostringstream os;
  os << "{\"metrics\":[";
  bool first = true;
  for (const auto& s : snaps) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << jsonEscape(s.name) << "\",\"kind\":\""
       << kindName(s.kind) << "\",\"labels\":{";
    bool firstLabel = true;
    for (const auto& [k, v] : s.labels) {
      if (!firstLabel) os << ',';
      firstLabel = false;
      os << '"' << jsonEscape(k) << "\":\"" << jsonEscape(v) << '"';
    }
    os << '}';
    if (s.kind == MetricKind::kHistogram) {
      os << ",\"count\":" << s.count << ",\"sum\":" << formatNumber(s.sum)
         << ",\"mean\":" << formatNumber(s.value)
         << ",\"p50\":" << formatNumber(s.p50)
         << ",\"p90\":" << formatNumber(s.p90)
         << ",\"p99\":" << formatNumber(s.p99);
      if (s.exemplarTrace != 0) {
        os << ",\"exemplar_trace\":\"" << traceIdToString(s.exemplarTrace)
           << "\",\"exemplar_value\":" << formatNumber(s.exemplarValue);
      }
    } else {
      os << ",\"value\":" << formatNumber(s.value);
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

std::string MetricsRegistry::toPrometheus(const std::string& prefix) {
  const auto snaps = snapshot(prefix);
  std::ostringstream os;
  std::string lastTyped;
  for (const auto& s : snaps) {
    if (s.name != lastTyped) {
      os << "# TYPE " << s.name << ' '
         << (s.kind == MetricKind::kHistogram ? "summary" : kindName(s.kind))
         << '\n';
      lastTyped = s.name;
    }
    if (s.kind == MetricKind::kHistogram) {
      os << promSeries(s.name + "_count", s.labels) << ' ' << s.count << '\n';
      os << promSeries(s.name + "_sum", s.labels) << ' ' << formatNumber(s.sum)
         << '\n';
      os << promSeries(s.name, s.labels, {{"quantile", "0.5"}}) << ' '
         << formatNumber(s.p50) << '\n';
      os << promSeries(s.name, s.labels, {{"quantile", "0.9"}}) << ' '
         << formatNumber(s.p90) << '\n';
      os << promSeries(s.name, s.labels, {{"quantile", "0.99"}}) << ' '
         << formatNumber(s.p99) << '\n';
    } else {
      os << promSeries(s.name, s.labels) << ' ' << formatNumber(s.value) << '\n';
    }
  }
  return os.str();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::map<std::string, double> MetricsRegistry::flatten(const std::string& prefix) {
  return parsePrometheusText(toPrometheus(prefix));
}

std::map<std::string, double> parsePrometheusText(const std::string& text) {
  // Tolerant by construction: exposition text may arrive truncated or
  // corrupted off the wire. Bad lines are skipped deterministically
  // (same input -> same output), duplicate series keep the last value,
  // non-finite values (NaN/Inf) are dropped, and nothing ever throws.
  std::map<std::string, double> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line(
        text.data() + pos,
        (eol == std::string::npos ? text.size() : eol) - pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;

    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
      continue;  // no value field
    }
    const std::string_view series = line.substr(0, space);
    // A series is a metric name with an optional complete {labels}
    // block; an unbalanced brace means a truncated line.
    const std::size_t open = series.find('{');
    if (open != std::string::npos &&
        (series.back() != '}' || series.find('}') != series.size() - 1)) {
      continue;
    }
    if (open == 0) continue;  // label block with no metric name

    const std::string value(line.substr(space + 1));
    char* end = nullptr;
    errno = 0;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') continue;  // not a number
    if (!std::isfinite(parsed)) continue;                // NaN / +-Inf
    out[std::string(series)] = parsed;  // duplicates: last one wins
  }
  return out;
}

}  // namespace lidc::telemetry
