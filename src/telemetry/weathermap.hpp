// Traffic observability plane, part 2 (see DESIGN.md §13): the fleet
// weathermap. An ops host runs one Weathermap, which scrapes every
// cluster's /ndn/k8s/telemetry/<cluster>/flow/ content group (via an
// embedded TelemetryCollector, so scraping inherits manifest reuse,
// staleness handling, and on-path caching) and rebuilds a fleet-wide
// view: per-link byte counters and utilization, CS-hit vs upstream
// split, per-tenant byte shares, and the Space-Saving top-k talkers
// each FlowAccountant exported.
//
// Read-only closes the loop into the alert plane: valueSource() feeds
// an AlertEngine (sustained link saturation, single-tenant link
// dominance), and links crossing the warn thresholds at scrape time
// drop flight-recorder events so fired alerts carry a non-empty
// post-mortem window.
//
// Everything downstream of a deterministic simulation stays
// deterministic: weathermapJson(), topTalkers(), and explainLink()
// render sorted views with fixed number formatting, so per-seed output
// is byte-identical (the determinism test keys on this).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/flow.hpp"
#include "telemetry/monitor.hpp"

namespace lidc::telemetry {

/// One reported heavy hitter on a link, identity recovered from the
/// exported lidc_flow_topk_bytes labels.
struct TopTalker {
  int rank = 0;
  std::string group = "-";
  std::string tenant = "-";
  std::string tag = "-";
  std::uint64_t bytes = 0;
};

/// One link's scraped state.
struct LinkView {
  std::string cluster;
  std::string link;
  std::uint64_t interests = 0;
  std::uint64_t dataPackets = 0;
  std::uint64_t nacks = 0;
  std::uint64_t bytes = 0;
  std::uint64_t csBytes = 0;
  std::uint64_t upstreamBytes = 0;
  double capacityBits = 0;
  double utilization = 0;
  double dominantShare = 0;
  std::map<std::string, std::uint64_t> tenantBytes;
  std::vector<TopTalker> talkers;  // rank order
};

struct WeathermapOptions {
  /// Embedded collector configuration; `group` is forced to "flow".
  TelemetryCollectorOptions collector;
  /// Utilization above this drops a flight-recorder event at scrape
  /// time (and is the natural threshold for a saturation alert rule).
  double saturationWarn = 0.8;
  /// Dominant-tenant share above this drops a flight-recorder event.
  double dominanceWarn = 0.5;
};

class Weathermap {
 public:
  /// Attaches to the ops host's forwarder.
  explicit Weathermap(ndn::Forwarder& forwarder, WeathermapOptions options = {});

  void watchCluster(const std::string& cluster);
  void scrapeOnce(std::function<void()> done = nullptr);
  void start();
  void stop();

  /// Hot-link events (saturation / dominance threshold crossings at
  /// scrape time) land here, so alert windows are non-empty.
  void setFlightRecorder(FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

  /// Current fleet view, rebuilt from the collector's scraped values:
  /// cluster -> link URI -> view. Deterministically ordered.
  [[nodiscard]] std::map<std::string, std::map<std::string, LinkView>> links()
      const;

  /// Top-k talkers on one link (searched across clusters), rank order.
  [[nodiscard]] std::vector<TopTalker> topTalkers(const std::string& link) const;

  /// The whole fleet as stable JSON (sorted keys, fixed formatting).
  [[nodiscard]] std::string weathermapJson() const;

  /// Ascii post-mortem for one link, mirroring Tracer::explain(jobId):
  /// counters, CS/upstream split, utilization, dominance, top talkers.
  [[nodiscard]] std::string explainLink(const std::string& link) const;

  /// AlertEngine value source: everything collectorValueSource()
  /// exposes ("<cluster>/<series>") plus fleet aggregates
  /// "fleet/max_utilization", "fleet/max_dominant_share", and
  /// "fleet/hot_links" (count of links over saturationWarn).
  [[nodiscard]] AlertEngine::ValueSource valueSource() const;

  [[nodiscard]] TelemetryCollector& collector() noexcept { return collector_; }
  [[nodiscard]] const TelemetryCollector& collector() const noexcept {
    return collector_;
  }
  [[nodiscard]] const WeathermapOptions& options() const noexcept {
    return options_;
  }

 private:
  /// Rebuilds one cluster's link views from its scraped series.
  [[nodiscard]] std::map<std::string, LinkView> buildCluster(
      const std::string& cluster) const;
  /// Per-cluster staged-bytes ledger (lidc_flow_staged_bytes_total).
  [[nodiscard]] std::map<std::string, double> stagedSeries(
      const std::string& cluster) const;
  void afterScrape(const std::string& cluster);

  WeathermapOptions options_;
  TelemetryCollector collector_;
  FlightRecorder* recorder_ = nullptr;
};

/// Parses a flat series key back into (metric name, labels):
/// `lidc_link_bytes_total{link="link://a->b"}` ->
/// {"lidc_link_bytes_total", {{"link","link://a->b"}}}. Series without
/// labels come back with an empty map; malformed label text yields the
/// parseable prefix. Exposed for tests.
[[nodiscard]] std::pair<std::string, std::map<std::string, std::string>>
parseSeriesKey(const std::string& series);

}  // namespace lidc::telemetry
