#include "telemetry/anomaly.hpp"

#include <cmath>

namespace lidc::telemetry {

AnomalyPoint EwmaDetector::observe(double value) noexcept {
  AnomalyPoint point;
  point.value = value;
  if (!std::isfinite(value)) {
    // Garbage in the series (a scrape glitch) is ignored, not scored.
    return point;
  }

  if (samples_ == 0) {
    mean_ = value;
    variance_ = 0.0;
    samples_ = 1;
    point.mean = value;
    point.stddev = options_.minStdDev;
    return point;
  }

  point.mean = mean_;
  point.stddev = std::max(options_.minStdDev, std::sqrt(variance_));
  point.z = (value - mean_) / point.stddev;
  if (samples_ >= options_.warmupSamples) {
    const bool high = options_.flagHigh && point.z >= options_.zThreshold;
    const bool low = options_.flagLow && point.z <= -options_.zThreshold;
    point.anomalous = high || low;
  }

  // Standard EWMA mean/variance update (West's incremental form).
  const double delta = value - mean_;
  mean_ += options_.alpha * delta;
  variance_ = (1.0 - options_.alpha) * (variance_ + options_.alpha * delta * delta);
  ++samples_;
  return point;
}

}  // namespace lidc::telemetry
