// Traffic observability plane, part 1 (see DESIGN.md §13): per-link
// flow accounting with heavy-hitter attribution.
//
// Three layers, costed separately:
//
//  * LinkFlowStats — the per-packet hot path. A face tap calls on*()
//    once per packet: a handful of relaxed atomic adds into lifetime
//    totals plus a time-bucketed ring (for trailing-window utilization).
//    Wait-free, no locks, no allocation; bench_flow_accounting holds it
//    to ~20ns/packet.
//  * FlowAccountant::attribute() — the per-Data attribution path. The
//    forwarder calls it when it sends Data downstream, with a FlowKey
//    (prefix-group, tenant, workflow/dataset tag) extracted from the
//    name and the FlowLabel carried alongside the Interest. Updates a
//    Space-Saving top-k (Count-Min backed) per link, so top-talker
//    queries are O(k) memory regardless of name cardinality. Mutexed —
//    it runs once per Data forwarded, not per packet event.
//  * Export — toPrometheus() renders the lidc_link_* / lidc_flow_*
//    families that the TelemetryPublisher serves as the
//    /ndn/k8s/telemetry/<cluster>/flow/ content group and the
//    Weathermap (weathermap.hpp) aggregates fleet-wide.
//
// This header sits *below* the NDN stack (lidc_telemetry), so nothing
// here may name ndn types: flow keys are extracted from raw name
// component bytes (std::string_view), and the FlowLabel rides packets
// the same way TraceContext does.
//
// Determinism: no wall clock, no unseeded hashing. Sketch hash seeds
// are fixed at construction, Space-Saving ties break on (count, key)
// order, and every export is sorted — per-seed runs produce
// byte-identical snapshots (the weathermap determinism test keys on
// this).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"
#include "telemetry/flow_label.hpp"
#include "telemetry/metrics.hpp"

namespace lidc::telemetry {

/// Attribution key for one flow: which namespace group the traffic
/// belongs to, which tenant drove it, and which workflow/dataset it
/// serves. Fields are sanitized (safe label charset, bounded length)
/// so hostile names cannot break the Prometheus exposition.
struct FlowKey {
  std::string group = "-";   // compute | data | submit | publish | ... | other
  std::string tenant = "-";  // "-" = unattributed
  std::string tag = "-";     // "-" = none

  [[nodiscard]] bool operator==(const FlowKey& o) const noexcept {
    return group == o.group && tenant == o.tenant && tag == o.tag;
  }
  [[nodiscard]] bool operator<(const FlowKey& o) const noexcept {
    if (group != o.group) return group < o.group;
    if (tenant != o.tenant) return tenant < o.tenant;
    return tag < o.tag;
  }
  /// "group|tenant|tag" — the sketch key.
  [[nodiscard]] std::string toString() const;
  /// Inverse of toString(); missing fields come back as "-".
  static FlowKey fromString(std::string_view s);
};

/// Keeps [A-Za-z0-9._=&:/-], replaces everything else with '_', and
/// caps the result at kMaxFlowComponent bytes. Empty input -> "-".
/// This is the defense line between hostile name bytes and the
/// Prometheus/JSON exports (see the flow-key fuzz test).
inline constexpr std::size_t kMaxFlowComponent = 48;
[[nodiscard]] std::string sanitizeFlowComponent(std::string_view raw);

/// Builds the FlowKey for a packet from its raw name component bytes
/// plus the FlowLabel it carried. Group is name component [2] of
/// /ndn/k8s/<group>/...; tenant prefers the label, falling back to the
/// submit-name tenant component or a "tenant=<t>" component; tag comes
/// from the label. Total function: any byte soup yields a sane key.
[[nodiscard]] FlowKey extractFlowKey(const std::string_view* components,
                                     std::size_t count,
                                     const FlowLabel& label);

inline FlowKey extractFlowKey(const std::vector<std::string_view>& components,
                              const FlowLabel& label) {
  return extractFlowKey(components.data(), components.size(), label);
}

/// Count-Min sketch: conservative frequency estimates over an
/// unbounded key space in O(width * depth) memory. Overestimates only:
/// estimate(k) >= true count, and with width w and depth d the excess
/// is <= 2N/w with probability 1 - 2^-d (N = total count). Hash seeds
/// are fixed per instance, so estimates are deterministic.
class CountMinSketch {
 public:
  explicit CountMinSketch(std::size_t width = 512, std::size_t depth = 4,
                          std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  void add(std::string_view key, std::uint64_t n) noexcept;
  [[nodiscard]] std::uint64_t estimate(std::string_view key) const noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t depth() const noexcept { return rows_.size() / width_; }

 private:
  [[nodiscard]] std::size_t cell(std::size_t row, std::string_view key) const noexcept;

  std::size_t width_;
  std::vector<std::uint64_t> rows_;   // depth * width, row-major
  std::vector<std::uint64_t> seeds_;  // one per row
  std::uint64_t total_ = 0;
};

/// One reported heavy hitter. `count` is the Space-Saving estimate;
/// `error` bounds the overestimate (true count is in
/// [count - error, count]).
struct TopKEntry {
  std::string key;
  std::uint64_t count = 0;
  std::uint64_t error = 0;
};

/// Space-Saving top-k (Metwally et al.): k monitored entries; an
/// unmonitored arrival evicts the current minimum, inheriting its
/// count as error. A Count-Min backing sketch gates evictions — an
/// arrival whose estimated frequency cannot beat the minimum leaves
/// the monitored set alone, which keeps one-off keys (hostile name
/// soup) from churning real heavy hitters out.
///
/// Deterministic: eviction picks the (smallest count, lexicographically
/// smallest key) entry; top() sorts by (count desc, key asc).
class SpaceSaving {
 public:
  explicit SpaceSaving(std::size_t k, std::size_t sketchWidth = 512,
                       std::size_t sketchDepth = 4);

  void add(const std::string& key, std::uint64_t n) noexcept;
  [[nodiscard]] std::vector<TopKEntry> top() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return k_; }
  [[nodiscard]] const CountMinSketch& sketch() const noexcept { return cms_; }

 private:
  struct Slot {
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };

  std::size_t k_;
  std::map<std::string, Slot> slots_;  // ordered: deterministic min scan
  CountMinSketch cms_;
};

/// Per-link counters. The on*() methods are the wait-free hot path: a
/// few relaxed adds into lifetime totals plus one time bucket of a
/// ring (bucket reset is a CAS on the bucket's epoch — losers see the
/// winner's store and just add). Readers (utilization) only consult
/// buckets whose epoch proves they belong to the trailing window.
class LinkFlowStats {
 public:
  static constexpr std::size_t kBuckets = 8;

  LinkFlowStats(sim::Simulator& sim, std::uint64_t bucketWidthNs);
  LinkFlowStats(const LinkFlowStats&) = delete;
  LinkFlowStats& operator=(const LinkFlowStats&) = delete;

#if defined(LIDC_TELEMETRY_DISABLED)
  void onInterest(std::uint64_t) noexcept {}
  void onData(std::uint64_t) noexcept {}
  void onNack() noexcept {}
  void onCsBytes(std::uint64_t) noexcept {}
  void onUpstreamBytes(std::uint64_t) noexcept {}
#else
  void onInterest(std::uint64_t wireBytes) noexcept {
    interests_.fetch_add(1, std::memory_order_relaxed);
    addBytes(wireBytes);
  }
  void onData(std::uint64_t wireBytes) noexcept {
    data_.fetch_add(1, std::memory_order_relaxed);
    addBytes(wireBytes);
  }
  void onNack() noexcept { nacks_.fetch_add(1, std::memory_order_relaxed); }
  /// CS-vs-upstream byte split, fed by the forwarder (only it knows
  /// where a Data came from), not by the face tap.
  void onCsBytes(std::uint64_t bytes) noexcept {
    cs_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void onUpstreamBytes(std::uint64_t bytes) noexcept {
    upstream_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
#endif

  [[nodiscard]] std::uint64_t interests() const noexcept {
    return interests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dataPackets() const noexcept {
    return data_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t nacks() const noexcept {
    return nacks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t csBytes() const noexcept {
    return cs_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t upstreamBytes() const noexcept {
    return upstream_bytes_.load(std::memory_order_relaxed);
  }

  /// Bytes recorded in complete buckets of the trailing window (the
  /// in-progress bucket is excluded so utilization doesn't sawtooth).
  [[nodiscard]] std::uint64_t trailingWindowBytes() const noexcept;
  /// Length of that window in nanoseconds (shorter early in a run).
  [[nodiscard]] std::uint64_t trailingWindowNs() const noexcept;

 private:
  struct Bucket {
    std::atomic<std::uint64_t> epoch{kIdleEpoch};
    std::atomic<std::uint64_t> bytes{0};
  };
  static constexpr std::uint64_t kIdleEpoch = ~std::uint64_t{0};

  void addBytes(std::uint64_t wireBytes) noexcept;

  sim::Simulator& sim_;
  std::uint64_t bucket_width_ns_;
  Bucket ring_[kBuckets];
  std::atomic<std::uint64_t> interests_{0};
  std::atomic<std::uint64_t> data_{0};
  std::atomic<std::uint64_t> nacks_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> cs_bytes_{0};
  std::atomic<std::uint64_t> upstream_bytes_{0};
};

struct FlowAccountantOptions {
  /// Width of one utilization bucket; the trailing window spans
  /// (kBuckets - 1) complete buckets.
  sim::Duration bucketWidth = sim::Duration::seconds(1);
  /// Heavy-hitter slots per link.
  std::size_t topK = 8;
  /// Count-Min backing dimensions (error <= 2N/width w.p. 1 - 2^-depth).
  std::size_t sketchWidth = 512;
  std::size_t sketchDepth = 4;
};

/// The cluster-local flow ledger: one LinkFlowStats per registered
/// link (faces register by URI), per-link heavy-hitter sketches and
/// per-tenant byte shares, plus a "staged bytes" ledger that the
/// replica TransferScheduler reports through (the single path for
/// staging byte accounting — see the parity test). toPrometheus() is
/// the /ndn/k8s/telemetry/<cluster>/flow/ payload.
class FlowAccountant {
 public:
  explicit FlowAccountant(sim::Simulator& sim, FlowAccountantOptions options = {});

  /// Finds or creates the per-link stats; the pointer stays valid for
  /// the accountant's lifetime (faces keep it as their tap).
  LinkFlowStats* registerLink(const std::string& link);
  [[nodiscard]] LinkFlowStats* link(const std::string& link) noexcept;
  void setLinkCapacity(const std::string& link, double bitsPerSec);
  [[nodiscard]] std::vector<std::string> linkNames() const;

  /// Attribution path: `bytes` of Data for `key` crossed `link`
  /// (downstream). fromCache marks bytes served out of a Content
  /// Store instead of fetched upstream. No-op for unregistered links.
  void attribute(const std::string& link, const FlowKey& key,
                 std::uint64_t bytes, bool fromCache);

  /// Staged-transfer ledger (replica plane / workflow staging): bytes
  /// moved on behalf of `key`, deliberately *not* double-counted into
  /// any link (the underlying fetches already crossed instrumented
  /// faces).
  void recordTransfer(const FlowKey& key, std::uint64_t bytes);
  [[nodiscard]] std::uint64_t stagedBytes() const;
  [[nodiscard]] std::uint64_t stagedBytes(const std::string& tenant) const;
  /// Copy of the staged-transfer ledger (the byte-parity test compares
  /// a scheduler's bytesMoved() against the "staging" group here).
  [[nodiscard]] std::map<FlowKey, std::uint64_t> stagedLedger() const;

  /// Trailing-window link utilization in [0, inf): bytes * 8 over
  /// window seconds * capacity. 0 when capacity is unknown.
  [[nodiscard]] double utilization(const std::string& link) const;
  /// Largest single-tenant share of attributed bytes on the link, in
  /// [0, 1]; 0 when nothing is attributed.
  [[nodiscard]] double dominantShare(const std::string& link) const;
  /// Tenant with that largest share ("-" when nothing is attributed).
  [[nodiscard]] std::string dominantTenant(const std::string& link) const;

  /// Top-k talkers on one link, by attributed bytes (deterministic
  /// order: count desc, key asc).
  [[nodiscard]] std::vector<TopKEntry> topTalkers(const std::string& link) const;

  /// The lidc_link_* / lidc_flow_* families in Prometheus exposition
  /// format, sorted, for the "flow" content group.
  [[nodiscard]] std::string toPrometheus() const;
  /// Bumped by every attribute()/recordTransfer(); the content group's
  /// revision function, so idle clusters re-serve the same sequence.
  [[nodiscard]] std::uint64_t revision() const noexcept {
    return revision_.load(std::memory_order_relaxed);
  }

  /// Mirrors the fixed-cardinality lidc_link_* families into
  /// `registry` via a collector callback (runs at snapshot time; the
  /// hot path is untouched).
  void attachTelemetry(MetricsRegistry& registry);

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] const FlowAccountantOptions& options() const noexcept {
    return options_;
  }

 private:
  struct LinkEntry {
    std::unique_ptr<LinkFlowStats> stats;
    double capacityBits = 0;
    std::unique_ptr<SpaceSaving> talkers;
    std::map<std::string, std::uint64_t> tenantBytes;
    std::uint64_t attributedBytes = 0;
  };

  [[nodiscard]] const LinkEntry* find(const std::string& link) const;

  sim::Simulator& sim_;
  FlowAccountantOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, LinkEntry> links_;
  // (tenant, group, tag) -> staged bytes, from recordTransfer().
  std::map<FlowKey, std::uint64_t> staged_;
  std::uint64_t staged_total_ = 0;
  std::atomic<std::uint64_t> revision_{0};
};

}  // namespace lidc::telemetry
