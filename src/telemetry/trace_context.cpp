#include "telemetry/trace_context.hpp"

#include <cstdio>

namespace lidc::telemetry {

std::string traceIdToString(TraceId id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(id));
  return buf;
}

}  // namespace lidc::telemetry
