// FlowLabel lives in its own header so ndn/packet.hpp (which every
// packet user includes) can carry one without pulling in the whole
// flow-accounting plane (sketches, simulator, registry).
#pragma once

#include <string>

namespace lidc::telemetry {

/// Flow label carried alongside an Interest, like TraceContext: not
/// part of the name, the wire encoding, or CS/PIT matching, so
/// attribution never perturbs forwarding. Clients stamp it at the
/// edge (tenant from ClientOptions, tag from the workflow/dataset);
/// forwarders copy it downstream with the packet.
struct FlowLabel {
  std::string tenant;  // "" = unattributed
  std::string tag;     // workflow/dataset tag, "" = none
  [[nodiscard]] bool empty() const noexcept {
    return tenant.empty() && tag.empty();
  }
};

}  // namespace lidc::telemetry
