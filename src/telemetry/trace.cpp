#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace lidc::telemetry {

Span& Tracer::emplaceLocked(const std::string& name, const std::string& component,
                            TraceId trace, SpanId parent, SpanAttrs attrs) {
  Span span;
  span.id = nextSpan_++;
  span.parent = parent;
  span.trace = trace;
  span.name = name;
  span.component = component;
  span.start = sim_.now();
  span.end = sim_.now();
  span.attrs = std::move(attrs);
  spanIndex_[span.id] = spans_.size();
  spans_.push_back(std::move(span));
  return spans_.back();
}

TraceContext Tracer::startTrace(const std::string& name,
                                const std::string& component, SpanAttrs attrs) {
  std::lock_guard<std::mutex> lock(mutex_);
  const TraceId trace = nextTrace_++;
  Span& span = emplaceLocked(name, component, trace, 0, std::move(attrs));
  span.open = true;
  return {trace, span.id};
}

TraceContext Tracer::startSpan(const std::string& name,
                               const std::string& component, TraceContext parent,
                               SpanAttrs attrs) {
  if (!parent) return {};
  std::lock_guard<std::mutex> lock(mutex_);
  Span& span = emplaceLocked(name, component, parent.trace, parent.span,
                             std::move(attrs));
  span.open = true;
  return {parent.trace, span.id};
}

void Tracer::endSpan(TraceContext ctx) {
  if (!ctx) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = spanIndex_.find(ctx.span);
  if (it == spanIndex_.end()) return;
  Span& span = spans_[it->second];
  if (!span.open) return;
  span.end = sim_.now();
  span.open = false;
}

void Tracer::setAttr(TraceContext ctx, const std::string& key,
                     const std::string& value) {
  if (!ctx) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = spanIndex_.find(ctx.span);
  if (it == spanIndex_.end()) return;
  spans_[it->second].attrs.emplace_back(key, value);
}

TraceContext Tracer::instant(const std::string& name, const std::string& component,
                             TraceContext parent, SpanAttrs attrs) {
  if (!parent) return {};
  std::lock_guard<std::mutex> lock(mutex_);
  Span& span = emplaceLocked(name, component, parent.trace, parent.span,
                             std::move(attrs));
  return {parent.trace, span.id};
}

TraceContext Tracer::recordSpan(const std::string& name,
                                const std::string& component, TraceContext parent,
                                sim::Time start, sim::Time end, SpanAttrs attrs) {
  if (!parent) return {};
  std::lock_guard<std::mutex> lock(mutex_);
  Span& span = emplaceLocked(name, component, parent.trace, parent.span,
                             std::move(attrs));
  span.start = start;
  span.end = end;
  return {parent.trace, span.id};
}

void Tracer::bindJob(const std::string& jobId, TraceId trace) {
  std::lock_guard<std::mutex> lock(mutex_);
  jobTraces_[jobId] = trace;
}

std::optional<TraceId> Tracer::traceForJob(const std::string& jobId) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobTraces_.find(jobId);
  if (it == jobTraces_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> Tracer::boundJobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> jobs;
  jobs.reserve(jobTraces_.size());
  for (const auto& [jobId, trace] : jobTraces_) jobs.push_back(jobId);
  return jobs;
}

std::size_t Tracer::spanCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::vector<Span> Tracer::spansForTrace(TraceId trace) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Span> out;
  for (const auto& span : spans_)
    if (span.trace == trace) out.push_back(span);
  return out;
}

std::vector<Span> Tracer::allSpans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

namespace {

std::string formatTime(sim::Time t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6fs", t.toSeconds());
  return buf;
}

std::string formatDuration(sim::Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6fs", d.toSeconds());
  return buf;
}

void renderTree(std::ostringstream& os, const std::vector<Span>& spans,
                const std::multimap<SpanId, std::size_t>& children, SpanId node,
                const std::string& indent) {
  auto [lo, hi] = children.equal_range(node);
  std::vector<std::size_t> kids;
  for (auto it = lo; it != hi; ++it) kids.push_back(it->second);
  std::sort(kids.begin(), kids.end(), [&](std::size_t a, std::size_t b) {
    if (spans[a].start != spans[b].start) return spans[a].start < spans[b].start;
    return spans[a].id < spans[b].id;
  });
  for (std::size_t i = 0; i < kids.size(); ++i) {
    const Span& span = spans[kids[i]];
    const bool last = i + 1 == kids.size();
    os << indent << (last ? "└─ " : "├─ ") << span.name << " ["
       << span.component << "] ";
    if (span.open) {
      os << formatTime(span.start) << " (open)";
    } else if (span.duration() == sim::Duration{}) {
      os << '@' << formatTime(span.start);
    } else {
      os << formatTime(span.start) << " +" << formatDuration(span.duration());
    }
    for (const auto& [k, v] : span.attrs) os << ' ' << k << '=' << v;
    os << '\n';
    renderTree(os, spans, children, span.id,
               indent + (last ? "   " : "│  "));
  }
}

}  // namespace

std::string Tracer::explainTrace(TraceId trace) const {
  const auto spans = spansForTrace(trace);
  if (spans.empty()) {
    return "trace " + traceIdToString(trace) + ": no spans recorded\n";
  }
  sim::Time lo = spans.front().start;
  sim::Time hi = spans.front().end;
  for (const auto& span : spans) {
    lo = std::min(lo, span.start);
    hi = std::max(hi, span.end);
  }
  std::ostringstream os;
  os << "trace " << traceIdToString(trace) << " spans=" << spans.size()
     << " span=" << formatTime(lo) << ".." << formatTime(hi) << " ("
     << formatDuration(hi - lo) << ")\n";
  std::multimap<SpanId, std::size_t> children;
  std::unordered_map<SpanId, bool> present;
  for (const auto& span : spans) present[span.id] = true;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    // Spans whose parent is unknown (or 0) render at the root level.
    const SpanId parent = present.count(spans[i].parent) ? spans[i].parent : 0;
    children.emplace(parent, i);
  }
  renderTree(os, spans, children, 0, "");
  return os.str();
}

std::string Tracer::explain(const std::string& jobId) const {
  const auto trace = traceForJob(jobId);
  if (!trace) return "job " + jobId + ": no trace bound\n";
  return "job " + jobId + " " + explainTrace(*trace);
}

std::string Tracer::chromeTraceJson() const {
  const auto spans = allSpans();
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& span : spans) {
    if (!first) os << ',';
    first = false;
    const double ts = static_cast<double>(span.start.toNanos()) / 1e3;
    const double dur =
        static_cast<double>((span.end - span.start).toNanos()) / 1e3;
    os << "{\"name\":\"" << span.name << "\",\"cat\":\"" << span.component
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << span.trace << ",\"ts\":" << ts
       << ",\"dur\":" << dur << ",\"args\":{\"span\":" << span.id
       << ",\"parent\":" << span.parent;
    for (const auto& [k, v] : span.attrs) {
      os << ",\"" << k << "\":\"" << v << '"';
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  spanIndex_.clear();
  jobTraces_.clear();
  nextTrace_ = 1;
  nextSpan_ = 1;
}

}  // namespace lidc::telemetry
