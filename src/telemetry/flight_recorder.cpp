#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace lidc::telemetry {

namespace {

/// Which recorder currently owns the global log sink. A second
/// captureLogs() steals it; releaseLogs() only removes its own.
std::atomic<FlightRecorder*> g_log_owner{nullptr};

constexpr std::string_view levelName(log::Level level) noexcept {
  switch (level) {
    case log::Level::kTrace:
      return "TRACE";
    case log::Level::kDebug:
      return "DEBUG";
    case log::Level::kInfo:
      return "INFO";
    case log::Level::kWarn:
      return "WARN";
    case log::Level::kError:
      return "ERROR";
    case log::Level::kOff:
      return "OFF";
  }
  return "?";
}

void copyTruncated(char* dst, std::size_t cap, std::string_view src) {
  const std::size_t n = std::min(cap, src.size());
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

FlightRecorder::FlightRecorder(sim::Simulator& sim, std::size_t capacity)
    : sim_(sim),
      capacity_(std::max<std::size_t>(1, capacity)),
      slots_(std::make_unique<Slot[]>(std::max<std::size_t>(1, capacity))) {}

FlightRecorder::~FlightRecorder() { releaseLogs(); }

#if !defined(LIDC_TELEMETRY_DISABLED)

void FlightRecorder::record(std::string_view component, log::Level severity,
                            std::string_view message) noexcept {
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % capacity_];
  slot.state.store(2 * seq + 1, std::memory_order_release);
  slot.atNanos = sim_.now().toNanos();
  slot.severity = severity;
  copyTruncated(slot.component, kMaxComponent, component);
  copyTruncated(slot.message, kMaxMessage, message);
  slot.state.store(2 * seq + 2, std::memory_order_release);
}

void FlightRecorder::captureLogs(log::Level minLevel) {
  g_log_owner.store(this, std::memory_order_relaxed);
  capturing_ = true;
  log::setSink([this, minLevel](log::Level level, std::string_view component,
                                std::string_view message) {
    if (level >= minLevel) record(component, level, message);
  });
}

#endif  // !LIDC_TELEMETRY_DISABLED

void FlightRecorder::releaseLogs() noexcept {
  if (!capturing_) return;
  capturing_ = false;
  FlightRecorder* expected = this;
  if (g_log_owner.compare_exchange_strong(expected, nullptr,
                                          std::memory_order_relaxed)) {
    log::setSink(nullptr);
  }
}

std::vector<FlightEvent> FlightRecorder::lastN(std::size_t n) const {
  const std::uint64_t total = next_.load(std::memory_order_acquire);
  const std::uint64_t available =
      std::min<std::uint64_t>(total, static_cast<std::uint64_t>(capacity_));
  const std::uint64_t want = std::min<std::uint64_t>(n, available);

  std::vector<FlightEvent> events;
  events.reserve(want);
  // Newest first, then reversed into chronological order. Slots whose
  // tag changed mid-copy (a concurrent writer lapped us) are skipped.
  for (std::uint64_t back = 0; back < want; ++back) {
    const std::uint64_t seq = total - 1 - back;
    const Slot& slot = slots_[seq % capacity_];
    const std::uint64_t expected = 2 * seq + 2;
    if (slot.state.load(std::memory_order_acquire) != expected) continue;
    FlightEvent event;
    event.at = sim::Time::fromNanos(slot.atNanos);
    event.severity = slot.severity;
    event.component = slot.component;
    event.message = slot.message;
    if (slot.state.load(std::memory_order_acquire) != expected) continue;
    events.push_back(std::move(event));
  }
  std::reverse(events.begin(), events.end());
  return events;
}

std::string FlightRecorder::render(const std::vector<FlightEvent>& events) {
  std::string out;
  char head[64];
  for (const FlightEvent& event : events) {
    const std::string_view level = levelName(event.severity);
    std::snprintf(head, sizeof(head), "t=%.6fs %.*s ",
                  static_cast<double>(event.at.toNanos()) / 1e9,
                  static_cast<int>(level.size()), level.data());
    out += head;
    out += event.component;
    out += ": ";
    out += event.message;
    out += '\n';
  }
  return out;
}

}  // namespace lidc::telemetry
