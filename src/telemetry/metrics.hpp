// MetricsRegistry: the unified metrics layer every LIDC component
// reports through. Three instrument kinds — monotonic Counters, Gauges,
// and log2-bucketed Histograms with p50/p90/p99 — grouped into labeled
// families (e.g. lidc_forwarder_in_interests{node="gw-east"}).
//
// Hot-path discipline: handles returned by counter()/gauge()/histogram()
// are stable for the registry's lifetime, and incrementing one is a
// single relaxed atomic add — no lock, no lookup. Registration and
// snapshotting take a mutex; components that keep legacy counter
// structs can instead register a *collector* callback that syncs those
// values into registry instruments right before each snapshot/export.
//
// Exporters: toJson() (machine-readable, stable ordering) and
// toPrometheus() (text exposition format; histograms as summaries).
// The /ndn/k8s/telemetry monitoring plane publishes the Prometheus
// form, and parsePrometheusText() turns it back into a flat value map
// on the collector side.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace lidc::telemetry {

/// Sorted key=value pairs identifying one member of a metric family.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. inc() is the hot path: one relaxed atomic add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Absolute sync, used by collector callbacks mirroring legacy
  /// counter structs at snapshot time.
  void set(std::uint64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Compiled-in no-op drop-in for Counter: every call is an empty inline
/// the optimizer deletes. bench_telemetry uses it to measure the cost
/// of instrumentation against a build with telemetry compiled out.
struct NoopCounter {
  void inc(std::uint64_t = 1) noexcept {}
  void set(std::uint64_t) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
};

/// Point-in-time value (queue depth, free cores, health fraction).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed histogram: bucket 0 holds [0,1), bucket i>=1 holds
/// [2^(i-1), 2^i). Observing is two relaxed adds plus a CAS-add on the
/// sum; quantiles are approximated by the midpoint of the bucket where
/// the cumulative count crosses q. Choose the unit so interesting
/// values land above 1 (e.g. microseconds for latencies).
class Histogram {
 public:
  static constexpr int kBucketCount = 64;

  /// `exemplarTrace` (optional) attaches an exemplar: when the sample
  /// lands in the highest populated bucket so far — the tail bucket the
  /// p99 estimate reads from — its trace id and value are captured, so
  /// a "p99 regressed" alert links straight to a concrete slow trace.
  void observe(double v, std::uint64_t exemplarTrace = 0) noexcept {
    const int bucket = bucketFor(v);
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
    if (exemplarTrace != 0 &&
        bucket >= exemplar_bucket_.load(std::memory_order_relaxed)) {
      exemplar_bucket_.store(bucket, std::memory_order_relaxed);
      exemplar_value_.store(v, std::memory_order_relaxed);
      exemplar_trace_.store(exemplarTrace, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  /// Approximate quantile in [0,1]; 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Trace id of the captured tail exemplar (0 = none captured).
  [[nodiscard]] std::uint64_t exemplarTrace() const noexcept {
    return exemplar_trace_.load(std::memory_order_relaxed);
  }
  /// Observed value of the captured tail exemplar.
  [[nodiscard]] double exemplarValue() const noexcept {
    return exemplar_value_.load(std::memory_order_relaxed);
  }

  static int bucketFor(double v) noexcept;
  /// [lower, upper) bounds of one bucket.
  static std::pair<double, double> bucketBounds(int bucket) noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<int> exemplar_bucket_{-1};
  std::atomic<std::uint64_t> exemplar_trace_{0};
  std::atomic<double> exemplar_value_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One exported metric value (histograms carry their summary stats).
struct MetricSnapshot {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0;  // counter/gauge value; histogram mean
  // Histogram-only fields.
  std::uint64_t count = 0;
  double sum = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  /// Tail exemplar (0 = the histogram never captured one).
  std::uint64_t exemplarTrace = 0;
  double exemplarValue = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the instrument; the reference stays valid for the
  /// registry's lifetime. Labels are sorted internally, so label order
  /// does not create distinct series.
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  Histogram& histogram(const std::string& name, Labels labels = {});

  /// Registers a callback run before every snapshot()/export, letting
  /// components sync legacy counter structs into registry instruments
  /// without touching their hot paths.
  void registerCollector(std::function<void()> collect);

  /// Runs collectors, then returns every metric whose name starts with
  /// `prefix` (empty = all), ordered by (name, labels).
  [[nodiscard]] std::vector<MetricSnapshot> snapshot(const std::string& prefix = "");

  /// {"metrics":[{"name":...,"labels":{...},"kind":...,"value":...},...]}
  [[nodiscard]] std::string toJson(const std::string& prefix = "");
  /// Prometheus text exposition format (histograms as summaries).
  [[nodiscard]] std::string toPrometheus(const std::string& prefix = "");
  /// Convenience: toPrometheus() parsed back into {series -> value},
  /// the same view a TelemetryCollector builds from scraped Data.
  [[nodiscard]] std::map<std::string, double> flatten(const std::string& prefix = "");

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    MetricKind kind;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& findOrCreate(const std::string& name, Labels labels, MetricKind kind);
  void runCollectors();

  mutable std::mutex mutex_;
  // (name, serialized labels) -> instrument; ordered for stable exports.
  std::map<std::pair<std::string, std::string>, Entry> entries_;
  std::vector<std::function<void()>> collectors_;
};

/// Serializes labels as `k1="v1",k2="v2"` (sorted), "" when empty.
std::string labelString(const Labels& labels);

/// Parses Prometheus text back into {"name{labels}" or "name" -> value}.
/// Comment lines are skipped; malformed lines are ignored.
std::map<std::string, double> parsePrometheusText(const std::string& text);

}  // namespace lidc::telemetry
