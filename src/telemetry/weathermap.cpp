#include "telemetry/weathermap.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace lidc::telemetry {

namespace {

/// Fixed-width double formatting so rendered views are byte-stable.
std::string fmt3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back('_');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::uint64_t asCount(double v) {
  return v <= 0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

}  // namespace

std::pair<std::string, std::map<std::string, std::string>> parseSeriesKey(
    const std::string& series) {
  const std::size_t brace = series.find('{');
  if (brace == std::string::npos) return {series, {}};
  std::pair<std::string, std::map<std::string, std::string>> out{
      series.substr(0, brace), {}};
  std::size_t i = brace + 1;
  while (i < series.size() && series[i] != '}') {
    const std::size_t eq = series.find('=', i);
    if (eq == std::string::npos || eq + 1 >= series.size() ||
        series[eq + 1] != '"') {
      break;
    }
    const std::size_t close = series.find('"', eq + 2);
    if (close == std::string::npos) break;
    out.second[series.substr(i, eq - i)] = series.substr(eq + 2, close - eq - 2);
    i = close + 1;
    if (i < series.size() && series[i] == ',') ++i;
  }
  return out;
}

Weathermap::Weathermap(ndn::Forwarder& forwarder, WeathermapOptions options)
    : options_(std::move(options)),
      collector_(forwarder,
                 [&] {
                   TelemetryCollectorOptions c = options_.collector;
                   c.group = "flow";
                   return c;
                 }()) {
  // Scrape settlements drive the hot-link flight-recorder events.
  collector_.setHealthListener(
      [this](const std::string& cluster, double) { afterScrape(cluster); });
}

void Weathermap::watchCluster(const std::string& cluster) {
  collector_.watchCluster(cluster);
}

void Weathermap::scrapeOnce(std::function<void()> done) {
  collector_.scrapeOnce(std::move(done));
}

void Weathermap::start() { collector_.start(); }
void Weathermap::stop() { collector_.stop(); }

std::map<std::string, LinkView> Weathermap::buildCluster(
    const std::string& cluster) const {
  std::map<std::string, LinkView> links;
  const TelemetryCollector::ClusterView* view = collector_.view(cluster);
  if (view == nullptr) return links;
  for (const auto& [series, value] : view->values) {
    const auto [name, labels] = parseSeriesKey(series);
    const auto linkIt = labels.find("link");
    if (linkIt == labels.end()) continue;
    LinkView& lv = links[linkIt->second];
    lv.cluster = cluster;
    lv.link = linkIt->second;
    if (name == "lidc_link_interests_total") {
      lv.interests = asCount(value);
    } else if (name == "lidc_link_data_total") {
      lv.dataPackets = asCount(value);
    } else if (name == "lidc_link_nacks_total") {
      lv.nacks = asCount(value);
    } else if (name == "lidc_link_bytes_total") {
      lv.bytes = asCount(value);
    } else if (name == "lidc_link_cs_bytes_total") {
      lv.csBytes = asCount(value);
    } else if (name == "lidc_link_upstream_bytes_total") {
      lv.upstreamBytes = asCount(value);
    } else if (name == "lidc_link_capacity_bits_per_sec") {
      lv.capacityBits = value;
    } else if (name == "lidc_link_utilization") {
      lv.utilization = value;
    } else if (name == "lidc_link_dominant_share") {
      lv.dominantShare = value;
    } else if (name == "lidc_flow_tenant_bytes_total") {
      if (const auto t = labels.find("tenant"); t != labels.end()) {
        lv.tenantBytes[t->second] = asCount(value);
      }
    } else if (name == "lidc_flow_topk_bytes") {
      TopTalker talker;
      if (const auto l = labels.find("rank"); l != labels.end()) {
        talker.rank = std::atoi(l->second.c_str());
      }
      if (const auto l = labels.find("group"); l != labels.end()) {
        talker.group = l->second;
      }
      if (const auto l = labels.find("tenant"); l != labels.end()) {
        talker.tenant = l->second;
      }
      if (const auto l = labels.find("tag"); l != labels.end()) {
        talker.tag = l->second;
      }
      talker.bytes = asCount(value);
      lv.talkers.push_back(talker);
    }
  }
  for (auto& [link, lv] : links) {
    std::sort(lv.talkers.begin(), lv.talkers.end(),
              [](const TopTalker& a, const TopTalker& b) {
                return a.rank < b.rank;
              });
  }
  return links;
}

std::map<std::string, double> Weathermap::stagedSeries(
    const std::string& cluster) const {
  std::map<std::string, double> staged;
  const TelemetryCollector::ClusterView* view = collector_.view(cluster);
  if (view == nullptr) return staged;
  for (const auto& [series, value] : view->values) {
    const auto [name, labels] = parseSeriesKey(series);
    if (name != "lidc_flow_staged_bytes_total") continue;
    auto get = [&](const char* k) {
      const auto it = labels.find(k);
      return it == labels.end() ? std::string("-") : it->second;
    };
    staged[get("tenant") + "|" + get("group") + "|" + get("tag")] = value;
  }
  return staged;
}

std::map<std::string, std::map<std::string, LinkView>> Weathermap::links()
    const {
  std::map<std::string, std::map<std::string, LinkView>> out;
  for (const auto& cluster : collector_.watchedClusters()) {
    out[cluster] = buildCluster(cluster);
  }
  return out;
}

std::vector<TopTalker> Weathermap::topTalkers(const std::string& link) const {
  for (const auto& [cluster, links] : this->links()) {
    if (const auto it = links.find(link); it != links.end()) {
      return it->second.talkers;
    }
  }
  return {};
}

std::string Weathermap::weathermapJson() const {
  std::ostringstream out;
  out << "{\"clusters\":[";
  bool firstCluster = true;
  for (const auto& cluster : collector_.watchedClusters()) {
    if (!firstCluster) out << ',';
    firstCluster = false;
    out << "{\"cluster\":\"" << jsonEscape(cluster) << "\",\"stale\":"
        << (collector_.isStale(cluster) ? "true" : "false") << ",\"links\":[";
    bool firstLink = true;
    for (const auto& [link, lv] : buildCluster(cluster)) {
      if (!firstLink) out << ',';
      firstLink = false;
      out << "{\"link\":\"" << jsonEscape(link) << "\""
          << ",\"interests\":" << lv.interests
          << ",\"data\":" << lv.dataPackets << ",\"nacks\":" << lv.nacks
          << ",\"bytes\":" << lv.bytes << ",\"cs_bytes\":" << lv.csBytes
          << ",\"upstream_bytes\":" << lv.upstreamBytes
          << ",\"capacity_bits_per_sec\":" << fmt3(lv.capacityBits)
          << ",\"utilization\":" << fmt3(lv.utilization)
          << ",\"dominant_share\":" << fmt3(lv.dominantShare)
          << ",\"tenants\":{";
      bool firstTenant = true;
      for (const auto& [tenant, bytes] : lv.tenantBytes) {
        if (!firstTenant) out << ',';
        firstTenant = false;
        out << "\"" << jsonEscape(tenant) << "\":" << bytes;
      }
      out << "},\"top_talkers\":[";
      bool firstTalker = true;
      for (const auto& t : lv.talkers) {
        if (!firstTalker) out << ',';
        firstTalker = false;
        out << "{\"rank\":" << t.rank << ",\"group\":\"" << jsonEscape(t.group)
            << "\",\"tenant\":\"" << jsonEscape(t.tenant) << "\",\"tag\":\""
            << jsonEscape(t.tag) << "\",\"bytes\":" << t.bytes << "}";
      }
      out << "]}";
    }
    out << "],\"staged\":{";
    bool firstStaged = true;
    for (const auto& [key, bytes] : stagedSeries(cluster)) {
      if (!firstStaged) out << ',';
      firstStaged = false;
      out << "\"" << jsonEscape(key) << "\":" << asCount(bytes);
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

std::string Weathermap::explainLink(const std::string& link) const {
  for (const auto& cluster : collector_.watchedClusters()) {
    const auto links = buildCluster(cluster);
    const auto it = links.find(link);
    if (it == links.end()) continue;
    const LinkView& lv = it->second;
    std::ostringstream out;
    out << "link " << link << "\n";
    out << "  cluster " << cluster
        << (collector_.isStale(cluster) ? " (stale)" : " (fresh)") << "\n";
    out << "  interests " << lv.interests << "  data " << lv.dataPackets
        << "  nacks " << lv.nacks << "\n";
    out << "  bytes " << lv.bytes << " (cs " << lv.csBytes << ", upstream "
        << lv.upstreamBytes << ")\n";
    out << "  capacity_bits_per_sec " << fmt3(lv.capacityBits)
        << "  utilization " << fmt3(lv.utilization) << "\n";
    out << "  dominant_share " << fmt3(lv.dominantShare) << "\n";
    out << "  top talkers:\n";
    if (lv.talkers.empty()) out << "    (none attributed)\n";
    for (const auto& t : lv.talkers) {
      out << "    " << t.rank << ". group=" << t.group
          << " tenant=" << t.tenant << " tag=" << t.tag << " bytes=" << t.bytes
          << "\n";
    }
    out << "  tenants:";
    if (lv.tenantBytes.empty()) out << " (none)";
    for (const auto& [tenant, bytes] : lv.tenantBytes) {
      out << " " << tenant << "=" << bytes;
    }
    out << "\n";
    return out.str();
  }
  return "link " + link + "\n  (unknown link)\n";
}

AlertEngine::ValueSource Weathermap::valueSource() const {
  return [this] {
    std::map<std::string, double> out = collectorValueSource(collector_)();
    double maxUtil = 0;
    double maxShare = 0;
    double hot = 0;
    for (const auto& [cluster, links] : this->links()) {
      for (const auto& [link, lv] : links) {
        maxUtil = std::max(maxUtil, lv.utilization);
        maxShare = std::max(maxShare, lv.dominantShare);
        if (lv.utilization > options_.saturationWarn) ++hot;
      }
    }
    out["fleet/max_utilization"] = maxUtil;
    out["fleet/max_dominant_share"] = maxShare;
    out["fleet/hot_links"] = hot;
    return out;
  };
}

void Weathermap::afterScrape(const std::string& cluster) {
  if (recorder_ == nullptr) return;
  for (const auto& [link, lv] : buildCluster(cluster)) {
    if (lv.utilization > options_.saturationWarn) {
      LIDC_FR_EVENT(recorder_, kWarn, "weathermap",
                    cluster + " hot-link " + link +
                        " util=" + fmt3(lv.utilization));
    }
    if (lv.dominantShare > options_.dominanceWarn) {
      LIDC_FR_EVENT(recorder_, kWarn, "weathermap",
                    cluster + " dominated-link " + link + " tenant=" +
                        (lv.talkers.empty() ? std::string("-")
                                            : lv.talkers.front().tenant) +
                        " share=" + fmt3(lv.dominantShare));
    }
  }
}

}  // namespace lidc::telemetry
