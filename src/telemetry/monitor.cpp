#include "telemetry/monitor.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/strings.hpp"

namespace lidc::telemetry {

namespace {
constexpr const char* kLatestComponent = "_latest";
}

TelemetryPublisher::TelemetryPublisher(ndn::Forwarder& forwarder,
                                       MetricsRegistry& registry,
                                       std::string clusterName,
                                       TelemetryPublisherOptions options)
    : forwarder_(forwarder),
      registry_(registry),
      cluster_name_(std::move(clusterName)),
      options_(options) {
  groups_["all"] = Group{};
  ndn::Name prefix = kTelemetryPrefix;
  prefix.append(cluster_name_);
  face_ = std::make_shared<ndn::AppFace>("app://telemetry/" + cluster_name_,
                                         forwarder_.simulator());
  face_->setInterestHandler([this](const ndn::Interest& i) { handleInterest(i); });
  face_id_ = forwarder_.addFace(face_);
  forwarder_.registerPrefix(prefix, face_id_, /*cost=*/0);
}

void TelemetryPublisher::addGroup(const std::string& group,
                                  const std::string& metricPrefix) {
  groups_[group].metricPrefix = metricPrefix;
}

void TelemetryPublisher::addContentGroup(const std::string& group,
                                         std::function<std::string()> content,
                                         std::function<std::uint64_t()> revision) {
  Group& g = groups_[group];
  g.content = std::move(content);
  g.revision = std::move(revision);
}

void TelemetryPublisher::handleInterest(const ndn::Interest& interest) {
  // /ndn/k8s/telemetry/<cluster>/<group>/<_latest | seq>
  const ndn::Name& name = interest.name();
  if (name.size() != kTelemetryPrefix.size() + 3) {
    ++rejected_;
    face_->putNack(interest, ndn::NackReason::kNoRoute);
    return;
  }
  const std::string group = name[name.size() - 2].toString();
  const std::string selector = name[name.size() - 1].toString();
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    ++rejected_;
    face_->putNack(interest, ndn::NackReason::kNoRoute);
    return;
  }
  if (selector == kLatestComponent) {
    replyLatest(interest, it->second);
    return;
  }
  const auto seq = strings::parseUint(selector);
  if (!seq) {
    ++rejected_;
    face_->putNack(interest, ndn::NackReason::kNoRoute);
    return;
  }
  replySnapshot(interest, it->second, *seq);
}

void TelemetryPublisher::refreshGroup(Group& group) {
  const sim::Time now = forwarder_.simulator().now();
  if (group.seq != 0 && now - group.generatedAt < options_.snapshotInterval) {
    return;
  }
  if (group.content) {
    // Content group: a new sequence only when the provider's revision
    // moved, so collectors keep reusing the manifest while quiet.
    const std::uint64_t revision = group.revision ? group.revision() : 0;
    if (group.seq != 0 && revision == group.lastRevision) {
      group.generatedAt = now;
      return;
    }
    group.lastRevision = revision;
    ++group.seq;
    group.generatedAt = now;
    group.snapshots[group.seq] = group.content();
  } else {
    ++group.seq;
    group.generatedAt = now;
    group.snapshots[group.seq] = registry_.toPrometheus(group.metricPrefix);
  }
  ++snapshots_generated_;
  while (group.snapshots.size() > options_.retainedSnapshots) {
    group.snapshots.erase(group.snapshots.begin());
  }
}

void TelemetryPublisher::replyLatest(const ndn::Interest& interest, Group& group) {
  refreshGroup(group);
  ++served_;
  ndn::Data manifest(interest.name());
  manifest
      .setContent("seq=" + std::to_string(group.seq) + ";generated=" +
                  std::to_string(group.generatedAt.toNanos()))
      .setFreshnessPeriod(options_.manifestFreshness)
      .sign();
  face_->putData(std::move(manifest));
}

void TelemetryPublisher::replySnapshot(const ndn::Interest& interest, Group& group,
                                       std::uint64_t seq) {
  auto it = group.snapshots.find(seq);
  if (it == group.snapshots.end()) {
    ++rejected_;
    face_->putNack(interest, ndn::NackReason::kNoRoute);
    return;
  }
  ++served_;
  ndn::Data snapshot(interest.name());
  snapshot.setContent(it->second)
      .setFreshnessPeriod(options_.snapshotFreshness)
      .sign();
  face_->putData(std::move(snapshot));
}

TelemetryCollector::TelemetryCollector(ndn::Forwarder& forwarder,
                                       TelemetryCollectorOptions options)
    : forwarder_(forwarder), sim_(forwarder.simulator()), options_(options) {
  face_ = std::make_shared<ndn::AppFace>("app://telemetry-collector", sim_,
                                         /*nonceSeed=*/0x7e1e);
  face_id_ = forwarder_.addFace(face_);
}

void TelemetryCollector::watchCluster(const std::string& cluster) {
  if (std::find(watched_.begin(), watched_.end(), cluster) == watched_.end()) {
    watched_.push_back(cluster);
    views_[cluster];
  }
}

std::vector<std::string> TelemetryCollector::watchedClusters() const {
  return watched_;
}

ndn::Name TelemetryCollector::groupPrefix(const std::string& cluster) const {
  ndn::Name name = kTelemetryPrefix;
  name.append(cluster);
  name.append(options_.group);
  return name;
}

void TelemetryCollector::scrapeOnce(std::function<void()> done) {
  if (watched_.empty()) {
    if (done) done();
    return;
  }
  // Track completion across the fan-out; `done` fires after every
  // watched cluster has either succeeded or failed.
  auto remaining = std::make_shared<std::size_t>(watched_.size());
  auto onClusterDone = [remaining, done = std::move(done)]() {
    if (--*remaining == 0 && done) done();
  };
  for (const auto& cluster : watched_) {
    ++counters_.scrapesStarted;
    scrapeCluster(cluster, onClusterDone);
  }
}

void TelemetryCollector::scrapeCluster(const std::string& cluster,
                                       std::function<void()> done) {
  // Every terminal path reports the (possibly degraded) health score,
  // so a blackout is announced as soon as the scrape fails — the
  // steering loop must not wait for a hard job failure.
  auto finish = [this, cluster, done = std::move(done)] {
    notifyHealth(cluster);
    if (done) done();
  };
  ndn::Name latest = groupPrefix(cluster);
  latest.append(kLatestComponent);
  ndn::Interest interest(latest);
  interest.setMustBeFresh(true).setLifetime(options_.interestLifetime);
  face_->expressInterest(
      std::move(interest),
      [this, cluster, done = finish](const ndn::Interest&, const ndn::Data& data) {
        if (!data.verify()) {
          ++counters_.signatureFailures;
          ++counters_.scrapesFailed;
          done();
          return;
        }
        std::uint64_t seq = 0;
        // Keep the content alive: splitSkipEmpty yields views into it.
        const std::string content = data.contentAsString();
        for (auto field : strings::splitSkipEmpty(content, ';')) {
          if (strings::startsWith(field, "seq=")) {
            if (auto parsed = strings::parseUint(field.substr(4))) seq = *parsed;
          }
        }
        if (seq == 0) {
          ++counters_.scrapesFailed;
          done();
          return;
        }
        ClusterView& view = views_[cluster];
        if (view.everScraped && view.seq == seq) {
          // Manifest says nothing changed; the previous values stand.
          ++counters_.manifestReuses;
          ++counters_.scrapesSucceeded;
          view.lastUpdated = sim_.now();
          done();
          return;
        }
        fetchSnapshot(cluster, seq, std::move(done));
      },
      [this, done = finish](const ndn::Interest&, const ndn::Nack&) {
        ++counters_.scrapesFailed;
        done();
      },
      [this, done = finish](const ndn::Interest&) {
        ++counters_.scrapesFailed;
        done();
      });
}

void TelemetryCollector::fetchSnapshot(const std::string& cluster,
                                       std::uint64_t seq,
                                       std::function<void()> done) {
  ndn::Name name = groupPrefix(cluster);
  name.appendNumber(seq);
  // Immutable versioned Data: no MustBeFresh, so any Content Store on
  // the path may answer.
  ndn::Interest interest(name);
  interest.setLifetime(options_.interestLifetime);
  face_->expressInterest(
      std::move(interest),
      [this, cluster, seq, done](const ndn::Interest&, const ndn::Data& data) {
        if (!data.verify()) {
          ++counters_.signatureFailures;
          ++counters_.scrapesFailed;
          done();
          return;
        }
        ClusterView& view = views_[cluster];
        view.seq = seq;
        view.prevValues = std::move(view.values);
        view.rawText = data.contentAsString();
        view.values = parsePrometheusText(view.rawText);
        view.lastUpdated = sim_.now();
        view.everScraped = true;
        ++counters_.snapshotsFetched;
        ++counters_.scrapesSucceeded;
        done();
      },
      [this, done](const ndn::Interest&, const ndn::Nack&) {
        ++counters_.scrapesFailed;
        done();
      },
      [this, done](const ndn::Interest&) {
        ++counters_.scrapesFailed;
        done();
      });
}

void TelemetryCollector::start() {
  if (running_) return;
  running_ = true;
  scrapeTick();
}

void TelemetryCollector::stop() {
  running_ = false;
  tick_.cancel();
}

void TelemetryCollector::scrapeTick() {
  if (!running_) return;
  scrapeOnce();
  tick_ = sim_.scheduleAfter(options_.scrapeInterval, [this] { scrapeTick(); });
}

const TelemetryCollector::ClusterView* TelemetryCollector::view(
    const std::string& cluster) const {
  auto it = views_.find(cluster);
  return it == views_.end() ? nullptr : &it->second;
}

bool TelemetryCollector::isStale(const std::string& cluster) const {
  const ClusterView* v = view(cluster);
  if (!v || !v->everScraped) return true;
  return sim_.now() - v->lastUpdated > options_.freshnessWindow;
}

double TelemetryCollector::metric(const std::string& cluster,
                                  const std::string& series) const {
  const ClusterView* v = view(cluster);
  if (!v) return 0.0;
  auto it = v->values.find(series);
  return it == v->values.end() ? 0.0 : it->second;
}

void TelemetryCollector::invalidate(const std::string& cluster) {
  auto it = views_.find(cluster);
  if (it == views_.end()) return;
  it->second = ClusterView{};
}

namespace {

double clamp01(double v) { return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v); }

/// Series lookup that tolerates both labeled ("name{cluster=\"x\"}")
/// and bare ("name") exports.
double seriesValue(const std::map<std::string, double>& values,
                   const std::string& name, const std::string& cluster,
                   double fallback) {
  auto it = values.find(name + "{cluster=\"" + cluster + "\"}");
  if (it != values.end()) return it->second;
  it = values.find(name);
  if (it != values.end()) return it->second;
  return fallback;
}

double seriesDelta(const TelemetryCollector::ClusterView& view,
                   const std::string& name, const std::string& cluster) {
  const double now = seriesValue(view.values, name, cluster, 0.0);
  const double before = seriesValue(view.prevValues, name, cluster, 0.0);
  return now > before ? now - before : 0.0;
}

}  // namespace

double TelemetryCollector::rawHealthScore(const std::string& cluster) const {
  const HealthPolicy& policy = options_.health;
  if (isStale(cluster)) return policy.staleScore;
  const ClusterView* v = view(cluster);
  if (v == nullptr) return policy.staleScore;

  // Base: the gateway's own view of how many nodes are ready.
  double score =
      clamp01(seriesValue(v->values, policy.healthyFractionSeries, cluster, 1.0));

  // Discount by refused-work pressure since the last snapshot: a
  // gateway shedding load (health gate, capacity) or dropping Interests
  // dark (blackout) is degraded even while its nodes still report
  // ready — and even while its telemetry publisher keeps answering.
  const double rejected =
      seriesDelta(*v, "lidc_gateway_health_rejected", cluster) +
      seriesDelta(*v, "lidc_gateway_capacity_rejected", cluster) +
      seriesDelta(*v, "lidc_gateway_blackout_dropped", cluster);
  const double received = seriesDelta(*v, "lidc_gateway_compute_received", cluster);
  if (rejected > 0.0) {
    const double pressure = rejected / std::max(1.0, received);
    score *= clamp01(1.0 - policy.rejectionWeight * pressure);
  }
  return clamp01(score);
}

double TelemetryCollector::healthScore(const std::string& cluster) const {
  const double raw = rawHealthScore(cluster);
  const ClusterView* v = view(cluster);
  if (v != nullptr && v->degradedUntil.toNanos() > 0 &&
      sim_.now() < v->degradedUntil) {
    // Hold-down: once steering moves traffic away, the refused-work
    // deltas go quiet — without memory the score would snap back to
    // healthy and lure jobs straight back into the fault.
    return std::min(raw, v->degradedScore);
  }
  return raw;
}

void TelemetryCollector::notifyHealth(const std::string& cluster) {
  const HealthPolicy& policy = options_.health;
  const double raw = rawHealthScore(cluster);
  if (raw < policy.degradedThreshold) {
    auto it = views_.find(cluster);
    if (it != views_.end()) {
      it->second.degradedUntil = sim_.now() + policy.holdDown;
      it->second.degradedScore = raw;
    }
  }
  if (health_listener_) health_listener_(cluster, healthScore(cluster));
}

void TelemetryCollector::attachTelemetry(MetricsRegistry& registry) {
  registry.registerCollector([this, &registry] {
    registry.counter("lidc_collector_scrapes_started_total")
        .set(counters_.scrapesStarted);
    registry.counter("lidc_collector_scrape_failures_total")
        .set(counters_.scrapesFailed);
    registry.counter("lidc_collector_snapshots_fetched_total")
        .set(counters_.snapshotsFetched);
    registry.counter("lidc_collector_manifest_reuses_total")
        .set(counters_.manifestReuses);
    registry.counter("lidc_collector_signature_failures_total")
        .set(counters_.signatureFailures);
    double stale = 0.0;
    for (const auto& cluster : watched_) {
      if (isStale(cluster)) stale += 1.0;
      registry.gauge("lidc_collector_cluster_health", {{"cluster", cluster}})
          .set(healthScore(cluster));
    }
    registry.gauge("lidc_collector_stale_clusters").set(stale);
  });
}

AlertEngine::ValueSource collectorValueSource(
    const TelemetryCollector& collector) {
  return [&collector] {
    std::map<std::string, double> out;
    for (const auto& cluster : collector.watchedClusters()) {
      out[cluster + "/stale"] = collector.isStale(cluster) ? 1.0 : 0.0;
      out[cluster + "/health"] = collector.healthScore(cluster);
      if (const auto* v = collector.view(cluster)) {
        for (const auto& [series, value] : v->values) {
          out[cluster + "/" + series] = value;
        }
      }
    }
    return out;
  };
}

}  // namespace lidc::telemetry
