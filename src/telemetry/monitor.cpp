#include "telemetry/monitor.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/strings.hpp"

namespace lidc::telemetry {

namespace {
constexpr const char* kLatestComponent = "_latest";
}

TelemetryPublisher::TelemetryPublisher(ndn::Forwarder& forwarder,
                                       MetricsRegistry& registry,
                                       std::string clusterName,
                                       TelemetryPublisherOptions options)
    : forwarder_(forwarder),
      registry_(registry),
      cluster_name_(std::move(clusterName)),
      options_(options) {
  groups_["all"] = Group{};
  ndn::Name prefix = kTelemetryPrefix;
  prefix.append(cluster_name_);
  face_ = std::make_shared<ndn::AppFace>("app://telemetry/" + cluster_name_,
                                         forwarder_.simulator());
  face_->setInterestHandler([this](const ndn::Interest& i) { handleInterest(i); });
  face_id_ = forwarder_.addFace(face_);
  forwarder_.registerPrefix(prefix, face_id_, /*cost=*/0);
}

void TelemetryPublisher::addGroup(const std::string& group,
                                  const std::string& metricPrefix) {
  groups_[group].metricPrefix = metricPrefix;
}

void TelemetryPublisher::handleInterest(const ndn::Interest& interest) {
  // /ndn/k8s/telemetry/<cluster>/<group>/<_latest | seq>
  const ndn::Name& name = interest.name();
  if (name.size() != kTelemetryPrefix.size() + 3) {
    ++rejected_;
    face_->putNack(interest, ndn::NackReason::kNoRoute);
    return;
  }
  const std::string group = name[name.size() - 2].toString();
  const std::string selector = name[name.size() - 1].toString();
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    ++rejected_;
    face_->putNack(interest, ndn::NackReason::kNoRoute);
    return;
  }
  if (selector == kLatestComponent) {
    replyLatest(interest, it->second);
    return;
  }
  const auto seq = strings::parseUint(selector);
  if (!seq) {
    ++rejected_;
    face_->putNack(interest, ndn::NackReason::kNoRoute);
    return;
  }
  replySnapshot(interest, it->second, *seq);
}

void TelemetryPublisher::refreshGroup(Group& group) {
  const sim::Time now = forwarder_.simulator().now();
  if (group.seq != 0 && now - group.generatedAt < options_.snapshotInterval) {
    return;
  }
  ++group.seq;
  group.generatedAt = now;
  group.snapshots[group.seq] = registry_.toPrometheus(group.metricPrefix);
  ++snapshots_generated_;
  while (group.snapshots.size() > options_.retainedSnapshots) {
    group.snapshots.erase(group.snapshots.begin());
  }
}

void TelemetryPublisher::replyLatest(const ndn::Interest& interest, Group& group) {
  refreshGroup(group);
  ++served_;
  ndn::Data manifest(interest.name());
  manifest
      .setContent("seq=" + std::to_string(group.seq) + ";generated=" +
                  std::to_string(group.generatedAt.toNanos()))
      .setFreshnessPeriod(options_.manifestFreshness)
      .sign();
  face_->putData(std::move(manifest));
}

void TelemetryPublisher::replySnapshot(const ndn::Interest& interest, Group& group,
                                       std::uint64_t seq) {
  auto it = group.snapshots.find(seq);
  if (it == group.snapshots.end()) {
    ++rejected_;
    face_->putNack(interest, ndn::NackReason::kNoRoute);
    return;
  }
  ++served_;
  ndn::Data snapshot(interest.name());
  snapshot.setContent(it->second)
      .setFreshnessPeriod(options_.snapshotFreshness)
      .sign();
  face_->putData(std::move(snapshot));
}

TelemetryCollector::TelemetryCollector(ndn::Forwarder& forwarder,
                                       TelemetryCollectorOptions options)
    : forwarder_(forwarder), sim_(forwarder.simulator()), options_(options) {
  face_ = std::make_shared<ndn::AppFace>("app://telemetry-collector", sim_,
                                         /*nonceSeed=*/0x7e1e);
  face_id_ = forwarder_.addFace(face_);
}

void TelemetryCollector::watchCluster(const std::string& cluster) {
  if (std::find(watched_.begin(), watched_.end(), cluster) == watched_.end()) {
    watched_.push_back(cluster);
    views_[cluster];
  }
}

std::vector<std::string> TelemetryCollector::watchedClusters() const {
  return watched_;
}

ndn::Name TelemetryCollector::groupPrefix(const std::string& cluster) const {
  ndn::Name name = kTelemetryPrefix;
  name.append(cluster);
  name.append(options_.group);
  return name;
}

void TelemetryCollector::scrapeOnce(std::function<void()> done) {
  if (watched_.empty()) {
    if (done) done();
    return;
  }
  // Track completion across the fan-out; `done` fires after every
  // watched cluster has either succeeded or failed.
  auto remaining = std::make_shared<std::size_t>(watched_.size());
  auto onClusterDone = [remaining, done = std::move(done)]() {
    if (--*remaining == 0 && done) done();
  };
  for (const auto& cluster : watched_) {
    ++counters_.scrapesStarted;
    scrapeCluster(cluster, onClusterDone);
  }
}

void TelemetryCollector::scrapeCluster(const std::string& cluster,
                                       std::function<void()> done) {
  ndn::Name latest = groupPrefix(cluster);
  latest.append(kLatestComponent);
  ndn::Interest interest(latest);
  interest.setMustBeFresh(true).setLifetime(options_.interestLifetime);
  face_->expressInterest(
      std::move(interest),
      [this, cluster, done](const ndn::Interest&, const ndn::Data& data) {
        if (!data.verify()) {
          ++counters_.signatureFailures;
          ++counters_.scrapesFailed;
          done();
          return;
        }
        std::uint64_t seq = 0;
        // Keep the content alive: splitSkipEmpty yields views into it.
        const std::string content = data.contentAsString();
        for (auto field : strings::splitSkipEmpty(content, ';')) {
          if (strings::startsWith(field, "seq=")) {
            if (auto parsed = strings::parseUint(field.substr(4))) seq = *parsed;
          }
        }
        if (seq == 0) {
          ++counters_.scrapesFailed;
          done();
          return;
        }
        ClusterView& view = views_[cluster];
        if (view.everScraped && view.seq == seq) {
          // Manifest says nothing changed; the previous values stand.
          ++counters_.manifestReuses;
          ++counters_.scrapesSucceeded;
          view.lastUpdated = sim_.now();
          done();
          return;
        }
        fetchSnapshot(cluster, seq, std::move(done));
      },
      [this, done](const ndn::Interest&, const ndn::Nack&) {
        ++counters_.scrapesFailed;
        done();
      },
      [this, done](const ndn::Interest&) {
        ++counters_.scrapesFailed;
        done();
      });
}

void TelemetryCollector::fetchSnapshot(const std::string& cluster,
                                       std::uint64_t seq,
                                       std::function<void()> done) {
  ndn::Name name = groupPrefix(cluster);
  name.appendNumber(seq);
  // Immutable versioned Data: no MustBeFresh, so any Content Store on
  // the path may answer.
  ndn::Interest interest(name);
  interest.setLifetime(options_.interestLifetime);
  face_->expressInterest(
      std::move(interest),
      [this, cluster, seq, done](const ndn::Interest&, const ndn::Data& data) {
        if (!data.verify()) {
          ++counters_.signatureFailures;
          ++counters_.scrapesFailed;
          done();
          return;
        }
        ClusterView& view = views_[cluster];
        view.seq = seq;
        view.rawText = data.contentAsString();
        view.values = parsePrometheusText(view.rawText);
        view.lastUpdated = sim_.now();
        view.everScraped = true;
        ++counters_.snapshotsFetched;
        ++counters_.scrapesSucceeded;
        done();
      },
      [this, done](const ndn::Interest&, const ndn::Nack&) {
        ++counters_.scrapesFailed;
        done();
      },
      [this, done](const ndn::Interest&) {
        ++counters_.scrapesFailed;
        done();
      });
}

void TelemetryCollector::start() {
  if (running_) return;
  running_ = true;
  scrapeTick();
}

void TelemetryCollector::stop() {
  running_ = false;
  tick_.cancel();
}

void TelemetryCollector::scrapeTick() {
  if (!running_) return;
  scrapeOnce();
  tick_ = sim_.scheduleAfter(options_.scrapeInterval, [this] { scrapeTick(); });
}

const TelemetryCollector::ClusterView* TelemetryCollector::view(
    const std::string& cluster) const {
  auto it = views_.find(cluster);
  return it == views_.end() ? nullptr : &it->second;
}

bool TelemetryCollector::isStale(const std::string& cluster) const {
  const ClusterView* v = view(cluster);
  if (!v || !v->everScraped) return true;
  return sim_.now() - v->lastUpdated > options_.freshnessWindow;
}

double TelemetryCollector::metric(const std::string& cluster,
                                  const std::string& series) const {
  const ClusterView* v = view(cluster);
  if (!v) return 0.0;
  auto it = v->values.find(series);
  return it == v->values.end() ? 0.0 : it->second;
}

void TelemetryCollector::invalidate(const std::string& cluster) {
  auto it = views_.find(cluster);
  if (it == views_.end()) return;
  it->second = ClusterView{};
}

}  // namespace lidc::telemetry
