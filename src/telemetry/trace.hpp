// Tracer: causal job tracing over the deterministic sim clock. A trace
// is started when a job (or other top-level operation) is submitted;
// every layer the job touches — client retry loop, per-hop forwarder
// pipelines, gateway admission, K8s scheduling/execution, data-lake
// segment retrieval — attaches spans to it via the TraceContext carried
// on Interests. Spans are stamped from sim::Simulator::now(), so a
// given seed always yields a byte-identical trace.
//
// Consumers: explain(jobId) renders a human-readable span tree for one
// job; chromeTraceJson() dumps everything in the chrome://tracing /
// Perfetto "Trace Event" JSON format.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "telemetry/trace_context.hpp"

namespace lidc::telemetry {

using SpanAttrs = std::vector<std::pair<std::string, std::string>>;

struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = root of its trace
  TraceId trace = 0;
  std::string name;       // e.g. "submit-attempt", "forwarder-hop"
  std::string component;  // e.g. "client:wf-user", "forwarder:gw-east"
  sim::Time start;
  sim::Time end;
  bool open = false;  // true until endSpan(); instants are never open
  SpanAttrs attrs;

  [[nodiscard]] sim::Duration duration() const noexcept { return end - start; }
};

class Tracer {
 public:
  explicit Tracer(sim::Simulator& sim) : sim_(sim) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a root span under a fresh trace id. The returned context's
  /// span id names the new span (pass it as the parent of children).
  TraceContext startTrace(const std::string& name, const std::string& component,
                          SpanAttrs attrs = {});

  /// Opens a child span of `parent`. If parent is invalid (untraced
  /// path) this is a no-op returning an invalid context, so callers
  /// never need to branch.
  TraceContext startSpan(const std::string& name, const std::string& component,
                         TraceContext parent, SpanAttrs attrs = {});

  /// Closes the span named by ctx at sim-now. No-op on invalid ctx.
  void endSpan(TraceContext ctx);

  /// Appends an attribute to the span named by ctx (open or closed).
  void setAttr(TraceContext ctx, const std::string& key, const std::string& value);

  /// Zero-duration marker (e.g. one forwarder decision).
  TraceContext instant(const std::string& name, const std::string& component,
                       TraceContext parent, SpanAttrs attrs = {});

  /// Records a span whose start/end are already known — used for
  /// retroactive spans like K8s scheduling and pod execution, which the
  /// gateway only learns about when the job reaches a terminal state.
  TraceContext recordSpan(const std::string& name, const std::string& component,
                          TraceContext parent, sim::Time start, sim::Time end,
                          SpanAttrs attrs = {});

  /// Associates a job id with a trace so explain(jobId) can find it.
  void bindJob(const std::string& jobId, TraceId trace);
  [[nodiscard]] std::optional<TraceId> traceForJob(const std::string& jobId) const;
  /// Every job id bound so far, sorted.
  [[nodiscard]] std::vector<std::string> boundJobs() const;

  [[nodiscard]] std::size_t spanCount() const;
  /// All spans of one trace, in recording order.
  [[nodiscard]] std::vector<Span> spansForTrace(TraceId trace) const;
  /// Copy of every span (tests, exporters).
  [[nodiscard]] std::vector<Span> allSpans() const;

  /// Human-readable span tree for the trace bound to jobId; children
  /// indented under parents, sorted by (start, id), instants rendered
  /// as "@t", spans as "t +duration". Returns a one-line message when
  /// the job id is unknown.
  [[nodiscard]] std::string explain(const std::string& jobId) const;
  [[nodiscard]] std::string explainTrace(TraceId trace) const;

  /// chrome://tracing "Trace Event" JSON: complete ("X") events, one
  /// tid per trace, timestamps in microseconds.
  [[nodiscard]] std::string chromeTraceJson() const;

  void clear();

 private:
  Span& emplaceLocked(const std::string& name, const std::string& component,
                      TraceId trace, SpanId parent, SpanAttrs attrs);

  sim::Simulator& sim_;
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
  std::unordered_map<SpanId, std::size_t> spanIndex_;
  std::map<std::string, TraceId> jobTraces_;
  std::uint64_t nextTrace_ = 1;
  std::uint64_t nextSpan_ = 1;
};

}  // namespace lidc::telemetry
