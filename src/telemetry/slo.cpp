#include "telemetry/slo.hpp"

#include <algorithm>

namespace lidc::telemetry {

namespace {

double lookup(const std::map<std::string, double>& values,
              const std::string& series) {
  auto it = values.find(series);
  return it == values.end() ? 0.0 : it->second;
}

}  // namespace

SloTracker::SloTracker(SloSpec spec) : spec_(std::move(spec)) {
  for (const SloWindow& w : spec_.windows) {
    longest_window_ = std::max(longest_window_, w.window);
  }
}

SloStatus SloTracker::evaluate(sim::Time now,
                               const std::map<std::string, double>& values) {
  Sample sample;
  sample.at = now;
  if (spec_.kind == SloKind::kSuccessRatio) {
    sample.good = lookup(values, spec_.goodSeries);
    sample.total = lookup(values, spec_.totalSeries);
  } else {
    const double value = lookup(values, spec_.valueSeries);
    sample.good = value <= spec_.bound ? 1.0 : 0.0;
    sample.total = value;  // reused as "latest value" below
  }
  history_.push_back(sample);
  // Keep one sample at or before the longest window's left edge so
  // counter deltas have a baseline; everything older goes.
  while (history_.size() >= 2 &&
         now - history_[1].at >= longest_window_) {
    history_.pop_front();
  }

  SloStatus status;
  const double budget = std::max(1e-9, 1.0 - spec_.target);
  std::size_t burning = 0;
  bool first = true;
  for (const SloWindow& w : spec_.windows) {
    double burnRate = 0.0;
    if (spec_.kind == SloKind::kSuccessRatio) {
      // Baseline: the newest sample at or before now - window.
      const Sample* baseline = &history_.front();
      for (const Sample& s : history_) {
        if (now - s.at >= w.window) baseline = &s;
      }
      const double deltaGood = sample.good - baseline->good;
      const double deltaTotal = sample.total - baseline->total;
      const double errorRatio =
          deltaTotal > 0.0 ? 1.0 - deltaGood / deltaTotal : 0.0;
      burnRate = std::max(0.0, errorRatio) / budget;
    } else {
      std::size_t count = 0;
      std::size_t bad = 0;
      for (const Sample& s : history_) {
        if (now - s.at >= w.window) continue;
        ++count;
        if (s.good == 0.0) ++bad;
      }
      const double badFraction =
          count > 0 ? static_cast<double>(bad) / static_cast<double>(count) : 0.0;
      burnRate = badFraction / budget;
    }
    SloWindowStatus ws;
    ws.window = w.window;
    ws.burnRate = burnRate;
    ws.burning = burnRate >= w.maxBurnRate;
    if (ws.burning) ++burning;
    if (first || burnRate < status.gatingBurnRate) {
      status.gatingBurnRate = burnRate;
      first = false;
    }
    status.windows.push_back(ws);
  }
  status.breached = !spec_.windows.empty() && burning == spec_.windows.size();
  if (spec_.kind == SloKind::kSuccessRatio) {
    status.currentValue =
        sample.total > 0.0 ? sample.good / sample.total : 1.0;
  } else {
    status.currentValue = sample.total;
  }
  return status;
}

}  // namespace lidc::telemetry
