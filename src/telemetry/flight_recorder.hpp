// Flight recorder: a fixed-capacity, lock-light ring buffer of
// structured events (forwarder decisions, gateway admissions, chaos
// injections, client retry/backoff steps). Components record into it
// from the hot path with one atomic reservation and a bounded copy —
// no allocation, no mutex — and the AlertEngine snapshots the last-N
// window into every fired alert so a single explainAlert() call yields
// a self-contained post-mortem.
//
// Concurrency follows the seqlock idea: a writer reserves a global
// sequence number with fetch_add, marks the slot odd (writing), fills
// it, then publishes the even tag for that sequence. Readers accept a
// slot only when its tag is the expected even value before AND after
// the copy, so torn slots are skipped instead of locked around. In the
// single-threaded simulator this never skips; under real threads it
// degrades to dropping in-flight slots, never to blocking a writer.
//
// With LIDC_TELEMETRY_DISABLED defined (-DLIDC_DISABLE_TELEMETRY=ON),
// record() is an inline no-op and LIDC_FR_EVENT() compiles away without
// evaluating its message expression.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.hpp"
#include "sim/simulator.hpp"

namespace lidc::telemetry {

/// One recorded event, as read back out of the ring.
struct FlightEvent {
  sim::Time at;
  log::Level severity = log::Level::kInfo;
  std::string component;
  std::string message;
};

class FlightRecorder {
 public:
  /// Longer fields are truncated on record — deterministically, so
  /// traces stay byte-identical per seed.
  static constexpr std::size_t kMaxComponent = 23;
  static constexpr std::size_t kMaxMessage = 159;

  explicit FlightRecorder(sim::Simulator& sim, std::size_t capacity = 1024);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

#if defined(LIDC_TELEMETRY_DISABLED)
  void record(std::string_view, log::Level, std::string_view) noexcept {}
  void captureLogs(log::Level = log::Level::kWarn) noexcept {}
#else
  /// Appends one event, stamped with the sim clock. Wait-free for
  /// writers; oldest events are overwritten once the ring is full.
  void record(std::string_view component, log::Level severity,
              std::string_view message) noexcept;

  /// Routes every LIDC_LOG line at `minLevel` or above into the ring
  /// (via log::setSink — the already-formatted message is reused, no
  /// second formatting pass). One recorder may capture at a time.
  void captureLogs(log::Level minLevel = log::Level::kWarn);
#endif

  /// Uninstalls the log sink if this recorder installed it. Safe to
  /// call unconditionally; the destructor does this too.
  void releaseLogs() noexcept;

  /// The newest min(n, recorded, capacity) events, oldest first.
  [[nodiscard]] std::vector<FlightEvent> lastN(std::size_t n) const;

  /// Total events ever recorded (not capped by capacity).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// "t=12.000000s WARN chaos: inject east-gw-dark" per event.
  static std::string render(const std::vector<FlightEvent>& events);

 private:
  struct Slot {
    // 0 = empty; 2*seq+1 = being written; 2*seq+2 = published.
    std::atomic<std::uint64_t> state{0};
    std::int64_t atNanos = 0;
    log::Level severity = log::Level::kInfo;
    char component[kMaxComponent + 1] = {};
    char message[kMaxMessage + 1] = {};
  };

  sim::Simulator& sim_;
  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
  bool capturing_ = false;
};

/// Event-recording call site that disappears entirely (message
/// expression unevaluated) when the recorder is null or telemetry is
/// compiled out:
///   LIDC_FR_EVENT(recorder_, kWarn, "gateway", "reject job=" + id);
#if defined(LIDC_TELEMETRY_DISABLED)
#define LIDC_FR_EVENT(recorder, severity, component, message_expr) \
  do {                                                             \
  } while (0)
#else
#define LIDC_FR_EVENT(recorder, severity, component, message_expr)        \
  do {                                                                    \
    if ((recorder) != nullptr) {                                          \
      (recorder)->record((component), ::lidc::log::Level::severity,       \
                         (message_expr));                                 \
    }                                                                     \
  } while (0)
#endif

}  // namespace lidc::telemetry
