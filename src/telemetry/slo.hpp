// Declarative SLOs with multi-window burn-rate accounting (the
// SRE-workbook pattern): an objective like "submit success ratio >=
// 99%" defines an error budget of 1 - target; each configured window
// measures how fast that budget is being burned relative to the
// sustainable rate, and the SLO is breached only when EVERY window
// burns faster than its threshold — a short window for responsiveness
// plus a long window to reject blips.
//
// Trackers are fed flat series maps (MetricsRegistry::flatten() shape,
// also what TelemetryCollector scrapes) on the sim clock, so a fixed
// seed replays to byte-identical verdicts.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace lidc::telemetry {

enum class SloKind {
  /// good/total cumulative counters; objective: good/total >= target.
  kSuccessRatio,
  /// A numeric series sampled per evaluation; objective: value <= bound
  /// for at least `target` of samples (e.g. "p99 latency < X").
  kUpperBound,
};

struct SloWindow {
  sim::Duration window;
  /// Breach contribution when the error budget burns at >= this
  /// multiple of the sustainable rate over the window.
  double maxBurnRate = 1.0;
};

struct SloSpec {
  std::string name;
  SloKind kind = SloKind::kSuccessRatio;
  /// Objective fraction in [0, 1); error budget is 1 - target.
  double target = 0.99;

  // kSuccessRatio:
  std::string goodSeries;
  std::string totalSeries;

  // kUpperBound:
  std::string valueSeries;
  double bound = 0.0;

  /// All windows must burn for the SLO to be breached.
  std::vector<SloWindow> windows;

  /// The series an alert on this SLO points at.
  [[nodiscard]] const std::string& primarySeries() const noexcept {
    return kind == SloKind::kSuccessRatio ? totalSeries : valueSeries;
  }
};

struct SloWindowStatus {
  sim::Duration window;
  double burnRate = 0.0;
  bool burning = false;
};

struct SloStatus {
  bool breached = false;
  /// Smallest burn rate across windows — the one gating the breach.
  double gatingBurnRate = 0.0;
  /// Current ratio (kSuccessRatio) or latest sampled value (kUpperBound).
  double currentValue = 0.0;
  std::vector<SloWindowStatus> windows;
};

/// Evaluates one SloSpec against successive samples of a series map.
class SloTracker {
 public:
  explicit SloTracker(SloSpec spec);

  [[nodiscard]] const SloSpec& spec() const noexcept { return spec_; }

  /// Records one sample at `now` and returns the verdict. Callers must
  /// feed monotonically non-decreasing times (the sim clock does).
  SloStatus evaluate(sim::Time now, const std::map<std::string, double>& values);

 private:
  struct Sample {
    sim::Time at;
    double good = 0.0;   // cumulative (ratio) or 1-if-within-bound
    double total = 0.0;  // cumulative (ratio) or 1 per sample
  };

  SloSpec spec_;
  std::deque<Sample> history_;
  sim::Duration longest_window_{};
};

}  // namespace lidc::telemetry
