// Gray-failure ablation (EXPERIMENTS.md Ablation P).
//
// Fail-stop faults announce themselves; gray failures do not. This
// bench runs the same workload through a three-cluster overlay whose
// nearest cluster goes gray (admits every job, runs none), whose
// second cluster hides a 10x slow node, and whose access links flip
// payload bits at 2% — first with every defense disabled (no on-path
// integrity drops, no watchdog, no breaker, no hedging), then with the
// full defense stack. Reported per mode: completion rate, p50/p99
// end-to-end latency, and the defense counters that explain the gap.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/adaptive.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "sim/chaos.hpp"

namespace {

using namespace lidc;

constexpr int kJobs = 20;
constexpr double kJobSpacingSec = 1.0;

void registerSleeper(core::ComputeCluster& cluster) {
  cluster.cluster().registerApp("sleeper", [](k8s::AppContext&) {
    k8s::AppResult result;
    result.runtime = sim::Duration::seconds(10);
    return result;
  });
  cluster.gateway().jobs().mapAppToImage("sleep", "sleeper");
}

struct RunStats {
  int completed = 0;
  int failed = 0;
  std::vector<double> latenciesSec;
  std::uint64_t corrupted = 0;
  std::uint64_t integrityDrops = 0;
  std::uint64_t watchdogTimeouts = 0;
  std::uint64_t breakerTrips = 0;
  std::uint64_t hedgesIssued = 0;
  std::uint64_t hedgesWon = 0;
};

RunStats runScenario(bool defended) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");

  core::ComputeClusterConfig config;
  config.perNode = k8s::Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(32)};
  config.nodeCount = 2;
  config.name = "gray";
  auto& gray = overlay.addCluster(config);
  registerSleeper(gray);
  config.name = "beta";
  auto& beta = overlay.addCluster(config);
  registerSleeper(beta);
  config.name = "alpha";
  auto& alpha = overlay.addCluster(config);
  registerSleeper(alpha);
  overlay.connect("client-host", "gray", net::LinkParams{sim::Duration::millis(5)});
  overlay.connect("client-host", "beta", net::LinkParams{sim::Duration::millis(15)});
  overlay.connect("client-host", "alpha", net::LinkParams{sim::Duration::millis(30)});
  for (const char* name : {"gray", "beta", "alpha"}) overlay.announceCluster(name);

  if (!defended) {
    // Undefended baseline: routers forward corrupt Data untouched and
    // caches keep whatever arrives.
    for (const char* name : {"client-host", "gray", "beta", "alpha"}) {
      auto* node = overlay.topology().node(name);
      node->setDataVerification(false);
      node->cs().setVerification(false);
    }
  }

  core::AdaptivePlacement placement(overlay);
  core::ClientOptions options;
  options.interestLifetime = sim::Duration::seconds(2);
  options.statusPollInterval = sim::Duration::seconds(1);
  options.maxSubmitRetries = 8;
  options.maxStatusPollFailures = 4;
  options.maxFailovers = 4;
  options.deadline = sim::Duration::minutes(5);
  if (defended) {
    options.pendingProgressTtl = sim::Duration::seconds(5);
    options.enableHedging = true;
    options.hedgeDelayFloor = sim::Duration::millis(500);
    options.enableCircuitBreaker = true;
    options.breaker.failureThreshold = 2;
    options.breaker.openDuration = sim::Duration::minutes(5);
    options.breakerListener = [&placement](const std::string& cluster,
                                           core::BreakerState state) {
      placement.observeBreaker(cluster, state == core::BreakerState::kOpen);
      placement.tick();
    };
  }
  core::LidcClient client(*overlay.topology().node("client-host"), "bench",
                          options, /*seed=*/777);

  sim::ChaosEngine chaos(sim, /*seed=*/4242);
  const sim::Time start = sim::Time::fromNanos(0) + sim::Duration::seconds(2);
  const sim::Duration window = sim::Duration::minutes(10);
  for (const char* name : {"gray", "beta", "alpha"}) {
    chaos.corruption(std::string(name) + "-corruption",
                     *overlay.topology().linkBetween("client-host", name), start,
                     window, /*corruptRate=*/0.02);
  }
  chaos.slowNode("beta-limps", beta.cluster(), "beta-node-0", start, window,
                 /*factor=*/10.0);
  chaos.grayGateway("gray-gw", start, window,
                    [&gray](bool on) { gray.gateway().setGrayFailure(on); });

  RunStats stats;
  for (int i = 0; i < kJobs; ++i) {
    const sim::Time submitAt =
        sim::Time::fromNanos(0) + sim::Duration::seconds(kJobSpacingSec * i);
    sim.scheduleAt(submitAt, [&, submitAt] {
      core::ComputeRequest request;
      request.app = "sleep";
      request.cpu = MilliCpu::fromCores(1);
      request.memory = ByteSize::fromGiB(1);
      client.runToCompletion(request, [&, submitAt](Result<core::JobOutcome> r) {
        if (r.ok() && r->finalStatus.state == k8s::JobState::kCompleted) {
          ++stats.completed;
          stats.latenciesSec.push_back((sim.now() - submitAt).toSeconds());
        } else {
          ++stats.failed;
        }
      });
    });
  }
  sim.run();

  for (const char* name : {"gray", "beta", "alpha"}) {
    stats.corrupted +=
        overlay.topology().linkBetween("client-host", name)->packetsCorrupted();
  }
  for (const char* name : {"client-host", "gray", "beta", "alpha"}) {
    stats.integrityDrops += overlay.topology().node(name)->counters().nIntegrityDrops;
  }
  stats.watchdogTimeouts = client.watchdogTimeouts();
  stats.breakerTrips = client.breakerTrips();
  stats.hedgesIssued = client.hedgesIssued();
  stats.hedgesWon = client.hedgesWon();
  (void)alpha;
  return stats;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto index =
      static_cast<std::size_t>(static_cast<double>(samples.size()) * p);
  return samples[std::min(samples.size() - 1, index)];
}

}  // namespace

int main() {
  bench::printHeader(
      "Gray failures: corruption + slow node + gray gateway, defenses off vs on");
  std::printf(
      "workload: %d one-core 10 s jobs, one every %.1f s; nearest cluster\n"
      "goes gray at t=2 s, beta-node-0 limps at 10x, links corrupt 2%% of Data\n\n",
      kJobs, kJobSpacingSec);

  bench::JsonReport report("gray_failures");
  bench::printRow({"mode", "complete", "p50", "p99", "drops", "watchdog", "hedges"});
  bench::printRule(7);
  for (const bool defended : {false, true}) {
    const RunStats stats = runScenario(defended);
    const double p50 = percentile(stats.latenciesSec, 0.50);
    const double p99 = percentile(stats.latenciesSec, 0.99);
    bench::printRow({defended ? "defended" : "undefended",
                     std::to_string(stats.completed) + "/" + std::to_string(kJobs),
                     bench::fmt(p50, "%.1f") + "s", bench::fmt(p99, "%.1f") + "s",
                     std::to_string(stats.integrityDrops),
                     std::to_string(stats.watchdogTimeouts),
                     std::to_string(stats.hedgesIssued)});
    const std::string key = defended ? "on" : "off";
    report.add("completion_rate_" + key,
               static_cast<double>(stats.completed) / kJobs);
    report.add("p50_latency_s_" + key, p50);
    report.add("p99_latency_s_" + key, p99);
    report.add("integrity_drops_" + key, static_cast<double>(stats.integrityDrops));
    report.add("corrupted_" + key, static_cast<double>(stats.corrupted));
    if (defended) {
      report.add("watchdog_timeouts", static_cast<double>(stats.watchdogTimeouts));
      report.add("breaker_trips", static_cast<double>(stats.breakerTrips));
      report.add("hedges_issued", static_cast<double>(stats.hedgesIssued));
      report.add("hedges_won", static_cast<double>(stats.hedgesWon));
    }
  }

  std::printf(
      "\nshape check: undefended, jobs baited by the gray gateway burn their\n"
      "whole deadline before failing and corrupt Data reaches applications;\n"
      "defended, the watchdog converts the stall into a breaker trip that\n"
      "steers placement, on-path verification drops every corrupt packet,\n"
      "and completion returns to %d/%d with bounded p99.\n",
      kJobs, kJobs);
  report.write();
  return 0;
}
