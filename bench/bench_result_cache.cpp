// Ablation E — result caching (paper SVII future work, implemented).
//
// "Implementing result caching in the framework would be beneficial,
// primarily when multiple clients issue identical requests." This bench
// sweeps the fraction of repeated requests in a workload and reports
// how many jobs actually execute, the cache hit rate, and the mean
// client-observed completion latency.
#include <cstdio>

#include "bench_util.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"

namespace {

using namespace lidc;

struct CacheRunResult {
  int requests = 0;
  int jobsExecuted = 0;
  std::uint64_t gatewayCacheHits = 0;
  std::uint64_t dedupJoins = 0;
  double meanCompletionS = 0;
};

/// `repeatFraction` of the submissions reuse one hot request; the rest
/// are unique. Jobs take 30 simulated seconds.
CacheRunResult runWorkload(double repeatFraction, int requests, bool cacheEnabled) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");
  core::ComputeClusterConfig config;
  config.name = "cluster";
  config.perNode = k8s::Resources{MilliCpu::fromCores(64), ByteSize::fromGiB(256)};
  config.gateway.enableResultCache = cacheEnabled;
  auto& cluster = overlay.addCluster(config);

  int executions = 0;
  cluster.cluster().registerApp("sleeper", [&executions](k8s::AppContext&) {
    ++executions;
    k8s::AppResult result;
    result.runtime = sim::Duration::seconds(30);
    result.resultPath = "/ndn/k8s/data/results/r";
    return result;
  });
  cluster.gateway().jobs().mapAppToImage("sleep", "sleeper");
  overlay.connect("client-host", "cluster",
                  net::LinkParams{sim::Duration::millis(10)});
  overlay.announceCluster("cluster");

  core::ClientOptions options;
  options.bypassCache = false;  // canonical names; repeats can be cached
  core::LidcClient client(*overlay.topology().node("client-host"), "bench",
                          options);
  Rng rng(17);

  CacheRunResult result;
  std::vector<double> completions;
  int uniqueCounter = 0;
  for (int i = 0; i < requests; ++i) {
    core::ComputeRequest request;
    request.app = "sleep";
    request.cpu = MilliCpu::fromCores(1);
    request.memory = ByteSize::fromGiB(1);
    if (!rng.bernoulli(repeatFraction)) {
      // A unique job: distinguish it by a parameter.
      request.params["uniq"] = std::to_string(++uniqueCounter);
    }
    const sim::Time start = sim.now();
    client.runToCompletion(request, [&, start](Result<core::JobOutcome> outcome) {
      if (!outcome.ok()) return;
      completions.push_back((sim.now() - start).toSeconds());
    });
    sim.runUntil(sim.now() + sim::Duration::seconds(5));
  }
  sim.runUntil(sim.now() + sim::Duration::minutes(5));

  result.requests = requests;
  result.jobsExecuted = executions;
  result.gatewayCacheHits = cluster.gateway().counters().cacheHits;
  result.dedupJoins = cluster.gateway().counters().inflightDedup;
  result.meanCompletionS = bench::summarize(completions).mean;
  return result;
}

}  // namespace

int main() {
  constexpr int kRequests = 60;
  bench::printHeader("Ablation E: result caching under repeated requests (" +
                     std::to_string(kRequests) + " requests, 30 s jobs)");
  bench::printRow({"repeat-frac", "cache", "jobs-run", "cache-hits", "dedup",
                   "mean-done(s)"});
  bench::printRule(6);

  bench::JsonReport report("result_cache");
  for (double fraction : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    for (bool enabled : {true, false}) {
      const auto result = runWorkload(fraction, kRequests, enabled);
      bench::printRow({bench::fmt(fraction, "%.2f"), enabled ? "on" : "off",
                       std::to_string(result.jobsExecuted),
                       std::to_string(result.gatewayCacheHits),
                       std::to_string(result.dedupJoins),
                       bench::fmt(result.meanCompletionS, "%.1f")});
      const std::string key = "repeat" + bench::fmt(fraction * 100, "%.0f") +
                              (enabled ? "_cache_on" : "_cache_off");
      report.add(key + "_jobs_run", result.jobsExecuted);
      report.add(key + "_cache_hits", result.gatewayCacheHits);
      report.add(key + "_mean_done_s", result.meanCompletionS);
    }
  }
  std::printf(
      "shape check: with caching on, executed jobs shrink toward the number of\n"
      "distinct requests and mean completion latency collapses as the repeat\n"
      "fraction grows; with caching off every request pays the full job time.\n");
  report.write();
  return 0;
}
