// Ablation J — adaptive ("intelligent") placement vs static best-route.
//
// Paper SVII: "we aim to enable the network to identify the most
// suitable cluster for executing requests ... based on computing and
// timing requirements, data size, past performances". Scenario: the
// nearest cluster is 10x slower per job (overloaded site); a farther
// cluster is fast. Static best-route keeps choosing the slow nearby
// cluster; adaptive placement learns from completions and shifts.
#include <cstdio>

#include "bench_util.hpp"
#include "core/adaptive.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"

namespace {

using namespace lidc;

struct RunResult {
  std::map<std::string, int> placements;
  double meanCompletionS = 0;
};

RunResult runWorkload(bool adaptiveEnabled, int jobs) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");

  struct Site {
    const char* name;
    int linkMs;
    double jobSeconds;
  };
  const Site sites[] = {
      {"near-slow", 5, 300.0},
      {"far-fast", 60, 30.0},
  };
  for (const Site& site : sites) {
    core::ComputeClusterConfig config;
    config.name = site.name;
    config.perNode = k8s::Resources{MilliCpu::fromCores(64), ByteSize::fromGiB(256)};
    auto& cluster = overlay.addCluster(config);
    const double seconds = site.jobSeconds;
    cluster.cluster().registerApp("sleeper", [seconds](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(seconds);
      return result;
    });
    cluster.gateway().jobs().mapAppToImage("sleep", "sleeper");
    overlay.connect("client-host", site.name,
                    net::LinkParams{sim::Duration::millis(site.linkMs)});
    overlay.announceCluster(site.name);
  }

  core::AdaptivePlacement adaptive(overlay);
  core::LidcClient client(*overlay.topology().node("client-host"), "bench");

  RunResult result;
  std::vector<double> completions;
  for (int i = 0; i < jobs; ++i) {
    core::ComputeRequest request;
    request.app = "sleep";
    request.cpu = MilliCpu::fromCores(1);
    request.memory = ByteSize::fromGiB(1);
    const sim::Time start = sim.now();
    client.runToCompletion(request, [&, start](Result<core::JobOutcome> outcome) {
      if (!outcome.ok()) return;
      ++result.placements[outcome->finalStatus.cluster];
      completions.push_back((sim.now() - start).toSeconds());
      if (adaptiveEnabled) {
        adaptive.recordCompletion(outcome->finalStatus.cluster,
                                  outcome->totalLatency);
        (void)adaptive.tick();
      }
    });
    // Jobs arrive every 60 s (some overlap with the slow cluster's work).
    sim.runUntil(sim.now() + sim::Duration::seconds(60));
  }
  sim.run();
  result.meanCompletionS = bench::summarize(completions).mean;
  return result;
}

}  // namespace

int main() {
  constexpr int kJobs = 20;
  bench::printHeader(
      "Ablation J: adaptive placement vs static best-route\n"
      "(near cluster 5 ms away but 300 s/job; far cluster 60 ms away, 30 s/job)");
  bench::printRow({"mode", "near-slow", "far-fast", "mean-done(s)"});
  bench::printRule(4);

  const RunResult statics = runWorkload(false, kJobs);
  bench::printRow({"static",
                   std::to_string(statics.placements.count("near-slow")
                                      ? statics.placements.at("near-slow")
                                      : 0),
                   std::to_string(statics.placements.count("far-fast")
                                      ? statics.placements.at("far-fast")
                                      : 0),
                   bench::fmt(statics.meanCompletionS, "%.1f")});

  const RunResult adaptive = runWorkload(true, kJobs);
  bench::printRow({"adaptive",
                   std::to_string(adaptive.placements.count("near-slow")
                                      ? adaptive.placements.at("near-slow")
                                      : 0),
                   std::to_string(adaptive.placements.count("far-fast")
                                      ? adaptive.placements.at("far-fast")
                                      : 0),
                   bench::fmt(adaptive.meanCompletionS, "%.1f")});

  std::printf(
      "shape check: static best-route pins jobs to the slow nearby cluster\n"
      "(~300 s mean completion); adaptive placement pays one exploration job\n"
      "and converges to the fast cluster (~30 s + WAN RTT).\n");

  auto placed = [](const RunResult& r, const char* cluster) {
    auto it = r.placements.find(cluster);
    return it == r.placements.end() ? 0 : it->second;
  };
  bench::JsonReport report("adaptive");
  report.add("static_mean_completion_s", statics.meanCompletionS);
  report.add("adaptive_mean_completion_s", adaptive.meanCompletionS);
  report.add("static_near_slow_jobs", placed(statics, "near-slow"));
  report.add("static_far_fast_jobs", placed(statics, "far-fast"));
  report.add("adaptive_near_slow_jobs", placed(adaptive, "near-slow"));
  report.add("adaptive_far_fast_jobs", placed(adaptive, "far-fast"));
  report.write();
  return 0;
}
