// Ablation G — Kubernetes-substrate microbenchmarks (google-benchmark).
//
// Host-time cost of scheduling decisions and job-object churn in the
// cluster model, at several node counts and for both scoring policies.
#include <benchmark/benchmark.h>

#include "bench_gbench_util.hpp"

#include "k8s/cluster.hpp"

namespace {

using namespace lidc;
using namespace lidc::k8s;

void BM_SchedulerSelectNode(benchmark::State& state) {
  const auto nodeCount = static_cast<std::size_t>(state.range(0));
  const auto policy = state.range(1) == 0 ? ScoringPolicy::kLeastAllocated
                                          : ScoringPolicy::kMostAllocated;
  Scheduler scheduler(policy);
  std::vector<std::unique_ptr<Node>> owned;
  std::vector<Node*> nodes;
  Rng rng(11);
  for (std::size_t i = 0; i < nodeCount; ++i) {
    owned.push_back(std::make_unique<Node>(
        "node-" + std::to_string(i),
        Resources{MilliCpu::fromCores(16), ByteSize::fromGiB(64)}));
    // Random pre-existing load.
    owned.back()->allocate(
        "warm", Resources{MilliCpu(rng.uniform(12'000)),
                          ByteSize(rng.uniform(48ULL << 30))});
    nodes.push_back(owned.back().get());
  }
  PodSpec spec;
  spec.requests = Resources{MilliCpu::fromCores(2), ByteSize::fromGiB(4)};
  const Pod pod("bench-pod", "default", spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.selectNode(pod, nodes));
  }
}
BENCHMARK(BM_SchedulerSelectNode)
    ->Args({8, 0})
    ->Args({64, 0})
    ->Args({512, 0})
    ->Args({8, 1})
    ->Args({64, 1})
    ->Args({512, 1});

void BM_ClusterJobLifecycle(benchmark::State& state) {
  // Full job lifecycle: create -> schedule -> run -> complete -> release.
  sim::Simulator sim;
  Cluster cluster("bench", sim);
  for (int i = 0; i < 4; ++i) {
    cluster.addNode("n" + std::to_string(i),
                    Resources{MilliCpu::fromCores(16), ByteSize::fromGiB(64)});
  }
  cluster.registerApp("noop", [](AppContext&) {
    AppResult result;
    result.runtime = sim::Duration::seconds(1);
    return result;
  });
  std::size_t counter = 0;
  for (auto _ : state) {
    JobSpec spec;
    spec.app = "noop";
    spec.requests = Resources{MilliCpu::fromCores(1), ByteSize::fromGiB(1)};
    auto job = cluster.createJob("default", "job-" + std::to_string(counter++), spec);
    benchmark::DoNotOptimize(job);
    sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(counter));
}
BENCHMARK(BM_ClusterJobLifecycle);

void BM_ServiceEndpointSelection(benchmark::State& state) {
  const auto podCount = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  Cluster cluster("bench", sim);
  cluster.addNode("n0", Resources{MilliCpu::fromCores(10'000),
                                  ByteSize::fromGiB(100'000)});
  ServiceSpec svcSpec;
  svcSpec.selector = {{"app", "worker"}};
  auto svc = cluster.createService("default", "svc", svcSpec);
  for (std::size_t i = 0; i < podCount; ++i) {
    PodSpec podSpec;
    podSpec.image = "w";
    podSpec.requests = Resources{MilliCpu(100), ByteSize::fromMiB(64)};
    podSpec.labels = {{"app", i % 2 == 0 ? "worker" : "other"}};
    (void)cluster.createPod("default", "p" + std::to_string(i), podSpec);
  }
  sim.run();  // all pods Running
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.serviceEndpoints(**svc));
  }
}
BENCHMARK(BM_ServiceEndpointSelection)->Arg(16)->Arg(256)->Arg(2048);

}  // namespace

int main(int argc, char** argv) {
  return lidc::bench::runBenchmarksWithJsonReport(argc, argv, "k8s_scheduler");
}
