// Table I — Computation Performance.
//
// Reproduces the paper's only results table: BLASTing the rice
// (SRR2931415) and kidney (SRR5139395) SRA samples against the HUMAN
// reference at the four memory/CPU configurations, through the full
// LIDC stack (client -> NDN -> gateway -> K8s job -> data lake).
//
// Expected shape (paper): runtime is insensitive to the cpu/mem
// variations tested; kidney ~ 3x rice runtime; output 2.71GB vs 941MB.
// Absolute values come from the calibrated Magic-BLAST runtime model
// (see DESIGN.md substitutions).
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"

namespace {

struct Row {
  std::string srrId;
  std::string genomeType;
  int memGb;
  int cpu;
  std::string paperRuntime;
  std::string paperOutput;
};

const Row kPaperRows[] = {
    {"SRR2931415", "RICE", 4, 2, "8h9m50s", "941MB"},
    {"SRR2931415", "RICE", 4, 4, "8h7m10s", "941MB"},
    {"SRR5139395", "KIDNEY", 4, 2, "24h16m12s", "2.71GB"},
    {"SRR5139395", "KIDNEY", 6, 2, "24h2m47s", "2.71GB"},
};

}  // namespace

int main() {
  using namespace lidc;
  bench::printHeader("Table I: Computation Performance (paper vs reproduced)");

  bench::printRow({"SRR_ID", "Genome", "Mem(GB)", "CPU", "Paper RT", "Repro RT",
                   "Paper Out", "Repro Out"});
  bench::printRule(8);

  double riceRuntime = 0;
  double kidneyRuntime = 0;
  bench::JsonReport report("table1_computation");

  for (const Row& row : kPaperRows) {
    // A fresh world per configuration, as the paper ran isolated jobs.
    sim::Simulator sim;
    core::ClusterOverlay overlay(sim);
    overlay.addNode("client-host");
    core::ComputeClusterConfig config;
    config.name = "gcp-cluster";
    auto& cluster = overlay.addCluster(config);
    genomics::DatasetCatalog catalog(/*scale=*/0.2);
    cluster.loadGenomicsDatasets(catalog);
    overlay.connect("client-host", "gcp-cluster",
                    net::LinkParams{sim::Duration::millis(15)});
    overlay.announceCluster("gcp-cluster");
    core::LidcClient client(*overlay.topology().node("client-host"), "researcher");

    core::ComputeRequest request;
    request.app = "BLAST";
    request.cpu = MilliCpu::fromCores(static_cast<std::uint64_t>(row.cpu));
    request.memory = ByteSize::fromGiB(static_cast<std::uint64_t>(row.memGb));
    request.params["srr_id"] = row.srrId;

    double runtimeSeconds = -1;
    std::uint64_t outputBytes = 0;
    client.runToCompletion(request, [&](Result<core::JobOutcome> outcome) {
      if (!outcome.ok()) {
        std::fprintf(stderr, "job failed: %s\n", outcome.status().toString().c_str());
        return;
      }
      runtimeSeconds = outcome->finalStatus.runtime.toSeconds();
      outputBytes = outcome->finalStatus.outputBytes;
    });
    sim.run();

    if (row.srrId == "SRR2931415" && row.cpu == 2) riceRuntime = runtimeSeconds;
    if (row.srrId == "SRR5139395" && row.memGb == 4) kidneyRuntime = runtimeSeconds;

    bench::printRow({row.srrId, row.genomeType, std::to_string(row.memGb),
                     std::to_string(row.cpu), row.paperRuntime,
                     strings::formatDurationHms(runtimeSeconds), row.paperOutput,
                     strings::formatBytes(outputBytes)});
    const std::string key = row.srrId + "_m" + std::to_string(row.memGb) + "_c" +
                            std::to_string(row.cpu);
    report.add(key + "_runtime_s", runtimeSeconds);
    report.add(key + "_output_bytes", static_cast<double>(outputBytes));
  }

  bench::printRule(8);
  if (riceRuntime > 0 && kidneyRuntime > 0) {
    std::printf("kidney/rice runtime ratio: paper 2.98x, reproduced %.2fx\n",
                kidneyRuntime / riceRuntime);
    report.add("kidney_rice_runtime_ratio", kidneyRuntime / riceRuntime);
  }
  std::printf(
      "shape check: runtime insensitive to cpu/mem variation (as in the paper);\n"
      "             kidney ~3x rice in both runtime and output size.\n");
  report.write();
  return 0;
}
