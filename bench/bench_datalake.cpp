// Ablation F — data lake publish/retrieve throughput.
//
// The paper's workflows retrieve inputs from and publish results to the
// named data lake (/ndn/k8s/data). This bench sweeps object size and
// pipeline window and reports transfer time and goodput over a
// bandwidth-limited link, plus the effect of in-network caching when a
// second client fetches the same object.
#include <cstdio>

#include "bench_util.hpp"
#include "datalake/file_server.hpp"
#include "datalake/retriever.hpp"
#include "net/topology.hpp"

namespace {

using namespace lidc;

struct TransferResult {
  double seconds = 0;
  double goodputMbps = 0;
  bool cached = false;
};

TransferResult runTransfer(std::size_t objectBytes, std::size_t window,
                           bool secondFetch) {
  sim::Simulator sim;
  net::Topology topo(sim);
  topo.addNode("client");
  topo.addNode("lake");
  // 100 Mbit/s, 20 ms link: a realistic WAN path to a data lake.
  topo.connect("client", "lake",
               net::LinkParams{sim::Duration::millis(20), 100e6, 0.0});

  k8s::PersistentVolumeClaim pvc("pvc", ByteSize::fromGiB(1));
  datalake::ObjectStore store(pvc);
  datalake::FileServer server(*topo.node("lake"), store,
                              ndn::Name("/ndn/k8s/data"), 8 * 1024);
  topo.installRoutesTo(ndn::Name("/ndn/k8s/data"), "lake");

  std::vector<std::uint8_t> blob(objectBytes);
  Rng rng(5);
  for (auto& byte : blob) byte = static_cast<std::uint8_t>(rng());
  (void)store.put(ndn::Name("/ndn/k8s/data/object"), blob);

  auto app = std::make_shared<ndn::AppFace>("app://client", sim, 9);
  topo.node("client")->addFace(app);
  datalake::RetrieveOptions options;
  options.window = window;
  datalake::Retriever retriever(*app, options);

  auto fetchOnce = [&]() {
    const sim::Time start = sim.now();
    double seconds = -1;
    retriever.fetch(ndn::Name("/ndn/k8s/data/object"),
                    [&](Result<std::vector<std::uint8_t>> r) {
                      if (r.ok()) seconds = (sim.now() - start).toSeconds();
                    });
    sim.run();
    return seconds;
  };

  TransferResult result;
  result.seconds = fetchOnce();
  if (secondFetch) {
    // Same node fetches again: served from the client forwarder's CS.
    result.seconds = fetchOnce();
    result.cached = true;
  }
  result.goodputMbps =
      static_cast<double>(objectBytes) * 8.0 / result.seconds / 1e6;
  return result;
}

}  // namespace

int main() {
  bench::printHeader(
      "Ablation F: data lake retrieval (100 Mbit/s, 20 ms RTT/2 link)");
  bench::printRow({"object", "window", "time(s)", "goodput", "source"});
  bench::printRule(5);

  bench::JsonReport report("datalake");
  for (std::size_t kib : {64, 512, 4096}) {
    for (std::size_t window : {1, 8, 32}) {
      const auto result = runTransfer(kib * 1024, window, false);
      bench::printRow({std::to_string(kib) + "KiB", std::to_string(window),
                       bench::fmt(result.seconds, "%.3f"),
                       bench::fmt(result.goodputMbps, "%.1f") + "Mb/s", "lake"});
      const std::string key =
          "kib" + std::to_string(kib) + "_w" + std::to_string(window);
      report.add(key + "_seconds", result.seconds);
      report.add(key + "_goodput_mbps", result.goodputMbps);
    }
  }
  // Cached re-fetch.
  const auto cached = runTransfer(4096 * 1024, 8, true);
  const std::string cachedGoodput =
      cached.seconds <= 0 ? "local" : bench::fmt(cached.goodputMbps, "%.1f") + "Mb/s";
  bench::printRow({"4096KiB", "8", bench::fmt(cached.seconds, "%.3f"),
                   cachedGoodput, "node CS"});

  std::printf(
      "shape check: goodput approaches the 100 Mbit/s link rate as window and\n"
      "object size grow; a repeated fetch is served from the local content\n"
      "store orders of magnitude faster.\n");
  report.add("cached_refetch_seconds", cached.seconds);
  report.write();
  return 0;
}
