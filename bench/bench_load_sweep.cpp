// Ablation K — load balancing under offered load (paper SII: the
// framework picks clusters based on "load balancing capabilities").
//
// Poisson job arrivals sweep the offered load against a 3-cluster
// overlay with heterogeneous proximity. Compares best-route (nearest
// first, capacity nack spill-over) with load-balance (SRTT-weighted
// spread): at low load best-route's locality wins; as load approaches
// the nearest cluster's capacity, spreading wins on completion time.
#include <cstdio>

#include "bench_util.hpp"
#include "common/workload.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"

namespace {

using namespace lidc;

struct SweepResult {
  int submitted = 0;
  int completed = 0;
  int rejected = 0;
  bench::Summary completionS;
  std::map<std::string, int> placements;
};

SweepResult runSweep(double jobsPerMinute, core::PlacementStrategy strategy,
                     int totalJobs) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");

  struct Site {
    const char* name;
    int linkMs;
    std::uint64_t cores;
  };
  // The nearest cluster is small: it saturates first.
  const Site sites[] = {{"edge", 5, 8}, {"regional", 25, 16}, {"cloud", 70, 64}};
  for (const Site& site : sites) {
    core::ComputeClusterConfig config;
    config.name = site.name;
    config.perNode =
        k8s::Resources{MilliCpu::fromCores(site.cores), ByteSize::fromGiB(256)};
    auto& cluster = overlay.addCluster(config);
    cluster.cluster().registerApp("sleeper", [](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(120);
      return result;
    });
    cluster.gateway().jobs().mapAppToImage("sleep", "sleeper");
    overlay.connect("client-host", site.name,
                    net::LinkParams{sim::Duration::millis(site.linkMs)});
    overlay.announceCluster(site.name);
  }
  overlay.setPlacementStrategy(strategy);

  core::LidcClient client(*overlay.topology().node("client-host"), "bench");
  PoissonArrivals arrivals(jobsPerMinute / 60.0, /*seed=*/2024);

  SweepResult result;
  std::vector<double> completions;
  for (int i = 0; i < totalJobs; ++i) {
    ++result.submitted;
    core::ComputeRequest request;
    request.app = "sleep";
    request.cpu = MilliCpu::fromCores(2);
    request.memory = ByteSize::fromGiB(2);
    const sim::Time start = sim.now();
    client.runToCompletion(request, [&, start](Result<core::JobOutcome> outcome) {
      if (!outcome.ok()) {
        ++result.rejected;
        return;
      }
      ++result.completed;
      ++result.placements[outcome->finalStatus.cluster];
      completions.push_back((sim.now() - start).toSeconds());
    });
    sim.runUntil(sim.now() + arrivals.next());
  }
  sim.run();
  result.completionS = bench::summarize(completions);
  return result;
}

const char* strategyName(core::PlacementStrategy strategy) {
  return strategy == core::PlacementStrategy::kBestRoute ? "best-route"
                                                         : "load-balance";
}

}  // namespace

int main() {
  constexpr int kJobs = 120;
  bench::printHeader(
      "Ablation K: offered-load sweep, 2-core 120 s jobs over edge(8c)/"
      "regional(16c)/cloud(64c)");
  bench::printRow({"jobs/min", "strategy", "done", "rejected", "p50(s)", "p95(s)",
                   "edge/reg/cloud"});
  bench::printRule(7);

  bench::JsonReport report("load_sweep");
  for (double rate : {1.0, 4.0, 12.0, 30.0}) {
    for (auto strategy : {core::PlacementStrategy::kBestRoute,
                          core::PlacementStrategy::kLoadBalance}) {
      const auto result = runSweep(rate, strategy, kJobs);
      const auto share = [&](const char* name) {
        auto it = result.placements.find(name);
        return it == result.placements.end() ? 0 : it->second;
      };
      bench::printRow(
          {bench::fmt(rate, "%.0f"), strategyName(strategy),
           std::to_string(result.completed), std::to_string(result.rejected),
           bench::fmt(result.completionS.p50, "%.1f"),
           bench::fmt(result.completionS.p95, "%.1f"),
           std::to_string(share("edge")) + "/" + std::to_string(share("regional")) +
               "/" + std::to_string(share("cloud"))});
      const std::string key =
          "rate" + bench::fmt(rate, "%.0f") + "_" + strategyName(strategy);
      report.add(key + "_completed", result.completed);
      report.add(key + "_rejected", result.rejected);
      report.add(key + "_p50_s", result.completionS.p50);
      report.add(key + "_p95_s", result.completionS.p95);
    }
  }
  std::printf(
      "shape check: at low load placements concentrate on the nearby edge\n"
      "cluster; rising load spills jobs outward (edge -> regional -> cloud)\n"
      "with no client involvement, and rejections appear only once the\n"
      "aggregate overlay capacity itself is exceeded.\n");
  report.write();
  return 0;
}
