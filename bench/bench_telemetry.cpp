// Telemetry hot-path cost: what one counter increment costs in each
// mode (plain uint64, compiled-in NoopCounter, atomic Counter, and the
// worst case of a per-increment family lookup), what one flight-recorder
// record() costs against the ring, how many rule evaluations per second
// the AlertEngine sustains, and what attaching the full registry +
// tracer instrumentation does to forwarder throughput.
// Results go to BENCH_telemetry.json.
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "ndn/app_face.hpp"
#include "ndn/forwarder.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace lidc;

/// Keeps the compiler from deleting the measured loop.
inline void sink(std::uint64_t value) {
  asm volatile("" : : "r"(value) : "memory");
}

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// ns per iteration of `body` over `iters` runs.
template <typename Body>
double measureNs(std::uint64_t iters, Body body) {
  const double start = nowSeconds();
  for (std::uint64_t i = 0; i < iters; ++i) body(i);
  return (nowSeconds() - start) * 1e9 / static_cast<double>(iters);
}

struct ThroughputResult {
  double exchangesPerSec = 0;
};

enum class Mode { kOff, kCounters, kCountersAndTracing };

/// Full consumer->forwarder->producer->consumer exchanges on one node;
/// optionally with the registry mirror attached, and optionally with a
/// trace context on every Interest (per-hop span recording).
ThroughputResult forwarderThroughput(Mode mode, std::uint64_t exchanges) {
  sim::Simulator sim;
  ndn::Forwarder node("bench", sim);
  node.cs().setCapacity(0);  // measure the full path, not cache hits

  telemetry::MetricsRegistry registry;
  telemetry::Tracer tracer(sim);
  if (mode != Mode::kOff) {
    node.attachTelemetry(registry,
                         mode == Mode::kCountersAndTracing ? &tracer : nullptr);
  }

  auto consumer = std::make_shared<ndn::AppFace>("app://c", sim, 1);
  auto producer = std::make_shared<ndn::AppFace>("app://p", sim, 2);
  node.addFace(consumer);
  node.addFace(producer);
  node.registerPrefix(ndn::Name("/svc"), producer->id());
  producer->setInterestHandler([&producer](const ndn::Interest& interest) {
    ndn::Data data(interest.name());
    data.setContent("r");
    data.sign();
    producer->putData(std::move(data));
  });

  const double start = nowSeconds();
  for (std::uint64_t i = 0; i < exchanges; ++i) {
    ndn::Interest interest(ndn::Name("/svc").appendNumber(i));
    if (mode == Mode::kCountersAndTracing) {
      interest.setTraceContext(tracer.startTrace("bench-exchange", "bench"));
    }
    bool done = false;
    consumer->expressInterest(
        interest,
        [&done](const ndn::Interest&, const ndn::Data&) { done = true; });
    sim.run();
    sink(done ? 1 : 0);
  }
  ThroughputResult result;
  result.exchangesPerSec =
      static_cast<double>(exchanges) / (nowSeconds() - start);
  return result;
}

}  // namespace

int main() {
  constexpr std::uint64_t kIncrements = 20'000'000;
  constexpr std::uint64_t kExchanges = 20'000;

  bench::printHeader("Telemetry hot path: counter increment cost");
  bench::printRow({"mode", "ns/inc"});
  bench::printRule(2);

  std::uint64_t plain = 0;
  const double plainNs = measureNs(kIncrements, [&plain](std::uint64_t) { ++plain; });
  sink(plain);
  bench::printRow({"plain-uint64", bench::fmt(plainNs, "%.3f")});

  telemetry::NoopCounter noop;
  const double noopNs = measureNs(kIncrements, [&noop](std::uint64_t) { noop.inc(); });
  sink(noop.value());
  bench::printRow({"noop-counter", bench::fmt(noopNs, "%.3f")});

  telemetry::MetricsRegistry registry;
  telemetry::Counter& counter = registry.counter("lidc_bench_events");
  const double counterNs =
      measureNs(kIncrements, [&counter](std::uint64_t) { counter.inc(); });
  sink(counter.value());
  bench::printRow({"atomic-counter", bench::fmt(counterNs, "%.3f")});

  // Anti-pattern measured on purpose: looking the family up per
  // increment instead of holding the reference.
  const double lookupNs = measureNs(kIncrements / 100, [&registry](std::uint64_t) {
    registry.counter("lidc_bench_lookup", {{"node", "n1"}}).inc();
  });
  sink(registry.counter("lidc_bench_lookup", {{"node", "n1"}}).value());
  bench::printRow({"family-lookup", bench::fmt(lookupNs, "%.3f")});

  bench::printHeader("Flight recorder: record() cost into the ring");
  bench::printRow({"mode", "ns/record"});
  bench::printRule(2);
  sim::Simulator frSim;
  telemetry::FlightRecorder recorder(frSim, 4096);
  const double recordNs = measureNs(kIncrements / 10, [&recorder](std::uint64_t i) {
    recorder.record("bench", log::Level::kWarn,
                    i % 2 == 0 ? "event-even" : "event-odd");
  });
  sink(recorder.recorded());
  bench::printRow({"record", bench::fmt(recordNs, "%.3f")});
  // The null-recorder call site (every component holds a possibly-null
  // pointer) must cost a predicted branch, nothing more.
  telemetry::FlightRecorder* nullRecorder = nullptr;
  const double nullRecordNs = measureNs(kIncrements, [&nullRecorder](std::uint64_t i) {
    LIDC_FR_EVENT(nullRecorder, kWarn, "bench", i % 2 == 0 ? "a" : "b");
  });
  bench::printRow({"null-call-site", bench::fmt(nullRecordNs, "%.3f")});

  bench::printHeader("Alert engine: rule evaluations per second");
  bench::printRow({"rules", "evals/s"});
  bench::printRule(2);
  double alertEvalsPerSec = 0;
  {
    constexpr int kRules = 64;
    constexpr std::uint64_t kEvalPasses = 20'000;
    sim::Simulator aeSim;
    telemetry::AlertEngine engine(aeSim);
    std::map<std::string, double> values;
    for (int r = 0; r < kRules; ++r) {
      const std::string series = "s" + std::to_string(r);
      values[series] = static_cast<double>(r);
      engine.addThresholdRule("rule-" + std::to_string(r), series,
                              telemetry::AlertComparison::kAbove, 1e9);
    }
    engine.setValueSource([&values] { return values; });
    const double start = nowSeconds();
    int transitions = 0;
    for (std::uint64_t i = 0; i < kEvalPasses; ++i) transitions += engine.evaluate();
    sink(static_cast<std::uint64_t>(transitions));
    alertEvalsPerSec = static_cast<double>(kEvalPasses) * kRules /
                       (nowSeconds() - start);
    bench::printRow({bench::fmt(static_cast<double>(kRules), "%.0f"),
                     bench::fmt(alertEvalsPerSec, "%.0f")});
  }

  bench::printHeader("Forwarder throughput: instrumentation on vs off");
  bench::printRow({"mode", "exchanges/s"});
  bench::printRule(2);
  const ThroughputResult off = forwarderThroughput(Mode::kOff, kExchanges);
  bench::printRow({"off", bench::fmt(off.exchangesPerSec, "%.0f")});
  const ThroughputResult counters =
      forwarderThroughput(Mode::kCounters, kExchanges);
  bench::printRow({"counters", bench::fmt(counters.exchangesPerSec, "%.0f")});
  const ThroughputResult traced =
      forwarderThroughput(Mode::kCountersAndTracing, kExchanges);
  bench::printRow({"counters+trace", bench::fmt(traced.exchangesPerSec, "%.0f")});
  const double counterOverheadPct =
      100.0 * (off.exchangesPerSec - counters.exchangesPerSec) /
      off.exchangesPerSec;
  const double tracingOverheadPct =
      100.0 * (off.exchangesPerSec - traced.exchangesPerSec) /
      off.exchangesPerSec;
  std::printf("counter overhead: %.1f%%, counter+tracing overhead: %.1f%%\n",
              counterOverheadPct, tracingOverheadPct);

  std::printf(
      "shape check: a held Counter& costs one relaxed fetch_add (~plain\n"
      "increment); NoopCounter compiles away entirely; only the per-call\n"
      "family lookup pays for hashing. The forwarder mirrors hold\n"
      "references, so counters-only throughput stays within a few percent\n"
      "of uninstrumented; per-hop span recording costs more and is only\n"
      "paid by Interests that actually carry a trace context.\n");

  bench::JsonReport report("telemetry");
  report.add("plain_uint64_inc_ns", plainNs);
  report.add("noop_counter_inc_ns", noopNs);
  report.add("atomic_counter_inc_ns", counterNs);
  report.add("family_lookup_inc_ns", lookupNs);
  report.add("flight_recorder_record_ns", recordNs);
  report.add("flight_recorder_null_site_ns", nullRecordNs);
  report.add("alert_rule_evals_per_s", alertEvalsPerSec);
  report.add("forwarder_exchanges_per_s_off", off.exchangesPerSec);
  report.add("forwarder_exchanges_per_s_counters", counters.exchangesPerSec);
  report.add("forwarder_exchanges_per_s_traced", traced.exchangesPerSec);
  report.add("counter_overhead_pct", counterOverheadPct);
  report.add("tracing_overhead_pct", tracingOverheadPct);
  report.write();
  return 0;
}
