// Ablation A — placement latency vs overlay size and strategy.
//
// Claim (paper SI/SII): name-based placement needs no prior knowledge of
// cluster locations; the network takes the request to the nearest (or
// best) cluster. This bench measures the client-observed placement
// latency (Interest out -> gateway ack back, in simulated time) as the
// number of clusters in the overlay grows, for each forwarding strategy.
#include <cstdio>

#include "bench_util.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"

namespace {

using namespace lidc;

struct Scenario {
  core::PlacementStrategy strategy;
  const char* label;
};

/// Builds an overlay with one client and `clusterCount` clusters at
/// latencies spread between 5 and 100 ms, runs `jobs` placements, and
/// returns the latency summary in milliseconds.
bench::Summary runScenario(int clusterCount, core::PlacementStrategy strategy,
                           int jobs) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");

  for (int i = 0; i < clusterCount; ++i) {
    core::ComputeClusterConfig config;
    config.name = "cluster-" + std::to_string(i);
    config.perNode = k8s::Resources{MilliCpu::fromCores(64), ByteSize::fromGiB(256)};
    auto& cluster = overlay.addCluster(config);
    cluster.cluster().registerApp("sleeper", [](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(300);
      return result;
    });
    cluster.gateway().jobs().mapAppToImage("sleep", "sleeper");
    // Latency spread: cluster i sits at 5 + i*95/max ms.
    const double ms =
        5.0 + (clusterCount == 1 ? 0.0
                                 : 95.0 * i / static_cast<double>(clusterCount - 1));
    overlay.connect("client-host", config.name,
                    net::LinkParams{sim::Duration::millis(static_cast<int>(ms))});
    overlay.announceCluster(config.name);
  }
  overlay.setPlacementStrategy(strategy);

  core::LidcClient client(*overlay.topology().node("client-host"), "bench");
  std::vector<double> latenciesMs;
  for (int i = 0; i < jobs; ++i) {
    core::ComputeRequest request;
    request.app = "sleep";
    request.cpu = MilliCpu::fromCores(1);
    request.memory = ByteSize::fromGiB(1);
    client.submit(request, [&](Result<core::SubmitResult> r) {
      if (r.ok()) latenciesMs.push_back(r->placementLatency.toMillis());
    });
    sim.runUntil(sim.now() + sim::Duration::seconds(2));
  }
  return bench::summarize(std::move(latenciesMs));
}

}  // namespace

int main() {
  bench::printHeader("Ablation A: placement latency vs overlay size");
  const Scenario scenarios[] = {
      {core::PlacementStrategy::kBestRoute, "best-route"},
      {core::PlacementStrategy::kLoadBalance, "load-balance"},
      {core::PlacementStrategy::kRoundRobin, "round-robin"},
  };
  constexpr int kJobs = 40;

  bench::JsonReport report("placement_latency");
  bench::printRow({"strategy", "clusters", "mean(ms)", "p50(ms)", "p95(ms)"});
  bench::printRule(5);
  for (const auto& scenario : scenarios) {
    for (int clusters : {1, 2, 4, 8, 16}) {
      const auto summary = runScenario(clusters, scenario.strategy, kJobs);
      bench::printRow({scenario.label, std::to_string(clusters),
                       bench::fmt(summary.mean), bench::fmt(summary.p50),
                       bench::fmt(summary.p95)});
      const std::string key =
          std::string(scenario.label) + "_c" + std::to_string(clusters);
      report.add(key + "_mean_ms", summary.mean);
      report.add(key + "_p95_ms", summary.p95);
    }
  }
  std::printf(
      "shape check: best-route stays at the nearest-cluster RTT regardless of\n"
      "overlay size; load-balance/round-robin pay for touching farther clusters.\n");
  report.write();
  return 0;
}
