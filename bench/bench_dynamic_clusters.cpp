// Ablation B — dynamic cluster membership (churn).
//
// Claim (paper SI): LIDC "supports seamless job placement, addition and
// removal of clusters in the compute overlay". This bench keeps a
// steady stream of job submissions while clusters join and leave at a
// swept churn rate, and reports placement success and latency.
#include <cstdio>

#include "bench_util.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"

namespace {

using namespace lidc;

struct ChurnResult {
  int attempted = 0;
  int placed = 0;
  double meanLatencyMs = 0;
  std::map<std::string, int> placementsPerCluster;
};

/// `churnPeriodS` seconds between membership changes (0 = static).
ChurnResult runChurn(double churnPeriodS, int totalSeconds) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");

  constexpr int kClusterCount = 4;
  std::vector<std::string> names;
  for (int i = 0; i < kClusterCount; ++i) {
    core::ComputeClusterConfig config;
    config.name = "cluster-" + std::to_string(i);
    config.perNode = k8s::Resources{MilliCpu::fromCores(64), ByteSize::fromGiB(256)};
    auto& cluster = overlay.addCluster(config);
    cluster.cluster().registerApp("sleeper", [](k8s::AppContext&) {
      k8s::AppResult result;
      result.runtime = sim::Duration::seconds(15);
      return result;
    });
    cluster.gateway().jobs().mapAppToImage("sleep", "sleeper");
    overlay.connect("client-host", config.name,
                    net::LinkParams{sim::Duration::millis(5 + 10 * i)});
    overlay.announceCluster(config.name);
    names.push_back(config.name);
  }

  core::LidcClient client(*overlay.topology().node("client-host"), "bench");
  ChurnResult result;
  std::vector<double> latencies;

  double nextChurnAt = churnPeriodS;
  std::size_t churnIndex = 0;
  bool victimOut = false;
  std::string victim;

  for (int second = 0; second < totalSeconds; ++second) {
    // Membership churn: alternately remove and re-add a rotating victim.
    if (churnPeriodS > 0 && second >= nextChurnAt) {
      nextChurnAt += churnPeriodS;
      if (!victimOut) {
        victim = names[churnIndex % names.size()];
        overlay.withdrawCluster(victim);
        victimOut = true;
      } else {
        overlay.announceCluster(victim);
        victimOut = false;
        ++churnIndex;
      }
    }

    ++result.attempted;
    core::ComputeRequest request;
    request.app = "sleep";
    request.cpu = MilliCpu::fromCores(1);
    request.memory = ByteSize::fromGiB(1);
    client.submit(request, [&](Result<core::SubmitResult> r) {
      if (!r.ok()) return;
      ++result.placed;
      latencies.push_back(r->placementLatency.toMillis());
      ++result.placementsPerCluster[r->cluster];
    });
    sim.runUntil(sim.now() + sim::Duration::seconds(1));
  }
  sim.runUntil(sim.now() + sim::Duration::seconds(20));
  result.meanLatencyMs = bench::summarize(latencies).mean;
  return result;
}

}  // namespace

int main() {
  bench::printHeader("Ablation B: placement under cluster churn (4 clusters, 120 s)");
  bench::printRow({"churn-period", "attempted", "placed", "success", "mean-lat",
                   "clusters-used"});
  bench::printRule(6);

  bench::JsonReport report("dynamic_clusters");
  for (double period : {0.0, 30.0, 10.0, 4.0}) {
    const auto result = runChurn(period, 120);
    bench::printRow({period == 0 ? "static" : bench::fmt(period, "%.0fs"),
                     std::to_string(result.attempted), std::to_string(result.placed),
                     bench::fmt(100.0 * result.placed / result.attempted, "%.1f%%"),
                     bench::fmt(result.meanLatencyMs) + "ms",
                     std::to_string(result.placementsPerCluster.size())});
    const std::string key =
        period == 0 ? "static" : "churn" + bench::fmt(period, "%.0f") + "s";
    report.add(key + "_success_pct", 100.0 * result.placed / result.attempted);
    report.add(key + "_mean_latency_ms", result.meanLatencyMs);
    report.add(key + "_clusters_used",
               static_cast<double>(result.placementsPerCluster.size()));
  }
  std::printf(
      "shape check: success stays ~100%% under churn because placement follows\n"
      "names, not configured cluster addresses; latency rises slightly when the\n"
      "nearest cluster happens to be withdrawn.\n");
  report.write();
  return 0;
}
