// Ablation Q — multi-tenant QoS isolation.
//
// One 4-core cluster, three tenants: two well-behaved "victims" submit
// a steady trickle while a noisy neighbor floods submits at ~10x its
// fair rate. The workload runs twice: QoS off (untenanted compute
// path — first-come-first-served, the flood wins most capacity races
// and the victims burn retries) and QoS on (tenant-scoped submits
// through the DRR admission plane). Reports victim completion-latency
// percentiles, admitted shares, and the aggressor's rejection bill.
// Results go to BENCH_qos_isolation.json.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "qos/tenant.hpp"
#include "sim/chaos.hpp"

namespace {

using namespace lidc;

constexpr int kVictimJobs = 20;          // per victim tenant
constexpr double kVictimSpacingSec = 2.0;
constexpr double kFloodStartSec = 0.5;
constexpr double kFloodEndSec = 38.0;
// Fair per-tenant drain is ~0.23 jobs/s (4 cores / ~5.8 s per job,
// three ways); 10x that is one submit every ~0.43 s.
constexpr double kFloodGapSec = 0.43;

struct RunStats {
  int victimCompleted = 0;
  int victimFailed = 0;
  std::vector<double> victimLatenciesSec;
  int aggressorCompleted = 0;
  int aggressorRejectedTerminal = 0;
  std::uint64_t admittedAcme = 0;
  std::uint64_t admittedBlue = 0;
  std::uint64_t admittedNoisy = 0;
  std::uint64_t aggressorRejects = 0;
};

core::ClientOptions clientOptions(const std::string& tenant, int retries) {
  core::ClientOptions options;
  options.tenant = tenant;  // empty = untenanted legacy compute path
  options.interestLifetime = sim::Duration::seconds(60);
  options.statusPollInterval = sim::Duration::seconds(2);
  options.maxSubmitRetries = retries;
  options.backoffMax = sim::Duration::seconds(8);
  return options;
}

RunStats runScenario(bool qosOn) {
  sim::Simulator sim;
  qos::TenantRegistry tenants;
  for (const std::string id : {"acme", "blue", "noisy"}) {
    qos::TenantSpec spec;
    spec.id = id;
    spec.weight = 1.0;
    (void)tenants.registerTenant(spec);
  }

  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");
  core::ComputeClusterConfig config;
  config.name = "east";
  config.nodeCount = 1;
  config.perNode = k8s::Resources{MilliCpu::fromCores(4), ByteSize::fromGiB(8)};
  if (qosOn) {
    config.tenants = &tenants;
    config.admission.maxQueuePerTenant = 8;
  }
  auto& east = overlay.addCluster(config);
  east.cluster().registerApp("sleeper", [](k8s::AppContext&) {
    k8s::AppResult result;
    result.runtime = sim::Duration::seconds(5);
    return result;
  });
  east.gateway().jobs().mapAppToImage("sleep", "sleeper");
  overlay.connect("client-host", "east", net::LinkParams{sim::Duration::millis(5)});
  overlay.announceCluster("east");

  ndn::Forwarder& host = *overlay.topology().node("client-host");
  core::LidcClient acme(host, "acme-user",
                        clientOptions(qosOn ? "acme" : "", 20), 101);
  core::LidcClient blue(host, "blue-user",
                        clientOptions(qosOn ? "blue" : "", 20), 202);
  core::LidcClient noisy(host, "noisy-user",
                         clientOptions(qosOn ? "noisy" : "", 2), 303);

  RunStats stats;
  auto request = [] {
    core::ComputeRequest r;
    r.app = "sleep";
    r.cpu = MilliCpu::fromCores(1);
    r.memory = ByteSize::fromGiB(1);
    return r;
  };

  for (int i = 0; i < kVictimJobs; ++i) {
    const sim::Time at =
        sim::Time() + sim::Duration::seconds(kVictimSpacingSec * i);
    sim.scheduleAt(at, [&, at] {
      for (core::LidcClient* client : {&acme, &blue}) {
        client->runToCompletion(request(), [&, at](Result<core::JobOutcome> r) {
          if (r.ok() && r->finalStatus.state == k8s::JobState::kCompleted) {
            ++stats.victimCompleted;
            stats.victimLatenciesSec.push_back((sim.now() - at).toSeconds());
          } else {
            ++stats.victimFailed;
          }
        });
      }
    });
  }

  sim::ChaosEngine chaos(sim, /*seed=*/7);
  chaos.noisyNeighbor("noisy-flood",
                      sim::Time() + sim::Duration::seconds(kFloodStartSec),
                      sim::Time() + sim::Duration::seconds(kFloodEndSec),
                      sim::Duration::seconds(kFloodGapSec), [&] {
                        noisy.runToCompletion(
                            request(), [&](Result<core::JobOutcome> r) {
                              if (r.ok()) {
                                ++stats.aggressorCompleted;
                              } else if (r.status().code() ==
                                         StatusCode::kResourceExhausted) {
                                ++stats.aggressorRejectedTerminal;
                              }
                            });
                      });

  sim.run();

  if (qosOn) {
    const auto* admission = east.gateway().admission();
    stats.admittedAcme = admission->admitted("acme");
    stats.admittedBlue = admission->admitted("blue");
    stats.admittedNoisy = admission->admitted("noisy");
    stats.aggressorRejects = admission->rejected("noisy");
  }
  return stats;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto index =
      static_cast<std::size_t>(static_cast<double>(samples.size()) * p);
  return samples[std::min(samples.size() - 1, index)];
}

double mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0;
  for (const double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

}  // namespace

int main() {
  bench::printHeader("Ablation Q: noisy-neighbor isolation, QoS off vs on");
  std::printf(
      "workload: 2 victims x %d one-core 5 s jobs (one every %.0f s) vs a\n"
      "noisy neighbor flooding a submit every %.2f s (~10x fair rate) on a\n"
      "single 4-core cluster\n",
      kVictimJobs, kVictimSpacingSec, kFloodGapSec);

  bench::printRow({"qos", "victims-ok", "victim-mean", "victim-p50",
                   "victim-p99", "flood-ok", "flood-rejected"});
  bench::printRule(7);

  bench::JsonReport report("qos_isolation");
  RunStats off, on;
  for (const bool qosOn : {false, true}) {
    const RunStats stats = runScenario(qosOn);
    (qosOn ? on : off) = stats;
    bench::printRow(
        {qosOn ? "on" : "off",
         std::to_string(stats.victimCompleted) + "/" +
             std::to_string(2 * kVictimJobs),
         bench::fmt(mean(stats.victimLatenciesSec), "%.1f") + "s",
         bench::fmt(percentile(stats.victimLatenciesSec, 0.50), "%.1f") + "s",
         bench::fmt(percentile(stats.victimLatenciesSec, 0.99), "%.1f") + "s",
         std::to_string(stats.aggressorCompleted),
         std::to_string(stats.aggressorRejectedTerminal)});
    const std::string key = qosOn ? "qos_on" : "qos_off";
    report.add(key + "_victim_completed", stats.victimCompleted);
    report.add(key + "_victim_failed", stats.victimFailed);
    report.add(key + "_victim_mean_latency_s", mean(stats.victimLatenciesSec));
    report.add(key + "_victim_p50_latency_s",
               percentile(stats.victimLatenciesSec, 0.50));
    report.add(key + "_victim_p99_latency_s",
               percentile(stats.victimLatenciesSec, 0.99));
    report.add(key + "_aggressor_completed", stats.aggressorCompleted);
    report.add(key + "_aggressor_terminal_rejects",
               stats.aggressorRejectedTerminal);
  }
  report.add("qos_on_admitted_acme", static_cast<double>(on.admittedAcme));
  report.add("qos_on_admitted_blue", static_cast<double>(on.admittedBlue));
  report.add("qos_on_admitted_noisy", static_cast<double>(on.admittedNoisy));
  report.add("qos_on_aggressor_rejects",
             static_cast<double>(on.aggressorRejects));
  const double p99Delta = percentile(off.victimLatenciesSec, 0.99) -
                          percentile(on.victimLatenciesSec, 0.99);
  report.add("victim_p99_saved_s", p99Delta);

  std::printf(
      "\nQoS saves %.1f s of victim p99 completion latency.\n"
      "shape check: with QoS off the flood wins most capacity races and\n"
      "victims burn congestion-nack retries behind it; with QoS on the DRR\n"
      "drain holds every tenant to its weight (admitted %llu/%llu/%llu for\n"
      "acme/blue/noisy) and the aggressor's excess is shed as quota nacks\n"
      "(%llu rejects) the client maps to RESOURCE_EXHAUSTED backoff.\n",
      p99Delta, static_cast<unsigned long long>(on.admittedAcme),
      static_cast<unsigned long long>(on.admittedBlue),
      static_cast<unsigned long long>(on.admittedNoisy),
      static_cast<unsigned long long>(on.aggressorRejects));
  if (p99Delta <= 0.0) {
    std::printf("WARNING: expected victim p99 to improve with QoS on\n");
  }
  report.write();
  return 0;
}
