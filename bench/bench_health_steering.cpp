// Ablation O — telemetry-steered placement.
//
// The same gateway-blackout workload runs twice: once with the health
// loop closed (collector health scores feeding AdaptivePlacement route
// costs plus the client's proactive-failover gate) and once with the
// loop open (jobs discover the dark gateway the hard way, via Interest
// timeouts and failover). Reports completion latency percentiles, how
// many post-detection jobs still landed on the degraded cluster, and
// the steering on/off latency delta. Results go to
// BENCH_health_steering.json.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/adaptive.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "sim/chaos.hpp"
#include "telemetry/monitor.hpp"

namespace {

using namespace lidc;

constexpr int kJobs = 21;
constexpr double kJobSpacingSec = 2.0;
constexpr double kBlackoutStartSec = 12.0;
constexpr double kBlackoutSec = 30.0;
constexpr double kMinHealth = 0.5;

void registerSleeper(core::ComputeCluster& cluster) {
  cluster.cluster().registerApp("sleeper", [](k8s::AppContext&) {
    k8s::AppResult result;
    result.runtime = sim::Duration::seconds(10);
    return result;
  });
  cluster.gateway().jobs().mapAppToImage("sleep", "sleeper");
}

struct RunStats {
  int completed = 0;
  int failed = 0;
  int failovers = 0;
  /// Jobs launched after the health plane could have reacted (first
  /// scrape past the blackout) that still ran on the dark cluster.
  int lateJobsOnEast = 0;
  int lateJobs = 0;
  std::vector<double> latenciesSec;
};

RunStats runScenario(bool steering) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");

  core::ComputeClusterConfig config;
  config.perNode = k8s::Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(32)};
  config.nodeCount = 2;
  config.name = "east";
  auto& east = overlay.addCluster(config);
  registerSleeper(east);
  config.name = "west";
  auto& west = overlay.addCluster(config);
  registerSleeper(west);
  overlay.connect("client-host", "east", net::LinkParams{sim::Duration::millis(5)});
  overlay.connect("client-host", "west", net::LinkParams{sim::Duration::millis(40)});
  overlay.announceCluster("east");
  overlay.announceCluster("west");

  telemetry::MetricsRegistry registry;
  overlay.attachTelemetry(registry);

  telemetry::TelemetryCollectorOptions collectorOptions;
  collectorOptions.interestLifetime = sim::Duration::millis(800);
  collectorOptions.freshnessWindow = sim::Duration::seconds(3);
  collectorOptions.scrapeInterval = sim::Duration::seconds(1);
  telemetry::TelemetryCollector collector(*overlay.topology().node("client-host"),
                                          collectorOptions);
  collector.watchCluster("east");
  collector.watchCluster("west");

  core::AdaptivePlacement adaptive(overlay);
  if (steering) {
    collector.setHealthListener([&adaptive](const std::string& cluster, double s) {
      adaptive.observeHealth(cluster, s);
      adaptive.tick();
    });
  }

  core::ClientOptions options;
  options.interestLifetime = sim::Duration::seconds(2);
  options.statusPollInterval = sim::Duration::seconds(1);
  options.maxSubmitRetries = 8;
  options.maxStatusPollFailures = 4;
  options.maxFailovers = 6;
  options.deadline = sim::Duration::minutes(10);
  if (steering) {
    options.healthProvider = [&collector](const std::string& cluster) {
      return collector.healthScore(cluster);
    };
    options.minClusterHealth = kMinHealth;
  }
  core::LidcClient client(*overlay.topology().node("client-host"), "bench",
                          options, /*seed=*/777);

  sim::ChaosEngine chaos(sim, /*seed=*/99);
  chaos.blackout("east-gw-dark",
                 sim::Time::fromNanos(0) + sim::Duration::seconds(kBlackoutStartSec),
                 sim::Duration::seconds(kBlackoutSec),
                 [&east](bool on) { east.gateway().setBlackout(on); });

  if (steering) collector.start();

  RunStats stats;
  // "Late" = launched once the first post-blackout scrape could have
  // landed (one scrape interval past the blackout start).
  const double detectableSec =
      kBlackoutStartSec + collectorOptions.scrapeInterval.toSeconds() * 2;
  for (int i = 0; i < kJobs; ++i) {
    const sim::Time submitAt =
        sim::Time::fromNanos(0) + sim::Duration::seconds(kJobSpacingSec * i);
    sim.scheduleAt(submitAt, [&, submitAt] {
      core::ComputeRequest request;
      request.app = "sleep";
      request.cpu = MilliCpu::fromCores(1);
      request.memory = ByteSize::fromGiB(1);
      client.runToCompletion(request, [&, submitAt](Result<core::JobOutcome> r) {
        const double launched = submitAt.toSeconds();
        const bool late =
            launched >= detectableSec && launched < kBlackoutStartSec + kBlackoutSec;
        if (late) ++stats.lateJobs;
        if (r.ok() && r->finalStatus.state == k8s::JobState::kCompleted) {
          ++stats.completed;
          stats.failovers += r->failovers;
          stats.latenciesSec.push_back((sim.now() - submitAt).toSeconds());
          if (late && r->finalStatus.cluster == "east") ++stats.lateJobsOnEast;
        } else {
          ++stats.failed;
        }
      });
    });
  }
  const sim::Time stopAt = sim::Time::fromNanos(0) + sim::Duration::seconds(90);
  if (steering) {
    sim.scheduleAt(stopAt, [&collector] { collector.stop(); });
  }
  sim.run();
  return stats;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto index =
      static_cast<std::size_t>(static_cast<double>(samples.size()) * p);
  return samples[std::min(samples.size() - 1, index)];
}

double mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0;
  for (const double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

}  // namespace

int main() {
  bench::printHeader("Ablation O: health-steered placement vs timeout discovery");
  std::printf(
      "workload: %d one-core 10 s jobs, one every %.0f s; east gateway dark\n"
      "t=%.0f..%.0f s (east is the near cluster, 5 ms vs west's 40 ms)\n",
      kJobs, kJobSpacingSec, kBlackoutStartSec, kBlackoutStartSec + kBlackoutSec);

  bench::printRow({"steering", "complete", "failovers", "late-on-east",
                   "mean", "p50", "p99"});
  bench::printRule(7);

  bench::JsonReport report("health_steering");
  RunStats on, off;
  for (const bool steering : {false, true}) {
    const RunStats stats = runScenario(steering);
    (steering ? on : off) = stats;
    bench::printRow(
        {steering ? "on" : "off",
         std::to_string(stats.completed) + "/" + std::to_string(kJobs),
         std::to_string(stats.failovers),
         std::to_string(stats.lateJobsOnEast) + "/" + std::to_string(stats.lateJobs),
         bench::fmt(mean(stats.latenciesSec), "%.1f") + "s",
         bench::fmt(percentile(stats.latenciesSec, 0.50), "%.1f") + "s",
         bench::fmt(percentile(stats.latenciesSec, 0.99), "%.1f") + "s"});
    const std::string key = steering ? "steering_on" : "steering_off";
    report.add(key + "_completed", stats.completed);
    report.add(key + "_failovers", stats.failovers);
    report.add(key + "_late_jobs_on_degraded", stats.lateJobsOnEast);
    report.add(key + "_late_jobs", stats.lateJobs);
    report.add(key + "_mean_latency_s", mean(stats.latenciesSec));
    report.add(key + "_p50_latency_s", percentile(stats.latenciesSec, 0.50));
    report.add(key + "_p99_latency_s", percentile(stats.latenciesSec, 0.99));
  }
  const double meanDelta = mean(off.latenciesSec) - mean(on.latenciesSec);
  const double p99Delta = percentile(off.latenciesSec, 0.99) -
                          percentile(on.latenciesSec, 0.99);
  report.add("mean_latency_saved_s", meanDelta);
  report.add("p99_latency_saved_s", p99Delta);
  std::printf(
      "\nsteering saves %.1f s mean / %.1f s p99 completion latency.\n"
      "shape check: with the loop open every blackout-window job burns\n"
      "Interest lifetimes and backoff discovering the dark gateway; with\n"
      "it closed the scraped blackout-drop pressure zeroes east's health,\n"
      "the route cost moves, and late jobs go straight to west — the\n"
      "late-on-east count collapses while completion stays %d/%d.\n",
      meanDelta, p99Delta, kJobs, kJobs);
  report.write();
  return 0;
}
