// Google-benchmark glue for the JsonReport machinery: a ConsoleReporter
// that also records each run's per-iteration real time (and throughput
// counters, when present) so gbench binaries emit the same
// BENCH_<name>.json files as the scenario benches.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.hpp"

namespace lidc::bench {

class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(std::string name) : report_(std::move(name)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      std::string key = run.benchmark_name();
      for (char& c : key) {
        if (c == '/' || c == ':' || c == '.' || c == ' ') c = '_';
      }
      const double iters = run.iterations > 0
                               ? static_cast<double>(run.iterations)
                               : 1.0;
      report_.add(key + "_real_ns", run.real_accumulated_time * 1e9 / iters);
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        report_.add(key + "_items_per_s", items->second.value);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  void write() const { report_.write(); }

 private:
  JsonReport report_;
};

/// Drop-in replacement for BENCHMARK_MAIN() that writes
/// BENCH_<name>.json after the run.
inline int runBenchmarksWithJsonReport(int argc, char** argv,
                                       const std::string& name) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter(name);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.write();
  benchmark::Shutdown();
  return 0;
}

}  // namespace lidc::bench
