// Ablation C — failover / resilience.
//
// Claim (paper SI): LIDC "adapts in real-time to changes in load,
// network conditions, or cluster availability". This bench kills the
// nearest cluster while a stream of jobs is being placed and measures
// (a) per-job placement outcome around the outage and (b) the placement
// latency penalty of failing over, comparing LIDC's nack-based failover
// with the centralized controller's heartbeat-delayed detection.
#include <cstdio>

#include "bench_util.hpp"
#include "core/centralized.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"

namespace {

using namespace lidc;

void registerSleeper(core::ComputeCluster& cluster) {
  cluster.cluster().registerApp("sleeper", [](k8s::AppContext&) {
    k8s::AppResult result;
    result.runtime = sim::Duration::seconds(20);
    return result;
  });
  cluster.gateway().jobs().mapAppToImage("sleep", "sleeper");
}

core::ComputeRequest sleepRequest() {
  core::ComputeRequest request;
  request.app = "sleep";
  request.cpu = MilliCpu::fromCores(1);
  request.memory = ByteSize::fromGiB(1);
  return request;
}

struct FailoverResult {
  int placedBeforeOutage = 0;
  int placedDuringOutage = 0;
  int failedDuringOutage = 0;
  double meanLatencyBeforeMs = 0;
  double meanLatencyDuringMs = 0;
};

FailoverResult runLidc() {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");
  core::ComputeClusterConfig nearConfig;
  nearConfig.name = "near";
  nearConfig.perNode = k8s::Resources{MilliCpu::fromCores(64), ByteSize::fromGiB(256)};
  registerSleeper(overlay.addCluster(nearConfig));
  core::ComputeClusterConfig farConfig;
  farConfig.name = "far";
  farConfig.perNode = k8s::Resources{MilliCpu::fromCores(64), ByteSize::fromGiB(256)};
  registerSleeper(overlay.addCluster(farConfig));
  overlay.connect("client-host", "near", net::LinkParams{sim::Duration::millis(5)});
  overlay.connect("client-host", "far", net::LinkParams{sim::Duration::millis(60)});
  overlay.announceCluster("near");
  overlay.announceCluster("far");

  core::LidcClient client(*overlay.topology().node("client-host"), "bench");

  FailoverResult result;
  std::vector<double> before;
  std::vector<double> during;
  bool outage = false;

  // One job per simulated second for 60 s; outage at t=30 s.
  for (int second = 0; second < 60; ++second) {
    if (second == 30) {
      overlay.failCluster("near");
      outage = true;
    }
    client.submit(sleepRequest(), [&, outage](Result<core::SubmitResult> r) {
      if (!r.ok()) {
        if (outage) ++result.failedDuringOutage;
        return;
      }
      if (outage) {
        ++result.placedDuringOutage;
        during.push_back(r->placementLatency.toMillis());
      } else {
        ++result.placedBeforeOutage;
        before.push_back(r->placementLatency.toMillis());
      }
    });
    sim.runUntil(sim.now() + sim::Duration::seconds(1));
  }
  sim.runUntil(sim.now() + sim::Duration::seconds(30));
  result.meanLatencyBeforeMs = bench::summarize(before).mean;
  result.meanLatencyDuringMs = bench::summarize(during).mean;
  return result;
}

FailoverResult runCentralized() {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  core::CentralizedOptions options;
  options.heartbeatInterval = sim::Duration::seconds(10);
  core::CentralizedController controller(sim, options);

  core::ComputeClusterConfig nearConfig;
  nearConfig.name = "near";
  nearConfig.perNode = k8s::Resources{MilliCpu::fromCores(64), ByteSize::fromGiB(256)};
  auto& nearCluster = overlay.addCluster(nearConfig);
  registerSleeper(nearCluster);
  core::ComputeClusterConfig farConfig;
  farConfig.name = "far";
  farConfig.perNode = k8s::Resources{MilliCpu::fromCores(64), ByteSize::fromGiB(256)};
  auto& farCluster = overlay.addCluster(farConfig);
  registerSleeper(farCluster);
  controller.registerCluster(nearCluster, sim::Duration::millis(5));
  controller.registerCluster(farCluster, sim::Duration::millis(60));

  FailoverResult result;
  std::vector<double> before;
  std::vector<double> during;
  bool outage = false;

  for (int second = 0; second < 60; ++second) {
    if (second == 30) {
      controller.setClusterReachable("near", false);
      outage = true;
    }
    controller.submit(
        sleepRequest(), [&, outage](Result<core::CentralizedController::SubmitAck> r) {
          if (!r.ok()) {
            if (outage) ++result.failedDuringOutage;
            return;
          }
          if (outage) {
            ++result.placedDuringOutage;
            during.push_back(r->latency.toMillis());
          } else {
            ++result.placedBeforeOutage;
            before.push_back(r->latency.toMillis());
          }
        });
    sim.runUntil(sim.now() + sim::Duration::seconds(1));
  }
  sim.runUntil(sim.now() + sim::Duration::seconds(30));
  result.meanLatencyBeforeMs = bench::summarize(before).mean;
  result.meanLatencyDuringMs = bench::summarize(during).mean;
  return result;
}

}  // namespace

int main() {
  bench::printHeader("Ablation C: failover after nearest-cluster outage (30 jobs each side)");
  bench::printRow({"system", "ok-before", "ok-during", "lost-during",
                   "lat-before", "lat-during"});
  bench::printRule(6);

  const FailoverResult lidc = runLidc();
  bench::printRow({"LIDC", std::to_string(lidc.placedBeforeOutage),
                   std::to_string(lidc.placedDuringOutage),
                   std::to_string(lidc.failedDuringOutage),
                   bench::fmt(lidc.meanLatencyBeforeMs) + "ms",
                   bench::fmt(lidc.meanLatencyDuringMs) + "ms"});

  const FailoverResult central = runCentralized();
  bench::printRow({"centralized", std::to_string(central.placedBeforeOutage),
                   std::to_string(central.placedDuringOutage),
                   std::to_string(central.failedDuringOutage),
                   bench::fmt(central.meanLatencyBeforeMs) + "ms",
                   bench::fmt(central.meanLatencyDuringMs) + "ms"});

  std::printf(
      "shape check: LIDC loses no jobs (nack failover within one RTT); the\n"
      "centralized baseline keeps scheduling onto the dead cluster until its\n"
      "next heartbeat and loses those jobs.\n");

  bench::JsonReport report("failover");
  report.add("lidc_ok_before", lidc.placedBeforeOutage);
  report.add("lidc_ok_during", lidc.placedDuringOutage);
  report.add("lidc_lost_during", lidc.failedDuringOutage);
  report.add("lidc_latency_before_ms", lidc.meanLatencyBeforeMs);
  report.add("lidc_latency_during_ms", lidc.meanLatencyDuringMs);
  report.add("central_ok_before", central.placedBeforeOutage);
  report.add("central_ok_during", central.placedDuringOutage);
  report.add("central_lost_during", central.failedDuringOutage);
  report.add("central_latency_before_ms", central.meanLatencyBeforeMs);
  report.add("central_latency_during_ms", central.meanLatencyDuringMs);
  report.write();
  return 0;
}
