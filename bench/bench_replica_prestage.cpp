// Replica plane bench (Ablation R).
//
// Claim: predictive pre-staging — the WorkflowEngine's lookahead hooks
// feeding a PrestageCoordinator — moves a stage's far-cluster inputs
// while its producer is still running, so dispatches read locally and
// the makespan drops versus reactive dispatch-time staging; and after a
// cluster crash the RepairLoop restores every dataset's target
// replication factor from the survivors in bounded time. Both runs are
// deterministic: the same seed replays a byte-identical engine trace
// and scheduler event log. Results land in BENCH_replica_prestage.json.
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/transform_app.hpp"
#include "bench_util.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "datalake/file_server.hpp"
#include "k8s/pvc.hpp"
#include "net/topology.hpp"
#include "replica/directory.hpp"
#include "replica/prestage.hpp"
#include "replica/repair.hpp"
#include "workflow/engine.hpp"

namespace {

using namespace lidc;

constexpr std::size_t kRawBytes = 256 * 1024;
constexpr std::size_t kRefBytes = 1024 * 1024;  // per far-cluster input

ndn::Name lakeName(const std::string& path) {
  ndn::Name name = core::kDataPrefix;
  std::size_t begin = 0;
  while (begin < path.size()) {
    std::size_t end = path.find('/', begin);
    if (end == std::string::npos) end = path.size();
    if (end > begin) name.append(path.substr(begin, end - begin));
    begin = end + 1;
  }
  return name;
}

std::vector<std::string> lakeUris(const std::vector<std::string>& paths) {
  std::vector<std::string> uris;
  uris.reserve(paths.size());
  for (const std::string& path : paths) uris.push_back(lakeName(path).toUri());
  return uris;
}

/// prep -> analyze -> report; analyze and report each consume a 1 MiB
/// reference input that lives only on the far cluster.
workflow::WorkflowSpec chainSpec() {
  workflow::WorkflowSpec spec;
  spec.id = "ablr";
  const char* refs[] = {nullptr, "refs/panel", "refs/annotations"};
  const char* names[] = {"prep", "analyze", "report"};
  for (int i = 0; i < 3; ++i) {
    workflow::StageSpec stage;
    stage.name = names[i];
    stage.app = "transform";
    stage.cpu = MilliCpu::fromCores(2);
    stage.memory = ByteSize::fromGiB(1);
    if (i == 0) {
      stage.lakeInputs = {"raw/sample"};
    } else {
      stage.lakeInputs = {refs[i]};
      stage.stageInputs = {{names[i - 1], "input"}};
    }
    spec.addStage(stage);
  }
  return spec;
}

struct PrestageRun {
  workflow::WorkflowOutcome outcome;
  std::uint64_t prestagedBytes = 0;
  std::string signature;  // engine trace + scheduler event log
};

/// Fresh two-cluster world per run: "near" (5 ms) runs the work, "far"
/// (40 ms) holds the reference inputs. Deterministic per configuration.
std::optional<PrestageRun> runPrestageScenario(bool lookahead) {
  sim::Simulator sim;
  core::ClusterOverlay overlay(sim);
  overlay.addNode("client-host");
  std::map<std::string, core::ComputeCluster*> clusters;
  for (const std::string& name : {std::string("near"), std::string("far")}) {
    core::ComputeClusterConfig config;
    config.name = name;
    config.nodeCount = 4;
    config.perNode = k8s::Resources{MilliCpu::fromCores(8), ByteSize::fromGiB(16)};
    auto& cc = overlay.addCluster(config);
    // ~8 s per 256 KiB stage, so lookahead has a producer runtime to
    // hide the ~1 MiB reference transfers under.
    apps::TransformConfig slow;
    slow.bytesPerSecondPerCore = 32'768.0;
    slow.scalingEfficiency = 0.0;
    apps::installTransformApp(cc.cluster(), cc.store(), slow);
    clusters[name] = &cc;
  }
  overlay.connect("client-host", "near", net::LinkParams{sim::Duration::millis(5)});
  overlay.connect("client-host", "far", net::LinkParams{sim::Duration::millis(40)});
  overlay.announceCluster("near");
  overlay.announceCluster("far");

  (void)clusters["near"]->store().put(
      lakeName("raw/sample"), std::vector<std::uint8_t>(kRawBytes, 0x11));
  (void)clusters["far"]->store().put(
      lakeName("refs/panel"), std::vector<std::uint8_t>(kRefBytes, 0x22));
  (void)clusters["far"]->store().put(
      lakeName("refs/annotations"), std::vector<std::uint8_t>(kRefBytes, 0x33));

  core::ClientOptions clientOptions;
  clientOptions.statusPollInterval = sim::Duration::seconds(1);
  core::LidcClient client(*overlay.topology().node("client-host"), "bench-user",
                          clientOptions, /*seed=*/777);

  replica::TransferScheduler scheduler(clusters["near"]->forwarder(),
                                       clusters["near"]->store(), "near",
                                       replica::TransferOptions{});
  replica::PrestageCoordinator coordinator(scheduler, clusters["near"]->store());

  workflow::WorkflowOptions options;
  if (lookahead) {
    options.prestageHook = [&coordinator](const std::string& consumer,
                                          const std::vector<std::string>& inputs) {
      coordinator.prestage(consumer, lakeUris(inputs));
    };
  }
  options.ensureInputsLocal = [&coordinator](
                                  const std::string& stage,
                                  const std::vector<std::string>& inputs,
                                  std::function<void(std::uint64_t)> done) {
    coordinator.ensureLocal(stage, lakeUris(inputs), std::move(done));
  };
  workflow::WorkflowEngine engine(client, std::move(options));

  std::optional<PrestageRun> result;
  engine.run(chainSpec(), [&](Result<workflow::WorkflowOutcome> r) {
    if (r.ok()) result = PrestageRun{std::move(r).value(), 0, ""};
  });
  sim.run();
  if (result.has_value()) {
    result->prestagedBytes = scheduler.bytesMoved();
    result->signature = result->outcome.trace + scheduler.eventLog();
  }
  return result;
}

/// Crash-recovery half: datasets replicated on {east, west}, east's
/// routes vanish, the RepairLoop re-replicates onto south. Returns the
/// seconds from crash until every dataset is back at factor 2, plus the
/// repairs completed (negative recovery on failure).
struct RepairRun {
  double recoverySeconds = -1.0;
  std::uint64_t repairsCompleted = 0;
};

RepairRun runRepairScenario() {
  const ndn::Name dataPrefix = core::kDataPrefix;
  sim::Simulator sim;
  net::Topology topology(sim);
  topology.addNode("ops");
  struct Site {
    std::unique_ptr<k8s::PersistentVolumeClaim> pvc;
    std::unique_ptr<datalake::ObjectStore> store;
    std::unique_ptr<datalake::FileServer> server;
    std::unique_ptr<replica::ReplicaCatalog> catalog;
    std::unique_ptr<replica::TransferScheduler> scheduler;
  };
  std::map<std::string, Site> sites;
  for (const std::string& name : {std::string("east"), std::string("west"),
                                  std::string("south")}) {
    ndn::Forwarder& node = topology.addNode(name);
    topology.connect("ops", name, net::LinkParams{sim::Duration::millis(10)});
    Site& site = sites[name];
    site.pvc = std::make_unique<k8s::PersistentVolumeClaim>(
        name + "-lake", ByteSize::fromMiB(16));
    site.store = std::make_unique<datalake::ObjectStore>(*site.pvc);
    site.server =
        std::make_unique<datalake::FileServer>(node, *site.store, dataPrefix);
    site.catalog = std::make_unique<replica::ReplicaCatalog>(node, name);
    ndn::Name prefix = replica::kReplicaPrefix;
    prefix.append(name);
    topology.installRoutesTo(prefix, name);
  }

  const std::vector<ndn::Name> datasets{ndn::Name("/ndn/k8s/data/alpha"),
                                        ndn::Name("/ndn/k8s/data/beta")};
  for (const std::string& holder : {std::string("east"), std::string("west")}) {
    for (const ndn::Name& dataset : datasets) {
      (void)sites[holder].store->put(dataset,
                                     std::vector<std::uint8_t>(256 * 1024, 0x42));
    }
    sites[holder].catalog->syncFromStore(*sites[holder].store, dataPrefix);
    topology.installRoutesTo(dataPrefix, holder);
  }
  for (const std::string& name : {std::string("west"), std::string("south")}) {
    sites[name].scheduler = std::make_unique<replica::TransferScheduler>(
        *topology.node(name), *sites[name].store, name,
        replica::TransferOptions{}, sites[name].catalog.get());
  }

  replica::ReplicaDirectory directory(*topology.node("ops"));
  for (const auto& [name, site] : sites) directory.watchCluster(name);
  replica::PlacementPolicy policy;
  for (const ndn::Name& dataset : datasets) {
    for (int i = 0; i < 3; ++i) policy.recordAccess(dataset);
  }
  replica::RepairLoop repair(sim, directory, policy);
  repair.addScheduler("west", sites["west"].scheduler.get());
  repair.addScheduler("south", sites["south"].scheduler.get());

  directory.start();
  repair.start();
  sim.runUntil(sim::Time() + sim::Duration::seconds(6));

  // East crashes off the network.
  ndn::Name eastReplicaPrefix = replica::kReplicaPrefix;
  eastReplicaPrefix.append("east");
  topology.uninstallRoutesTo(eastReplicaPrefix, "east");
  topology.uninstallRoutesTo(dataPrefix, "east");
  const sim::Time crashedAt = sim.now();

  RepairRun run;
  const sim::Time deadline = crashedAt + sim::Duration::seconds(60);
  bool degradationSeen = false;
  while (sim.now() < deadline) {
    sim.runUntil(sim.now() + sim::Duration::millis(250));
    // East's replicas keep counting until the directory ages it into
    // stale; recovery only starts once the degradation is observable.
    if (!degradationSeen) {
      degradationSeen = directory.isStale("east");
      continue;
    }
    bool restored = true;
    for (const ndn::Name& dataset : datasets) {
      if (directory.replicationFactor(dataset) < 2) restored = false;
    }
    if (restored) {
      run.recoverySeconds = (sim.now() - crashedAt).toSeconds();
      break;
    }
  }
  repair.stop();
  directory.stop();
  sim.run();
  run.repairsCompleted = repair.repairsCompleted();
  return run;
}

}  // namespace

int main() {
  using bench::fmt;

  bench::printHeader("Ablation R: predictive pre-staging vs reactive staging");
  std::printf("3-stage chain, %zu KiB far-cluster input per late stage, "
              "two clusters (5 ms / 40 ms)\n",
              kRefBytes / 1024);

  const auto reactive = runPrestageScenario(/*lookahead=*/false);
  const auto lookahead = runPrestageScenario(/*lookahead=*/true);
  const auto replay = runPrestageScenario(/*lookahead=*/true);
  if (!reactive || !lookahead || !replay || !reactive->outcome.succeeded ||
      !lookahead->outcome.succeeded || !replay->outcome.succeeded) {
    std::printf("FATAL: a workflow run did not complete\n");
    return 1;
  }

  const double reactiveMakespan = reactive->outcome.makespan.toSeconds();
  const double lookaheadMakespan = lookahead->outcome.makespan.toSeconds();
  bench::printRow({"mode", "makespan_s", "dispatch_bytes", "prestaged_bytes"});
  bench::printRule(4);
  bench::printRow({"reactive", fmt(reactiveMakespan),
                   std::to_string(reactive->outcome.dispatchBytesMoved),
                   std::to_string(reactive->prestagedBytes)});
  bench::printRow({"lookahead", fmt(lookaheadMakespan),
                   std::to_string(lookahead->outcome.dispatchBytesMoved),
                   std::to_string(lookahead->prestagedBytes)});
  std::printf("speedup: %sx\n", fmt(reactiveMakespan / lookaheadMakespan).c_str());

  const bool deterministic = lookahead->signature == replay->signature;

  bench::printHeader("post-crash re-replication (RepairLoop)");
  const auto repairRun = runRepairScenario();
  std::printf("recovery: %s s after crash, repairs completed: %llu\n",
              fmt(repairRun.recoverySeconds).c_str(),
              static_cast<unsigned long long>(repairRun.repairsCompleted));

  bench::JsonReport report("replica_prestage");
  report.add("reactive_makespan_s", reactiveMakespan);
  report.add("lookahead_makespan_s", lookaheadMakespan);
  report.add("speedup", reactiveMakespan / lookaheadMakespan);
  report.add("reactive_dispatch_bytes",
             static_cast<double>(reactive->outcome.dispatchBytesMoved));
  report.add("lookahead_dispatch_bytes",
             static_cast<double>(lookahead->outcome.dispatchBytesMoved));
  report.add("lookahead_prestaged_bytes",
             static_cast<double>(lookahead->prestagedBytes));
  report.add("crash_recovery_s", repairRun.recoverySeconds);
  report.add("repairs_completed",
             static_cast<double>(repairRun.repairsCompleted));
  report.add("deterministic", deterministic ? 1.0 : 0.0);
  report.write();

  // Self-checks: the claims this ablation exists to defend.
  const bool prestagingFaster = lookaheadMakespan < reactiveMakespan;
  const bool dispatchLocal = lookahead->outcome.dispatchBytesMoved == 0 &&
                             reactive->outcome.dispatchBytesMoved > 0;
  const bool recovered =
      repairRun.recoverySeconds > 0 && repairRun.repairsCompleted >= 2;
  std::printf("\npre-staging faster: %s; dispatch reads local: %s; "
              "crash recovered: %s; deterministic replay: %s\n",
              prestagingFaster ? "yes" : "NO (regression)",
              dispatchLocal ? "yes" : "NO (regression)",
              recovered ? "yes" : "NO (regression)",
              deterministic ? "yes" : "NO (regression)");
  return prestagingFaster && dispatchLocal && recovered && deterministic ? 0 : 1;
}
