// Ablation I — MiniBlast alignment kernel (google-benchmark).
//
// Host-time throughput of the real compute kernel behind the magic-blast
// application: index construction and read alignment, across thread
// counts and seed lengths. Demonstrates why more CPUs barely help the
// end-to-end BLAST runtime in Table I: seeding is memory-bound and the
// per-read work is small relative to I/O at testbed scale.
#include <benchmark/benchmark.h>

#include "bench_gbench_util.hpp"

#include "genomics/aligner.hpp"
#include "genomics/datasets.hpp"

namespace {

using namespace lidc;
using namespace lidc::genomics;

const std::string& reference() {
  static const std::string ref = [] {
    Rng rng(42);
    return randomBases(rng, 200'000);
  }();
  return ref;
}

const std::vector<Sequence>& reads() {
  static const std::vector<Sequence> all = [] {
    Rng rng(43);
    return generateReads(rng, reference(), 2'000, 100, 0.42, 0.04, "BENCH");
  }();
  return all;
}

void BM_KmerIndexBuild(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    KmerIndex index(reference(), k);
    benchmark::DoNotOptimize(index.distinctKmers());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(reference().size()));
}
BENCHMARK(BM_KmerIndexBuild)->Arg(9)->Arg(11)->Arg(15);

void BM_AlignReads(benchmark::State& state) {
  AlignerOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  const MiniBlastAligner aligner(reference(), options);
  for (auto _ : state) {
    std::vector<Alignment> out;
    auto stats = aligner.alignAll(reads(), out);
    benchmark::DoNotOptimize(stats.readsAligned);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(reads().size()));
}
BENCHMARK(BM_AlignReads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_CompressReport(benchmark::State& state) {
  const MiniBlastAligner aligner(reference());
  std::vector<Alignment> alignments;
  (void)aligner.alignAll(reads(), alignments);
  for (auto _ : state) {
    auto compressed = encodeCompressedReport(alignments);
    benchmark::DoNotOptimize(compressed);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(alignments.size()));
}
BENCHMARK(BM_CompressReport);

}  // namespace

int main(int argc, char** argv) {
  return lidc::bench::runBenchmarksWithJsonReport(argc, argv, "aligner");
}
